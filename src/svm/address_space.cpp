#include "svm/address_space.hpp"

#include <cassert>
#include <cstring>

namespace svmsim::svm {

AddressSpace::AddressSpace(int nodes, std::uint32_t page_bytes)
    : nodes_(nodes), page_bytes_(page_bytes) {
  assert(nodes > 0);
  assert(page_bytes >= 256 && (page_bytes & (page_bytes - 1)) == 0);
  copies_.resize(static_cast<std::size_t>(nodes));
}

GlobalAddr AddressSpace::alloc(std::uint64_t bytes, Distribution d) {
  const std::uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const GlobalAddr base = next_;
  const PageId first = base / page_bytes_;
  next_ += pages * page_bytes_;

  for (std::uint64_t i = 0; i < pages; ++i) {
    NodeId home = -1;
    switch (d.kind) {
      case Distribution::Kind::kBlock:
        home = static_cast<NodeId>(
            i * static_cast<std::uint64_t>(nodes_) / pages);
        break;
      case Distribution::Kind::kCyclic:
        home = static_cast<NodeId>((first + i) % nodes_);
        break;
      case Distribution::Kind::kFixed:
        home = d.fixed_node;
        break;
      case Distribution::Kind::kFirstTouch:
        home = -1;
        break;
    }
    homes_.push_back(home);
  }
  for (auto& per_node : copies_) {
    per_node.resize(homes_.size());
  }
  return base;
}

NodeId AddressSpace::assign_home(PageId p, NodeId toucher) {
  auto& slot = homes_[static_cast<std::size_t>(p)];
  // First-touch homing is a race in PDES mode: which partition touches the
  // page first depends on thread scheduling, not simulated time. All shipped
  // apps place data explicitly, so this path is simply disallowed there.
  assert(!(parallel_ && slot < 0) &&
         "first-touch distribution is not supported with par_cores > 1");
  if (slot < 0) slot = toucher;
  return slot;
}

void AddressSpace::set_home_range(GlobalAddr addr, std::uint64_t len,
                                  NodeId home) {
  assert(home >= 0 && home < nodes_);
  const PageId first = page_of(addr);
  const PageId last = page_of(addr + len - 1);
  for (PageId p = first; p <= last; ++p) {
    homes_[static_cast<std::size_t>(p)] = home;
  }
}

PageCopy& AddressSpace::copy(NodeId n, PageId p) {
  auto& slot = copies_[static_cast<std::size_t>(n)][static_cast<std::size_t>(p)];
  if (!slot) {
    slot = std::make_unique<PageCopy>();
    slot->data.resize(page_bytes_);
  }
  return *slot;
}

bool AddressSpace::has_copy(NodeId n, PageId p) const {
  return copies_[static_cast<std::size_t>(n)][static_cast<std::size_t>(p)] !=
         nullptr;
}

PageCopy& AddressSpace::make_home_copy(PageId p) {
  NodeId home = home_of(p);
  if (home < 0) home = assign_home(p, 0);
  PageCopy& c = copy(home, p);
  if (c.state == PageState::kUnmapped) c.state = PageState::kReadOnly;
  return c;
}

std::span<std::byte> AddressSpace::home_data(PageId p) {
  return std::span<std::byte>(make_home_copy(p).data);
}

void AddressSpace::debug_read(GlobalAddr a, void* dst, std::uint64_t bytes) {
  auto* out = static_cast<std::byte*>(dst);
  while (bytes > 0) {
    const PageId p = page_of(a);
    const std::uint32_t off = offset_of(a);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(bytes, page_bytes_ - off);
    std::memcpy(out, home_data(p).data() + off, chunk);
    a += chunk;
    out += chunk;
    bytes -= chunk;
  }
}

void AddressSpace::debug_write(GlobalAddr a, const void* src,
                               std::uint64_t bytes) {
  const auto* in = static_cast<const std::byte*>(src);
  while (bytes > 0) {
    const PageId p = page_of(a);
    const std::uint32_t off = offset_of(a);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(bytes, page_bytes_ - off);
    std::memcpy(home_data(p).data() + off, in, chunk);
    a += chunk;
    in += chunk;
    bytes -= chunk;
  }
}

}  // namespace svmsim::svm
