#include "core/processor.hpp"

#include <utility>

#include "trace/trace.hpp"

namespace svmsim {

Processor::Processor(engine::Simulator& sim, const SimConfig& cfg,
                     ProcId global_id, int local_index, NodeId node,
                     memsys::MemoryBus& membus, Breakdown& breakdown)
    : sim_(&sim),
      cfg_(&cfg),
      id_(global_id),
      local_index_(local_index),
      node_(node),
      bd_(&breakdown),
      mem_(sim, cfg.arch, membus),
      handler_cpu_(sim) {}

engine::Task<void> Processor::drain() {
  while (pending_ > 0 || steal_ > 0) {
    const Cycles p = std::exchange(pending_, 0);
    const Cycles s = std::exchange(steal_, 0);
    if (s > 0) {
      bd_->add(TimeCat::kHandler, s);
      trace_time(TimeCat::kHandler, s);
    }
    co_await sim_->delay(p + s);
    // More handler time may have been stolen while we advanced; loop.
  }
  flush_trace_spans();
}

void Processor::mark_finished(Cycles t) {
  finished_at_ = t;
  flush_trace_spans();
}

void Processor::flush_trace_spans() {
#ifndef SVMSIM_TRACE_DISABLED
  trace::Tracer* t = sim_->tracer();
  if (t == nullptr) return;
  if (!t->wants(trace::Category::kSched)) {
    trace_acc_.fill(0);
    return;
  }
  const Cycles now = sim_->now();
  for (std::size_t i = 0; i < trace_acc_.size(); ++i) {
    if (trace_acc_[i] == 0) continue;
    t->emit(now, trace::Category::kSched, trace::Event::kTimeSpan, id_, node_,
            trace_acc_[i], static_cast<std::uint64_t>(i));
    trace_acc_[i] = 0;
  }
#endif
}

engine::Task<Cycles> Processor::wait_begin() {
  co_await drain();
  co_return sim_->now();
}

void Processor::wait_end(TimeCat cat, Cycles t0) {
  const Cycles waited = sim_->now() - t0;
  bd_->add(cat, waited);
  trace_time(cat, waited);
  // Handler work that ran while the application was blocked anyway did not
  // slow the application down; forgive that much of the pending steal.
  steal_ = steal_ > waited ? steal_ - waited : 0;
}

engine::Task<void> Processor::interrupt_body(
    std::function<engine::Task<void>()> body, Cycles entry_cost) {
  const Cycles t0 = sim_->now();
  // Delivery cost (interrupt issue+delivery, or the poll check), then the
  // handler dispatch and the handler itself.
  co_await sim_->delay(entry_cost + cfg_->arch.handler_dispatch_cycles);
  co_await body();
  const Cycles dur = sim_->now() - t0;
  steal_ += dur;
  SVMSIM_TRACE_EVENT(*sim_, trace::Category::kIrq, trace::Event::kHandlerSpan,
                     id_, node_, dur, entry_cost);
}

void Processor::service_interrupt(std::function<engine::Task<void>()> body) {
  engine::spawn(handler_cpu_.with(
      [this, body = std::move(body)]() mutable -> engine::Task<void> {
        return interrupt_body(std::move(body), 2 * cfg_->comm.interrupt_cost);
      }));
}

void Processor::service_polled(std::function<engine::Task<void>()> body) {
  engine::spawn(handler_cpu_.with(
      [this, body = std::move(body)]() mutable -> engine::Task<void> {
        return interrupt_body(std::move(body), cfg_->comm.poll_check_cost);
      }));
}

}  // namespace svmsim
