// Figure 6: relation between the slowdown due to host overhead and the
// number of messages sent (both normalized to their largest value).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  auto sweeps = bench::run_figure(
      "fig06_sweep", "overhead", {0, 2000},
      [](SimConfig& c, double v) {
        c.comm.host_overhead = static_cast<Cycles>(v);
      },
      opt, sweep);
  bench::print_relation(
      "fig06", "host-overhead slowdown", "messages/proc/Mcycle", sweeps,
      [](const harness::AppRun& r) {
        return r.result.per_proc_per_mcycles(
            r.result.stats.counters().messages_sent);
      },
      opt);
  return 0;
}
