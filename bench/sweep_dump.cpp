// Deterministic sweep dump for scheduler-equivalence checking.
//
// Runs one small fixed sweep per protocol (HLRC and AURC; two apps, two
// host-overhead points, tiny scale) and prints every observable of each run:
// execution time, events fired, validation flag, uniprocessor baseline,
// per-category time breakdown and the full protocol/communication counter
// set. The output is bit-reproducible, so diffing it between two builds
// (e.g. -DSVMSIM_SCHEDULER=tiered vs heap — see
// tools/scheduler_equivalence.sh) proves the builds fire events in the same
// (time, seq) order everywhere these protocols exercise the engine.
//
// With --check-consistency every run additionally carries the shadow
// consistency checker (src/check/); the printed observables are unchanged —
// that is exactly what tools/check_equivalence.sh verifies — but the process
// exits 1 if any run reports a violation.
//
// With --par-cores=N every run executes in PDES mode on N partition worker
// threads; the dump must still be byte-identical to the serial one, which is
// what tools/pdes_equivalence.sh verifies.
//
// With --apps=a,b,c the sweep is restricted to that comma list (any
// apps::make_app name, including stress-gen@<seed>).
//
// With --procs=N every run simulates an N-processor cluster instead of the
// paper's 16 (validated like every procs flag: exit 4 when out of range or
// not a multiple of procs_per_node) — the large-machine equivalence arms of
// tools/pdes_equivalence.sh and tools/sanitize.sh use this.
//
// With --topology=<spec> every run uses that interconnect backend
// (src/topo/). The crossbar backend must leave the dump byte-identical to
// the legacy default — tools/topology_equivalence.sh diffs exactly that —
// while fat tree / torus runs append one "link" line per physical link
// (occupancy counters), which the same script holds byte-identical between
// serial and --par-cores runs.
//
// Keep the format append-only: the equivalence check compares byte-for-byte.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;

  harness::Cli cli(argc, argv);
  const bool check = cli.has("check-consistency");
  const int par_cores =
      static_cast<int>(std::max(1L, cli.get_int("par-cores", 1)));
  std::vector<std::string> app_list = {"fft", "lu", "stress-gen@3"};
  if (auto apps_arg = cli.get("apps")) {
    app_list.clear();
    std::stringstream ss(*apps_arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) app_list.push_back(item);
    }
  }

  SimConfig base = bench::base_config();
  if (auto procs_arg = cli.get("procs")) {
    base.comm.total_procs = bench::checked_total_procs(
        argc > 0 ? argv[0] : "sweep_dump", "--procs",
        std::strtol(procs_arg->c_str(), nullptr, 10),
        base.comm.procs_per_node);
  }
  if (auto t = cli.get("topology")) {
    if (auto spec = topo::Spec::parse(*t)) {
      base.topology = *spec;
    } else {
      std::fprintf(stderr, "sweep_dump: unknown --topology value '%s'\n",
                   t->c_str());
      return bench::kExitBadTopology;
    }
    bench::checked_topology(argc > 0 ? argv[0] : "sweep_dump", base.topology,
                            base.comm.node_count());
  }

  harness::Sweep sweep(apps::Scale::kTiny);

  std::vector<harness::SweepPoint> points;
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    for (const std::string& app : app_list) {
      for (double overhead : {0.0, 1000.0}) {
        SimConfig cfg = base;
        cfg.comm.protocol = proto;
        cfg.comm.host_overhead = static_cast<Cycles>(overhead);
        cfg.check.enabled = check;
        cfg.par_cores = par_cores;
        points.push_back({app, cfg, overhead});
      }
    }
  }

  const auto runs = sweep.run_points(points);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    const auto& cfg = points[i].cfg;
    std::printf("%s proto=%s host_overhead=%llu\n", r.app.c_str(),
                cfg.comm.protocol == Protocol::kAURC ? "aurc" : "hlrc",
                static_cast<unsigned long long>(cfg.comm.host_overhead));
    std::printf("  time=%llu events=%llu validated=%d uniprocessor=%llu\n",
                static_cast<unsigned long long>(r.result.time),
                static_cast<unsigned long long>(r.result.events),
                r.result.validated ? 1 : 0,
                static_cast<unsigned long long>(r.uniprocessor));
    const auto& st = r.result.stats;
    for (int p = 0; p < st.procs(); ++p) {
      std::printf("  proc%d:", p);
      for (int c = 0; c < kTimeCats; ++c) {
        std::printf(" %llu", static_cast<unsigned long long>(
                                 st.proc(p).t[static_cast<std::size_t>(c)]));
      }
      std::printf("\n");
    }
    const auto& k = st.counters();
    std::printf(
        "  faults=%llu/%llu/%llu fetches=%llu locks=%llu/%llu barriers=%llu\n",
        static_cast<unsigned long long>(k.page_faults),
        static_cast<unsigned long long>(k.read_faults),
        static_cast<unsigned long long>(k.write_faults),
        static_cast<unsigned long long>(k.page_fetches),
        static_cast<unsigned long long>(k.local_lock_acquires),
        static_cast<unsigned long long>(k.remote_lock_acquires),
        static_cast<unsigned long long>(k.barriers));
    std::printf(
        "  msgs=%llu packets=%llu bytes=%llu interrupts=%llu polled=%llu\n",
        static_cast<unsigned long long>(k.messages_sent),
        static_cast<unsigned long long>(k.packets_sent),
        static_cast<unsigned long long>(k.bytes_sent),
        static_cast<unsigned long long>(k.interrupts),
        static_cast<unsigned long long>(k.polled_requests));
    std::printf(
        "  twins=%llu diffs=%llu diff_bytes=%llu notices=%llu invals=%llu "
        "updates=%llu update_bytes=%llu overflows=%llu\n",
        static_cast<unsigned long long>(k.twins_created),
        static_cast<unsigned long long>(k.diffs_created),
        static_cast<unsigned long long>(k.diff_bytes),
        static_cast<unsigned long long>(k.write_notices),
        static_cast<unsigned long long>(k.invalidations),
        static_cast<unsigned long long>(k.updates_sent),
        static_cast<unsigned long long>(k.update_bytes),
        static_cast<unsigned long long>(k.ni_queue_overflows));
    // Contended-topology runs only (empty otherwise): one line per physical
    // link, so the serial-vs-parallel diff also proves link-state identity.
    for (const auto& l : st.links()) {
      std::printf("  link%d owner=%d kind=%d grants=%llu busy=%llu "
                  "wait=%llu bytes=%llu\n",
                  l.id, l.owner, static_cast<int>(l.kind),
                  static_cast<unsigned long long>(l.grants),
                  static_cast<unsigned long long>(l.busy),
                  static_cast<unsigned long long>(l.wait),
                  static_cast<unsigned long long>(l.bytes));
    }
  }

  // Violation counts stay off stdout (the dump must be byte-identical with
  // the checker compiled out) but still fail the process.
  std::uint64_t violations = 0;
  for (const auto& r : runs) violations += r.result.check_violations;
  if (violations > 0) {
    std::fprintf(stderr, "sweep_dump: %llu consistency violation(s)\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}
