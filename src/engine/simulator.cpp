#include "engine/simulator.hpp"

#include "engine/choice.hpp"

namespace svmsim::engine {

void Simulator::set_choice_hook(ChoiceHook* h) noexcept {
  choice_ = h;
  queue_.set_wire_arbiter(h);
}

}  // namespace svmsim::engine
