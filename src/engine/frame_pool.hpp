// Thread-local recycling of coroutine frames.
//
// Every simulated process, protocol handler and NI firmware loop is a
// coroutine; each invocation heap-allocates its frame and frees it on
// completion. The protocol hot path creates the same handful of frame sizes
// millions of times per run, so frame allocation is a large share of
// simulation wall time. FramePool is a 64-byte-granular, size-bucketed
// freelist: steady-state frame allocation is a pointer pop, and frames are
// reused across simulation points run on the same thread.
//
// The pool is thread_local (each JobPool worker recycles its own frames), so
// it needs no locks and cannot perturb cross-thread determinism. Define
// SVMSIM_NO_FRAME_POOL (set by the SVMSIM_SANITIZE build) to fall back to
// plain operator new/delete so ASan sees true frame lifetimes.
#pragma once

#include <cstddef>
#include <new>

namespace svmsim::engine::detail {

class FramePool {
 public:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kBuckets = 32;  // recycles frames up to 2 KB

  static FramePool& tls() noexcept {
    thread_local FramePool pool;
    return pool;
  }

  void* allocate(std::size_t n) {
    const std::size_t b = bucket(n);
    if (b < kBuckets) {
      if (Node* head = free_[b]; head != nullptr) {
        free_[b] = head->next;
        return head;
      }
      return ::operator new((b + 1) * kGranule);
    }
    return ::operator new(n);
  }

  void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket(n);
    if (b < kBuckets) {
      Node* node = static_cast<Node*>(p);
      node->next = free_[b];
      free_[b] = node;
      return;
    }
    ::operator delete(p);
  }

 private:
  struct Node {
    Node* next;
  };
  static constexpr std::size_t bucket(std::size_t n) noexcept {
    return (n + kGranule - 1) / kGranule - 1;
  }

  FramePool() = default;
  ~FramePool() {
    for (Node*& head : free_) {
      while (head != nullptr) {
        Node* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

  Node* free_[kBuckets] = {};
};

}  // namespace svmsim::engine::detail
