// The shared virtual address space: page-grained allocation with explicit
// home placement, plus per-node page copies that hold *real bytes*.
//
// Apps allocate shared regions with a distribution policy (SPLASH-2 codes
// place data explicitly or rely on first-touch; we support both). Each node
// keeps its own copy of the pages it has mapped; the home copy is the
// authoritative version under HLRC/AURC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pool.hpp"
#include "engine/types.hpp"
#include "svm/diff.hpp"

namespace svmsim::svm {

using GlobalAddr = std::uint64_t;

enum class PageState : std::uint8_t {
  kUnmapped,   ///< never fetched by this node
  kInvalid,    ///< invalidated by a write notice; data stale
  kReadOnly,   ///< valid copy; first write will fault (write detection)
  kReadWrite,  ///< valid, being written this interval (twin exists off-home)
};

// Transient protocol state (in-flight fetch/flush markers, the propagate
// dedup stamp) lives in dense per-agent tables (SvmAgent), not here: the hot
// paths that scan many pages per operation walk structure-of-arrays tables
// sized once per run instead of striding through these fat records.
struct PageCopy {
  PageState state = PageState::kUnmapped;
  std::vector<std::byte> data;
  core::PoolRef<core::PooledBytes> twin;  ///< HLRC write twin (pooled)
  bool dirty = false;       ///< written since the last flush
  bool au_active = false;   ///< AURC: stores stream automatic updates
  std::uint32_t inval_gen = 0;  ///< bumped on every invalidation (see fetch)
};

/// Home placement policy for an allocation.
struct Distribution {
  enum class Kind {
    kBlock,       ///< contiguous pages split evenly across nodes
    kCyclic,      ///< pages round-robin across nodes
    kFixed,       ///< all pages homed at `fixed_node`
    kFirstTouch,  ///< home assigned to the first node that touches the page
  };
  Kind kind = Kind::kBlock;
  NodeId fixed_node = 0;

  static Distribution block() { return {Kind::kBlock, 0}; }
  static Distribution cyclic() { return {Kind::kCyclic, 0}; }
  static Distribution fixed(NodeId n) { return {Kind::kFixed, n}; }
  static Distribution first_touch() { return {Kind::kFirstTouch, 0}; }
};

class AddressSpace {
 public:
  AddressSpace(int nodes, std::uint32_t page_bytes);

  /// Allocate `bytes` of shared memory (rounded up to whole pages).
  GlobalAddr alloc(std::uint64_t bytes, Distribution d);

  [[nodiscard]] std::uint32_t page_bytes() const noexcept {
    return page_bytes_;
  }
  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] PageId page_of(GlobalAddr a) const { return a / page_bytes_; }
  [[nodiscard]] std::uint32_t offset_of(GlobalAddr a) const {
    return static_cast<std::uint32_t>(a % page_bytes_);
  }
  [[nodiscard]] std::uint64_t page_count() const noexcept {
    return homes_.size();
  }

  /// Home of a page; -1 while a first-touch page is untouched.
  [[nodiscard]] NodeId home_of(PageId p) const {
    return homes_[static_cast<std::size_t>(p)];
  }
  /// Resolve a first-touch page: the toucher becomes the home.
  NodeId assign_home(PageId p, NodeId toucher);

  /// Explicit home placement for [addr, addr+len), used by applications that
  /// place data precisely (e.g. LU's block-major layout). Must be called
  /// before the page is touched.
  void set_home_range(GlobalAddr addr, std::uint64_t len, NodeId home);

  /// This node's copy of page `p` (created on demand, unmapped).
  PageCopy& copy(NodeId n, PageId p);
  [[nodiscard]] bool has_copy(NodeId n, PageId p) const;

  /// A recycled twin buffer holding a copy of `data` (HLRC write detection).
  [[nodiscard]] core::PoolRef<core::PooledBytes> acquire_twin(
      std::span<const std::byte> data) {
    auto t = twin_pool_.acquire();
    t->bytes.assign(data.begin(), data.end());
    return t;
  }

  /// PDES wiring: the twin pool serves write faults on every partition (each
  /// twin ref stays on its node's partition, but the shared freelist does
  /// not), and first-touch homing would race — see assign_home.
  void set_thread_safe() {
    twin_pool_.set_thread_safe(true);
    parallel_ = true;
  }

  /// The authoritative home-copy data (creating it if untouched).
  std::span<std::byte> home_data(PageId p);

  /// Out-of-band accessors used for application initialization and result
  /// validation; they bypass the protocol and touch home copies directly.
  void debug_read(GlobalAddr a, void* dst, std::uint64_t bytes);
  void debug_write(GlobalAddr a, const void* src, std::uint64_t bytes);

 private:
  PageCopy& make_home_copy(PageId p);

  int nodes_;
  std::uint32_t page_bytes_;
  bool parallel_ = false;  ///< PDES mode: first-touch homing disallowed
  GlobalAddr next_ = 0;
  std::vector<NodeId> homes_;  // per page; -1 = first-touch pending
  // Twin pool is declared before copies_: PageCopy::twin refs must die first.
  core::ObjectPool<core::PooledBytes> twin_pool_;
  // copies_[node][page]; slots allocated lazily.
  std::vector<std::vector<std::unique_ptr<PageCopy>>> copies_;
};

}  // namespace svmsim::svm
