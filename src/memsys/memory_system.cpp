#include "memsys/memory_system.hpp"

namespace svmsim::memsys {

ProcMemory::ProcMemory(engine::Simulator& sim, const ArchParams& arch,
                       MemoryBus& bus)
    : sim_(&sim),
      arch_(&arch),
      bus_(&bus),
      l1_(arch.l1),
      l2_(arch.l2),
      wb_(arch.wb_entries, arch.wb_retire_at, arch.l2.hit_cycles) {}

std::optional<Cycles> ProcMemory::read_line_fast(std::uint64_t line_addr,
                                                 Cycles now) {
  retired_scratch_.clear();
  wb_.advance(now, retired_scratch_);
  absorb_retired(retired_scratch_);

  if (wb_.contains(line_addr)) return arch_->wb_hit_cycles;
  if (l1_.lookup(line_addr)) return arch_->l1.hit_cycles;
  if (l2_.lookup(line_addr)) {
    // L2 hit refills the (write-through, so never dirty) L1.
    l1_.fill(line_addr, /*dirty=*/false);
    return arch_->l2.hit_cycles;
  }
  return std::nullopt;  // memory access needed
}

engine::Task<Cycles> ProcMemory::read_line_slow(std::uint64_t line_addr) {
  const Cycles start = sim_->now();
  // Split transaction: request phase (address), pipelined DRAM access,
  // then the reply data phase at memory priority.
  co_await bus_->transaction(BusMaster::kL2, 8);
  co_await sim_->delay(arch_->dram_latency_cycles);
  co_await bus_->transaction(BusMaster::kMemory, arch_->l2.line_bytes);

  auto victim = l2_.fill(line_addr, /*dirty=*/false);
  if (victim.evicted && victim.dirty) {
    background_fill(victim.line_addr, BusMaster::kL2);
  }
  l1_.fill(line_addr, /*dirty=*/false);
  co_return sim_->now() - start;
}

ProcMemory::StoreCost ProcMemory::write_line(std::uint64_t line_addr,
                                             Cycles now) {
  // Write-through: update L1 if present (no write-allocate), always enter
  // the write buffer.
  l1_.lookup(line_addr);  // hit updates LRU; miss is write-around
  retired_scratch_.clear();
  const Cycles stall = wb_.push(line_addr, now, retired_scratch_);
  absorb_retired(retired_scratch_);
  return StoreCost{arch_->l1.hit_cycles, stall};
}

void ProcMemory::invalidate_range(std::uint64_t start, std::uint64_t len) {
  l1_.invalidate_range(start, len);
  l2_.invalidate_range(start, len);
}

void ProcMemory::absorb_retired(const std::vector<std::uint64_t>& retired) {
  for (std::uint64_t line : retired) {
    if (l2_.lookup(line, /*mark_dirty=*/true)) continue;
    // Write-allocate: fetch the line in the background at write-buffer
    // priority; the processor does not wait.
    auto victim = l2_.fill(line, /*dirty=*/true);
    background_fill(line, BusMaster::kWriteBuffer);
    if (victim.evicted && victim.dirty) {
      background_fill(victim.line_addr, BusMaster::kL2);
    }
  }
}

void ProcMemory::background_fill(std::uint64_t /*line_addr*/,
                                 BusMaster master) {
  // Fire-and-forget bus transaction: contends with everyone else on the
  // node's bus but does not block the issuing processor.
  engine::spawn(bus_->transaction(master, arch_->l2.line_bytes));
}

}  // namespace svmsim::memsys
