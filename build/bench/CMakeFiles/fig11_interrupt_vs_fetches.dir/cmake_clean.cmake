file(REMOVE_RECURSE
  "CMakeFiles/fig11_interrupt_vs_fetches.dir/fig11_interrupt_vs_fetches.cpp.o"
  "CMakeFiles/fig11_interrupt_vs_fetches.dir/fig11_interrupt_vs_fetches.cpp.o.d"
  "fig11_interrupt_vs_fetches"
  "fig11_interrupt_vs_fetches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_interrupt_vs_fetches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
