// Programmable network interface (Myrinet-like), per node.
//
// Send path:   host posts a message descriptor into the NI send queue ->
//              NI firmware fragments it into MTU packets, charging per-packet
//              NI occupancy, then DMAs each packet over the I/O bus and the
//              memory bus (NI-out priority) and pushes it onto the wire.
// Receive path: each packet charges NI occupancy, then is DMA'd into host
//              memory (I/O bus + memory bus at NI-in priority) without any
//              interrupt; the messaging layer decides whether delivery of
//              the completed message interrupts a processor.
//
// Each direction has its own processing engine (as on NIs with independent
// send/receive DMA paths), each charging the per-packet NI occupancy — the
// parameter of Figures 7/12. Within a direction, packets serialize.
//
// Hot-path notes: in-flight messages live in the Network's message pool (one
// PoolRef per fragment instead of a shared_ptr allocation per message), the
// send/receive queues are RingQueues, and the per-packet wire closure is
// sized to fit the event queue's inline action storage.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.hpp"
#include "core/pool.hpp"
#include "core/stats.hpp"
#include "engine/resource.hpp"
#include "engine/ring_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "memsys/memory_bus.hpp"
#include "net/io_bus.hpp"
#include "net/message.hpp"
#include "topo/topology.hpp"

namespace svmsim::net {

class Network;

using MessageRef = core::PoolRef<Message>;

struct Packet {
  NodeId src = -1;
  NodeId dst = -1;
  int nic_index = 0;        ///< which of the destination node's NIs receives
  std::uint64_t bytes = 0;  ///< wire size of this packet (payload + header)
  std::uint32_t wire_seq = 0;  ///< per-source-NI launch sequence (wire key)
  bool last = false;        ///< final fragment of its message
  MessageRef msg;
};

class Nic {
 public:
  Nic(engine::Simulator& sim, const ArchParams& arch, const CommParams& comm,
      NodeId self, int index, memsys::MemoryBus& membus, Counters& counters);

  void attach(Network& network) { network_ = &network; }

  /// Host/hardware side: enqueue a message for transmission. Suspends the
  /// caller only if the send queue is out of space (queue overflow, which
  /// the paper models as the NI interrupting and delaying the host).
  engine::Task<void> post(Message m);

  /// Called by the Network when a packet lands in the receive queue.
  void packet_arrived(Packet p);

  /// Full message arrived and DMA'd to host memory (set by messaging layer).
  std::function<void(Message&&)> on_message;

  /// Invoked at the exact enqueue point of post() — after any overflow
  /// wait, immediately before the message joins the FIFO send queue — where
  /// enqueue order equals launch order. The protocol layer's clock-delta
  /// encoder hangs here (docs/scaling.md): messages of equal wire size on
  /// one (src, dst) edge cannot overtake each other between this point and
  /// delivery, which is what makes per-edge delta caches sound. The hook
  /// may rewrite the body but must not change payload_bytes.
  std::function<void(Message&)> on_enqueue;

  /// AURC automatic update applied directly by the NI (set by the AURC
  /// device); never interrupts the host.
  std::function<void(const Message&)> on_update;

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] int index() const noexcept { return index_; }
  [[nodiscard]] IoBus& io_bus() noexcept { return iobus_; }

  /// True while any cross-partition message is posted but not fully on the
  /// wire (send queue or mid-transmit) — the adaptive PDES window's send
  /// bookkeeping. While this holds, next_remote_tx_lb() bounds this NI's
  /// earliest send; once clear, the next cross-partition packet costs at
  /// least Network::min_tx_cycles of host/NI processing after the event
  /// that posts it.
  [[nodiscard]] bool remote_tx_pending() const noexcept {
    return remote_pending_ > 0;
  }

  /// True once this NI has witnessed two same-cycle packet arrivals in
  /// descending source order — impossible under the baseline wire-band
  /// order (same-cycle same-destination deliveries fire in ascending key,
  /// i.e. ascending source), reachable only when a schedule explorer defers
  /// deliveries. Sticky for the rest of the run; tracked only while the
  /// kReorderSensitiveNotice fault injection is active (see packet_arrived),
  /// so default runs never touch the bookkeeping.
  [[nodiscard]] bool reorder_witnessed() const noexcept {
    return reorder_witnessed_;
  }

  /// Absolute lower bound on the next time this NI can launch a
  /// cross-partition packet. Computed live from the tx pipeline's current
  /// stage and the occupied resource's busy_until() — a barrier that
  /// catches the pipeline stalled on a contended bus still sees the
  /// stall-aware bound, not a stale snapshot — plus one full
  /// Network::min_tx_cycles pipeline per queued message ahead of the first
  /// remote one (a remote message behind local traffic cannot jump the
  /// FIFO send queue). Only meaningful while remote_tx_pending(); always a
  /// lower bound, so a loose value costs window width, never correctness.
  [[nodiscard]] Cycles next_remote_tx_lb() const noexcept;

 private:
  engine::Task<void> tx_loop();
  engine::Task<void> rx_loop();
  [[nodiscard]] std::uint64_t wire_bytes(const Message& m) const {
    return arch_->message_header_bytes + m.payload_bytes;
  }

  engine::Simulator* sim_;
  const ArchParams* arch_;
  const CommParams* comm_;
  NodeId self_;
  int index_;
  memsys::MemoryBus* membus_;
  Counters* counters_;
  Network* network_ = nullptr;

  IoBus iobus_;
  engine::Resource ni_tx_;  // send-side packet processing
  engine::Resource ni_rx_;  // receive-side packet processing

  engine::RingQueue<Message> send_q_;
  std::uint64_t send_q_bytes_ = 0;
  std::uint32_t remote_pending_ = 0;  ///< cross-partition msgs not yet sent

  /// Adaptive-window send-bound bookkeeping (see next_remote_tx_lb()):
  /// which leg of the per-packet pipeline tx_loop currently occupies, a
  /// leg-boundary lower bound on the next packet launch, whether the
  /// in-pipeline message crosses a partition boundary, and the cached
  /// per-leg minimum costs.
  enum class TxStage : std::uint8_t { kIdle, kNiServe, kDma, kMembus };
  TxStage tx_stage_ = TxStage::kIdle;
  Cycles leg_lb_ = 0;        ///< launch bound as of the last leg boundary
  bool cur_remote_ = false;  ///< in-pipeline message crosses partitions
  Cycles min_tx_ = 0;        ///< Network::min_tx_cycles(arch, comm)
  Cycles dma_min_ = 0;       ///< minimum I/O-bus DMA leg
  Cycles mem_min_ = 0;       ///< minimum memory-bus leg (incl. arbitration)
  std::uint32_t wire_seq_ = 0;  ///< launch counter for this NI's packets
  engine::Semaphore send_items_;
  engine::Trigger send_space_;

  engine::RingQueue<Packet> recv_q_;
  std::uint64_t recv_q_bytes_ = 0;
  engine::Semaphore recv_items_;

  /// kReorderSensitiveNotice bookkeeping (see reorder_witnessed()).
  Cycles last_arrival_when_ = kNever;
  NodeId last_arrival_src_ = -1;
  bool reorder_witnessed_ = false;
};

/// Crossbar network: constant-latency links at processor speed. Contention
/// in links and switches is deliberately not modeled (paper §2). Also hosts
/// the message pool for in-flight traffic — the Network is constructed
/// before (so destroyed after) every Nic that draws from it.
///
/// Deliveries go through the scheduler's wire band, keyed by (dst node,
/// src node, NI index, per-NI launch sequence). The key is a pure function
/// of the sending NI's local history, so serial and PDES runs deliver
/// same-cycle packets in the same order (docs/engine.md, "PDES mode").
class Network {
 public:
  using Action = engine::EventQueue::Action;

  /// Where deliveries to one destination node go, from the perspective of
  /// the source node's partition: directly onto a scheduler (same
  /// partition, or every node in serial mode) or across a channel.
  struct Route {
    engine::EventQueue* queue = nullptr;
    engine::TimedChannel<Action>* channel = nullptr;
  };

  Network(engine::Simulator& sim, const ArchParams& arch)
      : sim_(&sim), arch_(&arch) {}

  /// Register node `node`'s NI number `nic.index()`. Nodes may have
  /// several NIs; packets address (node, index).
  void add_nic(Nic& nic) {
    const auto n = static_cast<std::size_t>(nic.id());
    assert(nic.id() < 4096 && nic.index() < 256 && "wire key field overflow");
    if (nics_.size() <= n) nics_.resize(n + 1);
    const auto k = static_cast<std::size_t>(nic.index());
    if (nics_[n].size() <= k) nics_[n].resize(k + 1, nullptr);
    nics_[n][k] = &nic;
    nic.attach(*this);
  }

  /// PDES wiring (set once by the Machine before any traffic): delivery
  /// route per [src node][dst node]. When unset, every delivery schedules
  /// on the construction simulator (standalone and serial use).
  void set_routes(std::vector<std::vector<Route>> routes) {
    routes_ = std::move(routes);
  }

  /// PDES wiring: in-flight messages recycle on the receiving partition's
  /// thread, so the pool must take its freelist lock.
  void set_thread_safe() {
    msg_pool_.set_thread_safe(true);
    hop_pool_.set_thread_safe(true);
  }

  /// Install a topology backend (src/topo/; Machine, before any traffic).
  /// With none installed — or with the contention-free Crossbar backend —
  /// transmit() keeps the legacy single-formula path, byte for byte.
  void set_topology(topo::Topology* t) noexcept { topo_ = t; }

  /// True when packets traverse contended per-hop links (fat tree, torus).
  [[nodiscard]] bool topology_contended() const noexcept {
    return topo_ != nullptr && topo_->contended();
  }

  /// PDES wiring for contended topologies: the node -> partition map. A
  /// hop event must fire on the partition owning its link, and the window
  /// protocol must know which partitions hold topology wire events (see
  /// wire_pending). Not needed in legacy/crossbar mode.
  void set_partition_map(std::vector<int> node_part, int parts) {
    node_part_ = std::move(node_part);
    wire_pending_.assign(static_cast<std::size_t>(parts), PendingCount{});
  }

  /// Adaptive-window accounting: true while partition `part`'s event queue
  /// holds topology wire events (mid-route hops or final deliveries). A hop
  /// firing at head-of-queue time can immediately push a cross-partition
  /// record only min_latency away — far less than the NIC tx-pipeline floor
  /// — so while this holds, the publish hook must bound the partition's
  /// next send by bare head-of-queue time (core/machine.cpp).
  [[nodiscard]] bool wire_pending(int part) const noexcept {
    return !wire_pending_.empty() &&
           wire_pending_[static_cast<std::size_t>(part)].n > 0;
  }

  /// Called by the Machine's drain hook on partition `part`'s thread: `n`
  /// channel records just landed in its queue. In contended-topology mode
  /// every channel record is a topology wire event, so they join the
  /// wire_pending count (decremented when each fires).
  void note_drained(int part, std::size_t n) noexcept {
    if (!wire_pending_.empty()) {
      wire_pending_[static_cast<std::size_t>(part)].n +=
          static_cast<std::int64_t>(n);
    }
  }

  /// Minimum cross-node delivery latency — the PDES lookahead floor. Every
  /// packet spends the wire time plus at least its header's serialization at
  /// link bandwidth in flight (transmit() computes wire + bytes/bandwidth
  /// with bytes >= packet_header_bytes, and truncation is monotone), so a
  /// conservative window of this width can never miss a delivery. The wider
  /// the window, the fewer barrier syncs per simulated cycle.
  [[nodiscard]] Cycles min_latency() const noexcept {
    // A topology backend owns the bound: for contended topologies it is
    // the analytic minimum single-hop advance (every hop event schedules
    // its successor at least that far ahead — docs/topology.md); the
    // Crossbar backend reproduces the legacy value below.
    if (topo_ != nullptr) return topo_->min_latency();
    const auto min_serialization = static_cast<Cycles>(
        static_cast<double>(arch_->packet_header_bytes) /
        arch_->link_bytes_per_cycle);
    const Cycles floor = arch_->wire_latency_cycles + min_serialization;
    return floor > 0 ? floor : 1;
  }

  /// Conservative minimum host/NI-side cost between the event that posts a
  /// message and the launch of its first packet: the NI send occupancy, the
  /// I/O-bus DMA and the memory-bus transaction for a minimum-size packet.
  /// Every phase of Nic::tx_loop delays by at least its service time and
  /// each per-packet cost is monotone in packet size, so no transmit can
  /// beat post time + this floor. With the NI occupancy alone at ~1000
  /// cycles against a 116-cycle wire latency, this is what lets the
  /// adaptive PDES window bound a pipeline-empty partition's next send by
  /// head-of-queue + floor instead of head-of-queue alone (docs/engine.md,
  /// "PDES mode").
  [[nodiscard]] static Cycles min_tx_cycles(const ArchParams& arch,
                                            const CommParams& comm) noexcept {
    const std::uint64_t pkt = arch.packet_header_bytes;  // smallest packet
    const std::uint64_t bus_cycles =
        (pkt + arch.membus_bytes_per_bus_cycle - 1) /
        arch.membus_bytes_per_bus_cycle;
    return comm.ni_occupancy + comm.io_bus_cycles(pkt) +
           arch.membus_arbitration_cycles +
           bus_cycles * arch.membus_cpu_per_bus_cycle;
  }

  /// True when a message from `src` to `dst` leaves the source partition
  /// at any point. In legacy/crossbar mode that is exactly "the delivery
  /// travels over a TimedChannel"; on a contended topology a same-partition
  /// destination can still route over links owned by other partitions, so
  /// the whole route is inspected — the NIC's remote-pending bookkeeping
  /// (adaptive window) must treat such a message as remote work. Always
  /// false in serial mode (no routes installed).
  [[nodiscard]] bool remote(NodeId src, NodeId dst) const noexcept {
    if (routes_.empty()) return false;
    if (topo_ != nullptr && topo_->contended() && !node_part_.empty()) {
      const int ps = node_part_[static_cast<std::size_t>(src)];
      if (node_part_[static_cast<std::size_t>(dst)] != ps) return true;
      topo::Topology::RouteBuf r;
      topo_->route(src, dst, r);
      for (int i = 0; i < r.hops; ++i) {
        const NodeId owner =
            topo_->link(r.link[static_cast<std::size_t>(i)]).owner;
        if (node_part_[static_cast<std::size_t>(owner)] != ps) return true;
      }
      return false;
    }
    return routes_[static_cast<std::size_t>(src)][static_cast<std::size_t>(
               dst)]
               .channel != nullptr;
  }

  /// A recycled in-flight message slot.
  [[nodiscard]] MessageRef acquire_message() { return msg_pool_.acquire(); }

  /// Launch a packet at local time `now`: it arrives at the destination NI
  /// after the wire latency plus serialization at link bandwidth.
  void transmit(Packet p, Cycles now);

 private:
  /// Pooled per-packet route state for contended topologies. The wire key
  /// already encodes (dst, src, nic index, launch seq), so only the payload
  /// ref, wire bytes, next-hop cursor and last flag ride here; a closure
  /// over {Network*, PoolRef<Hop>, Cycles} fits the scheduler's 24-byte
  /// inline action storage.
  struct Hop {
    MessageRef msg;
    std::uint64_t key = 0;
    std::uint32_t bytes = 0;
    std::uint8_t next = 0;  ///< index of the next link on the route
    bool last = false;
    void recycle() { msg.reset(); }
  };
  /// Per-partition count of scheduled topology wire events. Only ever
  /// touched from the owning partition's thread (scheduling onto another
  /// partition goes through its channel and is counted by note_drained on
  /// arrival), so plain non-atomic counters — padded to a cache line each
  /// to keep neighbouring partitions' writes from false sharing.
  struct alignas(64) PendingCount {
    std::int64_t n = 0;
  };

  /// Contended-topology transmit: serve the injection link inline, then
  /// walk the route hop by hop as wire-band events on each link owner's
  /// partition.
  void transmit_routed(Packet p, Cycles now);
  /// One link traversal: FIFO-reserve the link, then schedule the next hop
  /// (or the final delivery) at reservation end + link latency.
  void hop(core::PoolRef<Hop> h, Cycles now);
  /// Final wire event on the destination's partition: rebuild the Packet
  /// from the key + Hop state and hand it to the receiving NI.
  void deliver(core::PoolRef<Hop> h);

  engine::Simulator* sim_;
  const ArchParams* arch_;
  topo::Topology* topo_ = nullptr;
  core::ObjectPool<Message> msg_pool_;
  core::ObjectPool<Hop> hop_pool_;
  std::vector<std::vector<Nic*>> nics_;    // [node][nic index]
  std::vector<std::vector<Route>> routes_; // [src node][dst node]; may be empty
  std::vector<int> node_part_;             // [node] -> partition (contended PDES)
  std::vector<PendingCount> wire_pending_; // [partition] topology wire events
};

}  // namespace svmsim::net
