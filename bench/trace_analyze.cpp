// Trace analyzer: recompute per-category time breakdowns, counters, and the
// hottest pages/locks from a binary trace, and cross-check them against the
// core::Stats embedded in the file (the whole-simulation correctness oracle).
//
//   trace_analyze <trace.bin>            print the analysis report
//   trace_analyze --check <trace.bin>    verify; exit 1 on any mismatch
//   trace_analyze --run [--app=fft] [--protocol=hlrc|aurc] [--scale=tiny]
//                 [--out=<file>] [--check] [--top=N]
//       drive one traced run, write the trace, re-read it, and analyze.
//       This mode backs the trace_analyze_check_* ctest entries.
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "apps/registry.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "harness/cli.hpp"
#include "trace/analyze.hpp"
#include "trace/trace.hpp"

namespace {

using namespace svmsim;

int analyze_file(const std::string& path, bool check_only, std::size_t top_n) {
  const trace::TraceFile f = trace::read_file(path);
  const std::vector<std::string> mismatches = trace::check(f);
  if (!check_only) {
    const trace::Analysis a = trace::analyze(f, top_n);
    std::fputs(trace::report(f, a).c_str(), stdout);
  }
  if (!mismatches.empty()) {
    std::fprintf(stderr, "%s: %zu mismatch(es) against embedded Stats:\n",
                 path.c_str(), mismatches.size());
    for (const std::string& m : mismatches) {
      std::fprintf(stderr, "  %s\n", m.c_str());
    }
    return 1;
  }
  std::printf("%s: OK (%zu records reproduce core::Stats exactly)\n",
              path.c_str(), f.records.size());
  return 0;
}

int run_and_analyze(const harness::Cli& cli, bool check_only,
                    std::size_t top_n) {
  const std::string app_name = cli.get_or("app", "fft");
  const std::string proto = cli.get_or("protocol", "hlrc");
  const std::string scale_name = cli.get_or("scale", "tiny");
  const std::string out = cli.get_or("out", "trace_analyze." + app_name + "-" +
                                                proto + ".bin");

  apps::Scale scale = apps::Scale::kTiny;
  if (scale_name == "small") scale = apps::Scale::kSmall;
  if (scale_name == "large") scale = apps::Scale::kLarge;

  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  if (proto == "aurc") {
    cfg.comm.protocol = Protocol::kAURC;
  } else if (proto != "hlrc") {
    std::fprintf(stderr, "unknown --protocol '%s' (hlrc or aurc)\n",
                 proto.c_str());
    return 2;
  }
  cfg.trace.enabled = true;
  cfg.trace.path = out;
  if (auto cats = cli.get("trace-categories")) {
    auto mask = trace::parse_mask(*cats);
    if (!mask) {
      std::fprintf(stderr, "unknown --trace-categories '%s'\n", cats->c_str());
      return 2;
    }
    cfg.trace.mask = *mask;
  }

  std::unique_ptr<Workload> app = apps::make_app(app_name, scale);
  const RunResult r = run(*app, cfg);
  std::printf("ran %s/%s/%s: time=%llu events=%llu validated=%d\n",
              app_name.c_str(), proto.c_str(), scale_name.c_str(),
              static_cast<unsigned long long>(r.time),
              static_cast<unsigned long long>(r.events), (int)r.validated);
  if (!r.validated) {
    std::fprintf(stderr, "trace_analyze: %s failed validation\n",
                 app_name.c_str());
    return 1;
  }
  return analyze_file(out, check_only, top_n);
}

}  // namespace

int main(int argc, char** argv) {
  harness::Cli cli(argc, argv);
  const bool check_only = cli.has("check");
  const auto top_n = static_cast<std::size_t>(cli.get_int("top", 10));
  try {
    if (cli.has("run")) return run_and_analyze(cli, check_only, top_n);
    // harness::Cli treats the token after a bare `--check` as its value, so
    // `--check a.bin b.bin` swallows the first path; reclaim it.
    std::vector<std::string> paths = cli.positional();
    if (const auto v = cli.get("check"); v && *v != "1") {
      paths.insert(paths.begin(), *v);
    }
    if (paths.empty()) {
      std::fprintf(stderr,
                   "usage: %s [--check] <trace.bin>\n"
                   "       %s --run [--app=fft] [--protocol=hlrc|aurc] "
                   "[--scale=tiny] [--out=file] [--check]\n",
                   argv[0], argv[0]);
      return 2;
    }
    int rc = 0;
    for (const std::string& path : paths) {
      rc |= analyze_file(path, check_only, top_n);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_analyze: %s\n", e.what());
    return 1;
  }
}
