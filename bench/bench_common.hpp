// Shared infrastructure for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale=tiny|small|large   problem sizes (default small)
//   --csv=<dir>                also dump machine-readable CSV
//   --apps=a,b,c               restrict to a subset of the suite
//   --jobs=N                   run up to N simulation points concurrently
//                              (default: hardware concurrency; 1 = serial)
//   --trace=<file>             record a binary event trace per sweep point
//                              (each point writes <file>.<app>-<index>)
//   --trace-categories=a,b     restrict tracing to page,lock,net,irq,sched
//   --check-consistency        run the shadow consistency checker on every
//                              point (exit 1 if any violation is found)
//   --par-cores=N              run each simulation point on N partition
//                              worker threads (PDES mode; results are
//                              byte-identical to serial). The default job
//                              count shrinks to hardware/N so the two levels
//                              of parallelism do not oversubscribe.
//   --pdes-window=adaptive|fixed
//                              window-end policy for --par-cores runs
//                              (default adaptive; fixed is the original
//                              one-lookahead window, kept for A/B runs —
//                              results are byte-identical either way)
//   --topology=crossbar|fattree:<k>|torus:<X>x<Y>[x<Z>]
//                              interconnect backend for every sweep point
//                              (default: the legacy contention-free
//                              crossbar; see docs/topology.md). Malformed
//                              or unfitting specs exit kExitBadTopology.
//   --link-bytes-per-cycle=F / --wire-latency=N
//                              override the corresponding ArchParams
//                              fields; values ArchParams::validate()
//                              rejects exit kExitBadArch.
//
// --trace combined with --par-cores>1 is rejected up front with exit code
// kExitTracedParallel (see docs/tracing.md).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "check/config.hpp"
#include "core/params.hpp"
#include "harness/cli.hpp"
#include "harness/job_pool.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "trace/config.hpp"

namespace svmsim::bench {

/// Exit code for the --trace + --par-cores>1 flag conflict, distinct from
/// the generic bad-flag exit(2) so scripts (and the death test) can tell the
/// two apart.
inline constexpr int kExitTracedParallel = 3;

/// Exit code for an invalid simulated cluster size (--pdes-procs / --procs):
/// not a positive multiple of procs_per_node, or larger than
/// kMaxTotalProcs. Distinct from the generic bad-flag exit(2) and from
/// kExitTracedParallel so scripts (and the death tests) can branch on it.
inline constexpr int kExitBadProcs = 4;

/// Exit code for a malformed or unusable --topology spec: a string
/// topo::Spec::parse rejects ("torus:0x4", "fattree:3"), or a well-formed
/// spec that does not fit the simulated node count (a 4x4 torus under 64
/// nodes). Distinct from exit(2)/3/4 so scripts and the death tests can
/// branch on it.
inline constexpr int kExitBadTopology = 5;

/// Exit code for architecture parameters rejected by ArchParams::validate()
/// (e.g. --link-bytes-per-cycle=0): the zero/NaN values would divide into
/// infinite serialization times or break the PDES lookahead floor.
inline constexpr int kExitBadArch = 6;

/// Exit code for a rejected --replay schedule file in bench/explore: the
/// file is missing, truncated, not a schedule, the wrong format version,
/// corrupt, or recorded against a different (app, config) fingerprint. The
/// specific reason is printed; the code is shared so scripts can branch on
/// "the schedule file is unusable" without parsing the diagnostic.
inline constexpr int kExitBadSchedule = 7;

/// Largest simulated cluster a bench accepts: 16384 nodes at the paper's 4
/// processors per node. The simulator itself has no hard ceiling, but a
/// typo'd size (e.g. a missing comma merging two list entries) would
/// otherwise try to allocate per-node state for millions of nodes and OOM
/// long after parse time.
inline constexpr long kMaxTotalProcs = 65536;

/// Validate a requested total_procs value against the machine granularity at
/// CLI parse time: it must be a positive multiple of procs_per_node (nodes
/// are whole) and at most kMaxTotalProcs. Returns the value on success;
/// prints a diagnostic naming `flag` and exits kExitBadProcs otherwise.
int checked_total_procs(const char* argv0, const char* flag, long total,
                        int procs_per_node);

/// Validate a topology spec against a simulated node count (topo::fits).
/// Prints a diagnostic and exits kExitBadTopology on a misfit; a fitting
/// spec passes through. Benches call this per sweep point, after the
/// point's cluster size is known.
void checked_topology(const char* argv0, const topo::Spec& spec, int nodes);

struct Options {
  apps::Scale scale = apps::Scale::kSmall;
  std::string csv_dir;
  std::vector<std::string> app_names;
  int jobs = 1;
  int par_cores = 1;    ///< SimConfig::par_cores for every sweep point
  /// SimConfig::pdes_window for every sweep point (--pdes-window).
  WindowPolicy pdes_window = SimConfig{}.pdes_window;
  /// SimConfig::topology for every sweep point (--topology=crossbar|
  /// fattree:k|torus:XxY[xZ]; default legacy). Malformed specs exit
  /// kExitBadTopology at parse time; fit against the cluster size is
  /// checked per point (checked_topology).
  topo::Spec topology;
  /// SimConfig::arch for every sweep point, with any --link-bytes-per-cycle
  /// / --wire-latency overrides applied; values ArchParams::validate()
  /// rejects exit kExitBadArch at parse time.
  ArchParams arch;
  /// argv[0] as seen at parse time, for later diagnostics ("bench" when
  /// argv was empty).
  std::string prog = "bench";
  trace::Config trace;  ///< applied to every sweep point (path is a prefix)
  check::Config check;  ///< applied to every sweep point

  static Options parse(int argc, char** argv);

  /// The shared worker pool implied by --jobs, or nullptr when serial.
  [[nodiscard]] harness::JobPool* pool() const { return pool_.get(); }

 private:
  std::shared_ptr<harness::JobPool> pool_;
};

/// The paper's default machine at the achievable point.
[[nodiscard]] SimConfig base_config();

/// All points of an app-suite sweep (opt.app_names x values), in row-major
/// order, ready for Sweep::run_points.
[[nodiscard]] std::vector<harness::SweepPoint> suite_points(
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, const Options& opt);

/// Run one parameter sweep over the whole suite and print the figure's
/// series: one row per application, one speedup column per parameter value.
/// Points run concurrently under opt.pool(). Returns all runs
/// (apps x values) for further analysis.
std::vector<std::vector<harness::AppRun>> run_figure(
    const std::string& figure, const std::string& param_name,
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, const Options& opt,
    harness::Sweep& sweep,
    const std::function<std::string(double)>& value_label = nullptr);

/// Normalized-correlation figure (Figures 6/9/11): slowdown between the
/// sweep's endpoints, against a per-app predictor metric, both normalized
/// to their maxima.
void print_relation(const std::string& figure,
                    const std::string& slowdown_label,
                    const std::string& metric_label,
                    const std::vector<std::vector<harness::AppRun>>& sweeps,
                    const std::function<double(const harness::AppRun&)>& metric,
                    const Options& opt);

}  // namespace svmsim::bench
