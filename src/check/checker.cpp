#include "check/checker.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace svmsim::check {

namespace {

/// printf-style helper for violation detail strings.
[[gnu::format(printf, 1, 2)]] std::string fmt(const char* f, ...) {
  char buf[256];
  std::va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

std::string_view to_string(Mutation m) noexcept {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kStaleRead: return "stale_read";
    case Mutation::kLostDiff: return "lost_diff";
    case Mutation::kSkippedNotice: return "skipped_notice";
    case Mutation::kReorderSensitiveNotice: return "reorder_sensitive_notice";
  }
  return "?";
}

std::optional<Mutation> parse_mutation(std::string_view name) {
  if (name.empty() || name == "none") return Mutation::kNone;
  if (name == "stale_read") return Mutation::kStaleRead;
  if (name == "lost_diff") return Mutation::kLostDiff;
  if (name == "skipped_notice") return Mutation::kSkippedNotice;
  if (name == "reorder_sensitive_notice") {
    return Mutation::kReorderSensitiveNotice;
  }
  return std::nullopt;
}

std::string_view to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kStaleRead: return "stale-read";
    case Kind::kRacyWrite: return "racy-write";
    case Kind::kBadTransition: return "bad-transition";
    case Kind::kResurrection: return "resurrection";
    case Kind::kDiffUnmatched: return "diff-unmatched";
    case Kind::kDiffLost: return "diff-lost";
    case Kind::kUpdateLost: return "update-lost";
    case Kind::kClockRegression: return "clock-regression";
    case Kind::kLockHandoff: return "lock-handoff";
    case Kind::kBarrierHandoff: return "barrier-handoff";
    case Kind::kFinalDivergence: return "final-divergence";
    case Kind::kCount: break;
  }
  return "?";
}

std::string_view to_string(PageEvent e) noexcept {
  switch (e) {
    case PageEvent::kHomeMap: return "home-map";
    case PageEvent::kFetchInstall: return "fetch-install";
    case PageEvent::kFetchInstallStale: return "fetch-install-stale";
    case PageEvent::kArmWrite: return "arm-write";
    case PageEvent::kFlushDemote: return "flush-demote";
    case PageEvent::kInvalidate: return "invalidate";
  }
  return "?";
}

namespace {

std::string_view state_name(svm::PageState s) noexcept {
  switch (s) {
    case svm::PageState::kUnmapped: return "unmapped";
    case svm::PageState::kInvalid: return "invalid";
    case svm::PageState::kReadOnly: return "read-only";
    case svm::PageState::kReadWrite: return "read-write";
  }
  return "?";
}

}  // namespace

Checker::Checker(const Config& cfg, svm::AddressSpace& space)
    : cfg_(cfg),
      space_(&space),
      nodes_(space.nodes()),
      per_node_(static_cast<std::size_t>(nodes_)),
      open_interval_(static_cast<std::size_t>(nodes_), 1),
      cut_pending_(static_cast<std::size_t>(nodes_), false),
      last_vc_(static_cast<std::size_t>(nodes_), svm::VClock(nodes_)),
      arrive_count_(static_cast<std::size_t>(nodes_), 0),
      exit_count_(static_cast<std::size_t>(nodes_), 0) {
  if (const char* env = std::getenv("SVMSIM_CHECK_MUTATION")) {
    if (auto m = parse_mutation(env)) {
      mutation_ = *m;
    } else {
      std::fprintf(stderr,
                   "svmsim-check: unknown SVMSIM_CHECK_MUTATION '%s' ignored\n",
                   env);
    }
  }
}

Checker::PageShadow& Checker::shadow(svm::PageId p) {
  const auto idx = static_cast<std::size_t>(p);
  if (idx >= pages_.size()) pages_.resize(idx + 1);
  auto& slot = pages_[idx];
  if (!slot) {
    slot = std::make_unique<PageShadow>();
    slot->data.assign(space_->page_bytes(), std::byte{0});
    slot->meta.assign(space_->page_bytes() / kWordBytes, WordMeta{});
  }
  return *slot;
}

Checker::NodePage& Checker::node_page(NodeId n, svm::PageId p) {
  auto& v = per_node_[static_cast<std::size_t>(n)];
  const auto idx = static_cast<std::size_t>(p);
  if (idx >= v.size()) v.resize(idx + 1);
  return v[idx];
}

Checker::BarrierEpoch& Checker::epoch_at(std::uint64_t e) {
  const auto idx = static_cast<std::size_t>(e - epoch_base_);
  while (idx >= epochs_.size()) {
    epochs_.push_back(BarrierEpoch{svm::VClock(nodes_), 0, 0});
  }
  return epochs_[idx];
}

void Checker::add(Kind k, Cycles t, NodeId n, svm::PageId page,
                  std::string detail) {
  ++violation_count_;
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back(Violation{k, t, n, page, std::move(detail)});
  }
}

void Checker::on_debug_write(svm::GlobalAddr a, const void* src,
                             std::uint64_t bytes) {
  const std::lock_guard<std::mutex> g(mu_);
  const std::uint32_t pb = space_->page_bytes();
  const auto* in = static_cast<const std::byte*>(src);
  std::uint64_t done = 0;
  while (done < bytes) {
    const svm::GlobalAddr at = a + done;
    const svm::PageId p = at / pb;
    const std::uint32_t off = static_cast<std::uint32_t>(at % pb);
    const std::uint64_t chunk = std::min<std::uint64_t>(bytes - done, pb - off);
    PageShadow& sh = shadow(p);
    std::memcpy(sh.data.data() + off, in + done, chunk);
    // Initialization data is visible to everyone; stamp every touched word.
    for (std::size_t w = off / kWordBytes;
         w <= (off + chunk - 1) / kWordBytes; ++w) {
      sh.meta[w] = WordMeta{0, kInitWriter};
    }
    done += chunk;
  }
}

void Checker::on_read(Cycles now, NodeId n, const svm::VClock& vc,
                      svm::GlobalAddr a, const std::byte* observed,
                      std::uint64_t bytes) {
  const std::lock_guard<std::mutex> g(mu_);
  if (bytes == 0) return;
  const std::uint32_t pb = space_->page_bytes();
  const svm::PageId p = a / pb;
  PageShadow& sh = shadow(p);
  const svm::GlobalAddr end = a + bytes;
  for (svm::GlobalAddr w = a / kWordBytes; w <= (end - 1) / kWordBytes; ++w) {
    const svm::GlobalAddr wbase = w * kWordBytes;
    const WordMeta& m = sh.meta[(wbase % pb) / kWordBytes];
    if (!visible(n, vc, m)) {
      // The latest write of this word is unordered with this read under
      // happens-before: an intentional application race. Any value is
      // admissible, so the oracle abstains.
      ++racy_words_skipped_;
      continue;
    }
    ++checked_words_;
    const svm::GlobalAddr lo = std::max(a, wbase);
    const svm::GlobalAddr hi = std::min<svm::GlobalAddr>(end, wbase + kWordBytes);
    const std::byte* got = observed + (lo - a);
    const std::byte* want = sh.data.data() + (lo % pb);
    if (std::memcmp(got, want, hi - lo) != 0) {
      add(Kind::kStaleRead, now, n, p,
          fmt("addr=0x%llx word-writer=%d interval=%u reader-vc=%s got!=want "
              "(first byte 0x%02x vs 0x%02x)",
              static_cast<unsigned long long>(wbase), int{m.writer},
              unsigned{m.interval}, vc.to_string().c_str(),
              unsigned(got[0]), unsigned(want[0])));
    }
  }
}

void Checker::on_write(Cycles now, NodeId n, const svm::VClock& vc,
                       svm::GlobalAddr a, const std::byte* data,
                       std::uint64_t bytes) {
  const std::lock_guard<std::mutex> g(mu_);
  if (bytes == 0) return;
  const std::uint32_t pb = space_->page_bytes();
  const svm::PageId p = a / pb;
  PageShadow& sh = shadow(p);
  const svm::GlobalAddr end = a + bytes;
  for (svm::GlobalAddr w = a / kWordBytes; w <= (end - 1) / kWordBytes; ++w) {
    const svm::GlobalAddr wbase = w * kWordBytes;
    WordMeta& m = sh.meta[(wbase % pb) / kWordBytes];
    // Two writes to the same word that are unordered under happens-before
    // conflict: diffs are word-grained, so the protocol may merge them in
    // either order (a data race even under release consistency).
    if (m.writer != kInitWriter && m.writer != n &&
        !vc.covers(m.writer, m.interval)) {
      add(Kind::kRacyWrite, now, n, p,
          fmt("addr=0x%llx prior-writer=%d interval=%u writer-vc=%s",
              static_cast<unsigned long long>(wbase), int{m.writer},
              unsigned{m.interval}, vc.to_string().c_str()));
    }
    m.interval = open_interval_[static_cast<std::size_t>(n)];
    m.writer = static_cast<std::int16_t>(n);
    ++words_written_;
  }
  std::memcpy(sh.data.data() + (a % pb), data, bytes);
}

void Checker::on_page_state(Cycles now, NodeId n, svm::PageId page,
                            svm::PageState from, svm::PageState to,
                            PageEvent ev) {
  const std::lock_guard<std::mutex> g(mu_);
  using svm::PageState;
  ++transitions_;
  bool ok = false;
  switch (ev) {
    case PageEvent::kHomeMap:
      ok = from == PageState::kUnmapped && to == PageState::kReadOnly;
      break;
    case PageEvent::kFetchInstall:
      ok = (from == PageState::kUnmapped || from == PageState::kInvalid) &&
           to == PageState::kReadOnly;
      break;
    case PageEvent::kFetchInstallStale:
      ok = (from == PageState::kUnmapped || from == PageState::kInvalid) &&
           to == PageState::kInvalid;
      break;
    case PageEvent::kArmWrite:
      ok = from == PageState::kReadOnly && to == PageState::kReadWrite;
      break;
    case PageEvent::kFlushDemote:
      ok = from == PageState::kReadWrite && to == PageState::kReadOnly;
      break;
    case PageEvent::kInvalidate:
      ok = from == PageState::kReadOnly && to == PageState::kInvalid;
      break;
  }
  if (!ok) {
    add(Kind::kBadTransition, now, n, page,
        fmt("%s: %.*s -> %.*s",
            std::string(to_string(ev)).c_str(),
            int(state_name(from).size()), state_name(from).data(),
            int(state_name(to).size()), state_name(to).data()));
  }
  if (ev == PageEvent::kFetchInstall || ev == PageEvent::kFetchInstallStale) {
    NodePage& np = node_page(n, page);
    if (ev == PageEvent::kFetchInstall && np.fetching &&
        np.fetch_notices > 0) {
      // A write notice arrived while the fetch was in flight; the reply may
      // predate the noticed write, so installing read-only would let stale
      // data be read as valid (the classic fetch/invalidate race).
      add(Kind::kResurrection, now, n, page,
          fmt("fetch installed read-only across %u invalidation notice(s)",
              unsigned{np.fetch_notices}));
    }
    np.fetching = false;
    np.fetch_notices = 0;
  }
}

void Checker::on_fetch_issue(NodeId n, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  NodePage& np = node_page(n, page);
  np.fetching = true;
  np.fetch_notices = 0;
}

void Checker::on_inval_notice(NodeId n, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  NodePage& np = node_page(n, page);
  ++np.notices;
  if (np.fetching) ++np.fetch_notices;
}

void Checker::on_diff_create(NodeId writer, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  ++diffs_[{writer, page}].created;
}

void Checker::on_diff_apply(Cycles now, NodeId writer, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  LifeTrack& t = diffs_[{writer, page}];
  ++t.applied;
  if (t.applied > t.created) {
    add(Kind::kDiffUnmatched, now, writer, page,
        fmt("applied=%llu > created=%llu",
            static_cast<unsigned long long>(t.applied),
            static_cast<unsigned long long>(t.created)));
  }
}

void Checker::on_update_emit(NodeId writer, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  ++updates_[{writer, page}].created;
}

void Checker::on_update_apply(Cycles now, NodeId writer, svm::PageId page) {
  const std::lock_guard<std::mutex> g(mu_);
  LifeTrack& t = updates_[{writer, page}];
  ++t.applied;
  if (t.applied > t.created) {
    add(Kind::kDiffUnmatched, now, writer, page,
        fmt("update applied=%llu > emitted=%llu",
            static_cast<unsigned long long>(t.applied),
            static_cast<unsigned long long>(t.created)));
  }
}

void Checker::on_flush_cut(NodeId n) {
  const std::lock_guard<std::mutex> g(mu_);
  ++open_interval_[static_cast<std::size_t>(n)];
  cut_pending_[static_cast<std::size_t>(n)] = true;
}

void Checker::on_vclock(Cycles now, NodeId n, const svm::VClock& vc) {
  const std::lock_guard<std::mutex> g(mu_);
  svm::VClock& last = last_vc_[static_cast<std::size_t>(n)];
  if (!vc.covers(last)) {
    add(Kind::kClockRegression, now, n, 0,
        fmt("clock went backwards: %s then %s", last.to_string().c_str(),
            vc.to_string().c_str()));
  }
  // A node's own component counts *closed* intervals; the checker's cursor
  // (bumped at the flush cut) is exactly one ahead — except in the window
  // between the cut and the advance that closes it (the flush's async
  // propagation), where another processor of the node may merge at an
  // acquire and the own component legitimately lags by two.
  const std::uint32_t open = open_interval_[static_cast<std::size_t>(n)];
  const bool closed = vc.get(n) == open - 1;
  const bool mid_flush =
      cut_pending_[static_cast<std::size_t>(n)] && vc.get(n) == open - 2;
  if (closed) cut_pending_[static_cast<std::size_t>(n)] = false;
  if (!closed && !mid_flush) {
    add(Kind::kClockRegression, now, n, 0,
        fmt("own component %u but open interval %u", unsigned{vc.get(n)},
            unsigned{open}));
  }
  last = vc;
}

void Checker::on_lock_release(Cycles now, NodeId n, int lock,
                              const svm::VClock& vc) {
  const std::lock_guard<std::mutex> g(mu_);
  (void)now;
  (void)n;
  auto [it, inserted] = last_release_.try_emplace(lock, vc);
  if (!inserted) it->second = vc;
}

void Checker::on_lock_acquired(Cycles now, NodeId n, int lock,
                               const svm::VClock& vc) {
  const std::lock_guard<std::mutex> g(mu_);
  auto it = last_release_.find(lock);
  if (it != last_release_.end() && !vc.covers(it->second)) {
    add(Kind::kLockHandoff, now, n, 0,
        fmt("lock %d acquired with vc=%s not covering last release vc=%s",
            lock, vc.to_string().c_str(), it->second.to_string().c_str()));
  }
}

void Checker::on_barrier_flush(Cycles now, NodeId n, const svm::VClock& vc) {
  const std::lock_guard<std::mutex> g(mu_);
  (void)now;
  const std::uint64_t e = arrive_count_[static_cast<std::size_t>(n)]++;
  BarrierEpoch& ep = epoch_at(e);
  ep.merged.merge(vc);
  ++ep.arrived;
}

void Checker::on_barrier_exit(Cycles now, NodeId n, const svm::VClock& vc) {
  const std::lock_guard<std::mutex> g(mu_);
  const std::uint64_t e = exit_count_[static_cast<std::size_t>(n)]++;
  BarrierEpoch& ep = epoch_at(e);
  ++ep.exited;
  if (ep.arrived < nodes_) {
    add(Kind::kBarrierHandoff, now, n, 0,
        fmt("epoch %llu exited with only %d/%d nodes arrived",
            static_cast<unsigned long long>(e), ep.arrived, nodes_));
  } else if (!vc.covers(ep.merged)) {
    add(Kind::kBarrierHandoff, now, n, 0,
        fmt("epoch %llu exit vc=%s does not cover merged vc=%s",
            static_cast<unsigned long long>(e), vc.to_string().c_str(),
            ep.merged.to_string().c_str()));
  }
  while (!epochs_.empty() && epochs_.front().exited >= nodes_) {
    epochs_.pop_front();
    ++epoch_base_;
  }
}

void Checker::finalize(Cycles end_time) {
  const std::lock_guard<std::mutex> g(mu_);
  if (finalized_) return;
  finalized_ = true;
  for (const auto& [key, t] : diffs_) {
    if (t.applied < t.created) {
      add(Kind::kDiffLost, end_time, key.first, key.second,
          fmt("created=%llu applied=%llu",
              static_cast<unsigned long long>(t.created),
              static_cast<unsigned long long>(t.applied)));
    }
  }
  for (const auto& [key, t] : updates_) {
    if (t.applied < t.created) {
      add(Kind::kUpdateLost, end_time, key.first, key.second,
          fmt("emitted=%llu applied=%llu",
              static_cast<unsigned long long>(t.created),
              static_cast<unsigned long long>(t.applied)));
    }
  }
  // Every word whose writing interval has been flushed must match the
  // authoritative home copy (words from still-open intervals are only
  // guaranteed locally and are skipped).
  const std::uint32_t pb = space_->page_bytes();
  for (std::size_t pi = 0; pi < pages_.size(); ++pi) {
    const auto& sh = pages_[pi];
    if (!sh) continue;
    const auto page = static_cast<svm::PageId>(pi);
    if (page >= space_->page_count()) continue;
    const NodeId home = space_->home_of(page);
    if (home < 0 || !space_->has_copy(home, page)) continue;
    const svm::PageCopy& hc = space_->copy(home, page);
    if (hc.data.size() != pb) continue;
    std::uint64_t bad_words = 0;
    svm::GlobalAddr first_bad = 0;
    for (std::size_t w = 0; w < sh->meta.size(); ++w) {
      const WordMeta& m = sh->meta[w];
      if (m.writer != kInitWriter &&
          m.interval >
              last_vc_[static_cast<std::size_t>(m.writer)].get(m.writer)) {
        continue;  // interval still open; home copy need not have it yet
      }
      if (std::memcmp(hc.data.data() + w * kWordBytes,
                      sh->data.data() + w * kWordBytes, kWordBytes) != 0) {
        if (bad_words == 0) first_bad = page * pb + w * kWordBytes;
        ++bad_words;
      }
    }
    if (bad_words > 0) {
      add(Kind::kFinalDivergence, end_time, home, page,
          fmt("home copy differs from shadow in %llu word(s), first at "
              "addr=0x%llx",
              static_cast<unsigned long long>(bad_words),
              static_cast<unsigned long long>(first_bad)));
    }
  }
}

void Checker::report(std::string_view run_name, std::FILE* out) const {
  std::fprintf(out,
               "svmsim-check: %llu violation(s) in run '%.*s'"
               " (mutation=%.*s, checked-words=%llu, racy-skipped=%llu,"
               " transitions=%llu)\n",
               static_cast<unsigned long long>(violation_count_),
               int(run_name.size()), run_name.data(),
               int(to_string(mutation_).size()), to_string(mutation_).data(),
               static_cast<unsigned long long>(checked_words_),
               static_cast<unsigned long long>(racy_words_skipped_),
               static_cast<unsigned long long>(transitions_));
  for (const Violation& v : violations_) {
    std::fprintf(out, "  [%.*s] t=%llu node=%d page=%llu %s\n",
                 int(to_string(v.kind).size()), to_string(v.kind).data(),
                 static_cast<unsigned long long>(v.time), v.node,
                 static_cast<unsigned long long>(v.page), v.detail.c_str());
  }
  if (violation_count_ > violations_.size()) {
    std::fprintf(out, "  ... %llu more not recorded (cap %zu)\n",
                 static_cast<unsigned long long>(violation_count_ -
                                                 violations_.size()),
                 kMaxRecorded);
  }
}

}  // namespace svmsim::check
