# Empty dependencies file for test_page_directory.
# This may be replaced when dependencies are built.
