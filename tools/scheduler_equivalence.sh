#!/usr/bin/env bash
# Prove the two EventQueue backends are observably identical: build a second
# tree with the *other* SVMSIM_SCHEDULER setting, run sweep_dump (one small
# sweep per protocol, printing every counter) in both, and diff the output
# byte-for-byte. Run by ctest as the scheduler_equivalence test.
#
#   tools/scheduler_equivalence.sh <build_dir> [scheduler] [sanitize]
#
#   build_dir   an already-built tree containing bench/sweep_dump
#   scheduler   that tree's SVMSIM_SCHEDULER value (default: tiered)
#   sanitize    that tree's SVMSIM_SANITIZE value, propagated to the second
#               build so the check also runs under ASan/UBSan (default: none)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: scheduler_equivalence.sh <build_dir> [scheduler] [sanitize]}"
scheduler="${2:-tiered}"
sanitize="${3:-}"

if [ "$scheduler" = "heap" ]; then
  other="tiered"
else
  other="heap"
fi

alt_dir="$build_dir/scheduler-equiv"
cmake -S "$repo_root" -B "$alt_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_SCHEDULER="$other" \
  -DSVMSIM_SANITIZE="$sanitize" > "$alt_dir.cmake.log" 2>&1 \
  || { cat "$alt_dir.cmake.log"; exit 1; }
cmake --build "$alt_dir" --target sweep_dump -j "$(nproc)" \
  > "$alt_dir.build.log" 2>&1 || { cat "$alt_dir.build.log"; exit 1; }

"$build_dir/bench/sweep_dump" > "$alt_dir/dump-$scheduler.txt"
"$alt_dir/bench/sweep_dump" > "$alt_dir/dump-$other.txt"

if ! diff -u "$alt_dir/dump-$scheduler.txt" "$alt_dir/dump-$other.txt"; then
  echo "scheduler_equivalence: $scheduler and $other builds DIVERGE" >&2
  exit 1
fi
echo "scheduler_equivalence: $scheduler == $other ($(wc -l < "$alt_dir/dump-$scheduler.txt") lines identical)"
