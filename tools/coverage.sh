#!/usr/bin/env bash
# Line-coverage gate for the SVM protocol layer: build with
# -DSVMSIM_COVERAGE=ON, run the tier-1 suite (the checker seed matrix
# included; the slow nested-build equivalence tests excluded — they measure
# other build trees, not this one), then run gcovr over src/svm/ and fail
# below the floor. Run by the CI coverage job; usable locally whenever gcovr
# is installed.
#
#   tools/coverage.sh [build_dir] [floor_pct] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-coverage}"
floor="${2:-85}"  # measured ~96% at introduction; floor leaves headroom

command -v gcovr > /dev/null || {
  echo "coverage.sh: gcovr not found (apt-get install gcovr)" >&2
  exit 2
}

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_COVERAGE=ON
cmake --build "$build_dir" -j "$(nproc)"

# The -O0 instrumented build defeats the tail calls behind coroutine
# symmetric transfer (same story as the sanitizer build — see
# tools/sanitize.sh), so long synchronous co_await chains consume real
# stack. Raise the limit rather than shrinking the tests.
ulimit -s unlimited 2>/dev/null || ulimit -s 1048576 || true

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
  -E 'equivalence|traced_sweep|checked_sweep'

# Protocol-layer floor. --fail-under-line makes gcovr exit 2 below it; the
# txt report goes to stdout so CI can publish it.
gcovr --root "$repo_root" "$build_dir" \
  --filter 'src/svm/' \
  --exclude-throw-branches \
  --print-summary \
  --fail-under-line "$floor" \
  --txt "$build_dir/coverage-svm.txt"
cat "$build_dir/coverage-svm.txt"
