// Automatic Update Release Consistency (AURC).
//
// Instead of twins and diffs, a snooping device on the memory bus captures
// writes to shared pages whose home is remote and streams them to the home
// through the NI ("automatic update" hardware, as on SHRIMP). Consecutive
// writes to adjacent addresses coalesce into one update packet; scattered
// writes produce many small packets — which is why AURC is far more
// sensitive to NI occupancy than HLRC (Figure 12). Updates and the release
// marker are handled entirely by the NI at the home: no host overhead, no
// interrupts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "svm/hlrc.hpp"

namespace svmsim::svm {

class AurcAgent final : public SvmAgent {
 public:
  using SvmAgent::SvmAgent;

  void install() override;

 protected:
  engine::Task<void> arm_write(Processor& p, PageId page,
                               PageCopy& c) override;
  void on_store(Processor& p, PageId page, PageCopy& c, std::uint32_t offset,
                std::uint32_t len) override;
  engine::Task<void> propagate_dirty(Processor& p,
                                     const std::vector<PageId>& pages) override;
  engine::Task<void> flush_page_for_invalidation(Processor& p, PageId page,
                                                 PageCopy& c) override;
  void handle_direct(net::Message&& m) override;

 private:
  /// An open coalescing run of the automatic-update hardware.
  struct Run {
    std::uint32_t start = 0;
    std::uint32_t end = 0;
    bool active = false;
  };

  /// Emit the run as a kUpdate message (hardware: no host overhead).
  void emit_run(PageId page, Run& run);
  /// Flush open runs (optionally only for `page`) and send release markers
  /// to every home touched since the last flush, waiting for their acks.
  engine::Task<void> sync_homes(Processor& p,
                                const std::unordered_set<NodeId>& homes);
  void apply_update(const net::Message& m);

  std::unordered_map<PageId, Run> runs_;
  std::unordered_set<NodeId> homes_touched_;
};

}  // namespace svmsim::svm
