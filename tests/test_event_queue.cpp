#include "engine/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace svmsim::engine {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycles fired_at = 0;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { fired_at = q.now(); });
  });
  q.run_until_idle();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(10, chain);
  };
  q.schedule_in(10, chain);
  q.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(q.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilInclusiveOfDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(50, [&] { ++fired; });
  EXPECT_TRUE(q.run_until(50));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CountsFiredEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(static_cast<Cycles>(i), [] {});
  q.run_until_idle();
  EXPECT_EQ(q.events_fired(), 7u);
}

TEST(EventQueue, ZeroDelayEventRunsAfterCurrentEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] {
    order.push_back(1);
    q.schedule_in(0, [&] { order.push_back(2); });
    order.push_back(3);
  });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, ScheduleNowMatchesScheduleInZero) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] {
    q.schedule_in(0, [&] { order.push_back(1); });
    q.schedule_now([&] { order.push_back(2); });
    q.schedule_at(10, [&] { order.push_back(3); });
  });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10u);
}

// Regression: while step() is mid-fire at tick T, a mix of already-queued
// time-T events and same-tick inserts made *during* the in-flight event must
// still fire in global insertion order — the same-tick fast lane may not
// jump ahead of previously queued work, and pre-queued events may not
// starve the new inserts.
TEST(EventQueue, SameTickInsertionOrderDuringInFlightStep) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(7, [&] {
    order.push_back(0);
    q.schedule_in(0, [&] { order.push_back(3); });
    q.schedule_at(7, [&] {
      order.push_back(4);
      q.schedule_now([&] { order.push_back(6); });
    });
  });
  q.schedule_at(7, [&] { order.push_back(1); });
  q.schedule_at(7, [&] {
    order.push_back(2);
    q.schedule_now([&] { order.push_back(5); });
  });
  q.schedule_at(9, [&] { order.push_back(7); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(q.events_fired(), 8u);
}

#ifndef NDEBUG
TEST(EventQueueDeathTest, SchedulingInThePastAsserts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.schedule_at(10, [&] { q.schedule_at(5, [] {}); });
        q.run_until_idle();
      },
      "cannot schedule an event in the past");
}
#endif

}  // namespace
}  // namespace svmsim::engine
