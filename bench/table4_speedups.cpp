// Table 4: best, achievable and ideal speedups for each application.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  SimConfig best_cfg = bench::base_config();
  best_cfg.comm = CommParams::best();
  std::vector<harness::SweepPoint> points;
  for (const auto& app : opt.app_names) {
    points.push_back({app, best_cfg, 0});
    points.push_back({app, bench::base_config(), 1});
  }
  auto runs = sweep.run_points(points, opt.pool());

  harness::Table t({"application", "best", "achievable", "ideal"});
  for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
    const auto& best = runs[2 * i];
    const auto& ach = runs[2 * i + 1];
    t.add_row({opt.app_names[i], harness::fmt(best.speedup()),
               harness::fmt(ach.speedup()), harness::fmt(ach.ideal_speedup())});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf("== Table 4: best / achievable / ideal speedups ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "table4");
  return 0;
}
