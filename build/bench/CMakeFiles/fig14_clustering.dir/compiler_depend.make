# Empty compiler generated dependencies file for fig14_clustering.
# This may be replaced when dependencies are built.
