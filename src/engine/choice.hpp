// Choice-point hook: the single interface through which every source of
// schedule nondeterminism the engine models is exposed to an external
// driver. Three kinds of decision funnel through it:
//
//  * Wire-band deliveries (WireArbiter::choose_wire, inherited): which of
//    the co-pending delivery channels' head packets crosses the wire next.
//  * Interrupt victim selection (choose_victim): which processor services a
//    message interrupt under the round-robin and polling schemes (the
//    fixed-processor scheme has exactly one legal victim, so it is never
//    consulted).
//  * Poll slip (choose_poll_slip): under the polling scheme, whether a
//    handler dispatch lands on the next poll tick or slips one interval —
//    modeling the race between a message arrival and an in-flight poll.
//
// Every virtual defaults to "take the engine's deterministic default", so a
// hook that overrides nothing observes the exact baseline schedule. The
// schedule explorer (src/explore/) is the only client; normal simulations
// carry a null hook and pay one pointer test per decision site. See
// docs/exploration.md for the full choice-point contract.
#pragma once

#include <cstddef>

#include "engine/event_queue.hpp"
#include "engine/types.hpp"

namespace svmsim::check {
class Checker;
}  // namespace svmsim::check

namespace svmsim::engine {

class ChoiceHook : public WireArbiter {
 public:
  /// Called once per run after the machine is wired, with the run's
  /// consistency checker (nullptr when checking is compiled out or off).
  /// Gives happens-before-based pruners access to the checker's clocks.
  virtual void on_attach(check::Checker* checker) { (void)checker; }

  /// Wire-band decision (see WireArbiter). Default: the band's own order.
  std::size_t choose_wire(const WireChoice* alts, std::size_t n) override {
    (void)alts;
    (void)n;
    return 0;
  }

  /// Which of node `node`'s `nprocs` (>= 2) processors services the next
  /// message interrupt; `preferred` is the engine's round-robin default.
  /// Must return a value in [0, nprocs).
  virtual int choose_victim(NodeId node, int nprocs, int preferred) {
    (void)node;
    (void)nprocs;
    return preferred;
  }

  /// Polling scheme only: return true to slip this dispatch one poll
  /// interval past the default tick.
  virtual bool choose_poll_slip(NodeId node) {
    (void)node;
    return false;
  }
};

}  // namespace svmsim::engine
