// The simulated cluster: nodes x processors, network, shared address space
// and one protocol agent per node. This is the library's main entry type.
//
// PDES mode (cfg.par_cores > 1): the nodes are split into contiguous
// partitions (engine/partition.hpp), each with its own Simulator, protocol
// pools and frame registry. Same-node and same-partition traffic schedules
// directly; cross-partition packets travel over timestamped SPSC channels
// and are synchronized by the conservative window protocol, with lookahead
// equal to the crossbar's minimum wire latency. The parallel run produces
// byte-identical Stats to the serial one (docs/engine.md, "PDES mode").
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/node.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "engine/partition.hpp"
#include "engine/ring_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "net/nic.hpp"
#include "svm/address_space.hpp"
#include "svm/aurc.hpp"
#include "svm/hlrc.hpp"
#include "svm/pools.hpp"
#include "topo/topology.hpp"

namespace svmsim::trace {
class Tracer;
}  // namespace svmsim::trace

namespace svmsim::check {
class Checker;
}  // namespace svmsim::check

namespace svmsim {

class Machine {
 public:
  /// Lock-id pool available to applications (ids are taken modulo this).
  static constexpr int kMaxLocks = 8192;

  explicit Machine(const SimConfig& cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  /// Partition 0's simulator — the only one in serial mode. Global-time
  /// queries against a multi-partition machine should use the clock of the
  /// partition that owns the object in question (e.g. Processor::sim()).
  [[nodiscard]] engine::Simulator& sim() noexcept { return sims_.front(); }
  [[nodiscard]] Stats& stats() noexcept { return stats_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] svm::AddressSpace& space() noexcept { return space_; }

  /// The run's event recorder, or nullptr when cfg.trace is disabled (or
  /// tracing is compiled out). Also reachable as sim().tracer().
  [[nodiscard]] trace::Tracer* tracer() noexcept { return tracer_.get(); }

  /// The run's consistency checker, or nullptr when cfg.check is disabled
  /// (or checking is compiled out). Also reachable as sim().checker().
  [[nodiscard]] check::Checker* checker() noexcept { return checker_.get(); }

  [[nodiscard]] int total_procs() const noexcept {
    return cfg_.comm.total_procs;
  }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] NodeId node_of(ProcId p) const noexcept {
    return p / cfg_.comm.procs_per_node;
  }

  [[nodiscard]] Node& node(NodeId n) { return *nodes_.at(n); }
  [[nodiscard]] Processor& proc(ProcId p) {
    return nodes_.at(node_of(p))->proc(p % cfg_.comm.procs_per_node);
  }
  [[nodiscard]] svm::SvmAgent& agent(NodeId n) { return *agents_.at(n); }
  [[nodiscard]] svm::SvmAgent& agent_of(ProcId p) {
    return agent(node_of(p));
  }

  // ---- PDES mode ----

  /// Number of simulation partitions (1 in serial mode).
  [[nodiscard]] int partitions() const noexcept { return parts_; }
  [[nodiscard]] int partition_of_node(NodeId n) const noexcept {
    return engine::partition_of(n, cfg_.comm.node_count(), parts_);
  }
  [[nodiscard]] engine::Simulator& partition_sim(int p) { return sims_.at(p); }
  /// The registry a spawn targeting partition p's objects must land in
  /// (install with engine::ScopedFrameRegistry around the spawn).
  [[nodiscard]] engine::FrameRegistry& partition_registry(int p) {
    return registries_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] std::uint64_t partition_events(int p) {
    return sims_.at(p).queue().events_fired();
  }
  /// Events fired across all partitions.
  [[nodiscard]] std::uint64_t events_fired();
  /// High-water mark of simultaneously outstanding pooled clock bodies
  /// (full clocks + deltas, summed over partitions): the sparse-transport
  /// footprint figure perf_selfcheck records per scale point.
  [[nodiscard]] std::uint64_t peak_clock_pool() const noexcept {
    std::uint64_t peak = 0;
    for (const svm::ProtocolPools& p : pools_) {
      peak += p.vclocks.peak_outstanding() +
              p.clock_deltas.peak_outstanding();
    }
    return peak;
  }
  /// Conservative windows executed by run_parallel (sync-overhead figure).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

  /// Run all partitions under the windowed protocol until globally idle or
  /// `max_cycles`; returns true if the queues drained (mirrors
  /// EventQueue::run_until, which it falls back to when partitions() == 1).
  bool run_parallel(Cycles max_cycles);

  /// Allocate shared memory (application setup).
  svm::GlobalAddr alloc(std::uint64_t bytes, svm::Distribution d) {
    return space_.alloc(bytes, d);
  }

  /// Out-of-band data access for initialization/validation.
  void debug_read(svm::GlobalAddr a, void* dst, std::uint64_t bytes) {
    space_.debug_read(a, dst, bytes);
  }
  /// Out-of-band write; mirrored into the checker's shadow (initialization
  /// data is happens-before everything), hence out of line.
  void debug_write(svm::GlobalAddr a, const void* src, std::uint64_t bytes);

  /// The installed topology backend, or nullptr when cfg.topology is legacy.
  [[nodiscard]] topo::Topology* topology() noexcept { return topo_.get(); }

  /// Copy per-link occupancy out of the topology into stats().links() (a
  /// no-op for legacy/crossbar, which model no links). Called by the runner
  /// after the run; safe to call repeatedly.
  void finalize_stats();

 private:
  /// Where a node of partition p accumulates machine-wide counters: the
  /// global Stats directly in serial mode (bit-for-bit the pre-PDES
  /// behavior), a per-partition staging Counters otherwise — merged by
  /// run_parallel, which keeps the hot increments unsynchronized.
  [[nodiscard]] Counters& partition_counters(int p) noexcept {
    return parts_ == 1 ? stats_.counters()
                       : part_counters_[static_cast<std::size_t>(p)];
  }

  SimConfig cfg_;
  int parts_;
  // Deques: Simulator/FrameRegistry/ProtocolPools addresses must be stable
  // (everything downstream keeps pointers) and none of them need be movable.
  std::deque<engine::Simulator> sims_;        // [partition]
  std::deque<engine::FrameRegistry> registries_;  // [partition]
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<check::Checker> checker_;
  Stats stats_;
  std::vector<Counters> part_counters_;  // staging; meaningful when parts_ > 1
  std::deque<svm::ProtocolPools> pools_;  // [partition]
  svm::AddressSpace space_;
  svm::SharedState shared_;
  /// Topology backend (null in legacy mode). Declared before network_ so
  /// the Network's raw topology pointer outlives the Network; link Resources
  /// reference partition simulators, so this also sits after sims_.
  std::unique_ptr<topo::Topology> topo_;
  net::Network network_;
  /// channels_[src partition][dst partition]; off-diagonal entries carry
  /// cross-partition packet deliveries (empty in serial mode).
  std::vector<std::vector<engine::TimedChannel<net::Network::Action>>>
      channels_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<svm::SvmAgent>> agents_;
  std::uint64_t windows_ = 0;
};

}  // namespace svmsim
