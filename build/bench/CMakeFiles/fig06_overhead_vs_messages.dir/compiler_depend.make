# Empty compiler generated dependencies file for fig06_overhead_vs_messages.
# This may be replaced when dependencies are built.
