// A lazy coroutine task type used for every simulated process.
//
// Simulated processors, protocol handlers and NI firmware are all written as
// coroutines returning Task<T>. Awaiting a Task starts it; when the callee
// finishes it transfers control back to the awaiter symmetrically, so deep
// protocol call chains cost no stack and no event-queue traffic. Only real
// simulated waiting (delays, resources, message arrival) goes through the
// event queue.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace svmsim::engine {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this task completes
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// Lazy task: does nothing until awaited (or detached via spawn()).
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;  // start the child task
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

  // spawn() needs to adopt the handle and manage the frame itself.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

namespace detail {

/// Self-destroying top-level coroutine used by spawn().
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() {
      // A simulated process leaked an exception: that is a bug in the
      // simulator or an application kernel, never a recoverable condition.
      std::terminate();
    }
  };
};

inline Detached drive(Task<void> task) { co_await std::move(task); }

}  // namespace detail

/// Start `task` as an independent simulated process. The coroutine frame
/// frees itself on completion.
inline void spawn(Task<void> task) { detail::drive(std::move(task)); }

}  // namespace svmsim::engine
