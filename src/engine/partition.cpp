#include "engine/partition.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace svmsim::engine {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// A sense-reversing combining barrier with two wait strategies: the sense
/// is a generation counter, and the crossing carries the window protocol's
/// two min-reductions — each arriver folds its (next, send) bounds into a
/// pair of atomic accumulators on the way in, so opening a window costs one
/// synchronization point instead of the previous sync + quiesce pair.
///
/// Wait strategy: the simulation crosses one barrier per window, and a
/// futex-parked barrier costs microseconds per sync — more than the event
/// work a small window holds. When every partition thread can own a
/// hardware thread the barrier spins (~100ns per 4-thread sync); when the
/// machine is oversubscribed it parks on a condition variable instead,
/// because a spin loop that must be scheduled out to let the last arriver
/// in turns every sync into a storm of yields.
///
/// Reuse safety (single instance): the completion's writes — including the
/// accumulator resets — are sequenced before the generation bump, and a
/// thread can only re-arrive (re-fold, re-increment) after observing that
/// bump, so generation g+1's folds never race generation g's reset. A
/// thread still spinning in generation g cannot be overtaken either: the
/// next completion needs all n arrivals, including the spinner's own, which
/// it can only make after leaving g.
///
/// Ordering (spin path): the relaxed CAS folds are sequenced before the
/// arrival's fetch_add(acq_rel), which joins the counter's release
/// sequence, so the last arriver's increment synchronizes with every
/// earlier one — the completion reads all folds and pre-barrier writes. Its
/// own writes are released by the generation bump and acquired by each
/// waiter's spin load. (Blocking path: the mutex orders everything; the
/// folds are sequenced before each thread's critical section.)
class CombiningBarrier {
 public:
  CombiningBarrier(int n, bool spin) noexcept : n_(n), spin_(spin) {}

  /// Fold (next, send) into the crossing's min-reduction and block until
  /// all n threads arrive; the last to arrive runs
  /// completion(min(next), min(send)) exclusively before releasing the
  /// others (std::barrier's completion contract).
  template <typename F>
  void arrive_and_wait(Cycles next, Cycles send, F&& completion) noexcept {
    fold(next_min_, next);
    fold(send_min_, send);
    if (spin_) {
      const std::uint64_t gen = gen_.load(std::memory_order_acquire);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        finish(completion);
        gen_.store(gen + 1, std::memory_order_release);
      } else {
        while (gen_.load(std::memory_order_acquire) == gen) cpu_relax();
      }
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t gen = gen_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_relaxed) + 1 == n_) {
      finish(completion);
      gen_.store(gen + 1, std::memory_order_relaxed);
      lk.unlock();
      cv_.notify_all();
    } else {
      cv_.wait(lk, [this, gen] {
        return gen_.load(std::memory_order_relaxed) != gen;
      });
    }
  }

 private:
  static void fold(std::atomic<Cycles>& acc, Cycles v) noexcept {
    Cycles cur = acc.load(std::memory_order_relaxed);
    while (v < cur &&
           !acc.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  template <typename F>
  void finish(F& completion) noexcept {
    completion(next_min_.load(std::memory_order_relaxed),
               send_min_.load(std::memory_order_relaxed));
    next_min_.store(kNever, std::memory_order_relaxed);
    send_min_.store(kNever, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
  }

  const int n_;
  const bool spin_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<Cycles> next_min_{kNever};
  std::atomic<Cycles> send_min_{kNever};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

WindowDriver::WindowDriver(std::vector<EventQueue*> queues, Cycles lookahead,
                           Hooks hooks, WindowPolicy policy)
    : queues_(std::move(queues)),
      lookahead_(lookahead),
      hooks_(std::move(hooks)),
      policy_(policy) {
  assert(!queues_.empty());
  assert(lookahead_ >= 1 && "conservative windows need positive lookahead");
}

bool WindowDriver::run(Cycles max_cycles) {
  const int parts = static_cast<int>(queues_.size());
  stop_ = false;
  drained_ = false;
  windows_ = 0;
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  std::mutex error_mu;

  // Crossing completion: runs on exactly one thread between "everyone folded
  // its bounds" and "everyone observes the new window"; the barrier
  // sequences its writes against both sides.
  auto open_window = [this, max_cycles](Cycles next_min,
                                        Cycles send_min) noexcept {
    if (failed_.load(std::memory_order_relaxed)) {
      stop_ = true;
      return;
    }
    if (next_min == kNever) {
      stop_ = true;
      drained_ = true;  // nothing pending and nothing in flight anywhere
      return;
    }
    if (next_min > max_cycles) {
      stop_ = true;  // next event beyond the horizon: deadline, not drained
      return;
    }
    // Adaptive: nothing can cross a partition boundary before
    // min(send) + L, so the window stretches that far — quiescent phases
    // (send_min == kNever) collapse into one window to the horizon. A
    // published send bound may sit below next_min (a NIC's launch bound
    // goes stale while its dequeue event is still queued), but no send can
    // actually predate the head-of-queue event, so clamping to next_min
    // keeps the window sound, guarantees progress, and makes the fixed
    // policy's [T, T + L) the conservative floor.
    const Cycles base = policy_ == WindowPolicy::kFixed
                            ? next_min
                            : std::max(next_min, send_min);
    const Cycles end =
        base >= kNever - lookahead_ ? kNever : base + lookahead_;
    // Never fire past max_cycles (matches serial run_until semantics).
    window_end_ = end - 1 < max_cycles ? end : max_cycles + 1;
    ++windows_;
  };
  // Spin only when every partition worker can plausibly own a hardware
  // thread; a concurrent --jobs pool shares the same budget (bench_common
  // divides the default job count by par_cores for exactly this reason).
  const bool spin =
      std::thread::hardware_concurrency() >= static_cast<unsigned>(parts);
  CombiningBarrier barrier(parts, spin);

  auto capture = [&](std::exception_ptr e) {
    const std::lock_guard<std::mutex> g(error_mu);
    if (!error_) error_ = std::move(e);
    failed_.store(true, std::memory_order_relaxed);
  };

  auto body = [&](int p) {
    if (hooks_.worker_begin) hooks_.worker_begin(p);
    bool dead = false;
    // Batches sealed before a previous run() stopped at its horizon are
    // still in flight; deliver them before the first publish so the first
    // crossing's bounds account for them. (No producer is active yet: every
    // open batch was sealed at the previous run's final publish.)
    if (hooks_.drain) {
      try {
        hooks_.drain(p);
      } catch (...) {
        capture(std::current_exception());
        dead = true;
      }
    }
    for (;;) {
      Cycles next = kNever;
      Cycles send = kNever;
      if (!dead) {
        try {
          Published pub;
          if (hooks_.publish) pub = hooks_.publish(p);
          next = std::min(queues_[p]->next_time(), pub.in_flight);
          // A just-sealed record is an event its consumer has not seen and
          // can itself trigger a send at its own timestamp, so in_flight
          // bounds the send reduction too.
          send = std::min(pub.next_send, pub.in_flight);
        } catch (...) {
          capture(std::current_exception());
          dead = true;
        }
      }
      if (dead) {
        next = kNever;
        send = kNever;
      }
      barrier.arrive_and_wait(next, send, open_window);
      if (stop_) break;
      if (!dead) {
        try {
          if (hooks_.drain) hooks_.drain(p);
          queues_[p]->run_until(window_end_ - 1);
        } catch (...) {
          capture(std::current_exception());
          dead = true;
        }
      }
    }
    if (hooks_.worker_end) hooks_.worker_end(p);
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(parts) - 1);
  for (int p = 1; p < parts; ++p) {
    workers.emplace_back(body, p);
  }
  body(0);
  for (std::thread& w : workers) w.join();

  if (error_) std::rethrow_exception(error_);
  return drained_;
}

}  // namespace svmsim::engine
