# Empty compiler generated dependencies file for fig10_interrupt_cost.
# This may be replaced when dependencies are built.
