# Empty dependencies file for test_multi_nic.
# This may be replaced when dependencies are built.
