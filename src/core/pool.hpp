// Freelist-backed object pools with intrusive reference counting — the
// allocation-free backbone of the protocol hot path.
//
// A simulation point performs the same few operations (page fetch, diff
// flush, lock handoff) millions of times; allocating the payload buffers,
// diff batches and trigger episodes fresh each time dominates wall time.
// ObjectPool<T> recycles them instead: an acquired object is handed out as a
// PoolRef<T> (a refcounted smart handle); when the last reference drops, the
// object is reset via T::recycle() — which must *keep* internal capacity —
// and pushed onto the pool's freelist. Steady state therefore performs zero
// heap traffic: `vector::assign` into a recycled buffer is a memcpy.
//
// Ownership rules (see docs/memory.md):
//  * A pool is single-threaded by default (one Machine per thread). The PDES
//    mode shares some pools across partition threads — message bodies travel
//    between partitions and drop their last reference on the receiving side —
//    so reference counts are always atomic, and a pool whose objects cross
//    partitions is switched into locked mode with set_thread_safe(true)
//    (freelist ops take a small spinlock). Single-threaded pools skip the
//    lock and keep a debug owner-thread assert instead.
//  * A pool must outlive every PoolRef into it. Within a Machine this is
//    arranged by declaration order (pools are declared before the structures
//    that hold refs) plus Machine::~Machine clearing the event queue, whose
//    scheduled closures may hold refs.
//  * T::recycle() must drop references T holds into *other* pools (so bodies
//    cascade back promptly) but keep raw capacity.
//
// Under SVMSIM_POOL_PARANOID (set by the SVMSIM_SANITIZE build) recycling is
// disabled: every acquire allocates and every release frees, so ASan sees
// the true object lifetimes and use-after-release bugs are not masked by
// reuse.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace svmsim::core {

template <typename T>
class ObjectPool;

namespace detail {

template <typename T>
struct PoolNode {
  T value{};
  // Atomic because PDES-mode message bodies are referenced from several
  // partitions at once (e.g. a barrier-release vclock fanned out to every
  // node) and the copies drop concurrently.
  std::atomic<std::uint32_t> refs{0};
  ObjectPool<T>* owner = nullptr;
};

/// A tiny test-and-test-and-set spinlock for pool freelists: critical
/// sections are a few pointer ops, far too short for a mutex to pay off.
class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.test_and_set(std::memory_order_acquire)) return;
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace detail

/// Refcounted handle to a pooled object. Copy shares, move transfers; the
/// last reference returns the object to its pool. Never outlive the pool.
template <typename T>
class PoolRef {
 public:
  PoolRef() noexcept = default;
  PoolRef(const PoolRef& o) noexcept : node_(o.node_) {
    if (node_ != nullptr) {
      node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PoolRef(PoolRef&& o) noexcept : node_(std::exchange(o.node_, nullptr)) {}
  PoolRef& operator=(const PoolRef& o) noexcept {
    if (this != &o) {
      reset();
      node_ = o.node_;
      if (node_ != nullptr) {
        node_->refs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return *this;
  }
  PoolRef& operator=(PoolRef&& o) noexcept {
    if (this != &o) {
      reset();
      node_ = std::exchange(o.node_, nullptr);
    }
    return *this;
  }
  ~PoolRef() { reset(); }

  /// Drop this reference (recycling the object if it was the last one).
  void reset() noexcept;

  [[nodiscard]] explicit operator bool() const noexcept {
    return node_ != nullptr;
  }
  [[nodiscard]] T* operator->() const noexcept { return &node_->value; }
  [[nodiscard]] T& operator*() const noexcept { return node_->value; }
  [[nodiscard]] T* get() const noexcept {
    return node_ != nullptr ? &node_->value : nullptr;
  }
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return node_ != nullptr ? node_->refs.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class ObjectPool<T>;
  explicit PoolRef(detail::PoolNode<T>* n) noexcept : node_(n) {}
  detail::PoolNode<T>* node_ = nullptr;
};

/// Grow-only freelist of T. T must be default-constructible and provide
/// `void recycle()` resetting logical state while keeping capacity.
template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;
  // Note: the pool may be destroyed with references still outstanding when a
  // simulation is torn down mid-run (suspended coroutine frames that will
  // never resume can hold refs). Those frames are never destroyed either, so
  // no PoolRef touches the dead pool; completed runs drain back to zero
  // outstanding, which tests/test_pools.cpp checks explicitly.

  /// Switch the freelist into locked mode: acquire/recycle may then be
  /// called from any thread (the PDES mode enables this on pools whose
  /// objects cross partition boundaries). One-way for a pool's lifetime.
  void set_thread_safe(bool on) noexcept { locked_ = on; }
  [[nodiscard]] bool thread_safe() const noexcept { return locked_; }

  /// Debug: transfer single-threaded ownership to the calling thread. Only
  /// legal at quiescent points (no concurrent acquire/recycle possible).
  void bind_to_this_thread() noexcept {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

  [[nodiscard]] PoolRef<T> acquire() {
    assert((locked_ || owner_ == std::this_thread::get_id()) &&
           "unlocked pool touched off its owning thread");
    note_live(live_.fetch_add(1, std::memory_order_relaxed) + 1);
#ifdef SVMSIM_POOL_PARANOID
    auto* n = new detail::PoolNode<T>();
    paranoid_live_.fetch_add(1, std::memory_order_relaxed);
#else
    detail::PoolNode<T>* n;
    if (locked_) {
      lock_.lock();
      n = acquire_node();
      lock_.unlock();
    } else {
      n = acquire_node();
    }
#endif
    n->owner = this;
    n->refs.store(1, std::memory_order_relaxed);
    return PoolRef<T>(n);
  }

  /// Objects ever created (paranoid mode: currently live).
  [[nodiscard]] std::size_t allocated() const noexcept {
#ifdef SVMSIM_POOL_PARANOID
    return paranoid_live_.load(std::memory_order_relaxed);
#else
    return all_.size();
#endif
  }
  /// Objects sitting on the freelist, ready for reuse.
  [[nodiscard]] std::size_t available() const noexcept {
#ifdef SVMSIM_POOL_PARANOID
    return 0;
#else
    return free_.size();
#endif
  }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return allocated() - available();
  }
  /// High-water mark of simultaneously outstanding objects over the pool's
  /// lifetime (scale diagnostics: perf_selfcheck records it per run so the
  /// allocation-free invariant is visible at large machine sizes).
  [[nodiscard]] std::size_t peak_outstanding() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  friend class PoolRef<T>;

#ifndef SVMSIM_POOL_PARANOID
  [[nodiscard]] detail::PoolNode<T>* acquire_node() {
    if (free_.empty()) {
      all_.push_back(std::make_unique<detail::PoolNode<T>>());
      return all_.back().get();
    }
    detail::PoolNode<T>* n = free_.back();
    free_.pop_back();
    return n;
  }
#endif

  /// Raise the peak-occupancy watermark to `live` (relaxed: the counters
  /// are diagnostics; contention is already paid by the refcount RMW).
  void note_live(std::size_t live) noexcept {
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak && !peak_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  void recycle(detail::PoolNode<T>* n) {
    assert((locked_ || owner_ == std::this_thread::get_id()) &&
           "unlocked pool released off its owning thread");
    live_.fetch_sub(1, std::memory_order_relaxed);
#ifdef SVMSIM_POOL_PARANOID
    paranoid_live_.fetch_sub(1, std::memory_order_relaxed);
    delete n;
#else
    // The caller held the last reference, so resetting the value (which may
    // cascade refs into other pools) needs no lock; only the freelist does.
    n->value.recycle();
    if (locked_) {
      lock_.lock();
      free_.push_back(n);
      lock_.unlock();
    } else {
      free_.push_back(n);
    }
#endif
  }

  bool locked_ = false;
  detail::SpinLock lock_;
  std::atomic<std::size_t> live_{0};  ///< currently outstanding
  std::atomic<std::size_t> peak_{0};  ///< lifetime high-water mark
#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif
#ifdef SVMSIM_POOL_PARANOID
  std::atomic<std::size_t> paranoid_live_{0};
#else
  std::vector<std::unique_ptr<detail::PoolNode<T>>> all_;
  std::vector<detail::PoolNode<T>*> free_;
#endif
};

template <typename T>
void PoolRef<T>::reset() noexcept {
  if (node_ == nullptr) return;
  if (node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    node_->owner->recycle(node_);
  }
  node_ = nullptr;
}

/// A pooled byte buffer — page snapshots, AURC update runs, HLRC twins.
struct PooledBytes {
  std::vector<std::byte> bytes;
  void recycle() noexcept { bytes.clear(); }  // keep capacity
};

}  // namespace svmsim::core
