file(REMOVE_RECURSE
  "CMakeFiles/extra_polling.dir/extra_polling.cpp.o"
  "CMakeFiles/extra_polling.dir/extra_polling.cpp.o.d"
  "extra_polling"
  "extra_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
