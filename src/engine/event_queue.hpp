// A deterministic discrete-event queue.
//
// Events are (time, sequence) ordered; the sequence number makes simultaneous
// events fire in insertion order, which keeps every simulation run
// bit-reproducible regardless of scheduler internals.
//
// Two interchangeable backends implement the same contract (see
// docs/engine.md):
//
//  * detail::TieredScheduler (the default) — a three-tier scheduler shaped
//    around the simulator's scheduling profile: a zero/now-delay FIFO lane
//    for same-tick resumptions (resource grants, trigger fires, yields), a
//    4-level x 256-slot hierarchical timing wheel for the short fixed
//    latencies that make up nearly all remaining events, and a small binary
//    heap for the rare events the wheel cannot index (far-future deadlines
//    beyond the wheel horizon, and out-of-band inserts behind the wheel
//    cursor). No comparator runs on the hot path.
//
//  * detail::HeapScheduler — the original single std::push_heap/pop_heap
//    binary heap, kept compilable behind -DSVMSIM_SCHEDULER=heap (CMake) for
//    A/B measurement and differential testing.
//
// Hot-path notes shared by both: callbacks are stored in a
// small-buffer-optimized InlineAction (no per-event heap allocation for
// typical captures) and drained storage is recycled through a thread-local
// spare slot so back-to-back simulations on one thread skip the allocator
// warm-up entirely.
//
// Wire band: besides the (time, seq) order, both backends carry a second
// priority class for cross-node packet deliveries, scheduled with
// schedule_wire(when, key). Wire events order by (time, key) — the key is
// derived from packet content (dst node, src node, NI index, per-link
// sequence), not from global insertion order — and at equal time the whole
// wire band fires before any (time, seq) event. This makes the delivery
// order of network traffic a pure function of each sender's local history,
// which is what lets the node-partitioned parallel mode (docs/engine.md,
// "PDES mode") replay the exact serial order without ever observing a
// global sequence counter.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/inline_function.hpp"
#include "engine/ring_queue.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

/// One co-enabled wire-band alternative offered to a WireArbiter: the
/// earliest pending delivery of one channel (key >> 32 identifies the
/// channel — see src/net/wire_key.hpp). Alternatives are presented in the
/// band's fire order, so alts[0] is the delivery that would fire by default.
struct WireChoice {
  Cycles when = 0;
  std::uint32_t defer = 0;
  std::uint64_t key = 0;
};

/// Scheduler hook consulted whenever the wire band is about to fire while
/// two or more delivery channels have a pending head. Returning i > 0 defers
/// every delivery ordered before alts[i] until just after it (per-channel
/// FIFO order is preserved), making the chosen delivery fire next; returning
/// 0 keeps the default order. Installed via set_wire_arbiter(); null (the
/// default) costs one branch per wire fire and changes nothing — normal
/// simulations never see it. The schedule explorer (src/explore/) is the
/// only client; see docs/exploration.md for the choice-point contract.
class WireArbiter {
 public:
  virtual ~WireArbiter() = default;

  /// Pick which of `n` (>= 2) channel heads fires next; must return < n.
  virtual std::size_t choose_wire(const WireChoice* alts, std::size_t n) = 0;

  /// Observation: `key` is about to fire off the wire band. Called for
  /// *every* wire fire (including solo fires that offered no choice), so an
  /// explorer's sleep-set bookkeeping sees actions that bypassed
  /// choose_wire. Default: ignore.
  virtual void on_wire_fire(std::uint64_t key) { (void)key; }
};

namespace detail {

/// One scheduled event. The inline capacity of 24 bytes covers the captures
/// the simulator's hot resumption paths create (a coroutine handle, or this
/// + a handle or two) while keeping the event at 64 bytes — one cache line;
/// larger workload captures fall back to one heap allocation.
struct SchedulerEvent {
  Cycles when = 0;
  std::uint64_t seq = 0;
  BasicInlineAction<24> action;
};

/// Heap comparator: "a fires later than b" in the (time, seq) total order.
struct FiresLater {
  bool operator()(const SchedulerEvent& a,
                  const SchedulerEvent& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

/// A wire-band event: a cross-node packet delivery ordered by (time, defer,
/// key) instead of (time, seq). See the file comment for why the key is
/// content-derived. `defer` is 0 everywhere except under a WireArbiter,
/// where it encodes how a chosen alternative displaced the events that
/// would have fired before it — default runs never produce a nonzero defer,
/// so (time, key) remains the observable order. Wire events are always
/// strictly in the future (the network's latency floor is >= 1 cycle),
/// which schedule_wire() asserts.
struct WireEvent {
  Cycles when = 0;
  std::uint64_t key = 0;
  std::uint32_t defer = 0;
  BasicInlineAction<24> action;
};

/// Heap comparator for the wire band: "a fires later than b" by
/// (time, defer, key).
struct WireFiresLater {
  bool operator()(const WireEvent& a, const WireEvent& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    if (a.defer != b.defer) return a.defer > b.defer;
    return a.key > b.key;
  }
};

/// Consult `arb` over the current per-channel heads of `wire` (a min-heap by
/// WireFiresLater). Called only when the band is about to fire; with fewer
/// than two distinct channels pending there is no decision and the call is a
/// no-op. Returns true if the arbiter reordered the band (the caller must
/// re-compare wire-vs-normal band priority: deferral can push the wire head
/// past pending (time, seq) events).
bool arbitrate_wire(std::vector<WireEvent>& wire, WireArbiter& arb);

/// The original binary-heap scheduler: one std::vector driven by
/// std::push_heap/pop_heap, O(log n) comparator churn per event.
class HeapScheduler {
 public:
  using Action = BasicInlineAction<24>;

  HeapScheduler();
  ~HeapScheduler();

  HeapScheduler(const HeapScheduler&) = delete;
  HeapScheduler& operator=(const HeapScheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (must be >= now()).
  void schedule_at(Cycles when, Action action);

  /// Schedule `action` to run `delay` cycles from now.
  void schedule_in(Cycles delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at the current time (equivalent to schedule_in(0)).
  void schedule_now(Action action) { schedule_at(now_, std::move(action)); }

  /// Schedule a wire-band event at absolute time `when` (must be strictly
  /// after now()): fires before any (time, seq) event at the same time,
  /// ordered among wire events by `key`. See the file comment.
  void schedule_wire(Cycles when, std::uint64_t key, Action action);

  /// Splice a whole batch of wire-band records in one call: append every
  /// (when, key, item) entry, then restore the band's heap invariant once —
  /// O(n + band) instead of n individual O(log band) pushes. This is the
  /// PDES drain path for a TimedChannel batch; entries are moved from and
  /// must be strictly in the future.
  template <typename Batch>
  void schedule_wire_batch(Batch& batch) {
    if (batch.empty()) return;
    wire_.reserve(wire_.size() + batch.size());
    for (auto& e : batch) {
      assert(e.when > now_ && "wire events must be strictly in the future");
      wire_.push_back(WireEvent{e.when, e.key, 0, std::move(e.item)});
    }
    std::make_heap(wire_.begin(), wire_.end(), WireFiresLater{});
  }

  /// Install (or clear, with nullptr) the wire-band choice hook. Serial
  /// explorer-mode only; see WireArbiter.
  void set_wire_arbiter(WireArbiter* arb) noexcept { arbiter_ = arb; }

  /// Pre-size the event storage (events, not bytes).
  void reserve(std::size_t events) { heap_.reserve(events); }

  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + wire_.size();
  }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Time of the earliest pending event (either band), or kNever if idle.
  /// Never fires anything and never moves now().
  [[nodiscard]] Cycles next_time() const noexcept {
    Cycles next = kNever;
    if (!heap_.empty()) next = heap_.front().when;
    if (!wire_.empty() && wire_.front().when < next) next = wire_.front().when;
    return next;
  }

  /// Conservative lower bound on the earliest time an event fired from this
  /// queue could launch a cross-partition send, given that every send costs
  /// at least `floor` cycles of host/NI processing between the event that
  /// posts it and its first packet reaching the wire: head-of-queue time
  /// plus the floor (saturating), or kNever ("unbounded") when idle — the
  /// adaptive PDES window query (docs/engine.md, "PDES mode"). Pass
  /// floor = 0 when a send is already mid-pipeline and only the bare
  /// head-of-queue bound is sound.
  [[nodiscard]] Cycles next_send_bound(Cycles floor) const noexcept {
    const Cycles t = next_time();
    if (t == kNever) return t;
    return t >= kNever - floor ? kNever : t + floor;
  }

  /// Run a single event; returns false if none pending.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until no events remain or simulated time would exceed `deadline`.
  /// Returns true if the queue drained, false if the deadline stopped it.
  bool run_until(Cycles deadline);

  /// Drop all pending events without running them. Used when tearing down a
  /// simulation that stopped early: scheduled closures may hold pooled
  /// references, which must die before the pools they point into.
  void clear() noexcept {
    heap_.clear();
    wire_.clear();
  }

 private:
  using Event = SchedulerEvent;

  /// Pop the earliest event off the heap (caller checked non-empty).
  Event pop_top();

  /// True if the wire band holds the next event to fire (ties go to wire).
  [[nodiscard]] bool wire_first() const noexcept {
    if (wire_.empty()) return false;
    return heap_.empty() || wire_.front().when <= heap_.front().when;
  }
  void fire_wire();

  /// Per-thread recycled event storage (see event_queue.cpp).
  static std::vector<Event>& spare_slot();

  std::vector<Event> heap_;
  std::vector<WireEvent> wire_;  // min-heap by (when, defer, key)
  WireArbiter* arbiter_ = nullptr;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

/// The tiered scheduler: zero-delay FIFO lane + hierarchical timing wheel +
/// overflow heap, all serving the same (time, seq) total order.
///
/// Events live in pooled intrusive-list nodes: tiers link and splice
/// pointers instead of relocating 64-byte events, the node pool grows
/// geometrically and is recycled per thread across simulations, and a
/// warmed steady state never touches the allocator (the invariant
/// tests/test_pools.cpp enforces for whole-system windows).
///
/// Tier selection on insert:
///  * when == now() while the lane is at now() (the schedule_in(0) /
///    schedule_now resumption path): append to the FIFO lane — no
///    comparator, no slot math. Lane FIFO order is seq order because seq is
///    globally monotonic.
///  * when indexable by the wheel (not behind the cursor, within the same
///    2^32-cycle top-level window): append to the slot list of the lowest
///    wheel level whose granularity can distinguish it. The (time, seq)
///    order within a slot is its append order because every slot is filled
///    by at most one cascade batch (older seqs) followed by direct inserts
///    (newer, monotonically growing seqs); draining a level-0 slot is an
///    O(1) splice of the whole list onto the lane.
///  * everything else (beyond the horizon, or behind the cursor because the
///    wheel swept ahead of now() while filling the lane): a small binary
///    heap, consulted by (time, seq) comparison against the lane front on
///    every fire. In steady state it is empty and costs one branch.
class TieredScheduler {
 public:
  using Action = BasicInlineAction<24>;

  TieredScheduler();
  ~TieredScheduler();

  TieredScheduler(const TieredScheduler&) = delete;
  TieredScheduler& operator=(const TieredScheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (must be >= now()).
  void schedule_at(Cycles when, Action action) {
    assert(when >= now_ && "cannot schedule an event in the past");
    Node* n = acquire(when, std::move(action));
    if (when == now_ && lane_admits_now()) {
      lane_append(n);
      return;
    }
    route(n);
  }

  /// Schedule `action` to run `delay` cycles from now.
  void schedule_in(Cycles delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Same-tick fast path (equivalent to schedule_in(0)): the dominant
  /// resumption pattern — resource handoffs, trigger fires, yields — skips
  /// all tier routing and lands in the FIFO lane.
  void schedule_now(Action action) {
    Node* n = acquire(now_, std::move(action));
    if (lane_admits_now()) [[likely]] {
      lane_append(n);
    } else {
      route(n);
    }
  }

  /// Schedule a wire-band event at absolute time `when` (must be strictly
  /// after now()): fires before any (time, seq) event at the same time,
  /// ordered among wire events by `key`. See the file comment.
  void schedule_wire(Cycles when, std::uint64_t key, Action action);

  /// Splice a whole batch of wire-band records in one call: append every
  /// (when, key, item) entry, then restore the band's heap invariant once —
  /// O(n + band) instead of n individual O(log band) pushes. This is the
  /// PDES drain path for a TimedChannel batch; entries are moved from and
  /// must be strictly in the future.
  template <typename Batch>
  void schedule_wire_batch(Batch& batch) {
    if (batch.empty()) return;
    wire_.reserve(wire_.size() + batch.size());
    for (auto& e : batch) {
      assert(e.when > now_ && "wire events must be strictly in the future");
      wire_.push_back(WireEvent{e.when, e.key, 0, std::move(e.item)});
    }
    std::make_heap(wire_.begin(), wire_.end(), WireFiresLater{});
  }

  /// Install (or clear, with nullptr) the wire-band choice hook. Serial
  /// explorer-mode only; see WireArbiter.
  void set_wire_arbiter(WireArbiter* arb) noexcept { arbiter_ = arb; }

  /// Pre-size the event node pool (events, not bytes).
  void reserve(std::size_t events);

  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return lane_size_ + wheel_count_ + heap_.size() + wire_.size();
  }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Time of the earliest pending event (either band), or kNever if idle.
  /// Never fires anything and never moves now(); may sweep the wheel cursor
  /// forward (advance() splices the next occupied tick onto the lane, which
  /// is a pure representation change).
  [[nodiscard]] Cycles next_time();

  /// Conservative lower bound on the earliest time an event fired from this
  /// queue could launch a cross-partition send — see
  /// HeapScheduler::next_send_bound for the contract (non-const here only
  /// because next_time() may sweep the wheel cursor).
  [[nodiscard]] Cycles next_send_bound(Cycles floor) {
    const Cycles t = next_time();
    if (t == kNever) return t;
    return t >= kNever - floor ? kNever : t + floor;
  }

  /// Run a single event; returns false if none pending.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until no events remain or simulated time would exceed `deadline`.
  /// Returns true if the queue drained, false if the deadline stopped it.
  bool run_until(Cycles deadline);

  /// Drop all pending events from every tier without running them.
  void clear() noexcept;

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr Cycles kSlotMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;  // occupancy bitmap

  /// A pooled event node: 24 bytes of ordering/link state + the 48-byte
  /// inline action. Nodes never move once placed — tiers relink pointers.
  struct Node {
    Cycles when = 0;
    std::uint64_t seq = 0;
    Node* next = nullptr;
    Action action;
  };

  /// A FIFO of nodes (slot or lane); append is O(1), splice is O(1).
  struct List {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  /// Recycled storage stashed per thread across scheduler lifetimes (see
  /// event_queue.cpp). Chunks own the nodes; the free list threads through
  /// them. Stashed only fully drained, so no action outlives its pools.
  struct Storage {
    std::vector<std::unique_ptr<Node[]>> chunks;
    Node* free_list = nullptr;
    std::size_t node_count = 0;
    std::vector<Node*> heap;
  };
  static Storage& spare_storage();

  /// True while appending at now() preserves the (time, seq) fire order:
  /// the lane is empty or already holds this tick's events. (The lane can
  /// hold a *future* tick after run_until() stopped on a deadline mid-fill;
  /// then a same-tick insert must detour through the heap tier.)
  [[nodiscard]] bool lane_admits_now() const noexcept {
    return lane_.head == nullptr || lane_.head->when == now_;
  }

  [[nodiscard]] Node* acquire(Cycles when, Action&& action) {
    if (free_ == nullptr) [[unlikely]] refill();
    Node* n = free_;
    free_ = n->next;
    n->when = when;
    n->seq = next_seq_++;
    n->next = nullptr;
    n->action = std::move(action);
    return n;
  }

  /// Return a node to the pool, dropping its action (and any pooled
  /// references the capture holds) immediately.
  void release(Node* n) noexcept {
    n->action = Action{};
    n->next = free_;
    free_ = n;
  }

  void lane_append(Node* n) noexcept {
    if (lane_.tail) {
      lane_.tail->next = n;
    } else {
      lane_.head = n;
    }
    lane_.tail = n;
    ++lane_size_;
  }

  void refill();                      // grow the node pool (out of line)
  void route(Node* n);                // wheel-or-heap slow path
  void wheel_insert(Node* n);         // pre: indexable by the wheel
  bool advance();                     // splice the next wheel tick onto lane
  bool drain_level0();
  bool cascade_next(int level);       // jump cursor to next occupied slot
  void cascade(int level, std::size_t idx);
  void roll();                        // cursor crossed a slot-0 boundary
  void fire_lane();
  void fire_heap();
  void fire_next();                   // caller ensured lane or heap nonempty
  void fire_wire();                   // caller ensured wire band nonempty
  void release_list(List& l) noexcept;

  /// Time of the earliest (time, seq)-band event; caller ensured the lane
  /// or the heap tier is nonempty (i.e. advance() already ran).
  [[nodiscard]] Cycles normal_next_time() const noexcept {
    if (lane_.head != nullptr) {
      Cycles t = lane_.head->when;
      if (!heap_.empty() && heap_.front()->when < t) t = heap_.front()->when;
      return t;
    }
    return heap_.front()->when;
  }

  [[nodiscard]] bool bit_set(int level, std::size_t idx) const noexcept {
    return (bits_[level][idx >> 6] >> (idx & 63)) & 1u;
  }
  static int scan_bits(const std::uint64_t* words, std::size_t from);

  List lane_;                         // tier 1: same-tick FIFO
  std::size_t lane_size_ = 0;
  List slots_[kLevels][kSlots] = {};  // tier 2: hierarchical timing wheel
  std::uint32_t counts_[kLevels][kSlots] = {};
  std::uint64_t bits_[kLevels][kWords] = {};
  std::vector<Node*> heap_;           // tier 3: overflow/out-of-band heap
  std::vector<WireEvent> wire_;       // wire band: min-heap (when, defer, key)
  WireArbiter* arbiter_ = nullptr;
  Cycles now_ = 0;
  Cycles cursor_ = 0;                 // first time not yet swept to the lane
  std::size_t wheel_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  // Node pool.
  Node* free_ = nullptr;
  std::size_t node_count_ = 0;
  std::vector<std::unique_ptr<Node[]>> chunks_;
};

}  // namespace detail

// -DSVMSIM_SCHEDULER=heap (CMake) swaps the simulator back onto the binary
// heap for A/B measurement and differential testing; see
// tools/scheduler_equivalence.sh.
#ifdef SVMSIM_SCHEDULER_HEAP
using EventQueue = detail::HeapScheduler;
#else
using EventQueue = detail::TieredScheduler;
#endif

}  // namespace svmsim::engine
