#include "svm/diff.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "apps/app.hpp"  // Rng

namespace svmsim::svm {
namespace {

std::vector<std::byte> make_page(std::size_t n, std::uint64_t seed) {
  apps::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  auto page = make_page(1024, 1);
  auto d = compute_diff(0, page, page);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.modified_bytes(), 0u);
}

TEST(Diff, SingleWordChange) {
  auto twin = make_page(1024, 2);
  auto cur = twin;
  cur[100] = static_cast<std::byte>(~std::to_integer<int>(cur[100]));
  auto d = compute_diff(7, cur, twin);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.page, 7u);
  EXPECT_EQ(d.runs[0].offset, 100u - 100 % kDiffWordBytes);
  EXPECT_EQ(d.modified_bytes(), kDiffWordBytes);
}

TEST(Diff, AdjacentChangesCoalesceIntoOneRun) {
  auto twin = make_page(1024, 3);
  auto cur = twin;
  for (int i = 200; i < 232; ++i) cur[static_cast<std::size_t>(i)] ^= std::byte{0xff};
  auto d = compute_diff(0, cur, twin);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 200u);
  EXPECT_EQ(d.modified_bytes(), 32u);
}

TEST(Diff, DisjointChangesProduceSeparateRuns) {
  auto twin = make_page(1024, 4);
  auto cur = twin;
  cur[0] ^= std::byte{1};
  cur[512] ^= std::byte{1};
  cur[1020] ^= std::byte{1};
  auto d = compute_diff(0, cur, twin);
  EXPECT_EQ(d.runs.size(), 3u);
}

TEST(Diff, ApplyReconstructsModifiedPage) {
  auto twin = make_page(2048, 5);
  auto cur = twin;
  for (int i : {0, 3, 64, 65, 66, 500, 2047}) {
    cur[static_cast<std::size_t>(i)] ^= std::byte{0x5a};
  }
  auto d = compute_diff(0, cur, twin);
  auto home = twin;  // home starts at the twin's value
  apply_diff(home, d);
  EXPECT_EQ(std::memcmp(home.data(), cur.data(), cur.size()), 0);
}

TEST(Diff, ConcurrentDisjointDiffsMergeAtHome) {
  // The multiple-writer property HLRC depends on: two writers with disjoint
  // word changes produce diffs that merge to the union.
  auto base = make_page(1024, 6);
  auto a = base;
  auto b = base;
  for (int i = 0; i < 64; ++i) a[static_cast<std::size_t>(i)] ^= std::byte{1};
  for (int i = 512; i < 600; ++i) b[static_cast<std::size_t>(i)] ^= std::byte{2};
  auto da = compute_diff(0, a, base);
  auto db = compute_diff(0, b, base);
  auto home = base;
  apply_diff(home, da);
  apply_diff(home, db);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(home[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i)]);
  }
  for (int i = 512; i < 600; ++i) {
    EXPECT_EQ(home[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
  }
}

TEST(Diff, WireBytesAccountsHeadersAndData) {
  auto twin = make_page(1024, 7);
  auto cur = twin;
  cur[0] ^= std::byte{1};
  cur[100] ^= std::byte{1};
  auto d = compute_diff(0, cur, twin);
  EXPECT_EQ(d.wire_bytes(), 16u + 8u * d.runs.size() + d.modified_bytes());
}

TEST(Diff, CostsFollowPaperModel) {
  ArchParams arch;
  auto twin = make_page(4096, 8);
  auto cur = twin;
  for (int i = 0; i < 400; ++i) cur[static_cast<std::size_t>(i)] ^= std::byte{1};
  auto d = compute_diff(0, cur, twin);
  const std::uint64_t words = 4096 / kDiffWordBytes;
  const std::uint64_t included = d.modified_bytes() / kDiffWordBytes;
  EXPECT_EQ(diff_create_cycles(arch, d, 4096),
            arch.diff_compare_cycles_per_word * words +
                arch.diff_include_cycles_per_word * included);
  EXPECT_EQ(diff_apply_cycles(arch, d),
            (arch.diff_compare_cycles_per_word +
             arch.diff_include_cycles_per_word) *
                included);
}

// Property: for random twin/current pairs, apply(twin, diff) == current.
class DiffRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffRoundTrip, RandomMutationsRoundTrip) {
  const std::uint64_t seed = GetParam();
  apps::Rng rng(seed);
  const std::size_t size = 256u << (seed % 5);  // 256B .. 4KB
  auto twin = make_page(size, seed * 31 + 1);
  auto cur = twin;
  const std::uint32_t mutations = rng.below(200);
  for (std::uint32_t m = 0; m < mutations; ++m) {
    cur[rng.below(static_cast<std::uint32_t>(size))] =
        static_cast<std::byte>(rng.next() & 0xff);
  }
  auto d = compute_diff(0, cur, twin);
  auto rebuilt = twin;
  apply_diff(rebuilt, d);
  EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), size), 0)
      << "seed=" << seed;
  // Runs are sorted, non-overlapping, word-aligned, and their data regions
  // tile the flat data buffer back to back.
  std::uint32_t prev_end = 0;
  std::uint32_t data_cursor = 0;
  for (const auto& r : d.runs) {
    EXPECT_EQ(r.offset % kDiffWordBytes, 0u);
    EXPECT_EQ(r.len % kDiffWordBytes, 0u);
    EXPECT_GE(r.offset, prev_end);
    EXPECT_GT(r.len, 0u);
    EXPECT_EQ(r.data_off, data_cursor);
    prev_end = r.offset + r.len;
    data_cursor += r.len;
  }
  EXPECT_EQ(data_cursor, d.data.size());

  // Recycling property: computing into a used PageDiff (capacity kept)
  // yields exactly the same diff as a fresh one.
  PageDiff reused = compute_diff(0, twin, cur);  // junk to overwrite
  compute_diff(0, cur, twin, reused);
  ASSERT_EQ(reused.runs.size(), d.runs.size());
  EXPECT_EQ(reused.data, d.data);
  auto rebuilt2 = twin;
  apply_diff(rebuilt2, reused);
  EXPECT_EQ(std::memcmp(rebuilt2.data(), cur.data(), size), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(Diff, FullPageChangeIsOneRun) {
  auto twin = make_page(1024, 9);
  std::vector<std::byte> cur(1024);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    cur[i] = twin[i] ^ std::byte{0xff};  // every word differs
  }
  auto d = compute_diff(3, cur, twin);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 0u);
  EXPECT_EQ(d.runs[0].len, 1024u);
  EXPECT_EQ(d.modified_bytes(), 1024u);
  auto home = twin;
  apply_diff(home, d);
  EXPECT_EQ(std::memcmp(home.data(), cur.data(), cur.size()), 0);
}

TEST(Diff, RunsFallOnWordBoundaries) {
  // A single-byte change expands to its containing word; a change spanning
  // a word boundary expands to both words.
  auto twin = make_page(256, 10);
  auto cur = twin;
  cur[kDiffWordBytes - 1] ^= std::byte{1};  // last byte of word 0
  cur[kDiffWordBytes] ^= std::byte{1};      // first byte of word 1
  auto d = compute_diff(0, cur, twin);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 0u);
  EXPECT_EQ(d.runs[0].len, 2 * kDiffWordBytes);
  EXPECT_EQ(std::memcmp(d.bytes_of(d.runs[0]).data(), cur.data(),
                        2 * kDiffWordBytes),
            0);
}

TEST(Diff, EmptyDiffAppliesAsNoOp) {
  auto page = make_page(512, 11);
  auto d = compute_diff(0, page, page);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.wire_bytes(), 16u);
  auto home = make_page(512, 12);
  auto before = home;
  apply_diff(home, d);
  EXPECT_EQ(home, before);
}

}  // namespace
}  // namespace svmsim::svm
