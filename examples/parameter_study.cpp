// A miniature of the paper's methodology: pick one application and study how
// its end performance depends on each communication parameter, holding the
// others at the achievable point (paper section 3).
//
//   ./parameter_study [app] [--scale=tiny|small|large] [--jobs=N]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "harness/cli.hpp"
#include "harness/job_pool.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  harness::Cli cli(argc, argv);
  const std::string app =
      cli.positional().empty() ? "water-nsq" : cli.positional().front();
  const std::string scale_name = cli.get_or("scale", "small");
  const apps::Scale scale = scale_name == "tiny"    ? apps::Scale::kTiny
                            : scale_name == "large" ? apps::Scale::kLarge
                                                    : apps::Scale::kSmall;

  struct Study {
    const char* name;
    std::vector<double> values;
    std::function<void(SimConfig&, double)> apply;
  };
  const std::vector<Study> studies = {
      {"host overhead (cycles)",
       {0, 500, 1000, 2000},
       [](SimConfig& c, double v) {
         c.comm.host_overhead = static_cast<Cycles>(v);
       }},
      {"NI occupancy (cycles/packet)",
       {0, 1000, 2000, 4000},
       [](SimConfig& c, double v) {
         c.comm.ni_occupancy = static_cast<Cycles>(v);
       }},
      {"I/O bandwidth (MB/MHz)",
       {2.0, 0.5, 0.25, 0.125},
       [](SimConfig& c, double v) { c.comm.io_bus_mb_per_mhz = v; }},
      {"interrupt cost (cycles)",
       {0, 500, 2500, 5000},
       [](SimConfig& c, double v) {
         c.comm.interrupt_cost = static_cast<Cycles>(v);
       }},
  };

  SimConfig base;
  base.comm = CommParams::achievable();
  harness::Sweep sweep(scale);

  // Independent simulation points run concurrently under --jobs (default:
  // one per hardware thread; --jobs=1 forces the serial path).
  const auto jobs = static_cast<unsigned>(std::max(
      1l, cli.get_int("jobs",
                      static_cast<long>(harness::JobPool::hardware_default()))));
  std::unique_ptr<harness::JobPool> pool;
  if (jobs > 1) pool = std::make_unique<harness::JobPool>(jobs);

  std::printf("parameter sensitivity of '%s' (16 processors, 4 per node)\n\n",
              app.c_str());
  harness::Table table({"parameter", "value", "speedup", "slowdown vs best"});
  for (const auto& s : studies) {
    auto runs = sweep.run_sweep(app, base, s.values, s.apply, pool.get());
    double best = 0;
    for (const auto& r : runs) best = std::max(best, r.speedup());
    for (const auto& r : runs) {
      table.add_row({s.name, harness::fmt(r.param, 3),
                     harness::fmt(r.speedup()),
                     harness::fmt((best / r.speedup() - 1.0) * 100.0, 1) + "%"});
    }
  }
  table.print();
  std::printf(
      "\nReading this the paper's way: the parameter whose worst value "
      "causes the largest slowdown is the one system designers should "
      "attack first.\n");
  return 0;
}
