// Paper §5 extras: interrupt sensitivity with uniprocessor nodes, and
// round-robin vs fixed interrupt delivery within SMP nodes.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  // (a) Interrupt cost sweep with uniprocessor nodes.
  {
    std::vector<harness::SweepPoint> points;
    for (const auto& app : opt.app_names) {
      for (double v : {0.0, 500.0, 2500.0, 5000.0}) {
        SimConfig cfg = bench::base_config();
        cfg.comm.procs_per_node = 1;
        cfg.comm.interrupt_cost = static_cast<Cycles>(v);
        points.push_back({app, cfg, v});
      }
    }
    auto runs = sweep.run_points(points, opt.pool());

    harness::Table t({"application", "intr=0", "intr=500", "intr=2500",
                      "intr=5000"});
    for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
      std::vector<std::string> row{opt.app_names[i]};
      for (std::size_t c = 0; c < 4; ++c) {
        row.push_back(harness::fmt(runs[i * 4 + c].speedup()));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      t.add_row(std::move(row));
    }
    std::fprintf(stderr, "\n");
    std::printf(
        "== Extra (paper 5): interrupt-cost sweep, uniprocessor nodes ==\n");
    t.print();
    harness::maybe_write_csv(t, opt.csv_dir, "extra_intr_uniproc");
  }

  // (b) Fixed processor-0 delivery vs round-robin.
  {
    std::vector<harness::SweepPoint> points;
    for (const auto& app : opt.app_names) {
      for (auto scheme : {InterruptScheme::kFixedProcessor,
                          InterruptScheme::kRoundRobin}) {
        SimConfig cfg = bench::base_config();
        cfg.comm.interrupt_scheme = scheme;
        points.push_back({app, cfg, static_cast<double>(scheme)});
      }
    }
    auto runs = sweep.run_points(points, opt.pool());

    harness::Table t({"application", "fixed-proc0", "round-robin"});
    for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
      std::vector<std::string> row{opt.app_names[i]};
      for (std::size_t c = 0; c < 2; ++c) {
        row.push_back(harness::fmt(runs[i * 2 + c].speedup()));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      t.add_row(std::move(row));
    }
    std::fprintf(stderr, "\n");
    std::printf(
        "== Extra (paper 5): fixed vs round-robin interrupt delivery ==\n");
    t.print();
    harness::maybe_write_csv(t, opt.csv_dir, "extra_intr_scheme");
  }
  return 0;
}
