# Empty dependencies file for table3_max_slowdowns.
# This may be replaced when dependencies are built.
