#!/usr/bin/env bash
# Prove the topology layer's two contracts (docs/topology.md):
#
# 1. The crossbar backend is observationally inert: sweep_dump with
#    --topology=crossbar must be byte-identical to the legacy default —
#    serially and at --par-cores=4 — across both protocols, two real apps
#    and a stress-gen seed. The backend routes every packet through the
#    topology dispatch but computes the legacy latency formula verbatim, so
#    any divergence means the dispatch itself perturbed the model.
#
# 2. Contended topologies keep the PDES determinism contract: fat-tree and
#    torus dumps at 64 processors (16 nodes) — including the per-link
#    occupancy lines (grants/busy/wait/bytes per physical link) — must be
#    byte-identical between serial and --par-cores=4. Hop events fire on
#    the partitions owning their links, so this checks cross-partition
#    event ordering through multi-hop routes, not just final deliveries.
#
#   tools/topology_equivalence.sh <build_dir>
#
#   build_dir   an already-built default tree
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: topology_equivalence.sh <build_dir>}"

out_dir="$build_dir/topology-equivalence"
mkdir -p "$out_dir"

apps="fft,lu,stress-gen@3"

# Arm 1: crossbar == legacy, byte for byte, serial and parallel.
"$build_dir/bench/sweep_dump" --apps="$apps" > "$out_dir/dump-legacy.txt"
for cores in 1 4; do
  "$build_dir/bench/sweep_dump" --apps="$apps" --topology=crossbar \
    --par-cores="$cores" > "$out_dir/dump-crossbar-par$cores.txt"
  if ! diff -u "$out_dir/dump-legacy.txt" \
       "$out_dir/dump-crossbar-par$cores.txt"; then
    echo "topology_equivalence: legacy vs --topology=crossbar" \
      "--par-cores=$cores DIVERGES" >&2
    exit 1
  fi
done

# Arm 2: contended topologies, serial vs --par-cores=4 at 64 procs. The
# dumps carry one line per physical link, so the diff also proves per-hop
# link state replays identically from four partition threads.
for topo in fattree:4 torus:4x4; do
  tag="${topo//:/-}"
  "$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=64 \
    --topology="$topo" > "$out_dir/dump-$tag-serial.txt"
  "$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=64 \
    --topology="$topo" --par-cores=4 > "$out_dir/dump-$tag-par4.txt"
  if ! diff -u "$out_dir/dump-$tag-serial.txt" "$out_dir/dump-$tag-par4.txt"
  then
    echo "topology_equivalence: $topo serial vs --par-cores=4 DIVERGES" >&2
    exit 1
  fi
  if ! grep -q '^  link' "$out_dir/dump-$tag-serial.txt"; then
    echo "topology_equivalence: $topo dump carries no per-link lines" >&2
    exit 1
  fi
done

echo "topology_equivalence: crossbar == legacy (serial, par4);" \
  "fattree:4 and torus:4x4 serial == par4" \
  "($(wc -l < "$out_dir/dump-legacy.txt") legacy lines identical)"
