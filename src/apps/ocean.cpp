// Ocean: the SPLASH-2 Ocean-contiguous solver structure — a red-black
// Gauss-Seidel multigrid V-cycle on a regular 2D grid. Rows of every grid
// level are block-partitioned across processors; each smoothing /
// restriction / prolongation stage reads one halo row from each neighbour
// and ends in a barrier. This gives the paper's "largely nearest-neighbor
// and iterative on a regular grid" pattern, including the high
// barrier-to-compute ratio of the coarse levels.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

/// One multigrid level: grids are (n x n) points including the boundary,
/// n = 2^k + 1.
struct Level {
  int n = 0;
  double h2 = 0;  // grid spacing squared
  SharedArray<double> u;  // solution
  SharedArray<double> f;  // right-hand side
  SharedArray<double> r;  // residual
};

class OceanApp final : public Application {
 public:
  explicit OceanApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 33;
        cycles_ = 2;
        break;
      case Scale::kSmall:
        n_ = 129;
        cycles_ = 3;
        break;
      case Scale::kLarge:
        n_ = 257;
        cycles_ = 4;
        break;
    }
  }

  [[nodiscard]] std::string name() const override { return "ocean"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    levels_.clear();
    for (int n = n_; n >= 9; n = (n - 1) / 2 + 1) {
      Level lv;
      lv.n = n;
      const double h = 1.0 / (n - 1);
      lv.h2 = h * h;
      const auto cells = static_cast<std::size_t>(n) * n;
      lv.u = SharedArray<double>::alloc(mach, cells, Distribution::block());
      lv.f = SharedArray<double>::alloc(mach, cells, Distribution::block());
      lv.r = SharedArray<double>::alloc(mach, cells, Distribution::block());
      levels_.push_back(lv);
    }

    // Problem: -laplace(u) = f with homogeneous Dirichlet boundary; a
    // smooth forcing plus a vortex-like bump (stands in for Ocean's
    // stream-function solves).
    f0_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
    for (int i = 1; i < n_ - 1; ++i) {
      for (int j = 1; j < n_ - 1; ++j) {
        const double x = static_cast<double>(j) / (n_ - 1);
        const double y = static_cast<double>(i) / (n_ - 1);
        f0_[static_cast<std::size_t>(i) * n_ + j] =
            std::sin(3.1 * x) * std::cos(2.3 * y) +
            4.0 * std::exp(-40.0 * ((x - 0.3) * (x - 0.3) +
                                    (y - 0.6) * (y - 0.6)));
      }
    }
    for (std::size_t lv = 0; lv < levels_.size(); ++lv) {
      const auto cells =
          static_cast<std::size_t>(levels_[lv].n) * levels_[lv].n;
      for (std::size_t i = 0; i < cells; ++i) {
        levels_[lv].u.debug_put(mach, i, 0.0);
        levels_[lv].r.debug_put(mach, i, 0.0);
        levels_[lv].f.debug_put(mach, i, lv == 0 ? f0_[i] : 0.0);
      }
    }
    expected_ = reference();
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    for (int c = 0; c < cycles_; ++c) {
      co_await vcycle(shm, pid, 0);
    }
  }

  bool validate(Machine& mach) override {
    const std::size_t cells = static_cast<std::size_t>(n_) * n_;
    for (std::size_t i = 0; i < cells; ++i) {
      const double got = levels_[0].u.debug_get(mach, i);
      const double want = expected_[i];
      if (std::abs(got - want) > 1e-9 * (1.0 + std::abs(want))) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier (see DESIGN.md: folds the real code's
  /// private-memory instruction stream into the charged compute).
  static constexpr Cycles kWorkScale = 70;
  static constexpr int kPreSmooth = 2;
  static constexpr int kPostSmooth = 2;
  static constexpr int kCoarseSmooth = 20;

  struct Rows {
    int r0 = 0;  // first owned interior row
    int r1 = 0;  // one past the last owned interior row
  };
  [[nodiscard]] Rows rows_of(int level_n, int pid) const {
    const int inner = level_n - 2;
    Rows rows;
    rows.r0 = 1 + inner * pid / P_;
    rows.r1 = 1 + inner * (pid + 1) / P_;
    return rows;
  }

  /// Read rows [r0-1, r1+1) of `arr` (own block plus halos) into `buf`.
  engine::Task<void> read_with_halo(Shm& shm, const SharedArray<double>& arr,
                                    int n, const Rows& rows,
                                    std::vector<double>& buf) {
    const auto width = static_cast<std::size_t>(n);
    const std::size_t count =
        static_cast<std::size_t>(rows.r1 - rows.r0 + 2) * width;
    buf.resize(count);
    co_await arr.get_block(shm, static_cast<std::size_t>(rows.r0 - 1) * width,
                           buf.data(), count);
  }

  engine::Task<void> vcycle(Shm& shm, int pid, int k) {
    const bool coarsest = k + 1 == static_cast<int>(levels_.size());
    const int sweeps = coarsest ? kCoarseSmooth : kPreSmooth;
    for (int s = 0; s < sweeps; ++s) {
      co_await rb_sweep(shm, pid, k);
    }
    if (!coarsest) {
      co_await restrict_residual(shm, pid, k);
      co_await vcycle(shm, pid, k + 1);
      co_await prolongate(shm, pid, k);
      for (int s = 0; s < kPostSmooth; ++s) {
        co_await rb_sweep(shm, pid, k);
      }
    }
  }

  /// Red-black sweep: for each color, read u (with halos) and f, update the
  /// color's points in the owned rows, write the rows back, barrier.
  engine::Task<void> rb_sweep(Shm& shm, int pid, int k) {
    Level& lv = levels_[static_cast<std::size_t>(k)];
    const int n = lv.n;
    const Rows rows = rows_of(n, pid);
    const auto width = static_cast<std::size_t>(n);
    std::vector<double> u, f;
    for (int color = 0; color < 2; ++color) {
      if (rows.r1 > rows.r0) {
        co_await read_with_halo(shm, lv.u, n, rows, u);
        f.resize(static_cast<std::size_t>(rows.r1 - rows.r0) * width);
        co_await lv.f.get_block(shm, static_cast<std::size_t>(rows.r0) * width,
                                f.data(), f.size());
        for (int i = rows.r0; i < rows.r1; ++i) {
          const auto li = static_cast<std::size_t>(i - rows.r0 + 1);
          double* row = u.data() + li * width;
          const double* up = row - width;
          const double* down = row + width;
          const double* fr =
              f.data() + static_cast<std::size_t>(i - rows.r0) * width;
          for (int j = 1 + (i + 1 + color) % 2; j < n - 1; j += 2) {
            row[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1] +
                             lv.h2 * fr[j]);
          }
        }
        shm.compute(kWorkScale *
                    static_cast<Cycles>(rows.r1 - rows.r0) * n / 2 * 6);
        co_await lv.u.put_block(shm, static_cast<std::size_t>(rows.r0) * width,
                                u.data() + width,
                                static_cast<std::size_t>(rows.r1 - rows.r0) *
                                    width);
      }
      co_await shm.barrier();
    }
  }

  /// Residual on level k, full-weighting restriction into level k+1's rhs,
  /// and zero-initialize the coarse solution.
  engine::Task<void> restrict_residual(Shm& shm, int pid, int k) {
    Level& fine = levels_[static_cast<std::size_t>(k)];
    Level& coarse = levels_[static_cast<std::size_t>(k) + 1];
    const int n = fine.n;
    const auto width = static_cast<std::size_t>(n);
    const Rows rows = rows_of(n, pid);

    // Residual r = f + laplace(u) on owned rows.
    std::vector<double> u, f, r;
    if (rows.r1 > rows.r0) {
      co_await read_with_halo(shm, fine.u, n, rows, u);
      f.resize(static_cast<std::size_t>(rows.r1 - rows.r0) * width);
      co_await fine.f.get_block(shm, static_cast<std::size_t>(rows.r0) * width,
                                f.data(), f.size());
      r.assign(f.size(), 0.0);
      for (int i = rows.r0; i < rows.r1; ++i) {
        const auto li = static_cast<std::size_t>(i - rows.r0 + 1);
        const double* row = u.data() + li * width;
        const double* up = row - width;
        const double* down = row + width;
        const auto ro = static_cast<std::size_t>(i - rows.r0) * width;
        for (int j = 1; j < n - 1; ++j) {
          r[ro + j] = f[ro + j] + (up[j] + down[j] + row[j - 1] + row[j + 1] -
                                   4.0 * row[j]) /
                                      fine.h2;
        }
      }
      shm.compute(kWorkScale * static_cast<Cycles>(rows.r1 - rows.r0) * n * 7);
      co_await fine.r.put_block(shm, static_cast<std::size_t>(rows.r0) * width,
                                r.data(), r.size());
    }
    co_await shm.barrier();

    // Full weighting onto the coarse grid: coarse rows owned per processor.
    const int cn = coarse.n;
    const auto cwidth = static_cast<std::size_t>(cn);
    const Rows crows = rows_of(cn, pid);
    if (crows.r1 > crows.r0) {
      // Need fine residual rows 2*r0-1 .. 2*(r1-1)+1 inclusive.
      const int fr0 = 2 * crows.r0 - 1;
      const int fr1 = 2 * (crows.r1 - 1) + 2;
      std::vector<double> fres(static_cast<std::size_t>(fr1 - fr0) * width);
      co_await fine.r.get_block(shm, static_cast<std::size_t>(fr0) * width,
                                fres.data(), fres.size());
      std::vector<double> cf(static_cast<std::size_t>(crows.r1 - crows.r0) *
                             cwidth);
      std::vector<double> zero(cf.size(), 0.0);
      for (int ci = crows.r0; ci < crows.r1; ++ci) {
        const int fi = 2 * ci;
        const double* m =
            fres.data() + static_cast<std::size_t>(fi - fr0) * width;
        const double* a = m - width;
        const double* b = m + width;
        const auto co = static_cast<std::size_t>(ci - crows.r0) * cwidth;
        for (int cj = 1; cj < cn - 1; ++cj) {
          const int fj = 2 * cj;
          cf[co + cj] =
              0.25 * m[fj] + 0.125 * (m[fj - 1] + m[fj + 1] + a[fj] + b[fj]) +
              0.0625 * (a[fj - 1] + a[fj + 1] + b[fj - 1] + b[fj + 1]);
        }
      }
      shm.compute(kWorkScale *
                  static_cast<Cycles>(crows.r1 - crows.r0) * cn * 10);
      co_await coarse.f.put_block(
          shm, static_cast<std::size_t>(crows.r0) * cwidth, cf.data(),
          cf.size());
      co_await coarse.u.put_block(
          shm, static_cast<std::size_t>(crows.r0) * cwidth, zero.data(),
          zero.size());
    }
    co_await shm.barrier();
  }

  /// Bilinear prolongation of the coarse correction onto the fine grid.
  engine::Task<void> prolongate(Shm& shm, int pid, int k) {
    Level& fine = levels_[static_cast<std::size_t>(k)];
    Level& coarse = levels_[static_cast<std::size_t>(k) + 1];
    const int n = fine.n;
    const int cn = coarse.n;
    const auto width = static_cast<std::size_t>(n);
    const auto cwidth = static_cast<std::size_t>(cn);
    const Rows rows = rows_of(n, pid);
    if (rows.r1 > rows.r0) {
      // Coarse rows covering fine rows [r0, r1): r0/2 .. (r1-1)/2 + 1.
      const int cr0 = rows.r0 / 2;
      const int cr1 = std::min(cn - 1, (rows.r1 - 1) / 2 + 1);
      std::vector<double> cu(static_cast<std::size_t>(cr1 - cr0 + 1) * cwidth);
      co_await coarse.u.get_block(shm, static_cast<std::size_t>(cr0) * cwidth,
                                  cu.data(), cu.size());
      std::vector<double> fu;
      co_await read_with_halo(shm, fine.u, n, rows, fu);
      for (int i = rows.r0; i < rows.r1; ++i) {
        double* row =
            fu.data() + static_cast<std::size_t>(i - rows.r0 + 1) * width;
        const int ci = i / 2;
        const double* c0 =
            cu.data() + static_cast<std::size_t>(ci - cr0) * cwidth;
        const double* c1 = (i % 2 == 0) ? c0 : c0 + cwidth;
        for (int j = 1; j < n - 1; ++j) {
          const int cj = j / 2;
          double corr;
          if (i % 2 == 0 && j % 2 == 0) {
            corr = c0[cj];
          } else if (i % 2 == 0) {
            corr = 0.5 * (c0[cj] + c0[cj + 1]);
          } else if (j % 2 == 0) {
            corr = 0.5 * (c0[cj] + c1[cj]);
          } else {
            corr = 0.25 * (c0[cj] + c0[cj + 1] + c1[cj] + c1[cj + 1]);
          }
          row[j] += corr;
        }
      }
      shm.compute(kWorkScale * static_cast<Cycles>(rows.r1 - rows.r0) * n * 5);
      co_await fine.u.put_block(shm, static_cast<std::size_t>(rows.r0) * width,
                                fu.data() + width,
                                static_cast<std::size_t>(rows.r1 - rows.r0) *
                                    width);
    }
    co_await shm.barrier();
  }

  /// Sequential reference: the identical V-cycle on host arrays. Point
  /// updates are order-independent within a color, so results match the
  /// parallel run exactly.
  [[nodiscard]] std::vector<double> reference() const {
    struct HostLevel {
      int n;
      double h2;
      std::vector<double> u, f, r;
    };
    std::vector<HostLevel> ls;
    for (int n = n_; n >= 9; n = (n - 1) / 2 + 1) {
      HostLevel hl;
      hl.n = n;
      const double h = 1.0 / (n - 1);
      hl.h2 = h * h;
      hl.u.assign(static_cast<std::size_t>(n) * n, 0.0);
      hl.f.assign(static_cast<std::size_t>(n) * n, 0.0);
      hl.r.assign(static_cast<std::size_t>(n) * n, 0.0);
      ls.push_back(std::move(hl));
    }
    ls[0].f = f0_;

    auto sweep = [&](HostLevel& lv) {
      const int n = lv.n;
      for (int color = 0; color < 2; ++color) {
        for (int i = 1; i < n - 1; ++i) {
          for (int j = 1 + (i + 1 + color) % 2; j < n - 1; j += 2) {
            const auto idx = static_cast<std::size_t>(i) * n + j;
            lv.u[idx] =
                0.25 * (lv.u[idx - static_cast<std::size_t>(n)] +
                        lv.u[idx + static_cast<std::size_t>(n)] +
                        lv.u[idx - 1] + lv.u[idx + 1] + lv.h2 * lv.f[idx]);
          }
        }
      }
    };
    std::function<void(std::size_t)> vc = [&](std::size_t k) {
      HostLevel& lv = ls[k];
      const bool coarsest = k + 1 == ls.size();
      for (int s = 0; s < (coarsest ? kCoarseSmooth : kPreSmooth); ++s) {
        sweep(lv);
      }
      if (coarsest) return;
      HostLevel& cv = ls[k + 1];
      const int n = lv.n;
      for (int i = 1; i < n - 1; ++i) {
        for (int j = 1; j < n - 1; ++j) {
          const auto idx = static_cast<std::size_t>(i) * n + j;
          lv.r[idx] = lv.f[idx] + (lv.u[idx - static_cast<std::size_t>(n)] +
                                   lv.u[idx + static_cast<std::size_t>(n)] +
                                   lv.u[idx - 1] + lv.u[idx + 1] -
                                   4.0 * lv.u[idx]) /
                                      lv.h2;
        }
      }
      const int cn = cv.n;
      std::fill(cv.u.begin(), cv.u.end(), 0.0);
      for (int ci = 1; ci < cn - 1; ++ci) {
        for (int cj = 1; cj < cn - 1; ++cj) {
          const int fi = 2 * ci;
          const int fj = 2 * cj;
          auto at = [&](int a, int b) {
            return lv.r[static_cast<std::size_t>(a) * n + b];
          };
          cv.f[static_cast<std::size_t>(ci) * cn + cj] =
              0.25 * at(fi, fj) +
              0.125 * (at(fi, fj - 1) + at(fi, fj + 1) + at(fi - 1, fj) +
                       at(fi + 1, fj)) +
              0.0625 * (at(fi - 1, fj - 1) + at(fi - 1, fj + 1) +
                        at(fi + 1, fj - 1) + at(fi + 1, fj + 1));
        }
      }
      vc(k + 1);
      for (int i = 1; i < n - 1; ++i) {
        for (int j = 1; j < n - 1; ++j) {
          const int ci = i / 2;
          const int cj = j / 2;
          auto cat = [&](int a, int b) {
            return cv.u[static_cast<std::size_t>(a) * cn + b];
          };
          double corr;
          if (i % 2 == 0 && j % 2 == 0) {
            corr = cat(ci, cj);
          } else if (i % 2 == 0) {
            corr = 0.5 * (cat(ci, cj) + cat(ci, cj + 1));
          } else if (j % 2 == 0) {
            corr = 0.5 * (cat(ci, cj) + cat(ci + 1, cj));
          } else {
            corr = 0.25 * (cat(ci, cj) + cat(ci, cj + 1) + cat(ci + 1, cj) +
                           cat(ci + 1, cj + 1));
          }
          lv.u[static_cast<std::size_t>(i) * n + j] += corr;
        }
      }
      for (int s = 0; s < kPostSmooth; ++s) sweep(lv);
    };
    for (int c = 0; c < cycles_; ++c) vc(0);
    return ls[0].u;
  }

  int n_ = 33;
  int cycles_ = 2;
  int P_ = 1;
  std::vector<Level> levels_;
  std::vector<double> f0_;
  std::vector<double> expected_;
};

}  // namespace

std::unique_ptr<Application> make_ocean(Scale scale) {
  return std::make_unique<OceanApp>(scale);
}

}  // namespace svmsim::apps
