// Figure 7: effects of network interface occupancy on performance (HLRC).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig07", "occupancy", {0, 250, 500, 1000, 2000, 4000},
      [](SimConfig& c, double v) {
        c.comm.ni_occupancy = static_cast<Cycles>(v);
      },
      opt, sweep);
  return 0;
}
