# Empty dependencies file for fig04_mbytes.
# This may be replaced when dependencies are built.
