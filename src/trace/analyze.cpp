#include "trace/analyze.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace svmsim::trace {

namespace {

std::vector<HotEntry> top_n(const std::unordered_map<std::uint64_t,
                                                     std::uint64_t>& counts,
                            std::size_t n) {
  std::vector<HotEntry> v;
  v.reserve(counts.size());
  for (const auto& [id, count] : counts) v.push_back({count, id});
  // Deterministic order: count descending, then id ascending.
  std::sort(v.begin(), v.end(), [](const HotEntry& a, const HotEntry& b) {
    return a.count != b.count ? a.count > b.count : a.id < b.id;
  });
  if (v.size() > n) v.resize(n);
  return v;
}

}  // namespace

Analysis analyze(const TraceFile& f, std::size_t top) {
  Analysis a;
  a.recomputed = Stats(f.procs);
  Counters& c = a.recomputed.counters();
  std::unordered_map<std::uint64_t, std::uint64_t> page_events;
  std::unordered_map<std::uint64_t, std::uint64_t> lock_events;

  for (const Record& r : f.records) {
    if (r.cat < kCategories) {
      ++a.records_per_category[r.cat];
    }
    switch (static_cast<Event>(r.event)) {
      case Event::kPageFault:
        ++c.page_faults;
        if (r.a1 != 0) {
          ++c.write_faults;
        } else {
          ++c.read_faults;
        }
        ++page_events[r.a0];
        break;
      case Event::kPageFetch:
        ++c.page_fetches;
        ++page_events[r.a0];
        break;
      case Event::kPageInstall:
        ++page_events[r.a0];
        break;
      case Event::kTwinCreate:
        ++c.twins_created;
        ++page_events[r.a0];
        break;
      case Event::kDiffCreate:
        ++c.diffs_created;
        c.diff_bytes += r.a1;
        ++page_events[r.a0];
        break;
      case Event::kDiffApply:
        ++page_events[r.a0];
        break;
      case Event::kPageInval:
        ++c.invalidations;
        ++page_events[r.a0];
        break;
      case Event::kWriteNotices:
        c.write_notices += r.a0;
        break;
      case Event::kLockLocal:
        ++c.local_lock_acquires;
        ++lock_events[r.a0];
        break;
      case Event::kLockRequest:
        ++c.remote_lock_acquires;
        ++lock_events[r.a0];
        break;
      case Event::kLockGrant:
      case Event::kLockRecall:
      case Event::kTokenReturn:
        ++lock_events[r.a0];
        break;
      case Event::kBarrierEnter:
        ++c.barriers;
        break;
      case Event::kBarrierExit:
        break;
      case Event::kMsgSend:
        ++c.messages_sent;
        break;
      case Event::kMsgDeliver:
        break;
      case Event::kPacketTx:
        ++c.packets_sent;
        c.bytes_sent += r.a1;
        break;
      case Event::kNiTx:
      case Event::kNiRx:
      case Event::kIoBus:
      case Event::kLinkHop:  // per-link occupancy lives in Stats::links,
        break;               // not in Counters — nothing to recompute

      case Event::kUpdateSend:
        ++c.updates_sent;
        c.update_bytes += r.a1;
        if (r.a0 != ~0ull) ++page_events[r.a0];
        break;
      case Event::kNiOverflow:
        ++c.ni_queue_overflows;
        break;
      case Event::kIrqIssue:
        ++c.interrupts;
        break;
      case Event::kPollDeliver:
        ++c.polled_requests;
        break;
      case Event::kHandlerSpan:
        break;
      case Event::kTimeSpan:
        if (r.proc >= 0 && r.proc < f.procs &&
            r.a1 < static_cast<std::uint64_t>(kTimeCats)) {
          a.recomputed.proc(r.proc).t[r.a1] += r.a0;
        }
        break;
      case Event::kCount:
        break;
    }
  }

  a.hot_pages = top_n(page_events, top);
  a.hot_locks = top_n(lock_events, top);
  return a;
}

std::vector<std::string> check(const TraceFile& f) {
  const Analysis a = analyze(f, 0);
  std::vector<std::string> mismatches;

  const auto expect = counters_to_array(f.stats.counters());
  const auto got = counters_to_array(a.recomputed.counters());
  for (int i = 0; i < kCounterCount; ++i) {
    if ((f.mask & category_bit(counter_category(i))) == 0) continue;
    if (expect[i] != got[i]) {
      std::ostringstream os;
      os << "counter " << counter_name(i) << ": stats=" << expect[i]
         << " trace=" << got[i];
      mismatches.push_back(os.str());
    }
  }

  if ((f.mask & category_bit(Category::kSched)) != 0) {
    for (int p = 0; p < f.procs; ++p) {
      for (int cat = 0; cat < kTimeCats; ++cat) {
        const Cycles expect_t = f.stats.proc(p).t[static_cast<std::size_t>(cat)];
        const Cycles got_t =
            a.recomputed.proc(p).t[static_cast<std::size_t>(cat)];
        if (expect_t != got_t) {
          std::ostringstream os;
          os << "proc " << p << " " << svmsim::to_string(TimeCat(cat))
             << ": stats=" << expect_t << " trace=" << got_t;
          mismatches.push_back(os.str());
        }
      }
    }
  }
  return mismatches;
}

std::string report(const TraceFile& f, const Analysis& a) {
  std::ostringstream os;
  os << "trace: " << f.records.size() << " records, " << f.procs
     << " procs / " << f.nodes << " nodes, end time " << f.end_time
     << ", categories " << mask_to_string(f.mask) << "\n";
  os << "build: " << f.provenance << "\n";

  os << "records per category:";
  for (int i = 0; i < kCategories; ++i) {
    os << " " << to_string(static_cast<Category>(i)) << "="
       << a.records_per_category[static_cast<std::size_t>(i)];
  }
  os << "\n";

  if (f.mask & category_bit(Category::kSched)) {
    os << "per-category time (cycles, all processors):\n";
    const Breakdown agg = a.recomputed.aggregate();
    for (int cat = 0; cat < kTimeCats; ++cat) {
      os << "  " << svmsim::to_string(TimeCat(cat)) << ": "
         << agg.t[static_cast<std::size_t>(cat)] << "\n";
    }
  }

  const auto counters = counters_to_array(a.recomputed.counters());
  os << "counters (recomputed from records):\n";
  for (int i = 0; i < kCounterCount; ++i) {
    if ((f.mask & category_bit(counter_category(i))) == 0) continue;
    os << "  " << counter_name(i) << ": " << counters[i] << "\n";
  }

  os << "hottest pages (protocol events):";
  for (const auto& h : a.hot_pages) os << " " << h.id << "(" << h.count << ")";
  os << "\nhottest locks (protocol events):";
  for (const auto& h : a.hot_locks) os << " " << h.id << "(" << h.count << ")";
  os << "\n";
  return os.str();
}

}  // namespace svmsim::trace
