#!/usr/bin/env bash
# Measure tracing cost in all three configurations and prove the tracer is
# observationally inert: build a second tree with -DSVMSIM_TRACE=OFF, run
# bench/trace_overhead from both trees into the same BENCH_sweep.json (each
# writes its own subsections, preserving the other's), and diff sweep_dump
# output byte-for-byte between the two builds.
#
#   tools/trace_overhead.sh <build_dir> [out.json] [reps]
#
#   build_dir   an already-built default (-DSVMSIM_TRACE=ON) tree
#   out.json    merged results file (default: <repo>/BENCH_sweep.json)
#   reps        repetitions per arm (default: 5)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: trace_overhead.sh <build_dir> [out.json] [reps]}"
out="${2:-$repo_root/BENCH_sweep.json}"
reps="${3:-5}"

alt_dir="$build_dir/trace-off"
cmake -S "$repo_root" -B "$alt_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_TRACE=OFF > "$alt_dir.cmake.log" 2>&1 \
  || { cat "$alt_dir.cmake.log"; exit 1; }
cmake --build "$alt_dir" --target trace_overhead sweep_dump -j "$(nproc)" \
  > "$alt_dir.build.log" 2>&1 || { cat "$alt_dir.build.log"; exit 1; }

# Byte-identity across builds: tracing compiled in vs out must not change a
# single counter of the reference sweep.
"$build_dir/bench/sweep_dump" > "$alt_dir/dump-trace-on.txt"
"$alt_dir/bench/sweep_dump" > "$alt_dir/dump-trace-off.txt"
if ! diff -u "$alt_dir/dump-trace-on.txt" "$alt_dir/dump-trace-off.txt"; then
  echo "trace_overhead: SVMSIM_TRACE=ON and OFF builds DIVERGE" >&2
  exit 1
fi
echo "trace_overhead: ON == OFF sweep output ($(wc -l < "$alt_dir/dump-trace-on.txt") lines identical)"

# Alternate the two builds several times; each invocation keeps the best
# per-rep peak seen so far per configuration (see trace_overhead.cpp), so
# the recorded rates converge on the machine's unthrottled speed for both
# binaries alike. The default build runs last so the final rewrite computes
# the headline percentages from the converged numbers.
for _round in 1 2 3 4; do
  "$alt_dir/bench/trace_overhead" --app=barnes --scale=small \
      --reps="$reps" --out="$out" | tail -n 2 | head -n 1
  "$build_dir/bench/trace_overhead" --app=barnes --scale=small \
      --reps="$reps" --out="$out" | tail -n 3 | head -n 2
done
