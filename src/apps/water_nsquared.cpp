// Water-nsquared: O(n^2) molecular dynamics in the SPLASH-2 Water-Nsquared
// style. Each processor owns a block of molecules and computes a slice of
// all pairs; partial forces are accumulated privately and then merged into
// the shared force array under per-molecule locks once per iteration —
// the lock-accumulate pattern whose page faults inside critical sections
// drive this application's behaviour (paper §7).
//
// The physics is simplified to a softened Lennard-Jones fluid of point
// molecules (same communication and synchronization structure as the real
// water potential).
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}
inline Vec3& operator+=(Vec3& a, const Vec3& b) {
  a.x += b.x;
  a.y += b.y;
  a.z += b.z;
  return a;
}
inline Vec3 operator*(const Vec3& a, double s) {
  return {a.x * s, a.y * s, a.z * s};
}

/// Softened Lennard-Jones-style pair force on `a` from `b`.
inline Vec3 pair_force(const Vec3& pa, const Vec3& pb) {
  const Vec3 d = pa - pb;
  const double r2 = d.x * d.x + d.y * d.y + d.z * d.z + 0.05;
  const double inv2 = 1.0 / r2;
  const double inv6 = inv2 * inv2 * inv2;
  const double mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
  return d * mag;
}

class WaterNsqApp final : public Application {
 public:
  explicit WaterNsqApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 64;
        steps_ = 2;
        break;
      case Scale::kSmall:
        n_ = 216;
        steps_ = 2;
        break;
      case Scale::kLarge:
        n_ = 512;
        steps_ = 3;
        break;
    }
  }

  [[nodiscard]] std::string name() const override { return "water-nsq"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    pos_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    vel_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    frc_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());

    // Perturbed lattice initial positions, small random velocities.
    Rng rng(0x3A7E6u);
    const int side = static_cast<int>(std::ceil(std::cbrt(double(n_))));
    init_pos_.resize(n_);
    init_vel_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const int ix = static_cast<int>(i) % side;
      const int iy = (static_cast<int>(i) / side) % side;
      const int iz = static_cast<int>(i) / (side * side);
      init_pos_[i] = {ix * 1.2 + rng.uniform(-0.05, 0.05),
                      iy * 1.2 + rng.uniform(-0.05, 0.05),
                      iz * 1.2 + rng.uniform(-0.05, 0.05)};
      init_vel_[i] = {rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01),
                      rng.uniform(-0.01, 0.01)};
    }
    for (std::size_t i = 0; i < n_; ++i) {
      pos_.debug_put(mach, i, init_pos_[i]);
      vel_.debug_put(mach, i, init_vel_[i]);
      frc_.debug_put(mach, i, Vec3{});
    }
    expected_pos_ = reference();
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    const std::size_t slice = n_ / static_cast<std::size_t>(P_);
    const std::size_t m0 = slice * static_cast<std::size_t>(pid);
    const std::size_t m1 = pid == P_ - 1 ? n_ : m0 + slice;

    std::vector<Vec3> positions(n_);
    std::vector<Vec3> partial(n_);
    std::vector<Vec3> own(m1 - m0);

    for (int step = 0; step < steps_; ++step) {
      // Read all positions (read-mostly sweep over remote pages).
      co_await pos_.get_block(shm, 0, positions.data(), n_);

      // Compute this processor's slice of pairs: i in [m0, m1), j > i.
      std::fill(partial.begin(), partial.end(), Vec3{});
      for (std::size_t i = m0; i < m1; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
          const Vec3 f = pair_force(positions[i], positions[j]);
          partial[i] += f;
          partial[j] += f * -1.0;
        }
        shm.compute(kWorkScale * (n_ - i - 1) * 16);
      }

      // Merge partial forces into the shared array under per-molecule-block
      // locks (one lock per owner block region, like the per-molecule locks
      // of the SPLASH code at reduced lock count).
      for (int owner = 0; owner < P_; ++owner) {
        const int target = (pid + owner) % P_;  // stagger to reduce contention
        const std::size_t t0 = slice * static_cast<std::size_t>(target);
        const std::size_t t1 = target == P_ - 1 ? n_ : t0 + slice;
        co_await shm.lock(kLockBase + target);
        for (std::size_t j = t0; j < t1; ++j) {
          Vec3 cur = co_await frc_.get(shm, j);
          cur += partial[j];
          co_await frc_.put(shm, j, cur);
          shm.compute(kWorkScale * 6);
        }
        co_await shm.unlock(kLockBase + target);
      }
      co_await shm.barrier();

      // Integrate own molecules and reset their forces.
      co_await frc_.get_block(shm, m0, own.data(), m1 - m0);
      for (std::size_t i = m0; i < m1; ++i) {
        Vec3 v = co_await vel_.get(shm, i);
        v += own[i - m0] * kDt;
        Vec3 x = positions[i];
        x += v * kDt;
        co_await vel_.put(shm, i, v);
        co_await pos_.put(shm, i, x);
        co_await frc_.put(shm, i, Vec3{});
        shm.compute(kWorkScale * 12);
      }
      co_await shm.barrier();
    }
  }

  bool validate(Machine& mach) override {
    for (std::size_t i = 0; i < n_; ++i) {
      const Vec3 got = pos_.debug_get(mach, i);
      const Vec3 want = expected_pos_[i];
      const double err = std::abs(got.x - want.x) + std::abs(got.y - want.y) +
                         std::abs(got.z - want.z);
      const double mag =
          1.0 + std::abs(want.x) + std::abs(want.y) + std::abs(want.z);
      // Accumulation order differs across processors; the softened LJ
      // potential is stiff, so ulp-level force differences grow by a few
      // orders of magnitude over the integration steps. 1e-5 relative still
      // catches any lost or double-counted contribution (those are O(1e-2)).
      if (err > 1e-5 * mag) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 45;
  static constexpr int kLockBase = 256;
  static constexpr double kDt = 0.002;

  [[nodiscard]] std::vector<Vec3> reference() const {
    std::vector<Vec3> pos = init_pos_;
    std::vector<Vec3> vel = init_vel_;
    std::vector<Vec3> frc(n_);
    for (int step = 0; step < steps_; ++step) {
      std::fill(frc.begin(), frc.end(), Vec3{});
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
          const Vec3 f = pair_force(pos[i], pos[j]);
          frc[i] += f;
          frc[j] += f * -1.0;
        }
      }
      for (std::size_t i = 0; i < n_; ++i) {
        vel[i] += frc[i] * kDt;
        pos[i] += vel[i] * kDt;
      }
    }
    return pos;
  }

  std::size_t n_ = 64;
  int steps_ = 2;
  int P_ = 1;
  SharedArray<Vec3> pos_;
  SharedArray<Vec3> vel_;
  SharedArray<Vec3> frc_;
  std::vector<Vec3> init_pos_;
  std::vector<Vec3> init_vel_;
  std::vector<Vec3> expected_pos_;
};

}  // namespace

std::unique_ptr<Application> make_water_nsquared(Scale scale) {
  return std::make_unique<WaterNsqApp>(scale);
}

}  // namespace svmsim::apps
