// Simulator context: the event queue plus coroutine-friendly primitives
// (delays, one-shot triggers, counting semaphores).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "engine/event_queue.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

class Simulator {
 public:
  [[nodiscard]] Cycles now() const noexcept { return queue_.now(); }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }

  /// Awaitable that suspends the coroutine for `d` cycles. d == 0 still goes
  /// through the event queue, i.e. it yields to any already-scheduled event
  /// at the current time.
  [[nodiscard]] auto delay(Cycles d) noexcept {
    struct Awaiter {
      EventQueue& q;
      Cycles d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        q.schedule_in(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{queue_, d};
  }

  void run_until_idle() { queue_.run_until_idle(); }
  bool run_until(Cycles deadline) { return queue_.run_until(deadline); }

 private:
  EventQueue queue_;
};

/// One-shot broadcast event: waiters suspend until fire() is called; waits
/// after fire() complete immediately. Used for request/reply rendezvous
/// (the "synchronous RPC" style of the paper's messaging layer).
class Trigger {
 public:
  explicit Trigger(Simulator& sim) noexcept : sim_(&sim) {}

  [[nodiscard]] bool fired() const noexcept { return fired_; }

  [[nodiscard]] auto wait() noexcept {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release all current and future waiters. Resumptions are scheduled on
  /// the event queue at the current time (deterministic order).
  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      sim_->queue().schedule_in(0, [h] { h.resume(); });
    }
    waiters_.clear();
  }

  /// Re-arm for reuse (only when no waiters are pending).
  void reset() noexcept {
    fired_ = false;
  }

 private:
  Simulator* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial) noexcept
      : sim_(&sim), count_(initial) {}

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }

  [[nodiscard]] auto acquire() noexcept {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (s.count_ > 0) {
          --s.count_;
          return false;  // proceed without suspending
        }
        s.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->queue().schedule_in(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Simulator* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace svmsim::engine
