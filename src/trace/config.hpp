// Trace configuration: the runtime gate for the event recorder.
//
// Kept free of any tracer machinery so core/params.hpp can embed a Config
// in SimConfig without pulling the whole trace subsystem into every
// translation unit. See src/trace/trace.hpp for the recorder itself and
// docs/tracing.md for the user-facing story.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace svmsim::trace {

/// Event categories, maskable independently via --trace-categories.
enum class Category : std::uint8_t {
  kPage = 0,  ///< faults, fetches, twins, diffs, invalidations
  kLock,      ///< lock token protocol and barriers
  kNet,       ///< message/packet path: NI, I/O bus, wire
  kIrq,       ///< interrupt/poll delivery and handler spans
  kSched,     ///< per-processor time spans (the Breakdown mirror)
  kCount,
};

inline constexpr int kCategories = static_cast<int>(Category::kCount);
inline constexpr std::uint32_t kAllCategories = (1u << kCategories) - 1;

[[nodiscard]] constexpr std::uint32_t category_bit(Category c) noexcept {
  return 1u << static_cast<int>(c);
}

[[nodiscard]] std::string_view to_string(Category c) noexcept;

/// Parse a comma-separated category list ("page,lock,net,irq,sched"); ""
/// and "all" mean every category. Returns nullopt on an unknown name.
[[nodiscard]] std::optional<std::uint32_t> parse_mask(std::string_view csv);

/// Render a mask back to the comma-separated form parse_mask accepts.
[[nodiscard]] std::string mask_to_string(std::uint32_t mask);

/// Per-run trace settings, carried inside SimConfig. Tracing never affects
/// simulated time: two runs differing only in Config produce identical
/// RunResults.
struct Config {
  bool enabled = false;         ///< create a tracer for this run
  std::uint32_t mask = kAllCategories;
  std::string path;             ///< output file; empty = in-memory only

  bool operator==(const Config&) const = default;
};

}  // namespace svmsim::trace
