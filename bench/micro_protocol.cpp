// Protocol-operation latency microbenchmarks: wall-clock cost of simulating
// the core SVM primitives, with the *simulated* end-to-end latency (in
// processor cycles, at the achievable parameters) reported as a counter.
#include <benchmark/benchmark.h>

#include <functional>

#include "apps/app.hpp"
#include "core/runner.hpp"

namespace {

using namespace svmsim;
using apps::Distribution;
using apps::SharedArray;
using apps::Shm;

/// A micro-workload whose per-processor body is a lambda that may time one
/// simulated operation.
class MicroWorkload : public Workload {
 public:
  using Body =
      std::function<engine::Task<void>(MicroWorkload&, Machine&, Shm&, ProcId)>;

  explicit MicroWorkload(Body body) : body_(std::move(body)) {}

  [[nodiscard]] std::string name() const override { return "micro"; }
  void setup(Machine& m) override {
    arr = SharedArray<double>::alloc(m, 4096, Distribution::fixed(0));
    for (int i = 0; i < 4096; ++i) arr.debug_put(m, i, 1.0);
  }
  engine::Task<void> body(Machine& m, ProcId pid) override {
    Shm shm(m, pid);
    co_await body_(*this, m, shm, pid);
  }
  bool validate(Machine&) override { return true; }

  SharedArray<double> arr;
  Cycles measured = 0;

 private:
  Body body_;
};

SimConfig two_nodes() {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  cfg.comm.total_procs = 2;
  cfg.comm.procs_per_node = 1;
  return cfg;
}

void BM_SimulatedPageFetch(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    MicroWorkload w([](MicroWorkload& self, Machine& m, Shm& shm,
                       ProcId pid) -> engine::Task<void> {
      if (pid == 1) {
        // First touch of a remotely-homed page: one fetch round trip.
        const Cycles t0 = m.sim().now();
        (void)co_await self.arr.get(shm, 0);
        self.measured = m.sim().now() - t0;
      }
      co_return;
    });
    auto r = run(w, two_nodes());
    benchmark::DoNotOptimize(r.time);
    cycles = static_cast<double>(w.measured);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_SimulatedPageFetch)->Unit(benchmark::kMicrosecond);

void BM_SimulatedRemoteLockAcquire(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    MicroWorkload w([](MicroWorkload& self, Machine& m, Shm& shm,
                       ProcId pid) -> engine::Task<void> {
      if (pid == 1) {
        // Lock 0 is homed at node 0: acquiring from node 1 needs the full
        // request/grant exchange.
        const Cycles t0 = m.sim().now();
        co_await shm.lock(0);
        self.measured = m.sim().now() - t0;
        co_await shm.unlock(0);
      }
      co_return;
    });
    auto r = run(w, two_nodes());
    benchmark::DoNotOptimize(r.time);
    cycles = static_cast<double>(w.measured);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_SimulatedRemoteLockAcquire)->Unit(benchmark::kMicrosecond);

void BM_SimulatedBarrier(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  double cycles = 0;
  for (auto _ : state) {
    MicroWorkload w([](MicroWorkload& self, Machine& m, Shm& shm,
                       ProcId pid) -> engine::Task<void> {
      const Cycles t0 = m.sim().now();
      co_await shm.barrier();
      if (pid == 0) self.measured = m.sim().now() - t0;
    });
    SimConfig cfg;
    cfg.comm = CommParams::achievable();
    cfg.comm.total_procs = nodes * 4;
    cfg.comm.procs_per_node = 4;
    auto r = run(w, cfg);
    benchmark::DoNotOptimize(r.time);
    cycles = static_cast<double>(w.measured);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_SimulatedBarrier)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMicrosecond);

void BM_SimulatedReleaseFlushOnePage(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    MicroWorkload w([](MicroWorkload& self, Machine& m, Shm& shm,
                       ProcId pid) -> engine::Task<void> {
      if (pid == 1) {
        co_await shm.lock(1);
        co_await self.arr.put(shm, 0, 2.0);  // dirty one remote page
        const Cycles t0 = m.sim().now();
        co_await shm.unlock(1);  // diff + ack + token handling
        self.measured = m.sim().now() - t0;
      }
      co_return;
    });
    auto r = run(w, two_nodes());
    benchmark::DoNotOptimize(r.time);
    cycles = static_cast<double>(w.measured);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_SimulatedReleaseFlushOnePage)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
