# Empty dependencies file for fig07_ni_occupancy.
# This may be replaced when dependencies are built.
