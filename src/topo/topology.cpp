#include "topo/topology.hpp"

#include <stdexcept>

#include "topo/crossbar.hpp"
#include "topo/fat_tree.hpp"
#include "topo/torus.hpp"

namespace svmsim::topo {

std::string_view to_string(LinkKind k) noexcept {
  switch (k) {
    case LinkKind::kInject: return "inject";
    case LinkKind::kEject: return "eject";
    case LinkKind::kUp: return "up";
    case LinkKind::kDown: return "down";
    case LinkKind::kRing: return "ring";
  }
  return "?";
}

LinkId Topology::add_link(engine::Simulator& sim, NodeId owner,
                          LinkKind kind) {
  const bool intra = kind == LinkKind::kInject || kind == LinkKind::kEject;
  const Cycles lat = intra ? arch_->intra_hop_latency_cycles
                           : arch_->inter_hop_latency_cycles;
  const double bw = intra ? arch_->intra_link_bytes_per_cycle
                          : arch_->inter_link_bytes_per_cycle;
  links_.emplace_back(sim, owner, lat, bw, kind);
  return static_cast<LinkId>(links_.size() - 1);
}

void Topology::seal_links() noexcept {
  // Minimum advance of one hop: the serving link's latency plus at least
  // the packet header's serialization (truncation is monotone in bytes).
  Cycles floor = kNever;
  for (const Link& l : links_) {
    const auto header_ser = static_cast<Cycles>(
        static_cast<double>(arch_->packet_header_bytes) / l.bytes_per_cycle);
    const Cycles hop = l.latency + header_ser;
    if (hop < floor) floor = hop;
  }
  min_latency_ = (floor == kNever || floor < 1) ? 1 : floor;
}

bool fits(const Spec& spec, int nodes) noexcept {
  switch (spec.kind) {
    case Kind::kLegacy:
    case Kind::kCrossbar:
      return nodes >= 1;
    case Kind::kFatTree: {
      const int half = spec.fat_k / 2;
      return nodes >= 1 && nodes <= spec.fat_k * half * half;
    }
    case Kind::kTorus: {
      const int z = spec.dims[2] > 0 ? spec.dims[2] : 1;
      return static_cast<long>(spec.dims[0]) * spec.dims[1] * z == nodes;
    }
  }
  return false;
}

std::unique_ptr<Topology> make_topology(const Spec& spec,
                                        const ArchParams& arch, int nodes,
                                        const SimOfNode& sim_of_node) {
  switch (spec.kind) {
    case Kind::kLegacy:
    case Kind::kCrossbar:
      return std::make_unique<Crossbar>(arch);
    case Kind::kFatTree:
      return std::make_unique<FatTree>(arch, nodes, spec.fat_k, sim_of_node);
    case Kind::kTorus:
      return std::make_unique<Torus>(arch, nodes, spec.dims, sim_of_node);
  }
  throw std::invalid_argument("unknown topology kind");
}

}  // namespace svmsim::topo
