// The event queue's small-buffer-optimized callback: storage selection at
// the capacity boundary, move-only captures, lifetime correctness under
// moves, and event ordering at equal timestamps with mixed storage.
#include "engine/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "engine/event_queue.hpp"

namespace svmsim::engine {
namespace {

using Action = EventQueue::Action;

TEST(InlineAction, EmptyIsFalsy) {
  Action a;
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(a.stores_inline());
}

TEST(InlineAction, SmallCaptureStoresInline) {
  int hits = 0;
  Action a([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_TRUE(a.stores_inline());
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, CaptureExactlyAtCapacityStoresInline) {
  // The capture is exactly kCapacity bytes of trivially copyable state.
  struct Blob {
    std::array<unsigned char, Action::kCapacity - sizeof(int*)> bytes;
    int* out;
  };
  static_assert(sizeof(Blob) == Action::kCapacity);
  int result = 0;
  Blob b{};
  b.bytes[0] = 7;
  b.bytes[b.bytes.size() - 1] = 11;
  b.out = &result;
  Action a([b] { *b.out = b.bytes[0] + b.bytes[b.bytes.size() - 1]; });
  EXPECT_TRUE(a.stores_inline());
  a();
  EXPECT_EQ(result, 18);
}

TEST(InlineAction, CaptureOverCapacityFallsBackToHeap) {
  struct Big {
    std::array<unsigned char, Action::kCapacity + 1> bytes;
    int* out;
  };
  int result = 0;
  Big b{};
  b.bytes[Action::kCapacity] = 42;
  b.out = &result;
  Action a([b] { *b.out = b.bytes[Action::kCapacity]; });
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_FALSE(a.stores_inline());
  a();
  EXPECT_EQ(result, 42);
}

TEST(InlineAction, MoveOnlyCaptureInline) {
  auto p = std::make_unique<int>(5);
  Action a([p = std::move(p)] { *p += 1; });
  EXPECT_TRUE(a.stores_inline());
  a();  // no observable output; must not crash or leak (ASAN/valgrind)
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
}

TEST(InlineAction, MoveOnlyCaptureHeap) {
  struct Payload {
    std::array<unsigned char, Action::kCapacity> pad;
    std::unique_ptr<int> p;
  };
  Payload pl{{}, std::make_unique<int>(3)};
  int result = 0;
  Action a([pl = std::move(pl), &result] { result = *pl.p; });
  EXPECT_FALSE(a.stores_inline());
  Action b = std::move(a);
  b();
  EXPECT_EQ(result, 3);
}

TEST(InlineAction, MoveAssignReleasesPreviousCallable) {
  auto counter = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> c;
    ~Bump() { if (c) ++*c; }
    Bump(std::shared_ptr<int> c) : c(std::move(c)) {}
    Bump(Bump&& o) noexcept = default;
    void operator()() const {}
  };
  Action a{Bump{counter}};
  EXPECT_EQ(*counter, 0);
  a = Action{[] {}};
  // The Bump callable (and any moved-from shells) must all be destroyed.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineAction, SurvivesManyHeapReorderingMoves) {
  // Push enough actions through the event queue that the underlying vector
  // reallocates and sift operations relocate live actions many times.
  EventQueue q;
  std::vector<int> order;
  for (int i = 999; i >= 0; --i) {
    q.schedule_at(static_cast<Cycles>(i), [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(InlineAction, EqualTimestampOrderingWithMixedStorage) {
  // Inline and heap-backed events interleaved at one timestamp must still
  // fire strictly in insertion order.
  EventQueue q;
  std::vector<int> order;
  struct Fat {
    std::array<unsigned char, Action::kCapacity * 2> pad{};
  };
  for (int i = 0; i < 16; ++i) {
    if (i % 2 == 0) {
      q.schedule_at(5, [&order, i] { order.push_back(i); });
    } else {
      Fat fat;
      q.schedule_at(5, [&order, i, fat] {
        order.push_back(i + static_cast<int>(fat.pad[0]));
      });
    }
  }
  q.run_until_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(InlineAction, AcceptsStdFunctionLvalue) {
  int hits = 0;
  std::function<void()> f = [&hits] { ++hits; };
  Action a(f);
  a();
  f();  // original still usable: the action copied it
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace svmsim::engine
