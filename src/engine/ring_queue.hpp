// A vector-backed circular FIFO for the simulator's hot queues.
//
// std::deque allocates and frees fixed-size chunks as elements cross chunk
// boundaries, so a steady message stream through a NIC queue (or a stream of
// blocked coroutines through a semaphore) keeps the allocator busy forever.
// RingQueue grows like a vector (amortized, power-of-two capacity) and then
// never touches the heap again: steady-state push/pop is index arithmetic.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace svmsim::engine {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Pre-size the backing store to hold at least `n` elements (rounded up to
  /// a power of two) without further allocation. Keeps existing elements.
  void reserve(std::size_t n) {
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < n) cap *= 2;
    if (cap > buf_.size()) grow_to(cap);
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow_to(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }

  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T{};  // release resources held by the slot now
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow_to(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace svmsim::engine
