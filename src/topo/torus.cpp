#include "topo/torus.hpp"

#include <stdexcept>
#include <string>

namespace svmsim::topo {

Torus::Torus(const ArchParams& arch, int nodes, std::array<int, 3> dims,
             const SimOfNode& sim_of_node)
    : Topology(arch), dims_(dims) {
  if (dims_[2] <= 0) dims_[2] = 1;
  ndims_ = dims_[2] > 1 ? 3 : 2;
  stride_ = 2 + 2 * ndims_;
  const long product =
      static_cast<long>(dims_[0]) * dims_[1] * dims_[2];
  if (dims_[0] < 1 || dims_[1] < 1 || product != nodes) {
    throw std::invalid_argument(
        "torus extents " + std::to_string(dims_[0]) + "x" +
        std::to_string(dims_[1]) + "x" + std::to_string(dims_[2]) +
        " do not multiply to " + std::to_string(nodes) + " nodes");
  }
  int diameter = 2;  // inject + eject
  for (int d = 0; d < ndims_; ++d) diameter += dims_[d] / 2;
  if (diameter > kMaxHops) {
    throw std::invalid_argument(
        "torus diameter " + std::to_string(diameter) + " exceeds " +
        std::to_string(kMaxHops) + " hops; use squarer extents");
  }

  for (int n = 0; n < nodes; ++n) {
    engine::Simulator& sim = sim_of_node(n);
    add_link(sim, n, LinkKind::kInject);
    add_link(sim, n, LinkKind::kEject);
    for (int d = 0; d < ndims_; ++d) {
      add_link(sim, n, LinkKind::kRing);  // +direction out of n
      add_link(sim, n, LinkKind::kRing);  // -direction out of n
    }
  }
  seal_links();
}

void Torus::route(NodeId src, NodeId dst, RouteBuf& out) const noexcept {
  out.hops = 0;
  out.push(id(src, 0));  // inject

  int cur[3];
  int end[3];
  int rem_s = src;
  int rem_d = dst;
  for (int d = 0; d < 3; ++d) {
    cur[d] = rem_s % dims_[static_cast<std::size_t>(d)];
    end[d] = rem_d % dims_[static_cast<std::size_t>(d)];
    rem_s /= dims_[static_cast<std::size_t>(d)];
    rem_d /= dims_[static_cast<std::size_t>(d)];
  }

  for (int d = 0; d < ndims_; ++d) {
    const int n = dims_[static_cast<std::size_t>(d)];
    const int fwd = (end[d] - cur[d] + n) % n;
    const int bwd = (cur[d] - end[d] + n) % n;
    const bool pos = fwd <= bwd;  // shorter way round; ties toward +
    const int steps = pos ? fwd : bwd;
    for (int i = 0; i < steps; ++i) {
      // The ring link out of the current node in the chosen direction.
      int node = cur[0] + dims_[0] * (cur[1] + dims_[1] * cur[2]);
      out.push(id(node, 2 + 2 * d + (pos ? 0 : 1)));
      cur[d] = pos ? (cur[d] + 1) % n : (cur[d] + n - 1) % n;
    }
  }
  out.push(id(dst, 1));  // eject
}

}  // namespace svmsim::topo
