// A vector-backed circular FIFO for the simulator's hot queues.
//
// std::deque allocates and frees fixed-size chunks as elements cross chunk
// boundaries, so a steady message stream through a NIC queue (or a stream of
// blocked coroutines through a semaphore) keeps the allocator busy forever.
// RingQueue grows like a vector (amortized, power-of-two capacity) and then
// never touches the heap again: steady-state push/pop is index arithmetic.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::engine {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Pre-size the backing store to hold at least `n` elements (rounded up to
  /// a power of two) without further allocation. Keeps existing elements.
  void reserve(std::size_t n) {
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < n) cap *= 2;
    if (cap > buf_.size()) grow_to(cap);
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow_to(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }

  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T{};  // release resources held by the slot now
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow_to(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// A timestamped single-producer/single-consumer channel: the cross-partition
/// link of the PDES mode (docs/engine.md). The producing partition pushes
/// (when, key, item) records during its window; the consuming partition
/// drains the whole channel at its next window boundary. The WindowDriver's
/// barriers separate the two phases, so no atomics are needed — the barrier
/// itself provides the happens-before edge between producer and consumer.
///
/// min_pending() caches the smallest pending timestamp so the consumer can
/// assert the conservative invariant (everything in flight is at or beyond
/// the next window start) in O(1) without walking the queue.
template <typename T>
class TimedChannel {
 public:
  struct Entry {
    Cycles when = 0;
    std::uint64_t key = 0;
    T item{};
  };

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }

  /// Smallest timestamp currently in flight, or kNever when empty.
  [[nodiscard]] Cycles min_pending() const noexcept { return min_pending_; }

  /// Producer side: enqueue a record for delivery at absolute time `when`.
  void push(Cycles when, std::uint64_t key, T item) {
    if (when < min_pending_) min_pending_ = when;
    q_.push_back(Entry{when, key, std::move(item)});
  }

  /// Consumer side: pop every record in FIFO (production) order. `f` is
  /// called as f(when, key, T&&); relative delivery order among equal
  /// timestamps is re-established by the scheduler's wire band, so FIFO
  /// here is only a transport order.
  template <typename F>
  void drain(F&& f) {
    while (!q_.empty()) {
      Entry& e = q_.front();
      f(e.when, e.key, std::move(e.item));
      q_.pop_front();
    }
    min_pending_ = kNever;
  }

  void clear() {
    q_.clear();
    min_pending_ = kNever;
  }

 private:
  RingQueue<Entry> q_;
  Cycles min_pending_ = kNever;
};

}  // namespace svmsim::engine
