// Basic simulation types shared by all modules.
#pragma once

#include <cstdint>

namespace svmsim {

/// Simulated time, measured in main-processor clock cycles.
/// The paper expresses every communication parameter in processor cycles so
/// that results can be read as ratios to processor speed; we keep the same
/// convention throughout.
using Cycles = std::uint64_t;

/// Sentinel "no pending event" timestamp (all-ones). Returned by scheduler
/// and channel peek operations; no real event ever fires at this time.
inline constexpr Cycles kNever = ~Cycles{0};

/// Identifier types. Nodes are SMP boxes; processors are numbered globally
/// (0 .. total_processors-1) and map to nodes in round-robin blocks.
using NodeId = int;
using ProcId = int;

/// How the PDES WindowDriver chooses each window's end (docs/engine.md,
/// "PDES mode"): adaptive windows stretch to the earliest possible
/// cross-partition send plus lookahead; fixed windows are always exactly one
/// lookahead wide. Fixed is the escape hatch (-DSVMSIM_PDES_WINDOW=fixed
/// flips the compiled default, SimConfig::pdes_window selects at runtime);
/// results are byte-identical under either policy.
enum class WindowPolicy {
  kAdaptive,
  kFixed,
};

}  // namespace svmsim
