file(REMOVE_RECURSE
  "CMakeFiles/extra_gap_analysis.dir/extra_gap_analysis.cpp.o"
  "CMakeFiles/extra_gap_analysis.dir/extra_gap_analysis.cpp.o.d"
  "extra_gap_analysis"
  "extra_gap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_gap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
