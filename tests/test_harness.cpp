// Harness utilities: CLI parsing and table/CSV formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

namespace svmsim::harness {
namespace {

AppRun run_with_speedup(Cycles uniprocessor, Cycles time) {
  AppRun r;
  r.uniprocessor = uniprocessor;
  r.result.time = time;
  return r;
}

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Cli, ParsesKeyEqualsValue) {
  std::vector<std::string> args{"prog", "--scale=large", "--csv=/tmp/x"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_or("scale", "?"), "large");
  EXPECT_EQ(cli.get_or("csv", "?"), "/tmp/x");
  EXPECT_FALSE(cli.get("missing").has_value());
}

TEST(Cli, ParsesKeySpaceValue) {
  std::vector<std::string> args{"prog", "--scale", "tiny"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_or("scale", "?"), "tiny");
}

TEST(Cli, BareFlagIsTruthy) {
  std::vector<std::string> args{"prog", "--verbose"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, PositionalArguments) {
  std::vector<std::string> args{"prog", "fft", "--scale=tiny", "extra"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "fft");
  EXPECT_EQ(cli.positional()[1], "extra");
}

TEST(Cli, NumericAccessors) {
  std::vector<std::string> args{"prog", "--n=42", "--x=2.5"};
  auto argv = argv_of(args);
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0), 2.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "longheader"});
  t.add_row({"xxxx", "1"});
  const std::string s = t.to_string();
  // Header and row lines must have matching column starts.
  std::istringstream is(s);
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(header.find("longheader"), row.find("1"));
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, CsvRoundTrip) {
  Table t({"app", "speedup"});
  t.add_row({"fft", "3.14"});
  t.add_row({"with,comma", "1"});
  const std::string path = "/tmp/svmsim_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string l0, l1, l2, l3;
  std::getline(in, l0);  // provenance comment row (see docs/tracing.md)
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l0.rfind("# build: svmsim ", 0), 0u) << l0;
  EXPECT_EQ(l1, "app,speedup");
  EXPECT_EQ(l2, "fft,3.14");
  EXPECT_EQ(l3, "\"with,comma\",1");
  std::remove(path.c_str());
}

TEST(MaxSlowdown, FirstVsLastPoint) {
  // Speedups 4.0 (first/fast endpoint) and 2.0 (last/slow): 100% slowdown.
  std::vector<AppRun> runs{run_with_speedup(400, 100),
                           run_with_speedup(400, 150),
                           run_with_speedup(400, 200)};
  EXPECT_DOUBLE_EQ(max_slowdown_pct(runs), 100.0);
}

TEST(MaxSlowdown, NegativeWhenLastPointIsFaster) {
  // Speedups 2.0 then 4.0: the "slowdown" is a 50% speedup.
  std::vector<AppRun> runs{run_with_speedup(400, 200),
                           run_with_speedup(400, 100)};
  EXPECT_DOUBLE_EQ(max_slowdown_pct(runs), -50.0);
}

TEST(MaxSlowdown, FewerThanTwoRunsIsZero) {
  EXPECT_DOUBLE_EQ(max_slowdown_pct({}), 0.0);
  std::vector<AppRun> one{run_with_speedup(400, 100)};
  EXPECT_DOUBLE_EQ(max_slowdown_pct(one), 0.0);
}

TEST(MaxSlowdown, InvalidFirstPointIsZeroNotMinus100) {
  // A zero/invalid first point used to slip past the guard (only the last
  // point was checked) and silently report -100%.
  std::vector<AppRun> runs{run_with_speedup(400, 0),
                           run_with_speedup(400, 100)};
  EXPECT_DOUBLE_EQ(max_slowdown_pct(runs), 0.0);
}

TEST(MaxSlowdown, InvalidLastPointIsZero) {
  std::vector<AppRun> runs{run_with_speedup(400, 100),
                           run_with_speedup(400, 0)};
  EXPECT_DOUBLE_EQ(max_slowdown_pct(runs), 0.0);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace svmsim::harness
