file(REMOVE_RECURSE
  "CMakeFiles/fig01_speedups.dir/fig01_speedups.cpp.o"
  "CMakeFiles/fig01_speedups.dir/fig01_speedups.cpp.o.d"
  "fig01_speedups"
  "fig01_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
