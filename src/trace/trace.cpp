#include "trace/trace.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace svmsim::trace {

[[nodiscard]] std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::kPage: return "page";
    case Category::kLock: return "lock";
    case Category::kNet: return "net";
    case Category::kIrq: return "irq";
    case Category::kSched: return "sched";
    case Category::kCount: break;
  }
  return "?";
}

std::optional<std::uint32_t> parse_mask(std::string_view csv) {
  if (csv.empty() || csv == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string_view item = csv.substr(
        pos, comma == std::string_view::npos ? csv.size() - pos : comma - pos);
    if (!item.empty()) {
      bool found = false;
      for (int i = 0; i < kCategories; ++i) {
        if (item == to_string(static_cast<Category>(i))) {
          mask |= 1u << i;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return mask;
}

std::string mask_to_string(std::uint32_t mask) {
  if ((mask & kAllCategories) == kAllCategories) return "all";
  std::string out;
  for (int i = 0; i < kCategories; ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) out += ',';
      out += to_string(static_cast<Category>(i));
    }
  }
  return out;
}

Category category_of(Event e) noexcept {
  switch (e) {
    case Event::kPageFault:
    case Event::kPageFetch:
    case Event::kPageInstall:
    case Event::kTwinCreate:
    case Event::kDiffCreate:
    case Event::kDiffApply:
    case Event::kPageInval:
    case Event::kWriteNotices:
      return Category::kPage;
    case Event::kLockLocal:
    case Event::kLockRequest:
    case Event::kLockGrant:
    case Event::kLockRecall:
    case Event::kTokenReturn:
    case Event::kBarrierEnter:
    case Event::kBarrierExit:
      return Category::kLock;
    case Event::kMsgSend:
    case Event::kMsgDeliver:
    case Event::kPacketTx:
    case Event::kNiTx:
    case Event::kNiRx:
    case Event::kIoBus:
    case Event::kUpdateSend:
    case Event::kNiOverflow:
    case Event::kLinkHop:
      return Category::kNet;
    case Event::kIrqIssue:
    case Event::kPollDeliver:
    case Event::kHandlerSpan:
      return Category::kIrq;
    case Event::kTimeSpan:
    case Event::kCount:
      break;
  }
  return Category::kSched;
}

std::string_view to_string(Event e) noexcept {
  switch (e) {
    case Event::kPageFault: return "page-fault";
    case Event::kPageFetch: return "page-fetch";
    case Event::kPageInstall: return "page-install";
    case Event::kTwinCreate: return "twin-create";
    case Event::kDiffCreate: return "diff-create";
    case Event::kDiffApply: return "diff-apply";
    case Event::kPageInval: return "page-inval";
    case Event::kWriteNotices: return "write-notices";
    case Event::kLockLocal: return "lock-local";
    case Event::kLockRequest: return "lock-request";
    case Event::kLockGrant: return "lock-grant";
    case Event::kLockRecall: return "lock-recall";
    case Event::kTokenReturn: return "token-return";
    case Event::kBarrierEnter: return "barrier-enter";
    case Event::kBarrierExit: return "barrier-exit";
    case Event::kMsgSend: return "msg-send";
    case Event::kMsgDeliver: return "msg-deliver";
    case Event::kPacketTx: return "packet-tx";
    case Event::kNiTx: return "ni-tx";
    case Event::kNiRx: return "ni-rx";
    case Event::kIoBus: return "io-bus";
    case Event::kUpdateSend: return "update-send";
    case Event::kNiOverflow: return "ni-overflow";
    case Event::kIrqIssue: return "irq-issue";
    case Event::kPollDeliver: return "poll-deliver";
    case Event::kHandlerSpan: return "handler";
    case Event::kTimeSpan: return "time-span";
    case Event::kLinkHop: return "link-hop";
    case Event::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Counters serialization (the whole-sim oracle contract)
// ---------------------------------------------------------------------------

std::array<std::uint64_t, kCounterCount> counters_to_array(
    const Counters& c) noexcept {
  return {c.page_faults,        c.read_faults,
          c.write_faults,       c.page_fetches,
          c.local_lock_acquires, c.remote_lock_acquires,
          c.barriers,           c.messages_sent,
          c.packets_sent,       c.bytes_sent,
          c.interrupts,         c.polled_requests,
          c.twins_created,      c.diffs_created,
          c.diff_bytes,         c.write_notices,
          c.invalidations,      c.updates_sent,
          c.update_bytes,       c.ni_queue_overflows};
}

Counters counters_from_array(
    const std::array<std::uint64_t, kCounterCount>& a) noexcept {
  Counters c;
  c.page_faults = a[0];
  c.read_faults = a[1];
  c.write_faults = a[2];
  c.page_fetches = a[3];
  c.local_lock_acquires = a[4];
  c.remote_lock_acquires = a[5];
  c.barriers = a[6];
  c.messages_sent = a[7];
  c.packets_sent = a[8];
  c.bytes_sent = a[9];
  c.interrupts = a[10];
  c.polled_requests = a[11];
  c.twins_created = a[12];
  c.diffs_created = a[13];
  c.diff_bytes = a[14];
  c.write_notices = a[15];
  c.invalidations = a[16];
  c.updates_sent = a[17];
  c.update_bytes = a[18];
  c.ni_queue_overflows = a[19];
  return c;
}

std::string_view counter_name(int i) noexcept {
  constexpr std::string_view names[kCounterCount] = {
      "page_faults",        "read_faults",
      "write_faults",       "page_fetches",
      "local_lock_acquires", "remote_lock_acquires",
      "barriers",           "messages_sent",
      "packets_sent",       "bytes_sent",
      "interrupts",         "polled_requests",
      "twins_created",      "diffs_created",
      "diff_bytes",         "write_notices",
      "invalidations",      "updates_sent",
      "update_bytes",       "ni_queue_overflows"};
  return i >= 0 && i < kCounterCount ? names[i] : "?";
}

Category counter_category(int i) noexcept {
  switch (i) {
    case 0: case 1: case 2: case 3:            // faults / fetches
    case 12: case 13: case 14: case 15: case 16:  // twins/diffs/notices/invals
      return Category::kPage;
    case 4: case 5: case 6:                    // locks, barriers
      return Category::kLock;
    case 10: case 11:                          // interrupts, polled requests
      return Category::kIrq;
    default:                                   // messages/packets/bytes/...
      return Category::kNet;
  }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

std::string build_provenance() {
  std::string s = "svmsim ";
#ifdef SVMSIM_GIT_DESCRIBE
  s += SVMSIM_GIT_DESCRIBE;
#else
  s += "unknown";
#endif
#ifdef SVMSIM_SCHEDULER_HEAP
  s += " scheduler=heap";
#else
  s += " scheduler=tiered";
#endif
#ifdef SVMSIM_SANITIZE_FLAGS
  s += " sanitize=";
  s += (SVMSIM_SANITIZE_FLAGS[0] != '\0') ? SVMSIM_SANITIZE_FLAGS : "off";
#elif defined(SVMSIM_POOL_PARANOID)
  s += " sanitize=on";
#else
  s += " sanitize=off";
#endif
#ifdef SVMSIM_TRACE_DISABLED
  s += " trace=compiled-out";
#else
  s += " trace=compiled-in";
#endif
  return s;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

// Recycled chunk storage, mirroring the engine's frame-pool discipline: a
// Tracer returns its chunks here on destruction and the next traced run on
// this thread reuses them, so repeated traced runs (sweeps) reach a
// zero-allocation steady state. Sanitize builds skip recycling so ASan sees
// true object lifetimes.
std::vector<std::unique_ptr<Tracer::Chunk>>& Tracer::freelist() {
  thread_local std::vector<std::unique_ptr<Chunk>> fl;
  return fl;
}

Tracer::Tracer(const Config& cfg, int procs, int nodes)
    : mask_(cfg.mask), path_(cfg.path), procs_(procs), nodes_(nodes) {}

Tracer::~Tracer() {
#ifndef SVMSIM_POOL_PARANOID
  auto& fl = freelist();
  for (auto& c : chunks_) {
    c->n = 0;
    fl.push_back(std::move(c));
  }
#endif
}

void Tracer::next_chunk() {
#ifndef SVMSIM_POOL_PARANOID
  auto& fl = freelist();
  if (!fl.empty()) {
    chunks_.push_back(std::move(fl.back()));
    fl.pop_back();
    cur_ = chunks_.back().get();
    cur_->n = 0;
    return;
  }
#endif
  chunks_.push_back(std::make_unique<Chunk>());
  cur_ = chunks_.back().get();
}

TraceFile Tracer::capture(const Stats& stats, Cycles end_time) const {
  TraceFile f;
  f.mask = mask_;
  f.procs = procs_;
  f.nodes = nodes_;
  f.end_time = end_time;
  f.provenance = build_provenance();
  f.stats = stats;
  f.records.reserve(count_);
  for (const auto& c : chunks_) {
    f.records.insert(f.records.end(), c->recs.begin(), c->recs.begin() + c->n);
  }
  return f;
}

void Tracer::finish(const Stats& stats, Cycles end_time) {
  if (path_.empty()) return;
  write_file(capture(stats, end_time), path_);
}

// ---------------------------------------------------------------------------
// Binary file format (native-endian; see docs/tracing.md)
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'S', 'V', 'M', 'T', 'R', 'A', 'C', 'E'};

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t mask;
  std::int32_t procs;
  std::int32_t nodes;
  std::uint64_t end_time;
  std::uint64_t record_count;
  std::uint32_t provenance_bytes;
  std::uint32_t counter_count;
};
static_assert(sizeof(FileHeader) == 48);

template <class T>
void put(std::ofstream& out, const T* p, std::size_t n) {
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <class T>
void get(std::ifstream& in, T* p, std::size_t n) {
  in.read(reinterpret_cast<char*>(p),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("trace: truncated file");
}

}  // namespace

void write_file(const TraceFile& f, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("trace: cannot open " + tmp);

    FileHeader h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = f.version;
    h.mask = f.mask;
    h.procs = f.procs;
    h.nodes = f.nodes;
    h.end_time = f.end_time;
    h.record_count = f.records.size();
    h.provenance_bytes = static_cast<std::uint32_t>(f.provenance.size());
    h.counter_count = kCounterCount;
    put(out, &h, 1);
    put(out, f.provenance.data(), f.provenance.size());
    for (int p = 0; p < f.stats.procs(); ++p) {
      put(out, f.stats.proc(p).t.data(), static_cast<std::size_t>(kTimeCats));
    }
    const auto counters = counters_to_array(f.stats.counters());
    put(out, counters.data(), counters.size());
    put(out, f.records.data(), f.records.size());
    if (!out) throw std::runtime_error("trace: write failed for " + tmp);
  }
  // Atomic publish: an interrupted run can never leave a truncated trace.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("trace: rename to " + path + " failed");
  }
}

TraceFile read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);

  FileHeader h{};
  get(in, &h, 1);
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: " + path + " is not a svmsim trace");
  }
  if (h.version != kFormatVersion) {
    throw std::runtime_error("trace: " + path + " has format version " +
                             std::to_string(h.version) + ", expected " +
                             std::to_string(kFormatVersion));
  }
  if (h.counter_count != kCounterCount) {
    throw std::runtime_error("trace: " + path + " counter count mismatch");
  }

  TraceFile f;
  f.version = h.version;
  f.mask = h.mask;
  f.procs = h.procs;
  f.nodes = h.nodes;
  f.end_time = h.end_time;
  f.provenance.resize(h.provenance_bytes);
  if (h.provenance_bytes > 0) get(in, f.provenance.data(), f.provenance.size());
  f.stats = Stats(h.procs);
  for (int p = 0; p < h.procs; ++p) {
    get(in, f.stats.proc(p).t.data(), static_cast<std::size_t>(kTimeCats));
  }
  std::array<std::uint64_t, kCounterCount> counters{};
  get(in, counters.data(), counters.size());
  f.stats.counters() = counters_from_array(counters);
  f.records.resize(h.record_count);
  if (h.record_count > 0) get(in, f.records.data(), f.records.size());
  return f;
}

}  // namespace svmsim::trace
