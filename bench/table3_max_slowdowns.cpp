// Table 3: maximum slowdowns with respect to each communication parameter
// over the experimental range (negative numbers indicate speedups).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  struct Param {
    const char* name;
    std::vector<double> endpoints;  // best-first, worst-last
    std::function<void(SimConfig&, double)> apply;
  };
  const std::vector<Param> params = {
      {"host overhead",
       {0, 2000},
       [](SimConfig& c, double v) {
         c.comm.host_overhead = static_cast<Cycles>(v);
       }},
      {"NI occupancy",
       {0, 4000},
       [](SimConfig& c, double v) {
         c.comm.ni_occupancy = static_cast<Cycles>(v);
       }},
      {"I/O bandwidth",
       {2.0, 0.125},
       [](SimConfig& c, double v) { c.comm.io_bus_mb_per_mhz = v; }},
      {"interrupt cost",
       {0, 5000},
       [](SimConfig& c, double v) {
         c.comm.interrupt_cost = static_cast<Cycles>(v);
       }},
      {"page size",
       {1024, 16384},
       [](SimConfig& c, double v) {
         c.comm.page_bytes = static_cast<std::uint32_t>(v);
       }},
      {"procs/node",
       {1, 8},
       [](SimConfig& c, double v) {
         c.comm.procs_per_node = static_cast<int>(v);
       }},
  };

  std::vector<std::string> header{"application"};
  for (const auto& p : params) header.emplace_back(p.name);
  harness::Table t(header);

  // One flat batch: every (app, parameter, endpoint) point is independent.
  std::vector<harness::SweepPoint> points;
  for (const auto& app : opt.app_names) {
    for (const auto& p : params) {
      for (double v : p.endpoints) {
        harness::SweepPoint pt{app, bench::base_config(), v};
        p.apply(pt.cfg, v);
        points.push_back(std::move(pt));
      }
    }
  }
  auto all = sweep.run_points(points, opt.pool());

  auto it = all.begin();
  for (const auto& app : opt.app_names) {
    std::vector<std::string> row{app};
    for (const auto& p : params) {
      std::vector<harness::AppRun> runs(
          std::make_move_iterator(it),
          std::make_move_iterator(
              it + static_cast<std::ptrdiff_t>(p.endpoints.size())));
      it += static_cast<std::ptrdiff_t>(p.endpoints.size());
      row.push_back(harness::fmt(harness::max_slowdown_pct(runs), 1) + "%");
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    t.add_row(std::move(row));
  }
  std::fprintf(stderr, "\n");
  std::printf(
      "== Table 3: max slowdown between range endpoints per parameter ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "table3");
  return 0;
}
