// stress-gen: a seed-deterministic, data-race-free fuzz workload for the
// consistency checker (src/check/).
//
// Unlike the SPLASH-2 ports, this program computes nothing from the paper —
// it exists to exercise protocol corners: per-slot lock-guarded
// read-modify-writes on a falsely-shared counter array, a rotating-writer
// "ring" whose adjacent cells interleave every processor's writes on every
// page, per-processor block regions rewritten with split block ops each
// round, and barrier-ordered cross-processor verification reads. Every
// access is ordered by a lock or a barrier at 4-byte-word granularity, so
// under a correct protocol every verification read is exact and the shadow
// oracle can judge every word (no abstentions on the values we check).
//
// Everything derives from the seed via RoundPlan, which is replayed in
// validate() to recompute the expected lock tallies — there is no host-side
// mutable oracle that could paper over a protocol bug. The registry name is
// "stress-gen@<seed>", so a sweep treats each seed as a distinct app (its
// uniprocessor baseline is cached per name).
#include <cstdint>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  Rng g(a * 0x9e3779b97f4a7c15ull + b * 0xd1b54a32d192ed03ull +
        c * 0x2545f4914f6cdd1dull);
  return g.next();
}

class StressGenApp final : public Application {
 public:
  /// Tag for the bounded-iteration micro profile ("stress-micro@<seed>"):
  /// the same program shape, sized for exhaustive schedule exploration —
  /// the round/array/lock-op counts are small enough that a two-node run's
  /// full interleaving tree stays in the thousands of schedules.
  struct Micro {};

  StressGenApp(Micro, Scale scale, std::uint64_t seed)
      : Application(scale), seed_(seed), micro_(true) {
    rounds_ = 2;
    slots_ = 2;
    cells_ = 4;
    block_elems_ = 4;
    max_lock_ops_ = 1;
  }

  StressGenApp(Scale scale, std::uint64_t seed)
      : Application(scale), seed_(seed) {
    switch (scale) {
      case Scale::kTiny:
        rounds_ = 4;
        slots_ = 16;
        cells_ = 48;
        block_elems_ = 48;
        max_lock_ops_ = 6;
        break;
      case Scale::kSmall:
        rounds_ = 8;
        slots_ = 64;
        cells_ = 256;
        block_elems_ = 128;
        max_lock_ops_ = 16;
        break;
      case Scale::kLarge:
        rounds_ = 12;
        slots_ = 128;
        cells_ = 1024;
        block_elems_ = 256;
        max_lock_ops_ = 32;
        break;
    }
  }

  [[nodiscard]] std::string name() const override {
    return (micro_ ? "stress-micro@" : "stress-gen@") + std::to_string(seed_);
  }

  void setup(Machine& m) override {
    const auto P = static_cast<std::uint64_t>(m.total_procs());
    // Cyclic homes + dense 8-byte elements: every page of counters/ring
    // carries many processors' words (false-sharing-heavy by construction).
    counters_ = SharedArray<std::uint64_t>::alloc(m, slots_,
                                                  Distribution::cyclic());
    ring_ = SharedArray<std::uint64_t>::alloc(m, cells_,
                                              Distribution::cyclic());
    blocks_ = SharedArray<std::uint64_t>::alloc(m, P * block_elems_,
                                                Distribution::block());
    mismatches_ = 0;
  }

  engine::Task<void> body(Machine& m, ProcId pid) override {
    Shm shm(m, pid);
    const int P = shm.nprocs();
    std::vector<std::uint64_t> buf(block_elems_);
    for (std::uint32_t r = 0; r < rounds_; ++r) {
      const RoundPlan pl = make_plan(r, pid, P);

      // -- Phase A: exclusive writes (word-disjoint across processors) ----
      // Ring cells owned this round: writer rotates with the round.
      for (std::uint64_t c = first_cell(r, pid, P); c < cells_;
           c += static_cast<std::uint64_t>(P)) {
        co_await ring_.put(shm, c, cell_value(c, r));
      }
      // Own block region, rewritten as two split block stores.
      const std::uint64_t b0 = static_cast<std::uint64_t>(pid) * block_elems_;
      for (std::uint64_t i = 0; i < block_elems_; ++i) {
        buf[i] = block_value(pid, r, i);
      }
      co_await blocks_.put_block(shm, b0, buf.data(), pl.block_split);
      co_await blocks_.put_block(shm, b0 + pl.block_split,
                                 buf.data() + pl.block_split,
                                 block_elems_ - pl.block_split);
      // Lock-guarded read-modify-writes on random falsely-shared slots.
      for (const LockOp& op : pl.lock_ops) {
        co_await shm.lock(kLockBase + static_cast<int>(op.slot));
        const std::uint64_t v = co_await counters_.get(shm, op.slot);
        co_await counters_.put(shm, op.slot, v + op.amount);
        co_await shm.unlock(kLockBase + static_cast<int>(op.slot));
      }
      shm.compute(pl.think);
      co_await shm.barrier();

      // -- Phase B: cross-processor verification reads (barrier-ordered) --
      // The next processor around the ring checks every cell we just wrote.
      const int prev = (pid + 1) % P;
      for (std::uint64_t c = first_cell(r, prev, P); c < cells_;
           c += static_cast<std::uint64_t>(P)) {
        const std::uint64_t got = co_await ring_.get(shm, c);
        if (got != cell_value(c, r)) ++mismatches_;
      }
      // A random peer's freshly-written block region.
      const std::uint64_t q0 =
          static_cast<std::uint64_t>(pl.peer) * block_elems_;
      co_await blocks_.get_block(shm, q0, buf.data(), block_elems_);
      for (std::uint64_t i = 0; i < block_elems_; ++i) {
        if (buf[i] != block_value(pl.peer, r, i)) ++mismatches_;
      }
      // A few random single-cell probes.
      for (std::uint32_t c : pl.probe_cells) {
        const std::uint64_t got = co_await ring_.get(shm, c);
        if (got != cell_value(c, r)) ++mismatches_;
      }
      // Second barrier: phase-B reads must not race round r+1's writes.
      co_await shm.barrier();
    }
  }

  bool validate(Machine& m) override {
    const int P = m.total_procs();
    bool ok = mismatches_ == 0;
    // Replay every processor's plan to recompute the lock tallies.
    std::vector<std::uint64_t> want(slots_, 0);
    for (std::uint32_t r = 0; r < rounds_; ++r) {
      for (int pid = 0; pid < P; ++pid) {
        for (const LockOp& op : make_plan(r, pid, P).lock_ops) {
          want[op.slot] += op.amount;
        }
      }
    }
    for (std::uint64_t s = 0; s < slots_; ++s) {
      ok &= counters_.debug_get(m, s) == want[s];
    }
    const std::uint32_t last = rounds_ - 1;
    for (std::uint64_t c = 0; c < cells_; ++c) {
      ok &= ring_.debug_get(m, c) == cell_value(c, last);
    }
    for (int p = 0; p < P; ++p) {
      for (std::uint64_t i = 0; i < block_elems_; ++i) {
        ok &= blocks_.debug_get(
                  m, static_cast<std::uint64_t>(p) * block_elems_ + i) ==
              block_value(p, last, i);
      }
    }
    return ok;
  }

 private:
  static constexpr int kLockBase = 64;

  struct LockOp {
    std::uint32_t slot;
    std::uint64_t amount;
  };
  struct RoundPlan {
    std::vector<LockOp> lock_ops;
    std::uint64_t block_split;  // first block store covers [0, split)
    int peer;                   // whose block region phase B verifies
    std::vector<std::uint32_t> probe_cells;
    Cycles think;
  };

  /// Smallest ring cell owned by `pid` in round `r`: cell c belongs to
  /// processor (c + r) % P, so ownership rotates every round.
  [[nodiscard]] static std::uint64_t first_cell(std::uint32_t r, int pid,
                                                int P) {
    const auto p = static_cast<std::uint64_t>(P);
    return (static_cast<std::uint64_t>(pid) + p - r % p) % p;
  }

  [[nodiscard]] std::uint64_t cell_value(std::uint64_t c,
                                         std::uint32_t r) const {
    return mix3(seed_, 0x11u, c * 131u + r);
  }
  [[nodiscard]] std::uint64_t block_value(int p, std::uint32_t r,
                                          std::uint64_t i) const {
    return mix3(seed_, 0x22u,
                (static_cast<std::uint64_t>(p) << 40) + (i << 8) + r);
  }

  /// Deterministic per-(round, processor) schedule; replayed by validate().
  /// The rng draw sequence is P-independent, so a plan only depends on P
  /// through the values (peer id), never through the stream position.
  [[nodiscard]] RoundPlan make_plan(std::uint32_t r, int pid, int P) const {
    Rng rng(mix3(seed_, r, static_cast<std::uint64_t>(pid)));
    RoundPlan pl;
    const std::uint32_t n_ops = 1 + rng.below(max_lock_ops_);
    pl.lock_ops.reserve(n_ops);
    for (std::uint32_t i = 0; i < n_ops; ++i) {
      pl.lock_ops.push_back({rng.below(static_cast<std::uint32_t>(slots_)),
                             1 + rng.next() % 997});
    }
    pl.block_split =
        1 + rng.below(static_cast<std::uint32_t>(block_elems_ - 1));
    pl.peer = static_cast<int>(rng.below(static_cast<std::uint32_t>(P)));
    const std::uint32_t probes = 2 + rng.below(4);
    for (std::uint32_t i = 0; i < probes; ++i) {
      pl.probe_cells.push_back(rng.below(static_cast<std::uint32_t>(cells_)));
    }
    pl.think = rng.below(256);
    return pl;
  }

  std::uint64_t seed_;
  bool micro_ = false;
  std::uint32_t rounds_;
  std::uint64_t slots_;
  std::uint64_t cells_;
  std::uint64_t block_elems_;
  std::uint32_t max_lock_ops_;

  SharedArray<std::uint64_t> counters_;
  SharedArray<std::uint64_t> ring_;
  SharedArray<std::uint64_t> blocks_;
  std::uint64_t mismatches_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_stress_gen(Scale scale, std::uint64_t seed) {
  return std::make_unique<StressGenApp>(scale, seed);
}

std::unique_ptr<Application> make_stress_micro(Scale scale,
                                               std::uint64_t seed) {
  return std::make_unique<StressGenApp>(StressGenApp::Micro{}, scale, seed);
}

}  // namespace svmsim::apps
