// Split-transaction memory bus with fixed-priority arbitration (paper §2):
// priorities, in decreasing order: NI outgoing path, second-level cache,
// write buffer, memory (reply phase), NI incoming path.
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "engine/resource.hpp"
#include "engine/simulator.hpp"

namespace svmsim::memsys {

enum class BusMaster : int {
  kNIOut = 0,
  kL2 = 1,
  kWriteBuffer = 2,
  kMemory = 3,
  kNIIn = 4,
};

class MemoryBus {
 public:
  MemoryBus(engine::Simulator& sim, const ArchParams& arch)
      : arch_(&arch), res_(sim, arch.membus_arbitration_cycles) {}

  /// CPU cycles the data phase of a `bytes`-byte transfer occupies.
  [[nodiscard]] Cycles transfer_cycles(std::uint64_t bytes) const {
    const std::uint64_t bus_cycles =
        (bytes + arch_->membus_bytes_per_bus_cycle - 1) /
        arch_->membus_bytes_per_bus_cycle;
    return bus_cycles * arch_->membus_cpu_per_bus_cycle;
  }

  /// Arbitrate and occupy the bus for a `bytes` transfer.
  engine::Task<void> transaction(BusMaster m, std::uint64_t bytes) {
    return res_.serve(static_cast<int>(m), transfer_cycles(bytes));
  }

  [[nodiscard]] Cycles busy_cycles() const { return res_.busy_cycles(); }
  [[nodiscard]] Cycles busy_until() const { return res_.busy_until(); }
  [[nodiscard]] std::uint64_t grants() const { return res_.grants(); }

 private:
  const ArchParams* arch_;
  engine::PriorityResource res_;
};

}  // namespace svmsim::memsys
