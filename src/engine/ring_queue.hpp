// A vector-backed circular FIFO for the simulator's hot queues.
//
// std::deque allocates and frees fixed-size chunks as elements cross chunk
// boundaries, so a steady message stream through a NIC queue (or a stream of
// blocked coroutines through a semaphore) keeps the allocator busy forever.
// RingQueue grows like a vector (amortized, power-of-two capacity) and then
// never touches the heap again: steady-state push/pop is index arithmetic.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::engine {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Pre-size the backing store to hold at least `n` elements (rounded up to
  /// a power of two) without further allocation. Keeps existing elements.
  void reserve(std::size_t n) {
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < n) cap *= 2;
    if (cap > buf_.size()) grow_to(cap);
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow_to(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }

  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  /// Element `i` positions behind the front, without popping.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T{};  // release resources held by the slot now
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow_to(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// A timestamped single-producer/single-consumer channel: the cross-partition
/// link of the PDES mode (docs/engine.md, "PDES mode"). The producing
/// partition appends (when, key, item) records to an *open batch* during its
/// window, then seals the whole batch with a single atomic ring-slot publish
/// at the window boundary; the consuming partition splices every sealed
/// batch into its scheduler's wire band in one call per batch.
///
/// Concurrency contract: one producer thread (push/seal), one consumer
/// thread (drain). The seal/drain counters are the only shared state — a
/// seal is one release store, a drain pass one acquire load — so batch
/// contents cross threads without locks and each window costs one publish
/// per (src, dst) pair instead of one per record. The window protocol bounds
/// the in-flight depth: a batch sealed before a barrier crossing is drained
/// right after it, and a producer can run at most one window ahead of a slow
/// consumer, so at most two sealed batches ever coexist (kSlots = 4 leaves
/// slack, enforced by assert).
///
/// Batch vectors ping-pong between the open slot and the ring: seal swaps
/// the open vector into a slot and takes back the capacity the consumer's
/// clear left behind, so a warmed channel never allocates.
template <typename T>
class TimedChannel {
 public:
  struct Entry {
    Cycles when = 0;
    std::uint64_t key = 0;
    T item{};
  };
  using Batch = std::vector<Entry>;

  /// Producer: append a record to the open batch for delivery at `when`.
  void push(Cycles when, std::uint64_t key, T item) {
    if (when < open_min_) open_min_ = when;
    open_.push_back(Entry{when, key, std::move(item)});
  }

  /// Producer: smallest timestamp in the open (unsealed) batch, kNever when
  /// the open batch is empty.
  [[nodiscard]] Cycles open_min() const noexcept { return open_min_; }
  [[nodiscard]] std::size_t open_size() const noexcept { return open_.size(); }

  /// Producer: publish the open batch as one sealed ring slot and start a
  /// fresh one. Returns the smallest timestamp in the sealed batch — the
  /// caller's in-flight lower bound for the window about to open — or kNever
  /// when there was nothing to seal (and no slot is consumed).
  Cycles seal() {
    if (open_.empty()) return kNever;
    const std::uint64_t s = sealed_.load(std::memory_order_relaxed);
    assert(s - drained_.load(std::memory_order_acquire) < kSlots &&
           "channel ring overflow: consumer more than a window behind");
    const Cycles m = open_min_;
    slots_[s % kSlots].swap(open_);  // take the drained slot's capacity back
    open_min_ = kNever;
    sealed_.store(s + 1, std::memory_order_release);
    return m;
  }

  /// Consumer: take every sealed batch, oldest first. `f` is called as
  /// f(Batch&) once per batch and must consume its entries (they are cleared
  /// on return). Record order within and across batches is production
  /// order; final delivery order is re-established by the scheduler's wire
  /// band, so this is only a transport order.
  template <typename F>
  void drain(F&& f) {
    std::uint64_t d = drained_.load(std::memory_order_relaxed);
    const std::uint64_t s = sealed_.load(std::memory_order_acquire);
    while (d != s) {
      Batch& b = slots_[d % kSlots];
      f(b);
      b.clear();
      drained_.store(++d, std::memory_order_release);
    }
  }

  /// Sealed, undrained batch count (exact only when quiescent).
  [[nodiscard]] std::size_t sealed_batches() const noexcept {
    return static_cast<std::size_t>(sealed_.load(std::memory_order_acquire) -
                                    drained_.load(std::memory_order_acquire));
  }

  /// True when nothing is open or in flight (quiescent callers only).
  [[nodiscard]] bool empty() const noexcept {
    return open_.empty() && sealed_batches() == 0;
  }

  /// Drop everything without delivering (teardown of a stopped run;
  /// single-threaded).
  void clear() {
    open_.clear();
    open_min_ = kNever;
    std::uint64_t d = drained_.load(std::memory_order_relaxed);
    const std::uint64_t s = sealed_.load(std::memory_order_relaxed);
    while (d != s) slots_[d++ % kSlots].clear();
    drained_.store(d, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kSlots = 4;

  // Producer side.
  Batch open_;
  Cycles open_min_ = kNever;
  // Shared ring: slots_[i] is owned by the producer from swap to seal and by
  // the consumer from its acquire of the seal to its release of the drain.
  Batch slots_[kSlots];
  std::atomic<std::uint64_t> sealed_{0};
  std::atomic<std::uint64_t> drained_{0};
};

}  // namespace svmsim::engine
