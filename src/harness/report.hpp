// Table and CSV output for the bench harness: prints the rows/series the
// paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace svmsim::harness {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render to stdout.
  void print() const;
  /// Write as CSV to `path` (parent directory must exist).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);

/// If `csv_dir` is non-empty, write `table` to `<csv_dir>/<name>.csv`.
void maybe_write_csv(const Table& table, const std::string& csv_dir,
                     const std::string& name);

}  // namespace svmsim::harness
