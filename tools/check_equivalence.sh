#!/usr/bin/env bash
# Prove the consistency checker is observationally inert: build a second tree
# with -DSVMSIM_CHECK=OFF, run sweep_dump in three configurations —
# compiled-in/runtime-off, compiled-out, and compiled-in/runtime-on
# (--check-consistency) — and diff the output byte-for-byte. The checker may
# watch a run but must never change it. Run by ctest as the
# check_equivalence test.
#
#   tools/check_equivalence.sh <build_dir> [sanitize]
#
#   build_dir   an already-built default (-DSVMSIM_CHECK=ON) tree
#   sanitize    that tree's SVMSIM_SANITIZE value, propagated to the second
#               build so the check also runs under ASan/UBSan (default: none)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: check_equivalence.sh <build_dir> [sanitize]}"
sanitize="${2:-}"

alt_dir="$build_dir/check-off"
cmake -S "$repo_root" -B "$alt_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_CHECK=OFF \
  -DSVMSIM_SANITIZE="$sanitize" > "$alt_dir.cmake.log" 2>&1 \
  || { cat "$alt_dir.cmake.log"; exit 1; }
cmake --build "$alt_dir" --target sweep_dump -j "$(nproc)" \
  > "$alt_dir.build.log" 2>&1 || { cat "$alt_dir.build.log"; exit 1; }

"$build_dir/bench/sweep_dump" > "$alt_dir/dump-check-in.txt"
"$alt_dir/bench/sweep_dump" > "$alt_dir/dump-check-out.txt"
# Runtime-on also gates on zero violations (sweep_dump exits 1 otherwise),
# so this doubles as a clean-run smoke of the checker on the reference sweep.
"$build_dir/bench/sweep_dump" --check-consistency > "$alt_dir/dump-check-on.txt"

for arm in out on; do
  if ! diff -u "$alt_dir/dump-check-in.txt" "$alt_dir/dump-check-$arm.txt"; then
    echo "check_equivalence: checker compiled-in vs $arm DIVERGES" >&2
    exit 1
  fi
done
echo "check_equivalence: in == out == on ($(wc -l < "$alt_dir/dump-check-in.txt") lines identical)"
