#include "svm/aurc.hpp"

#include <any>
#include <cassert>
#include <cstring>
#include <memory>
#include <utility>

namespace svmsim::svm {

using engine::Task;

void AurcAgent::install() {
  SvmAgent::install();
  comm_->set_on_update([this](const net::Message& m) { apply_update(m); });
}

Task<void> AurcAgent::arm_write(Processor& p, PageId page, PageCopy& c) {
  (void)p;
  if (home_of(page) != self_) c.au_active = true;  // snooping device armed
  co_return;
}

void AurcAgent::on_store(Processor& p, PageId page, PageCopy& c,
                         std::uint32_t offset, std::uint32_t len) {
  (void)p;
  if (!c.au_active) return;
  homes_touched_.insert(home_of(page));
  Run& r = runs_[page];
  const std::uint32_t max_run = cfg_->arch.mtu_payload_bytes - 16;
  if (r.active && offset == r.end && (r.end + len - r.start) <= max_run) {
    r.end += len;
    return;
  }
  if (r.active) emit_run(page, r);
  r.start = offset;
  r.end = offset + len;
  r.active = true;
}

void AurcAgent::emit_run(PageId page, Run& run) {
  PageCopy& c = space_->copy(self_, page);
  const std::uint32_t len = run.end - run.start;
  auto data = std::make_shared<std::vector<std::byte>>(
      c.data.begin() + run.start, c.data.begin() + run.start + len);
  net::Message m;
  m.type = net::MsgType::kUpdate;
  m.src = self_;
  m.dst = home_of(page);
  m.page = page;
  m.offset = run.start;
  m.payload_bytes = 16 + len;
  m.body = std::move(data);
  run.active = false;
  // The AU device posts straight into the NI (the pairwise one, keeping
  // update order per home): no host processor involvement.
  engine::spawn(comm_->nic_for(m.dst).post(std::move(m)));
}

void AurcAgent::apply_update(const net::Message& m) {
  const auto& data =
      *std::any_cast<const std::shared_ptr<std::vector<std::byte>>&>(m.body);
  auto home = space_->home_data(m.page);
  assert(m.offset + data.size() <= home.size());
  std::memcpy(home.data() + m.offset, data.data(), data.size());
  if (invalidate_caches) {
    invalidate_caches(m.page * space_->page_bytes() + m.offset, data.size());
  }
}

Task<void> AurcAgent::sync_homes(Processor& p,
                                 const std::unordered_set<NodeId>& homes) {
  std::vector<std::uint64_t> ids;
  for (NodeId h : homes) {
    if (h == self_) continue;
    net::Message m;
    m.type = net::MsgType::kUpdateMarker;
    m.dst = h;
    m.payload_bytes = 16;
    co_await p.drain();
    ids.push_back(comm_->rpc_post(m));
    // Marker is injected by the AU hardware behind the update stream; the
    // processor pays no host overhead.
    co_await comm_->send(std::move(m));
  }
  if (ids.empty()) co_return;
  const Cycles t0 = co_await p.wait_begin();
  for (std::uint64_t id : ids) {
    co_await comm_->await_reply(id);
  }
  p.wait_end(TimeCat::kProtocol, t0);
}

Task<void> AurcAgent::propagate_dirty(Processor& p,
                                      const std::vector<PageId>& pages) {
  for (auto& [page, run] : runs_) {
    if (run.active) emit_run(page, run);
  }
  runs_.clear();

  std::vector<PageId> in_flight;
  std::unordered_set<PageId> seen;
  for (PageId page : pages) {
    if (!seen.insert(page).second) continue;  // dirty list can hold dups
    PageCopy& c = space_->copy(self_, page);
    // See HlrcAgent::propagate_dirty: wait for in-flight flushes first.
    co_await wait_page_flush(p, page);
    if (!c.dirty) continue;
    c.dirty = false;
    c.au_active = false;
    c.state = PageState::kReadOnly;  // re-arm write detection
    if (home_of(page) != self_) {
      begin_page_flush(page);
      in_flight.push_back(page);
    }
  }

  std::unordered_set<NodeId> homes = std::move(homes_touched_);
  homes_touched_.clear();
  co_await sync_homes(p, homes);
  for (PageId page : in_flight) end_page_flush(page);
}

Task<void> AurcAgent::flush_page_for_invalidation(Processor& p, PageId page,
                                                  PageCopy& c) {
  co_await wait_page_flush(p, page);
  if (!c.dirty) co_return;
  c.dirty = false;
  c.au_active = false;
  // Demote immediately: a write racing the marker ack must fault so it
  // re-arms the AU device instead of being silently dropped.
  c.state = PageState::kReadOnly;
  auto it = runs_.find(page);
  if (it != runs_.end()) {
    if (it->second.active) emit_run(page, it->second);
    runs_.erase(it);
  }
  const NodeId h = home_of(page);
  if (h == self_) co_return;
  begin_page_flush(page);
  std::unordered_set<NodeId> homes{h};
  co_await sync_homes(p, homes);
  end_page_flush(page);
}

void AurcAgent::handle_direct(net::Message&& m) {
  if (m.type == net::MsgType::kUpdateMarker) {
    // The home NI acknowledges once every preceding update is applied (the
    // receive path is FIFO, so this point implies application). No host cost.
    net::Message ack;
    ack.type = net::MsgType::kUpdateMarkerAck;
    ack.payload_bytes = 8;
    engine::spawn(comm_->reply(m, std::move(ack)));
    return;
  }
  SvmAgent::handle_direct(std::move(m));
}

}  // namespace svmsim::svm
