file(REMOVE_RECURSE
  "CMakeFiles/fig09_bandwidth_vs_bytes.dir/fig09_bandwidth_vs_bytes.cpp.o"
  "CMakeFiles/fig09_bandwidth_vs_bytes.dir/fig09_bandwidth_vs_bytes.cpp.o.d"
  "fig09_bandwidth_vs_bytes"
  "fig09_bandwidth_vs_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bandwidth_vs_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
