// Contended hardware resources.
//
// Resource          — single FIFO server (NI processor, I/O bus, handler CPU).
// PriorityResource  — single server with fixed-priority arbitration and a
//                     per-grant arbitration delay (the split-transaction
//                     memory bus of the paper, whose arbitration takes one
//                     bus cycle and whose priority order is NI-out > L2 >
//                     write buffer > memory refill > NI-in).
//
// Both track busy time and grant counts so benches can report utilization.
// Wait lists are allocation-free in steady state: Resource queues waiters in
// a RingQueue, PriorityResource in a vector-backed binary heap (the old
// std::map paid a node allocation per contended bus grant).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "engine/ring_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

class Resource {
 public:
  explicit Resource(Simulator& sim) noexcept : sim_(&sim) {}

  /// Occupy the resource for `service` cycles, waiting in FIFO order first.
  /// This is the common use; bare acquire/release is not exposed to keep
  /// callers exception-safe (CP.20: no naked lock/unlock).
  Task<void> serve(Cycles service);

  /// Run `body` while holding the resource exclusively; the hold time is
  /// whatever simulated time `body` consumes. Used to serialize interrupt
  /// handlers on their victim processor.
  Task<void> with(std::function<Task<void>()> body);

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] Cycles busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }

  /// Lower bound on when the current grant's service completes. Exact for
  /// serve() grants (grant time + service), grant time for with() grants
  /// (body duration unknown). Meaningful only while busy(); a stale value
  /// from an earlier grant is still a valid lower bound for any future
  /// completion. The adaptive PDES window uses this to bound a suspended
  /// NIC tx pipeline's next packet launch (docs/engine.md, "PDES mode").
  [[nodiscard]] Cycles busy_until() const noexcept { return busy_until_; }

  /// Completion lower bound for the most recently submitted serve():
  /// FIFO service is back-to-back, so each submission pushes this to
  /// max(committed, now) + service. A new request submitted now completes
  /// no earlier than max(committed_until(), now) + its own service — the
  /// backlog-aware form of busy_until() (with() holds are not counted, so
  /// this stays a lower bound).
  [[nodiscard]] Cycles committed_until() const noexcept {
    return committed_until_;
  }

  /// Event-context FIFO reservation: occupy the resource for `service`
  /// cycles starting when the committed backlog drains (never before
  /// `now`), and return the completion time. The non-coroutine sibling of
  /// serve(), for callers that cannot suspend — the topology layer
  /// (src/topo/) serializes packets on a link from scheduled hop events
  /// this way. Do not mix with serve()/with() on one resource: reserve()
  /// bypasses the waiter queue and orders grants purely by submission,
  /// which is FIFO only if every grant goes through it.
  Cycles reserve(Cycles now, Cycles service) noexcept {
    const Cycles start = committed_until_ > now ? committed_until_ : now;
    committed_until_ = start + service;
    busy_until_ = committed_until_;
    busy_cycles_ += service;
    ++grants_;
    return committed_until_;
  }

 private:
  friend struct FifoWait;
  Task<void> acquire();
  void release();

  Simulator* sim_;
  bool busy_ = false;
  Cycles busy_cycles_ = 0;
  Cycles busy_until_ = 0;
  Cycles committed_until_ = 0;
  std::uint64_t grants_ = 0;
  RingQueue<std::coroutine_handle<>> waiters_;
};

class PriorityResource {
 public:
  /// `arbitration` cycles are charged on every grant, before service begins.
  PriorityResource(Simulator& sim, Cycles arbitration) noexcept
      : sim_(&sim), arbitration_(arbitration) {}

  /// Occupy the resource for `service` cycles. Lower `priority` value wins
  /// arbitration; ties are FIFO.
  Task<void> serve(int priority, Cycles service);

  [[nodiscard]] Cycles busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }

  /// Lower bound on when the current grant's occupancy (arbitration +
  /// service) completes; see Resource::busy_until().
  [[nodiscard]] Cycles busy_until() const noexcept { return busy_until_; }

 private:
  struct Waiter {
    int priority;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };
  /// Heap comparator: the *minimum* (priority, seq) must surface, so order
  /// by "greater" for std::push_heap/pop_heap max-heap semantics.
  struct After {
    bool operator()(const Waiter& a, const Waiter& b) const noexcept {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  Simulator* sim_;
  Cycles arbitration_;
  bool busy_ = false;
  Cycles busy_cycles_ = 0;
  Cycles busy_until_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Waiter> waiters_;  // binary heap, see After
};

}  // namespace svmsim::engine
