// Regression tests for core::Stats: per-processor Breakdown merge
// arithmetic, the bucket-sum invariant against execution time, the
// Counters <-> trace array mapping, and counter freshness across sweep
// points (a new run must never inherit a previous run's statistics).
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"
#include "harness/sweep.hpp"
#include "trace/trace.hpp"

namespace {

using namespace svmsim;
using test::config_with;

TEST(Breakdown, MergeSumsEveryBucket) {
  Breakdown a, b;
  for (int i = 0; i < kTimeCats; ++i) {
    a.add(static_cast<TimeCat>(i), static_cast<Cycles>(10 * (i + 1)));
    b.add(static_cast<TimeCat>(i), static_cast<Cycles>(i + 1));
  }
  a += b;
  for (int i = 0; i < kTimeCats; ++i) {
    EXPECT_EQ(a.get(static_cast<TimeCat>(i)),
              static_cast<Cycles>(11 * (i + 1)));
  }
  EXPECT_EQ(a.total(), static_cast<Cycles>(11 * kTimeCats * (kTimeCats + 1) / 2));
}

TEST(Stats, AggregateEqualsPerProcSum) {
  Stats s(4);
  for (int p = 0; p < 4; ++p) {
    s.proc(p).add(TimeCat::kCompute, static_cast<Cycles>(100 * (p + 1)));
    s.proc(p).add(TimeCat::kLockWait, static_cast<Cycles>(p));
  }
  const Breakdown agg = s.aggregate();
  EXPECT_EQ(agg.get(TimeCat::kCompute), 1000u);
  EXPECT_EQ(agg.get(TimeCat::kLockWait), 6u);
  EXPECT_EQ(s.max_local_only(), 400u);
  EXPECT_EQ(s.total_compute(), 1000u);
}

TEST(Counters, MergeCoversAllTwentyFields) {
  // Drive the += through the trace array mapping so a field added to
  // Counters without updating either the merge or the mapping fails here.
  std::array<std::uint64_t, trace::kCounterCount> av{}, bv{};
  for (int i = 0; i < trace::kCounterCount; ++i) {
    av[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i + 1);
    bv[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(100 + i);
  }
  Counters a = trace::counters_from_array(av);
  const Counters b = trace::counters_from_array(bv);
  a += b;
  const auto merged = trace::counters_to_array(a);
  for (int i = 0; i < trace::kCounterCount; ++i) {
    EXPECT_EQ(merged[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(101 + 2 * i))
        << trace::counter_name(i);
  }
}

TEST(Counters, ArrayMappingRoundtrips) {
  Counters c;
  c.page_faults = 11;
  c.bytes_sent = 1u << 20;
  c.ni_queue_overflows = 7;
  EXPECT_TRUE(trace::counters_from_array(trace::counters_to_array(c)) == c);
}

TEST(Stats, BucketSumInvariantOnRealRun) {
  // Every processor's buckets must account for its whole execution time,
  // and the machine-wide max must track the run's end time.
  SimConfig cfg = config_with(8, 4);
  auto app = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult r = svmsim::run(*app, cfg);
  ASSERT_TRUE(r.validated);
  Cycles max_total = 0;
  for (int p = 0; p < 8; ++p) {
    const Cycles sum = r.stats.proc(p).total();
    EXPECT_GT(sum, 0u) << "proc " << p;
    const double ratio = static_cast<double>(sum) / static_cast<double>(r.time);
    EXPECT_GT(ratio, 0.97) << "proc " << p;
    EXPECT_LT(ratio, 1.03) << "proc " << p;
    max_total = std::max(max_total, sum);
  }
  EXPECT_LE(r.stats.max_local_only(), max_total);
}

TEST(Stats, CountersResetBetweenSweepPoints) {
  // Two sweep points at identical configurations must report identical
  // statistics: nothing may leak from one run into the next (a fresh
  // Machine per point). A differing middle point makes leakage visible.
  SimConfig base = config_with(8, 4);
  SimConfig other = base;
  other.comm.host_overhead = base.comm.host_overhead + 2000;

  harness::Sweep sweep(apps::Scale::kTiny);
  const std::vector<harness::SweepPoint> points = {
      {"fft", base, 0.0}, {"fft", other, 1.0}, {"fft", base, 2.0}};
  const std::vector<harness::AppRun> runs = sweep.run_points(points);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].result.time, runs[2].result.time);
  EXPECT_TRUE(runs[0].result.stats == runs[2].result.stats);
  // The perturbed middle point really did differ (the test has teeth).
  EXPECT_NE(runs[0].result.time, runs[1].result.time);
}

}  // namespace
