#include "svm/aurc.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "check/checker.hpp"

namespace svmsim::svm {

using engine::Task;

void AurcAgent::install() {
  SvmAgent::install();
  comm_->set_on_update([this](const net::Message& m) { apply_update(m); });
  // Size the AU run table and touched-home flags once (run_of still grows
  // lazily for pages allocated mid-run; the node count never changes).
  runs_.resize(static_cast<std::size_t>(space_->page_count()));
  home_touched_.resize(static_cast<std::size_t>(space_->nodes()), 0);
}

Task<void> AurcAgent::arm_write(Processor& p, PageId page, PageCopy& c) {
  (void)p;
  if (home_of(page) != self_) c.au_active = true;  // snooping device armed
  co_return;
}

AurcAgent::Run& AurcAgent::run_of(PageId page) {
  if (runs_.size() <= page) {
    runs_.resize(std::max<std::size_t>(space_->page_count(), page + 1));
  }
  return runs_[static_cast<std::size_t>(page)];
}

void AurcAgent::on_store(Processor& p, PageId page, PageCopy& c,
                         std::uint32_t offset, std::uint32_t len) {
  (void)p;
  if (!c.au_active) return;
  const NodeId h = home_of(page);
  if (!home_touched_[static_cast<std::size_t>(h)]) {
    home_touched_[static_cast<std::size_t>(h)] = 1;
    homes_touched_.push_back(h);
  }
  Run& r = run_of(page);
  if (!r.listed) {
    r.listed = true;
    active_pages_.push_back(page);
  }
  const std::uint32_t max_run = cfg_->arch.mtu_payload_bytes - 16;
  if (r.active && offset == r.end && (r.end + len - r.start) <= max_run) {
    r.end += len;
    return;
  }
  if (r.active) emit_run(page, r);
  r.start = offset;
  r.end = offset + len;
  r.active = true;
}

void AurcAgent::emit_run(PageId page, Run& run) {
  PageCopy& c = space_->copy(self_, page);
  const std::uint32_t len = run.end - run.start;
  BytesRef data = pools_->bytes();
  data->bytes.assign(c.data.begin() + run.start,
                     c.data.begin() + run.start + len);
  net::Message m;
  m.type = net::MsgType::kUpdate;
  m.src = self_;
  m.dst = home_of(page);
  m.page = page;
  m.offset = run.start;
  m.payload_bytes = 16 + len;
  m.body = std::move(data);
  run.active = false;
  SVMSIM_CHECK_HOOK(*sim_, on_update_emit, self_, page);
  // Fault injection (kLostDiff): the AU stream silently drops the run
  // (dropping the message also recycles its pooled body).
  if (SVMSIM_CHECK_MUTATION_IS(*sim_, kLostDiff)) return;
  // The AU device posts straight into the NI (the pairwise one, keeping
  // update order per home): no host processor involvement.
  engine::spawn(comm_->nic_for(m.dst).post(std::move(m)));
}

void AurcAgent::apply_update(const net::Message& m) {
  const std::vector<std::byte>& data = bytes_body(m.body);
  auto home = space_->home_data(m.page);
  assert(m.offset + data.size() <= home.size());
  std::memcpy(home.data() + m.offset, data.data(), data.size());
  SVMSIM_CHECK_HOOK(*sim_, on_update_apply, sim_->now(), m.src, m.page);
  if (invalidate_caches) {
    invalidate_caches(m.page * space_->page_bytes() + m.offset, data.size());
  }
}

Task<void> AurcAgent::sync_homes(Processor& p, std::span<const NodeId> homes,
                                 std::vector<std::uint64_t>& ids) {
  ids.clear();
  for (NodeId h : homes) {
    if (h == self_) continue;
    net::Message m;
    m.type = net::MsgType::kUpdateMarker;
    m.dst = h;
    m.payload_bytes = 16;
    co_await p.drain();
    ids.push_back(comm_->rpc_post(m));
    // Marker is injected by the AU hardware behind the update stream; the
    // processor pays no host overhead.
    co_await comm_->send(std::move(m));
  }
  if (ids.empty()) co_return;
  const Cycles t0 = co_await p.wait_begin();
  for (std::uint64_t id : ids) {
    co_await comm_->await_reply(id);
  }
  p.wait_end(TimeCat::kProtocol, t0);
}

Task<void> AurcAgent::propagate_dirty(Processor& p,
                                      const std::vector<PageId>& pages) {
  for (PageId page : active_pages_) {
    Run& r = runs_[static_cast<std::size_t>(page)];
    if (!r.listed) continue;  // drained early by an invalidation flush
    r.listed = false;
    if (r.active) emit_run(page, r);
  }
  active_pages_.clear();

  flush_in_flight_.clear();
  const std::uint32_t epoch = ++flush_epoch_;  // dedups the dirty list
  for (PageId page : pages) {
    std::uint32_t& stamp = flush_epoch_of(page);
    if (stamp == epoch) continue;
    stamp = epoch;
    PageCopy& c = space_->copy(self_, page);
    // See HlrcAgent::propagate_dirty: wait for in-flight flushes first.
    co_await wait_page_flush(p, page);
    if (!c.dirty) continue;
    c.dirty = false;
    c.au_active = false;
    SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                      PageState::kReadOnly, check::PageEvent::kFlushDemote);
    c.state = PageState::kReadOnly;  // re-arm write detection
    if (home_of(page) != self_) {
      begin_page_flush(page);
      flush_in_flight_.push_back(page);
    }
  }

  // Swap the touched-home list into scratch and clear the flags before the
  // markers go out: stores racing the sync re-register their homes.
  sync_scratch_.clear();
  sync_scratch_.swap(homes_touched_);
  for (NodeId h : sync_scratch_) home_touched_[static_cast<std::size_t>(h)] = 0;
  co_await sync_homes(p, sync_scratch_, rpc_ids_);
  for (PageId page : flush_in_flight_) end_page_flush(page);
}

Task<void> AurcAgent::flush_page_for_invalidation(Processor& p, PageId page,
                                                  PageCopy& c) {
  co_await wait_page_flush(p, page);
  if (!c.dirty) co_return;
  c.dirty = false;
  c.au_active = false;
  // Demote immediately: a write racing the marker ack must fault so it
  // re-arms the AU device instead of being silently dropped.
  SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                    PageState::kReadOnly, check::PageEvent::kFlushDemote);
  c.state = PageState::kReadOnly;
  if (page < runs_.size()) {
    Run& r = runs_[static_cast<std::size_t>(page)];
    if (r.active) emit_run(page, r);  // listed stays; propagate skips it
  }
  const NodeId h = home_of(page);
  if (h == self_) co_return;
  begin_page_flush(page);
  // Locals, not the flush scratch members: invalidation flushes can run on
  // several processors concurrently with a release flush.
  const NodeId homes[1] = {h};
  std::vector<std::uint64_t> ids;
  co_await sync_homes(p, homes, ids);
  end_page_flush(page);
}

void AurcAgent::handle_direct(net::Message&& m) {
  if (m.type == net::MsgType::kUpdateMarker) {
    // The home NI acknowledges once every preceding update is applied (the
    // receive path is FIFO, so this point implies application). No host cost.
    net::Message ack;
    ack.type = net::MsgType::kUpdateMarkerAck;
    ack.payload_bytes = 8;
    engine::spawn(comm_->reply(m, std::move(ack)));
    return;
  }
  SvmAgent::handle_direct(std::move(m));
}

}  // namespace svmsim::svm
