// Barnes: Barnes-Hut N-body, in two tree-construction variants (paper §4.2):
//
//  * barnes (rebuild) — the SPLASH-2 code: processors insert their bodies
//    into the shared octree concurrently, locking each cell they modify.
//    Fine-grained locks plus page faults inside those critical sections make
//    this the most communication-intensive application in the suite.
//  * barnes-space — the SVM-restructured version: the top two tree levels
//    are preallocated and the 64 level-2 subspaces are assigned to
//    processors; each processor builds the subtrees of its subspaces from
//    its private cell-pool slice with no locking at all, and partial trees
//    meet at the static top cells.
//
// Center-of-mass computation proceeds level by level in parallel (barrier
// between levels), and the force pass traverses the shared read-mostly tree
// with the standard opening criterion.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}
inline Vec3& operator+=(Vec3& a, const Vec3& b) {
  a.x += b.x;
  a.y += b.y;
  a.z += b.z;
  return a;
}
inline Vec3 operator*(const Vec3& a, double s) {
  return {a.x * s, a.y * s, a.z * s};
}

struct CellGeom {
  double cx = 0, cy = 0, cz = 0, half = 0;
};
struct CellCom {
  double x = 0, y = 0, z = 0, m = 0;
};

/// Gravitational force on a body at `p` (unit G, softened).
inline Vec3 gravity(const Vec3& p, const Vec3& src, double mass) {
  const Vec3 d = src - p;
  const double r2 = d.x * d.x + d.y * d.y + d.z * d.z + 1e-4;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  return d * (mass * inv);
}

constexpr std::int32_t kEmpty = -1;
inline std::int32_t enc_body(std::int32_t b) { return -(b + 2); }
inline bool is_body(std::int32_t v) { return v <= -2; }
inline std::int32_t dec_body(std::int32_t v) { return -v - 2; }

class BarnesApp final : public Application {
 public:
  BarnesApp(Scale scale, bool space) : Application(scale), space_(space) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 128;
        steps_ = 1;
        break;
      case Scale::kSmall:
        n_ = 1024;
        steps_ = 2;
        break;
      case Scale::kLarge:
        n_ = 4096;
        steps_ = 2;
        break;
    }
    max_cells_ = static_cast<int>(4 * n_) + 256;
  }

  [[nodiscard]] std::string name() const override {
    return space_ ? "barnes-space" : "barnes";
  }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    bpos_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    bvel_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    bfrc_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    bmass_ = SharedArray<double>::alloc(mach, n_, Distribution::block());
    cgeom_ = SharedArray<CellGeom>::alloc(
        mach, static_cast<std::size_t>(max_cells_), Distribution::cyclic());
    cchild_ = SharedArray<std::int32_t>::alloc(
        mach, static_cast<std::size_t>(max_cells_) * 8, Distribution::cyclic());
    ccom_ = SharedArray<CellCom>::alloc(
        mach, static_cast<std::size_t>(max_cells_), Distribution::cyclic());
    alloc_ = SharedArray<std::int32_t>::alloc(mach, 16, Distribution::fixed(0));
    // Level lists for the parallel center-of-mass pass.
    levels_ = SharedArray<std::int32_t>::alloc(
        mach, static_cast<std::size_t>(max_cells_), Distribution::cyclic());
    level_start_ =
        SharedArray<std::int32_t>::alloc(mach, kMaxDepth + 2,
                                         Distribution::fixed(0));

    Rng rng(space_ ? 0xBA12u : 0xBA11u);
    init_pos_.resize(n_);
    init_vel_.resize(n_);
    mass_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      // Plummer-ish clustered distribution inside the box.
      const double r = 0.35 * kBox * std::pow(rng.uniform(), 1.5);
      const double th = std::acos(rng.uniform(-1, 1));
      const double ph = rng.uniform(0, 2 * std::numbers::pi);
      init_pos_[i] = {0.5 * kBox + r * std::sin(th) * std::cos(ph),
                      0.5 * kBox + r * std::sin(th) * std::sin(ph),
                      0.5 * kBox + r * std::cos(th)};
      init_vel_[i] = {rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01),
                      rng.uniform(-0.01, 0.01)};
      mass_[i] = 1.0 / static_cast<double>(n_);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      bpos_.debug_put(mach, i, init_pos_[i]);
      bvel_.debug_put(mach, i, init_vel_[i]);
      bfrc_.debug_put(mach, i, Vec3{});
      bmass_.debug_put(mach, i, mass_[i]);
    }
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    const std::size_t b0 = n_ * static_cast<std::size_t>(pid) / P_;
    const std::size_t b1 = n_ * static_cast<std::size_t>(pid + 1) / P_;

    for (int step = 0; step < steps_; ++step) {
      // --- Reset the tree (processor 0) ---
      if (pid == 0) {
        co_await reset_tree(shm);
      }
      co_await shm.barrier();

      // --- Build ---
      if (space_) {
        co_await build_space(shm, pid);
      } else {
        co_await build_rebuild(shm, pid, b0, b1);
      }
      co_await shm.barrier();

      // --- Level lists (processor 0 walks the finished tree) ---
      if (pid == 0) {
        co_await make_levels(shm);
      }
      co_await shm.barrier();

      // --- Center of mass, deepest level first ---
      co_await compute_com(shm, pid);

      // --- Forces for own bodies ---
      co_await compute_forces(shm, pid, b0, b1);
      co_await shm.barrier();

      // --- Integrate own bodies ---
      for (std::size_t i = b0; i < b1; ++i) {
        const Vec3 f = co_await bfrc_.get(shm, i);
        Vec3 v = co_await bvel_.get(shm, i);
        v += f * kDt;
        Vec3 x = co_await bpos_.get(shm, i);
        x += v * kDt;
        x.x = std::clamp(x.x, 0.0, kBox - 1e-9);
        x.y = std::clamp(x.y, 0.0, kBox - 1e-9);
        x.z = std::clamp(x.z, 0.0, kBox - 1e-9);
        co_await bvel_.put(shm, i, v);
        co_await bpos_.put(shm, i, x);
        shm.compute(kWorkScale * 18);
      }
      co_await shm.barrier();
    }
  }

  bool validate(Machine& mach) override {
    // 1. Mass conservation at the root.
    const CellCom root = ccom_.debug_get(mach, 0);
    double total = 0;
    for (double m : mass_) total += m;
    if (std::abs(root.m - total) > 1e-9 * total) return false;

    // 2. Forces from the last step vs direct summation at the positions
    //    they were computed from (pre-integration: x_prev = x - v*dt).
    std::vector<Vec3> prev(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const Vec3 x = bpos_.debug_get(mach, i);
      const Vec3 v = bvel_.debug_get(mach, i);
      prev[i] = {x.x - v.x * kDt, x.y - v.y * kDt, x.z - v.z * kDt};
    }
    const std::size_t sample = std::min<std::size_t>(n_, 64);
    std::vector<double> rel;
    rel.reserve(sample);
    for (std::size_t s = 0; s < sample; ++s) {
      const std::size_t i = s * (n_ / sample);
      Vec3 direct{};
      for (std::size_t j = 0; j < n_; ++j) {
        if (j != i) direct += gravity(prev[i], prev[j], mass_[j]);
      }
      const Vec3 got = bfrc_.debug_get(mach, i);
      const double dn = std::sqrt(direct.x * direct.x + direct.y * direct.y +
                                  direct.z * direct.z);
      const Vec3 diff = got - direct;
      const double en =
          std::sqrt(diff.x * diff.x + diff.y * diff.y + diff.z * diff.z);
      rel.push_back(en / (dn + 1e-12));
    }
    std::sort(rel.begin(), rel.end());
    // Barnes-Hut with theta=0.6: median error well under a few percent.
    return rel[rel.size() / 2] < 0.05;
  }

 private:
  /// Per-element work multiplier (see DESIGN.md: folds the real code's
  /// private-memory instruction stream into the charged compute).
  static constexpr Cycles kWorkScale = 6;
  static constexpr double kBox = 8.0;
  static constexpr double kDt = 0.01;
  static constexpr double kTheta = 0.6;
  static constexpr int kMaxDepth = 40;
  static constexpr int kCellLockBase = 2048;
  static constexpr int kCellLockCount = 1024;
  static constexpr int kPoolLock = 2047;

  [[nodiscard]] int cell_lock(std::int32_t cell) const {
    return kCellLockBase + cell % kCellLockCount;
  }
  [[nodiscard]] static int octant(const CellGeom& g, const Vec3& p) {
    return (p.x >= g.cx ? 1 : 0) | (p.y >= g.cy ? 2 : 0) |
           (p.z >= g.cz ? 4 : 0);
  }
  [[nodiscard]] static CellGeom suboctant(const CellGeom& g, int q) {
    const double h = g.half / 2;
    return {g.cx + ((q & 1) ? h : -h), g.cy + ((q & 2) ? h : -h),
            g.cz + ((q & 4) ? h : -h), h};
  }

  engine::Task<void> reset_tree(Shm& shm) {
    // Static top cells: root only (rebuild) or root + 8 + 64 (space).
    const std::int32_t kStatic = space_ ? 73 : 1;
    const CellGeom root{kBox / 2, kBox / 2, kBox / 2, kBox / 2};
    co_await cgeom_.put(shm, 0, root);
    std::vector<std::int32_t> empty(8, kEmpty);
    co_await cchild_.put_block(shm, 0, empty.data(), 8);
    if (space_) {
      for (int q = 0; q < 8; ++q) {
        const std::int32_t l1 = 1 + q;
        co_await cgeom_.put(shm, static_cast<std::size_t>(l1),
                            suboctant(root, q));
        co_await cchild_.put(shm, static_cast<std::size_t>(q), l1);
      }
      for (int q1 = 0; q1 < 8; ++q1) {
        const std::int32_t l1 = 1 + q1;
        const CellGeom g1 = suboctant(root, q1);
        for (int q2 = 0; q2 < 8; ++q2) {
          const std::int32_t l2 = 9 + q1 * 8 + q2;
          co_await cgeom_.put(shm, static_cast<std::size_t>(l2),
                              suboctant(g1, q2));
          co_await cchild_.put(
              shm, static_cast<std::size_t>(l1) * 8 + q2, l2);
          co_await cchild_.put_block(
              shm, static_cast<std::size_t>(l2) * 8, empty.data(), 8);
        }
        co_await cchild_.put_block(shm, static_cast<std::size_t>(l1) * 8,
                                   empty.data(), 8);
      }
      // Re-link after wiping: children of root and level-1 cells.
      for (int q = 0; q < 8; ++q) {
        co_await cchild_.put(shm, static_cast<std::size_t>(q),
                             static_cast<std::int32_t>(1 + q));
      }
      for (int q1 = 0; q1 < 8; ++q1) {
        for (int q2 = 0; q2 < 8; ++q2) {
          co_await cchild_.put(shm, static_cast<std::size_t>(1 + q1) * 8 + q2,
                               static_cast<std::int32_t>(9 + q1 * 8 + q2));
        }
      }
    }
    co_await alloc_.put(shm, 0, kStatic);
    shm.compute(kWorkScale * 200);
  }

  /// Rebuild variant: concurrent insertion with per-cell locks. Cells come
  /// from per-processor pool slices (as in SPLASH-2), so only the tree
  /// cells themselves are locked.
  engine::Task<void> build_rebuild(Shm& shm, ProcId pid, std::size_t b0,
                                   std::size_t b1) {
    const std::int32_t kStatic = 1;
    const std::int32_t pool1 =
        kStatic +
        static_cast<std::int32_t>((max_cells_ - kStatic) * (pid + 1) / P_);
    std::int32_t next =
        kStatic + static_cast<std::int32_t>((max_cells_ - kStatic) * pid / P_);
    for (std::size_t i = b0; i < b1; ++i) {
      const Vec3 p = co_await bpos_.get(shm, i);
      std::int32_t c = 0;
      for (int depth = 0; depth < kMaxDepth; ++depth) {
        const CellGeom g = co_await cgeom_.get(shm, static_cast<std::size_t>(c));
        const int q = octant(g, p);
        co_await shm.lock(cell_lock(c));
        const std::int32_t ch =
            co_await cchild_.get(shm, static_cast<std::size_t>(c) * 8 + q);
        if (ch == kEmpty) {
          co_await cchild_.put(shm, static_cast<std::size_t>(c) * 8 + q,
                               enc_body(static_cast<std::int32_t>(i)));
          co_await shm.unlock(cell_lock(c));
          break;
        }
        if (ch >= 0) {
          co_await shm.unlock(cell_lock(c));
          c = ch;
          continue;
        }
        // Occupied by a body: split, using the private pool slice.
        const std::int32_t other = dec_body(ch);
        const std::int32_t nc = next++;
        assert(nc < pool1);
        (void)pool1;
        const CellGeom ng = suboctant(g, q);
        co_await cgeom_.put(shm, static_cast<std::size_t>(nc), ng);
        std::vector<std::int32_t> empty(8, kEmpty);
        const Vec3 op = co_await bpos_.get(shm, static_cast<std::size_t>(other));
        empty[static_cast<std::size_t>(octant(ng, op))] = ch;
        co_await cchild_.put_block(shm, static_cast<std::size_t>(nc) * 8,
                                   empty.data(), 8);
        co_await cchild_.put(shm, static_cast<std::size_t>(c) * 8 + q, nc);
        co_await shm.unlock(cell_lock(c));
        c = nc;
        shm.compute(kWorkScale * 40);
      }
      shm.compute(kWorkScale * 30);
    }
  }

  /// Space variant: every processor owns disjoint level-2 subspaces and
  /// builds their subtrees from a private cell-pool slice, lock-free.
  engine::Task<void> build_space(Shm& shm, ProcId pid) {
    // Private pool slice.
    const std::int32_t pool0 =
        73 + static_cast<std::int32_t>((max_cells_ - 73) * pid / P_);
    const std::int32_t pool1 =
        73 + static_cast<std::int32_t>((max_cells_ - 73) * (pid + 1) / P_);
    std::int32_t next = pool0;

    std::vector<Vec3> positions(n_);
    co_await bpos_.get_block(shm, 0, positions.data(), n_);
    const CellGeom root{kBox / 2, kBox / 2, kBox / 2, kBox / 2};

    for (std::size_t i = 0; i < n_; ++i) {
      // Which level-2 subspace does this body fall into?
      const int q1 = octant(root, positions[i]);
      const CellGeom g1 = suboctant(root, q1);
      const int q2 = octant(g1, positions[i]);
      const int sub = q1 * 8 + q2;
      if (sub % P_ != pid) continue;  // not my subspace
      shm.compute(kWorkScale * 12);

      std::int32_t c = 9 + sub;
      CellGeom g = suboctant(g1, q2);
      for (int depth = 0; depth < kMaxDepth; ++depth) {
        const int q = octant(g, positions[i]);
        const std::int32_t ch =
            co_await cchild_.get(shm, static_cast<std::size_t>(c) * 8 + q);
        if (ch == kEmpty) {
          co_await cchild_.put(shm, static_cast<std::size_t>(c) * 8 + q,
                               enc_body(static_cast<std::int32_t>(i)));
          break;
        }
        if (ch >= 0) {
          c = ch;
          g = co_await cgeom_.get(shm, static_cast<std::size_t>(c));
          continue;
        }
        const std::int32_t other = dec_body(ch);
        const std::int32_t nc = next++;
        assert(nc < pool1);
        const CellGeom ng = suboctant(g, q);
        co_await cgeom_.put(shm, static_cast<std::size_t>(nc), ng);
        std::vector<std::int32_t> empty(8, kEmpty);
        empty[static_cast<std::size_t>(
            octant(ng, positions[static_cast<std::size_t>(other)]))] = ch;
        co_await cchild_.put_block(shm, static_cast<std::size_t>(nc) * 8,
                                   empty.data(), 8);
        co_await cchild_.put(shm, static_cast<std::size_t>(c) * 8 + q, nc);
        c = nc;
        g = ng;
        shm.compute(kWorkScale * 40);
      }
      shm.compute(kWorkScale * 30);
    }
    (void)pool1;
  }

  /// Processor 0 BFS-walks the finished tree into per-level cell lists.
  engine::Task<void> make_levels(Shm& shm) {
    std::vector<std::int32_t> order;
    std::vector<std::int32_t> starts{0};
    std::vector<std::int32_t> frontier{0};
    while (!frontier.empty()) {
      std::vector<std::int32_t> next_frontier;
      for (std::int32_t c : frontier) {
        order.push_back(c);
        std::int32_t ch[8];
        co_await cchild_.get_block(shm, static_cast<std::size_t>(c) * 8, ch, 8);
        for (int q = 0; q < 8; ++q) {
          if (ch[q] >= 0) next_frontier.push_back(ch[q]);
        }
        shm.compute(kWorkScale * 16);
      }
      starts.push_back(static_cast<std::int32_t>(order.size()));
      frontier = std::move(next_frontier);
    }
    co_await levels_.put_block(shm, 0, order.data(), order.size());
    // level_start_[0] = number of levels; then the boundaries.
    const auto nlev = static_cast<std::int32_t>(starts.size() - 1);
    co_await level_start_.put(shm, 0, nlev);
    assert(nlev <= kMaxDepth);
    for (std::size_t l = 0; l < starts.size(); ++l) {
      co_await level_start_.put(shm, 1 + l, starts[l]);
    }
  }

  engine::Task<void> compute_com(Shm& shm, ProcId pid) {
    const std::int32_t nlev = co_await level_start_.get(shm, 0);
    for (std::int32_t l = nlev - 1; l >= 0; --l) {
      const std::int32_t s =
          co_await level_start_.get(shm, 1 + static_cast<std::size_t>(l));
      const std::int32_t e =
          co_await level_start_.get(shm, 2 + static_cast<std::size_t>(l));
      for (std::int32_t k = s + pid; k < e; k += P_) {
        const std::int32_t c =
            co_await levels_.get(shm, static_cast<std::size_t>(k));
        std::int32_t ch[8];
        co_await cchild_.get_block(shm, static_cast<std::size_t>(c) * 8, ch, 8);
        CellCom acc;
        for (int q = 0; q < 8; ++q) {
          if (ch[q] == kEmpty) continue;
          if (is_body(ch[q])) {
            const auto b = static_cast<std::size_t>(dec_body(ch[q]));
            const Vec3 p = co_await bpos_.get(shm, b);
            const double m = co_await bmass_.get(shm, b);
            acc.x += m * p.x;
            acc.y += m * p.y;
            acc.z += m * p.z;
            acc.m += m;
          } else {
            const CellCom sub =
                co_await ccom_.get(shm, static_cast<std::size_t>(ch[q]));
            acc.x += sub.m * sub.x;
            acc.y += sub.m * sub.y;
            acc.z += sub.m * sub.z;
            acc.m += sub.m;
          }
        }
        if (acc.m > 0) {
          acc.x /= acc.m;
          acc.y /= acc.m;
          acc.z /= acc.m;
        }
        co_await ccom_.put(shm, static_cast<std::size_t>(c), acc);
        shm.compute(kWorkScale * 60);
      }
      co_await shm.barrier();
    }
  }

  engine::Task<void> compute_forces(Shm& shm, ProcId /*pid*/, std::size_t b0,
                                    std::size_t b1) {
    std::vector<std::int32_t> stack;
    for (std::size_t i = b0; i < b1; ++i) {
      const Vec3 p = co_await bpos_.get(shm, i);
      Vec3 f{};
      stack.assign(1, 0);
      while (!stack.empty()) {
        const std::int32_t c = stack.back();
        stack.pop_back();
        const CellGeom g =
            co_await cgeom_.get(shm, static_cast<std::size_t>(c));
        const CellCom com =
            co_await ccom_.get(shm, static_cast<std::size_t>(c));
        if (com.m <= 0) continue;
        const Vec3 d = Vec3{com.x, com.y, com.z} - p;
        const double dist =
            std::sqrt(d.x * d.x + d.y * d.y + d.z * d.z) + 1e-12;
        if (2 * g.half / dist < kTheta) {
          f += gravity(p, {com.x, com.y, com.z}, com.m);
          shm.compute(kWorkScale * 20);
          continue;
        }
        std::int32_t ch[8];
        co_await cchild_.get_block(shm, static_cast<std::size_t>(c) * 8, ch, 8);
        for (int q = 0; q < 8; ++q) {
          if (ch[q] == kEmpty) continue;
          if (is_body(ch[q])) {
            const auto b = static_cast<std::size_t>(dec_body(ch[q]));
            if (b == i) continue;
            const Vec3 bp = co_await bpos_.get(shm, b);
            const double bm = co_await bmass_.get(shm, b);
            f += gravity(p, bp, bm);
            shm.compute(kWorkScale * 20);
          } else {
            stack.push_back(ch[q]);
          }
        }
        shm.compute(kWorkScale * 16);
      }
      co_await bfrc_.put(shm, i, f);
    }
  }

  bool space_;
  std::size_t n_ = 128;
  int steps_ = 1;
  int P_ = 1;
  int max_cells_ = 0;
  SharedArray<Vec3> bpos_;
  SharedArray<Vec3> bvel_;
  SharedArray<Vec3> bfrc_;
  SharedArray<double> bmass_;
  SharedArray<CellGeom> cgeom_;
  SharedArray<std::int32_t> cchild_;
  SharedArray<CellCom> ccom_;
  SharedArray<std::int32_t> alloc_;
  SharedArray<std::int32_t> levels_;
  SharedArray<std::int32_t> level_start_;
  std::vector<Vec3> init_pos_;
  std::vector<Vec3> init_vel_;
  std::vector<double> mass_;
};

}  // namespace

std::unique_ptr<Application> make_barnes_rebuild(Scale scale) {
  return std::make_unique<BarnesApp>(scale, /*space=*/false);
}

std::unique_ptr<Application> make_barnes_space(Scale scale) {
  return std::make_unique<BarnesApp>(scale, /*space=*/true);
}

}  // namespace svmsim::apps
