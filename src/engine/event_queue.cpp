#include "engine/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace svmsim::engine {

std::vector<EventQueue::Event>& EventQueue::spare_slot() {
  // One drained event vector per thread, recycled across EventQueue
  // lifetimes so consecutive runs (a sweep on this thread) reuse warmed-up
  // capacity instead of regrowing from zero. thread_local keeps the parallel
  // sweep executor's workers from ever sharing storage.
  thread_local std::vector<Event> spare;
  return spare;
}

EventQueue::EventQueue() : heap_(std::move(spare_slot())) {
  heap_.clear();
  if (heap_.capacity() < 256) heap_.reserve(256);
}

EventQueue::~EventQueue() {
  heap_.clear();
  if (heap_.capacity() > spare_slot().capacity()) {
    spare_slot() = std::move(heap_);
  }
}

void EventQueue::schedule_at(Cycles when, Action action) {
  assert(when >= now_ && "cannot schedule an event in the past");
  heap_.push_back(Event{when, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Event EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Event ev = pop_top();
  now_ = ev.when;
  ++fired_;
  ev.action();
  return true;
}

void EventQueue::run_until_idle() {
  while (step()) {
  }
}

bool EventQueue::run_until(Cycles deadline) {
  while (!heap_.empty()) {
    if (heap_.front().when > deadline) return false;
    step();
  }
  return true;
}

}  // namespace svmsim::engine
