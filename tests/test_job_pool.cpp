// The sweep executor's worker pool: batch completion, slot-based
// determinism, exception propagation, and reuse across batches.
#include "harness/job_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace svmsim::harness {
namespace {

TEST(JobPool, RunsEveryJobExactlyOnce) {
  JobPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(100, 0);
  std::vector<JobPool::Job> jobs;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    jobs.push_back([&hits, i] { hits[i] += 1; });
  }
  pool.run(std::move(jobs));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(JobPool, SlotWritesGiveDeterministicResults) {
  JobPool pool(4);
  std::vector<int> out(64, -1);
  std::vector<JobPool::Job> jobs;
  for (std::size_t i = 0; i < out.size(); ++i) {
    jobs.push_back([&out, i] { out[i] = static_cast<int>(i * i); });
  }
  pool.run(std::move(jobs));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(JobPool, EmptyBatchReturnsImmediately) {
  JobPool pool(2);
  EXPECT_NO_THROW(pool.run({}));
}

TEST(JobPool, ReusableAcrossBatches) {
  JobPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<JobPool::Job> jobs;
    for (int i = 0; i < 10; ++i) {
      jobs.push_back([&total] { total.fetch_add(1); });
    }
    pool.run(std::move(jobs));
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(JobPool, PropagatesFirstExceptionAfterDrainingBatch) {
  JobPool pool(2);
  std::atomic<int> completed{0};
  std::vector<JobPool::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    if (i == 3) {
      jobs.push_back([] { throw std::runtime_error("boom"); });
    } else {
      jobs.push_back([&completed] { completed.fetch_add(1); });
    }
  }
  EXPECT_THROW(pool.run(std::move(jobs)), std::runtime_error);
  // The batch drains fully even when one job throws.
  EXPECT_EQ(completed.load(), 7);
  // And the pool still works afterwards.
  std::vector<JobPool::Job> more;
  more.push_back([&completed] { completed.fetch_add(1); });
  EXPECT_NO_THROW(pool.run(std::move(more)));
  EXPECT_EQ(completed.load(), 8);
}

TEST(JobPool, SingleThreadPoolStillCompletes) {
  JobPool pool(1);
  std::vector<int> order;
  std::vector<JobPool::Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  pool.run(std::move(jobs));
  // One worker pulls indices in submission order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(JobPool, HardwareDefaultIsAtLeastOne) {
  EXPECT_GE(JobPool::hardware_default(), 1u);
}

}  // namespace
}  // namespace svmsim::harness
