// Simulator context: the event queue plus coroutine-friendly primitives
// (delays, one-shot triggers, trigger episodes/pools, counting semaphores).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/event_queue.hpp"
#include "engine/ring_queue.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"

namespace svmsim::trace {
class Tracer;
}  // namespace svmsim::trace

namespace svmsim::check {
class Checker;
}  // namespace svmsim::check

namespace svmsim::engine {

class ChoiceHook;

class Simulator {
 public:
  [[nodiscard]] Cycles now() const noexcept { return queue_.now(); }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }

  /// Time of the earliest pending event, or kNever when idle.
  [[nodiscard]] Cycles next_time() { return queue_.next_time(); }

  /// Conservative lower bound on the earliest time an event fired here could
  /// launch a cross-partition send (EventQueue::next_send_bound): the
  /// head-of-queue time plus `floor` host/NI cycles, kNever when idle. The
  /// adaptive PDES window publishes this before each barrier crossing.
  [[nodiscard]] Cycles next_send_bound(Cycles floor) {
    return queue_.next_send_bound(floor);
  }

  /// The run's event recorder, or nullptr when tracing is off (the common
  /// case). Owned by the Machine; every layer reaches it through its sim_
  /// pointer (see src/trace/trace.hpp and the SVMSIM_TRACE_EVENT macro).
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

  /// The run's consistency checker, or nullptr when checking is off (the
  /// common case). Owned by the Machine; protocol layers reach it through
  /// their sim_ pointer via the SVMSIM_CHECK_HOOK macro (src/check/).
  [[nodiscard]] check::Checker* checker() const noexcept { return checker_; }
  void set_checker(check::Checker* c) noexcept { checker_ = c; }

  /// The run's schedule-choice hook, or nullptr outside explorer mode (the
  /// common case). Installing it also registers the hook as the event
  /// queue's wire arbiter; nondeterminism sites (interrupt dispatch, poll
  /// ticks) reach it through their sim_ pointer. See engine/choice.hpp.
  [[nodiscard]] ChoiceHook* choice_hook() const noexcept { return choice_; }
  void set_choice_hook(ChoiceHook* h) noexcept;

  /// Awaitable that suspends the coroutine for `d` cycles. d == 0 still goes
  /// through the event queue, i.e. it yields to any already-scheduled event
  /// at the current time.
  [[nodiscard]] auto delay(Cycles d) noexcept {
    struct Awaiter {
      EventQueue& q;
      Cycles d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        if (d == 0) {
          q.schedule_now([h] { h.resume(); });  // same-tick FIFO fast lane
        } else {
          q.schedule_in(d, [h] { h.resume(); });
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{queue_, d};
  }

  void run_until_idle() { queue_.run_until_idle(); }
  bool run_until(Cycles deadline) { return queue_.run_until(deadline); }

 private:
  EventQueue queue_;
  trace::Tracer* tracer_ = nullptr;
  check::Checker* checker_ = nullptr;
  ChoiceHook* choice_ = nullptr;
};

/// One-shot broadcast event: waiters suspend until fire() is called; waits
/// after fire() complete immediately. Used for request/reply rendezvous
/// (the "synchronous RPC" style of the paper's messaging layer).
///
/// Triggers carry a generation counter so they can be recycled through a
/// TriggerPool: each protocol episode (a page fetch, a flush round) captures
/// the generation at start, and complete() both releases the waiters and
/// advances the generation, so an Episode handle held across the recycle
/// boundary observes "done" instead of latching onto the next user's episode.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) noexcept : sim_(&sim) {}

  [[nodiscard]] bool fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint32_t generation() const noexcept { return gen_; }
  [[nodiscard]] bool has_waiters() const noexcept { return !waiters_.empty(); }

  [[nodiscard]] auto wait() noexcept {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release all current and future waiters. Resumptions are scheduled on
  /// the event queue at the current time (deterministic order).
  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      sim_->queue().schedule_now([h] { h.resume(); });
    }
    waiters_.clear();
  }

  /// Re-arm for reuse (only when no waiters are pending).
  void reset() noexcept { fired_ = false; }

  /// Finish the current episode: release all waiters, re-arm, and advance
  /// the generation so stale Episode handles read as done.
  void complete() {
    fire();
    fired_ = false;
    ++gen_;
  }

  /// Pool hook: re-arm and invalidate outstanding Episode handles without
  /// waking anyone. Only legal when no waiters are pending.
  void retire() noexcept {
    assert(waiters_.empty() && "retiring a trigger with pending waiters");
    fired_ = false;
    ++gen_;
  }

 private:
  Simulator* sim_;
  bool fired_ = false;
  std::uint32_t gen_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// A generation-stamped handle to one use of a (possibly pooled) Trigger.
/// Safe to keep across the trigger's recycling: once the trigger has moved
/// on to a later generation, the episode reports done and wait() no-ops.
class Episode {
 public:
  Episode() noexcept = default;
  explicit Episode(Trigger& t) noexcept : t_(&t), gen_(t.generation()) {}

  [[nodiscard]] bool active() const noexcept { return t_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return t_ == nullptr || t_->generation() != gen_ || t_->fired();
  }

  [[nodiscard]] auto wait() noexcept {
    struct Awaiter {
      Episode& e;
      bool await_ready() const noexcept { return e.done(); }
      void await_suspend(std::coroutine_handle<> h) {
        e.t_->wait().await_suspend(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Trigger* t_ = nullptr;
  std::uint32_t gen_ = 0;
};

/// Freelist of Triggers. Unlike ObjectPool this recycles even under
/// SVMSIM_POOL_PARANOID: protocol code is *allowed* to query a stale Episode
/// after its trigger went back to the pool (that is the point of the
/// generation counter), so handing memory back to the allocator here would
/// turn correct code into a use-after-free.
class TriggerPool {
 public:
  explicit TriggerPool(Simulator& sim) noexcept : sim_(&sim) {}
  TriggerPool(const TriggerPool&) = delete;
  TriggerPool& operator=(const TriggerPool&) = delete;

  [[nodiscard]] Trigger* acquire() {
    if (free_.empty()) {
      all_.push_back(std::make_unique<Trigger>(*sim_));
      return all_.back().get();
    }
    Trigger* t = free_.back();
    free_.pop_back();
    return t;
  }

  /// Return `t` to the pool. The caller must have complete()d (or never
  /// exposed) the current episode: no waiters may be pending.
  void release(Trigger* t) noexcept {
    t->retire();
    free_.push_back(t);
  }

  [[nodiscard]] std::size_t allocated() const noexcept { return all_.size(); }
  [[nodiscard]] std::size_t available() const noexcept { return free_.size(); }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return all_.size() - free_.size();
  }

 private:
  Simulator* sim_;
  std::vector<std::unique_ptr<Trigger>> all_;
  std::vector<Trigger*> free_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial) noexcept
      : sim_(&sim), count_(initial) {}

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }

  [[nodiscard]] auto acquire() noexcept {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (s.count_ > 0) {
          --s.count_;
          return false;  // proceed without suspending
        }
        s.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->queue().schedule_now([h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Simulator* sim_;
  std::int64_t count_;
  RingQueue<std::coroutine_handle<>> waiters_;
};

}  // namespace svmsim::engine
