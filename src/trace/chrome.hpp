// Chrome trace_event JSON export, loadable in chrome://tracing / Perfetto.
//
// Track layout:
//   - one process per simulated node; one thread per processor ("cpu<p>"),
//     plus an "agent" thread for node-level protocol/NIC events and
//     "ni<k>-tx"/"ni<k>-rx" threads for per-packet NI occupancy spans;
//   - one extra "network" process with a thread per (src -> dst) node pair:
//     each message becomes a slice from its send to its delivery (the
//     request/reply arrows of a message-passing timeline);
//   - kTimeSpan flushes render as stacked Complete slices ending at their
//     flush time; instantaneous protocol events render as Instant events.
//
// All events are emitted globally sorted by timestamp, so every track's
// timestamps are monotonic (validated by tests/test_trace.cpp).
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace svmsim::trace {

/// Render `f` as Chrome trace_event JSON ("traceEvents" array form plus
/// metadata). Timestamps are simulated cycles reported in the JSON's
/// microsecond field.
[[nodiscard]] std::string to_chrome_json(const TraceFile& f);

/// Convenience: to_chrome_json + atomic write to `path`.
void write_chrome_json(const TraceFile& f, const std::string& path);

}  // namespace svmsim::trace
