#include "core/machine.hpp"

#include <stdexcept>

#include "check/checker.hpp"
#include "engine/task.hpp"
#include "trace/trace.hpp"

namespace svmsim {

Machine::Machine(const SimConfig& cfg)
    : cfg_(cfg),
      stats_(cfg.comm.total_procs),
      space_(cfg.comm.node_count(), cfg.comm.page_bytes),
      shared_(sim_, cfg.comm.node_count(), kMaxLocks),
      network_(sim_, cfg_.arch) {
  if (cfg.comm.total_procs % cfg.comm.procs_per_node != 0) {
    throw std::invalid_argument(
        "total_procs must be a multiple of procs_per_node");
  }
#ifndef SVMSIM_TRACE_DISABLED
  if (cfg_.trace.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(
        cfg_.trace, cfg_.comm.total_procs, cfg_.comm.node_count());
    sim_.set_tracer(tracer_.get());
  }
#endif
#ifndef SVMSIM_CHECK_DISABLED
  if (cfg_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(cfg_.check, space_);
    sim_.set_checker(checker_.get());
  }
#endif
  const int nodes = cfg_.comm.node_count();
  nodes_.reserve(static_cast<std::size_t>(nodes));
  agents_.reserve(static_cast<std::size_t>(nodes));
  for (NodeId n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(
        sim_, cfg_, n, cfg_.comm.procs_per_node,
        n * cfg_.comm.procs_per_node, network_, stats_));
  }
  for (NodeId n = 0; n < nodes; ++n) {
    Node& nd = *nodes_[static_cast<std::size_t>(n)];
    std::unique_ptr<svm::SvmAgent> agent;
    if (cfg_.comm.protocol == Protocol::kAURC) {
      agent = std::make_unique<svm::AurcAgent>(
          sim_, cfg_, n, cfg_.comm.procs_per_node, space_, shared_, nd.comm(),
          stats_.counters());
    } else {
      agent = std::make_unique<svm::HlrcAgent>(
          sim_, cfg_, n, cfg_.comm.procs_per_node, space_, shared_, nd.comm(),
          stats_.counters());
    }
    agent->install();
    nd.wire(*agent);
    agents_.push_back(std::move(agent));
  }
}

void Machine::debug_write(svm::GlobalAddr a, const void* src,
                          std::uint64_t bytes) {
  space_.debug_write(a, src, bytes);
#ifndef SVMSIM_CHECK_DISABLED
  if (checker_) checker_->on_debug_write(a, src, bytes);
#endif
}

Machine::~Machine() {
  // Scheduled closures (e.g. in-flight transmits of an aborted run) can hold
  // pooled references into shared_; drop them before the pools go away. Then
  // destroy still-suspended coroutines (NIC service loops, processes blocked
  // on a sync object in an abandoned run) so their frames release pooled
  // refs and frame memory while the objects they reference are still alive.
  sim_.queue().clear();
  engine::destroy_lingering_frames();
}

}  // namespace svmsim
