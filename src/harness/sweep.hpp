// Parameter-sweep driver used by the figure/table benches: runs an
// application suite across a list of configurations, caching the
// uniprocessor baseline per application, and computes the paper's speedup
// metrics (achievable / best / ideal).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"

namespace svmsim::harness {

struct AppRun {
  std::string app;
  double param = 0.0;       ///< swept parameter value for this point
  RunResult result;
  Cycles uniprocessor = 0;  ///< baseline time for this app

  [[nodiscard]] double speedup() const {
    return result.time > 0
               ? static_cast<double>(uniprocessor) /
                     static_cast<double>(result.time)
               : 0.0;
  }
  /// The paper's ideal speedup: uniprocessor time over compute + local
  /// stall of the slowest processor in the parallel run.
  [[nodiscard]] double ideal_speedup() const {
    const Cycles local = result.stats.max_local_only();
    return local > 0 ? static_cast<double>(uniprocessor) /
                           static_cast<double>(local)
                     : 0.0;
  }
};

class Sweep {
 public:
  explicit Sweep(apps::Scale scale) : scale_(scale) {}

  /// Uniprocessor time for `app` under `base` (cached per app+page size).
  Cycles baseline(const std::string& app, const SimConfig& base);

  /// Run one application at one configuration.
  AppRun run_point(const std::string& app, const SimConfig& cfg,
                   double param_value);

  /// Sweep `values`; `apply` writes the value into a config copy.
  std::vector<AppRun> run_sweep(
      const std::string& app, const SimConfig& base,
      const std::vector<double>& values,
      const std::function<void(SimConfig&, double)>& apply);

  [[nodiscard]] apps::Scale scale() const noexcept { return scale_; }

 private:
  apps::Scale scale_;
  std::map<std::string, Cycles> baselines_;
};

/// Max slowdown between the best and the worst speedup in a sweep, as a
/// percentage (Table 3). Negative values indicate a speedup.
[[nodiscard]] double max_slowdown_pct(const std::vector<AppRun>& runs);

}  // namespace svmsim::harness
