# Empty compiler generated dependencies file for fig05_host_overhead.
# This may be replaced when dependencies are built.
