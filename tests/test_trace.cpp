// Trace subsystem tests: record/file roundtrip, category masks, the
// determinism contract (tracing never perturbs the simulation), the
// Stats-reproduction oracle (trace::check), and the Chrome JSON exporter
// (structurally valid JSON, per-track monotonic timestamps).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome.hpp"
#include "trace/trace.hpp"

namespace {

using namespace svmsim;
using test::config_with;

/// Temp file that cleans up after itself (tests run in the build tree).
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

RunResult run_fft(const trace::Config& tc) {
  SimConfig cfg = config_with(8, 2);
  cfg.trace = tc;
  auto app = apps::make_app("fft", apps::Scale::kTiny);
  return svmsim::run(*app, cfg);
}

TEST(TraceConfig, ParseMask) {
  EXPECT_EQ(trace::parse_mask(""), trace::kAllCategories);
  EXPECT_EQ(trace::parse_mask("all"), trace::kAllCategories);
  EXPECT_EQ(trace::parse_mask("page"),
            trace::category_bit(trace::Category::kPage));
  EXPECT_EQ(trace::parse_mask("page,net"),
            trace::category_bit(trace::Category::kPage) |
                trace::category_bit(trace::Category::kNet));
  EXPECT_EQ(trace::parse_mask("sched,irq,lock"),
            trace::category_bit(trace::Category::kSched) |
                trace::category_bit(trace::Category::kIrq) |
                trace::category_bit(trace::Category::kLock));
  EXPECT_FALSE(trace::parse_mask("bogus").has_value());
  EXPECT_FALSE(trace::parse_mask("page,bogus").has_value());
}

TEST(TraceConfig, MaskToStringRoundtrip) {
  for (std::uint32_t mask = 1; mask <= trace::kAllCategories; ++mask) {
    const std::string s = trace::mask_to_string(mask);
    EXPECT_EQ(trace::parse_mask(s), mask) << "mask " << mask << " -> " << s;
  }
}

TEST(TraceFileFormat, RecordRoundtrip) {
  trace::Config tc;
  tc.enabled = true;  // in-memory: no path
  trace::Tracer t(tc, 4, 2);
  t.emit(100, trace::Category::kPage, trace::Event::kPageFault, 3, 1, 42, 1);
  t.emit(250, trace::Category::kNet, trace::Event::kPacketTx, -1, 0, 1, 4096);
  t.emit(250, trace::Category::kSched, trace::Event::kTimeSpan, 0, 0, 150, 0);
  EXPECT_EQ(t.record_count(), 3u);

  Stats stats(4);
  stats.proc(0).add(TimeCat::kCompute, 150);
  stats.counters().page_faults = 1;
  stats.counters().packets_sent = 1;
  const trace::TraceFile f = t.capture(stats, 250);
  EXPECT_EQ(f.records.size(), 3u);
  EXPECT_EQ(f.records[0].time, 100u);
  EXPECT_EQ(f.records[0].a0, 42u);
  EXPECT_EQ(f.records[1].proc, -1);

  TempFile tmp("test_trace_roundtrip.bin");
  trace::write_file(f, tmp.path);
  const trace::TraceFile g = trace::read_file(tmp.path);
  EXPECT_EQ(g.version, f.version);
  EXPECT_EQ(g.mask, f.mask);
  EXPECT_EQ(g.procs, 4);
  EXPECT_EQ(g.nodes, 2);
  EXPECT_EQ(g.end_time, 250u);
  EXPECT_EQ(g.provenance, f.provenance);
  EXPECT_TRUE(g.stats == stats);
  EXPECT_EQ(g.records, f.records);
}

TEST(TraceFileFormat, ReadRejectsMissingAndCorrupt) {
  EXPECT_THROW((void)trace::read_file("no_such_trace.bin"),
               std::runtime_error);
  TempFile tmp("test_trace_corrupt.bin");
  {
    std::FILE* out = std::fopen(tmp.path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fputs("not a trace", out);
    std::fclose(out);
  }
  EXPECT_THROW((void)trace::read_file(tmp.path), std::runtime_error);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheSimulation) {
  const RunResult off = run_fft(trace::Config{});

  trace::Config in_memory;
  in_memory.enabled = true;
  const RunResult mem = run_fft(in_memory);

  TempFile tmp("test_trace_determinism.bin");
  trace::Config to_file;
  to_file.enabled = true;
  to_file.path = tmp.path;
  const RunResult file = run_fft(to_file);

  ASSERT_TRUE(off.validated);
  for (const RunResult* r : {&mem, &file}) {
    EXPECT_EQ(r->time, off.time);
    EXPECT_EQ(r->events, off.events);
    EXPECT_TRUE(r->stats == off.stats);
    EXPECT_TRUE(r->validated);
  }
}

TEST(TraceOracle, CheckReproducesStatsExactly) {
  TempFile tmp("test_trace_oracle.bin");
  trace::Config tc;
  tc.enabled = true;
  tc.path = tmp.path;
  const RunResult r = run_fft(tc);
  ASSERT_TRUE(r.validated);

  const trace::TraceFile f = trace::read_file(tmp.path);
  EXPECT_GT(f.records.size(), 0u);
  EXPECT_TRUE(f.stats == r.stats);
  const std::vector<std::string> mismatches = trace::check(f);
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " mismatch(es), first: "
      << (mismatches.empty() ? "" : mismatches.front());

  const trace::Analysis a = trace::analyze(f);
  EXPECT_TRUE(a.recomputed.counters() == r.stats.counters());
  EXPECT_FALSE(trace::report(f, a).empty());
}

TEST(TraceOracle, MaskedCategoriesAreSkippedNotMismatched) {
  TempFile tmp("test_trace_masked.bin");
  trace::Config tc;
  tc.enabled = true;
  tc.path = tmp.path;
  tc.mask = trace::category_bit(trace::Category::kPage) |
            trace::category_bit(trace::Category::kLock);
  const RunResult r = run_fft(tc);
  ASSERT_TRUE(r.validated);

  const trace::TraceFile f = trace::read_file(tmp.path);
  EXPECT_EQ(f.mask, tc.mask);
  // No net/irq/sched records were recorded...
  const trace::Analysis a = trace::analyze(f);
  EXPECT_EQ(a.records_per_category[static_cast<int>(trace::Category::kNet)],
            0u);
  EXPECT_EQ(a.records_per_category[static_cast<int>(trace::Category::kSched)],
            0u);
  EXPECT_GT(a.records_per_category[static_cast<int>(trace::Category::kPage)],
            0u);
  // ...and check() knows those counters are unrecoverable, not wrong.
  EXPECT_TRUE(trace::check(f).empty());
}

// --- Chrome JSON validation -------------------------------------------------

/// Structural JSON scan: quotes/escapes respected, braces and brackets
/// balanced, non-negative depth throughout. Enough to catch any emitter
/// bug that would make chrome://tracing reject the file.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// Pull `"key": <number>` out of one emitted event line.
std::uint64_t field_u64(const std::string& line, const std::string& key,
                        bool* ok) {
  const std::size_t k = line.find("\"" + key + "\": ");
  if (k == std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::strtoull(line.c_str() + k + key.size() + 4, nullptr, 10);
}

TEST(TraceChrome, ValidJsonWithMonotonicTracks) {
  TempFile tmp("test_trace_chrome.bin");
  trace::Config tc;
  tc.enabled = true;
  tc.path = tmp.path;
  const RunResult r = run_fft(tc);
  ASSERT_TRUE(r.validated);

  const trace::TraceFile f = trace::read_file(tmp.path);
  const std::string json = trace::to_chrome_json(f);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);

  // The emitter writes one event object per line; timestamps within every
  // (pid, tid) track must be non-decreasing or the viewer mis-renders.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> last_ts;
  std::size_t events = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\": \"M\"") != std::string::npos) continue;
    bool ok = true;
    const std::uint64_t ts = field_u64(line, "ts", &ok);
    if (!ok) continue;  // not an event line
    const std::uint64_t pid = field_u64(line, "pid", &ok);
    const std::uint64_t tid = field_u64(line, "tid", &ok);
    ASSERT_TRUE(ok) << line;
    auto [it, fresh] = last_ts.try_emplace({pid, tid}, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "track (" << pid << "," << tid << ")";
      it->second = ts;
    }
    ++events;
  }
  EXPECT_GT(events, 0u);
  EXPECT_GE(last_ts.size(), 8u);  // at least one track per processor

  // write_chrome_json is the same renderer plus an atomic file write.
  TempFile out("test_trace_chrome.json");
  trace::write_chrome_json(f, out.path);
  std::ifstream written(out.path);
  ASSERT_TRUE(written.good());
  std::stringstream ss;
  ss << written.rdbuf();
  EXPECT_EQ(ss.str(), json);
}

}  // namespace
