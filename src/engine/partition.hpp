// Conservative windowed synchronization for the node-partitioned PDES mode.
//
// Each partition owns one EventQueue and one worker thread. The driver runs
// the classic conservative window (YAWNS-style) protocol:
//
//   1. every partition drains its incoming cross-partition channels into its
//      queue and publishes the time of its earliest pending event,
//   2. a barrier computes the global minimum T; the window is [T, T + L)
//      where L is the lookahead — the network's minimum inter-node latency
//      (the crossbar's fixed wire time, ArchParams::wire_latency_cycles),
//   3. every partition runs its queue up to T + L - 1 and meets a second
//      barrier before the next round.
//
// Safety: any packet sent during [T, T+L) arrives at >= T + L, i.e. never
// inside the window that produced it, so draining channels at each window
// start delivers every record before its timestamp can be reached. Progress:
// the partition holding the global minimum fires at least one event per
// window. Determinism: a partition is a sequential deterministic machine;
// its only external input is the set of channel records, whose content and
// delivery order (via the scheduler's keyed wire band) are independent of
// wall-clock interleaving — so the parallel run replays the serial order
// exactly (docs/engine.md, "PDES mode").
//
// The two barriers also carry all inter-thread happens-before edges: channel
// production (during a window) and consumption (at the next window start)
// never overlap, so the channels themselves need no atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "engine/event_queue.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

/// Number of partitions actually used for `par_cores` over `node_count`
/// simulated nodes: at least one, never more than one per node.
[[nodiscard]] constexpr int effective_partitions(int par_cores,
                                                 int node_count) noexcept {
  if (par_cores < 1) return 1;
  return par_cores < node_count ? par_cores : node_count;
}

/// Contiguous block partition map: node `n` of `node_count` belongs to
/// partition floor(n * parts / node_count). Contiguity keeps a node group's
/// procs, NICs and pools on one worker.
[[nodiscard]] constexpr int partition_of(int node, int node_count,
                                         int parts) noexcept {
  return static_cast<int>(static_cast<std::int64_t>(node) * parts /
                          node_count);
}

/// Runs a set of partition EventQueues under the windowed protocol above.
/// Partition 0 runs on the calling thread; partitions 1..P-1 each get a
/// worker thread for the duration of run().
class WindowDriver {
 public:
  struct Hooks {
    /// Deliver every matured cross-partition record into partition p's
    /// queue (schedule_wire). Called on p's worker at each window start.
    std::function<void(int)> drain;
    /// Called once on p's worker thread before the first window — bind
    /// partition-owned thread-affine state (frame registries) to it.
    std::function<void(int)> worker_begin;
    /// Called once on p's worker thread after the last window.
    std::function<void(int)> worker_end;
  };

  WindowDriver(std::vector<EventQueue*> queues, Cycles lookahead, Hooks hooks);

  /// Run all partitions until globally idle or until the next window would
  /// start beyond `max_cycles`. Returns true if the queues drained (mirrors
  /// EventQueue::run_until). No event past `max_cycles` is fired. An
  /// exception thrown by an event action aborts the run and rethrows here.
  bool run(Cycles max_cycles);

  /// Windows executed by the last run() (the sync-overhead figure reported
  /// by perf_selfcheck).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

 private:
  std::vector<EventQueue*> queues_;
  Cycles lookahead_;
  Hooks hooks_;

  // Per-run window state: written by workers before the sync barrier and by
  // its completion function, which is all the ordering they need.
  std::vector<Cycles> next_;
  Cycles window_end_ = 0;
  bool stop_ = false;
  bool drained_ = false;
  std::uint64_t windows_ = 0;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace svmsim::engine
