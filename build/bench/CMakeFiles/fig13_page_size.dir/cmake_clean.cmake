file(REMOVE_RECURSE
  "CMakeFiles/fig13_page_size.dir/fig13_page_size.cpp.o"
  "CMakeFiles/fig13_page_size.dir/fig13_page_size.cpp.o.d"
  "fig13_page_size"
  "fig13_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
