// Global LRC interval history: which pages each node dirtied in each of its
// intervals. Write notices for a lock grant or barrier release are "the
// intervals the acquirer has not seen yet".
//
// In a real HLRC system this history is distributed and piggybacked on lock
// grants; we keep it in one shared structure (a simulator shortcut — the
// *messages* still carry the notices' size on the wire, and invalidations
// are applied exactly where the protocol would apply them).
//
// Storage is a flat interval log per node: one growing vector of page ids
// plus a cumulative end-offset per interval. Recording an interval appends
// (no per-interval vector allocation), and counting notices between two
// timestamps is a subtraction of cumulative offsets instead of a walk.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <span>
#include <vector>

#include "engine/types.hpp"
#include "svm/diff.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

class PageDirectory {
 public:
  explicit PageDirectory(int nodes) : log_(static_cast<std::size_t>(nodes)) {}

  [[nodiscard]] int nodes() const noexcept {
    return static_cast<int>(log_.size());
  }

  /// Record node `n`'s interval `index` (1-based, must be the next one).
  void record_interval(NodeId n, std::uint32_t index,
                       std::span<const PageId> pages);
  void record_interval(NodeId n, std::uint32_t index,
                       std::initializer_list<PageId> pages) {
    record_interval(n, index, std::span<const PageId>(pages.begin(),
                                                      pages.size()));
  }

  /// For every interval covered by `target` but not by `have`, invoke
  /// `fn(page, writer_node)` for each dirtied page. Returns the number of
  /// notices (for wire sizing: 8 bytes each).
  std::uint64_t collect_notices(
      const VClock& have, const VClock& target,
      const std::function<void(PageId, NodeId)>& fn) const;

  /// Number of notices without visiting them (message sizing). O(nodes).
  [[nodiscard]] std::uint64_t count_notices(const VClock& have,
                                            const VClock& target) const;

  [[nodiscard]] std::uint32_t intervals_of(NodeId n) const {
    auto& l = log_[static_cast<std::size_t>(n)];
    const std::lock_guard<std::mutex> g(l.mu);
    return static_cast<std::uint32_t>(l.ends.size());
  }

 private:
  /// Interval i (0-based) of a node spans pages[ends[i-1] .. ends[i]).
  ///
  /// The row mutex serializes node n's appends against other partitions
  /// scanning the row (a concurrent push_back could reallocate mid-scan).
  /// The *values* read are deterministic without it: a reader only scans up
  /// to the interval count carried by the vclock of a message that took at
  /// least one lookahead window to arrive, so those entries were complete
  /// before the scan started. The lock only makes the vector growth safe.
  struct NodeLog {
    std::vector<PageId> pages;       // all intervals' pages, back to back
    std::vector<std::uint32_t> ends; // cumulative page count per interval
    mutable std::mutex mu;           // appends vs. cross-partition scans
  };

  [[nodiscard]] std::uint32_t begin_of(const NodeLog& l,
                                       std::uint32_t interval) const {
    return interval == 0 ? 0 : l.ends[interval - 1];
  }

  std::vector<NodeLog> log_;  // one flat interval log per node
};

}  // namespace svmsim::svm
