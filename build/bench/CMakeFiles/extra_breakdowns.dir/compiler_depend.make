# Empty compiler generated dependencies file for extra_breakdowns.
# This may be replaced when dependencies are built.
