// Freelist-backed object pools with intrusive reference counting — the
// allocation-free backbone of the protocol hot path.
//
// A simulation point performs the same few operations (page fetch, diff
// flush, lock handoff) millions of times; allocating the payload buffers,
// diff batches and trigger episodes fresh each time dominates wall time.
// ObjectPool<T> recycles them instead: an acquired object is handed out as a
// PoolRef<T> (a refcounted smart handle); when the last reference drops, the
// object is reset via T::recycle() — which must *keep* internal capacity —
// and pushed onto the pool's freelist. Steady state therefore performs zero
// heap traffic: `vector::assign` into a recycled buffer is a memcpy.
//
// Ownership rules (see docs/memory.md):
//  * Pools are single-threaded, like everything else inside one Machine.
//  * A pool must outlive every PoolRef into it. Within a Machine this is
//    arranged by declaration order (pools are declared before the structures
//    that hold refs) plus Machine::~Machine clearing the event queue, whose
//    scheduled closures may hold refs.
//  * T::recycle() must drop references T holds into *other* pools (so bodies
//    cascade back promptly) but keep raw capacity.
//
// Under SVMSIM_POOL_PARANOID (set by the SVMSIM_SANITIZE build) recycling is
// disabled: every acquire allocates and every release frees, so ASan sees
// the true object lifetimes and use-after-release bugs are not masked by
// reuse.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace svmsim::core {

template <typename T>
class ObjectPool;

namespace detail {

template <typename T>
struct PoolNode {
  T value{};
  std::uint32_t refs = 0;
  ObjectPool<T>* owner = nullptr;
};

}  // namespace detail

/// Refcounted handle to a pooled object. Copy shares, move transfers; the
/// last reference returns the object to its pool. Never outlive the pool.
template <typename T>
class PoolRef {
 public:
  PoolRef() noexcept = default;
  PoolRef(const PoolRef& o) noexcept : node_(o.node_) {
    if (node_ != nullptr) ++node_->refs;
  }
  PoolRef(PoolRef&& o) noexcept : node_(std::exchange(o.node_, nullptr)) {}
  PoolRef& operator=(const PoolRef& o) noexcept {
    if (this != &o) {
      reset();
      node_ = o.node_;
      if (node_ != nullptr) ++node_->refs;
    }
    return *this;
  }
  PoolRef& operator=(PoolRef&& o) noexcept {
    if (this != &o) {
      reset();
      node_ = std::exchange(o.node_, nullptr);
    }
    return *this;
  }
  ~PoolRef() { reset(); }

  /// Drop this reference (recycling the object if it was the last one).
  void reset() noexcept;

  [[nodiscard]] explicit operator bool() const noexcept {
    return node_ != nullptr;
  }
  [[nodiscard]] T* operator->() const noexcept { return &node_->value; }
  [[nodiscard]] T& operator*() const noexcept { return node_->value; }
  [[nodiscard]] T* get() const noexcept {
    return node_ != nullptr ? &node_->value : nullptr;
  }
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return node_ != nullptr ? node_->refs : 0;
  }

 private:
  friend class ObjectPool<T>;
  explicit PoolRef(detail::PoolNode<T>* n) noexcept : node_(n) {}
  detail::PoolNode<T>* node_ = nullptr;
};

/// Grow-only freelist of T. T must be default-constructible and provide
/// `void recycle()` resetting logical state while keeping capacity.
template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;
  // Note: the pool may be destroyed with references still outstanding when a
  // simulation is torn down mid-run (suspended coroutine frames that will
  // never resume can hold refs). Those frames are never destroyed either, so
  // no PoolRef touches the dead pool; completed runs drain back to zero
  // outstanding, which tests/test_pools.cpp checks explicitly.

  [[nodiscard]] PoolRef<T> acquire() {
#ifdef SVMSIM_POOL_PARANOID
    auto* n = new detail::PoolNode<T>();
    ++paranoid_live_;
#else
    detail::PoolNode<T>* n;
    if (free_.empty()) {
      all_.push_back(std::make_unique<detail::PoolNode<T>>());
      n = all_.back().get();
    } else {
      n = free_.back();
      free_.pop_back();
    }
#endif
    n->owner = this;
    n->refs = 1;
    return PoolRef<T>(n);
  }

  /// Objects ever created (paranoid mode: currently live).
  [[nodiscard]] std::size_t allocated() const noexcept {
#ifdef SVMSIM_POOL_PARANOID
    return paranoid_live_;
#else
    return all_.size();
#endif
  }
  /// Objects sitting on the freelist, ready for reuse.
  [[nodiscard]] std::size_t available() const noexcept {
#ifdef SVMSIM_POOL_PARANOID
    return 0;
#else
    return free_.size();
#endif
  }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return allocated() - available();
  }

 private:
  friend class PoolRef<T>;
  void recycle(detail::PoolNode<T>* n) {
#ifdef SVMSIM_POOL_PARANOID
    --paranoid_live_;
    delete n;
#else
    n->value.recycle();
    free_.push_back(n);
#endif
  }

#ifdef SVMSIM_POOL_PARANOID
  std::size_t paranoid_live_ = 0;
#else
  std::vector<std::unique_ptr<detail::PoolNode<T>>> all_;
  std::vector<detail::PoolNode<T>*> free_;
#endif
};

template <typename T>
void PoolRef<T>::reset() noexcept {
  if (node_ == nullptr) return;
  if (--node_->refs == 0) node_->owner->recycle(node_);
  node_ = nullptr;
}

/// A pooled byte buffer — page snapshots, AURC update runs, HLRC twins.
struct PooledBytes {
  std::vector<std::byte> bytes;
  void recycle() noexcept { bytes.clear(); }  // keep capacity
};

}  // namespace svmsim::core
