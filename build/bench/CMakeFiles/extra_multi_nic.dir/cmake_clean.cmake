file(REMOVE_RECURSE
  "CMakeFiles/extra_multi_nic.dir/extra_multi_nic.cpp.o"
  "CMakeFiles/extra_multi_nic.dir/extra_multi_nic.cpp.o.d"
  "extra_multi_nic"
  "extra_multi_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_multi_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
