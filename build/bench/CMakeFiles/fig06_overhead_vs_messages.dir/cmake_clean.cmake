file(REMOVE_RECURSE
  "CMakeFiles/fig06_overhead_vs_messages.dir/fig06_overhead_vs_messages.cpp.o"
  "CMakeFiles/fig06_overhead_vs_messages.dir/fig06_overhead_vs_messages.cpp.o.d"
  "fig06_overhead_vs_messages"
  "fig06_overhead_vs_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_overhead_vs_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
