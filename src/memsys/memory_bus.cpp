#include "memsys/memory_bus.hpp"

// Header-only implementation; anchor TU.
namespace svmsim::memsys {}
