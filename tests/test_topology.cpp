// Properties of the pluggable interconnect layer (src/topo/, see
// docs/topology.md): spec parsing, the analytic min-latency lookahead
// floor, route determinism and shape (torus hop counts are exactly the
// wraparound Manhattan distance; fat-tree paths go up*-then-down* and never
// repeat a link), the crossbar backend's observational inertness against
// the legacy network, and end-to-end serial-vs-PDES identity of a
// contended run including the per-link occupancy rows in Stats.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "apps/registry.hpp"
#include "core/machine.hpp"
#include "core/runner.hpp"
#include "engine/simulator.hpp"
#include "topo/spec.hpp"
#include "topo/topology.hpp"

namespace svmsim {
namespace {

using topo::Kind;
using topo::LinkKind;
using topo::Spec;

// ---- Spec parsing -------------------------------------------------------

TEST(TopoSpec, ParsesEveryValidForm) {
  EXPECT_EQ(Spec::parse("legacy")->kind, Kind::kLegacy);
  EXPECT_EQ(Spec::parse("crossbar")->kind, Kind::kCrossbar);

  const auto ft = Spec::parse("fattree:4");
  ASSERT_TRUE(ft.has_value());
  EXPECT_EQ(ft->kind, Kind::kFatTree);
  EXPECT_EQ(ft->fat_k, 4);

  const auto t2 = Spec::parse("torus:4x4");
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->kind, Kind::kTorus);
  EXPECT_EQ(t2->dims, (std::array<int, 3>{4, 4, 1}));

  const auto t3 = Spec::parse("torus:2x4x8");
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(t3->dims, (std::array<int, 3>{2, 4, 8}));
}

TEST(TopoSpec, RejectsMalformedSpecs) {
  // Unknown names and empty input.
  EXPECT_FALSE(Spec::parse("").has_value());
  EXPECT_FALSE(Spec::parse("hypercube").has_value());
  EXPECT_FALSE(Spec::parse("crossbar:4").has_value());
  // Fat tree: odd, zero, out-of-range or junk arity.
  EXPECT_FALSE(Spec::parse("fattree:3").has_value());
  EXPECT_FALSE(Spec::parse("fattree:0").has_value());
  EXPECT_FALSE(Spec::parse("fattree:66").has_value());
  EXPECT_FALSE(Spec::parse("fattree:4x").has_value());
  EXPECT_FALSE(Spec::parse("fattree:-2").has_value());
  // Torus: 1D, >3D, zero extents, trailing separators.
  EXPECT_FALSE(Spec::parse("torus:4").has_value());
  EXPECT_FALSE(Spec::parse("torus:2x2x2x2").has_value());
  EXPECT_FALSE(Spec::parse("torus:0x4").has_value());
  EXPECT_FALSE(Spec::parse("torus:4x0").has_value());
  EXPECT_FALSE(Spec::parse("torus:4x4x").has_value());
  EXPECT_FALSE(Spec::parse("torus:4x 4").has_value());
}

TEST(TopoSpec, ToStringRoundTrips) {
  for (const char* text :
       {"legacy", "crossbar", "fattree:8", "torus:4x4", "torus:2x4x8"}) {
    const auto spec = Spec::parse(text);
    ASSERT_TRUE(spec.has_value()) << text;
    EXPECT_EQ(spec->to_string(), text);
    EXPECT_EQ(Spec::parse(spec->to_string()), spec);
  }
}

TEST(TopoSpec, FitsChecksCapacityAndExactProduct) {
  // fattree:4 hosts up to k^3/4 = 16 nodes (partial trees allowed).
  const Spec ft = *Spec::parse("fattree:4");
  EXPECT_TRUE(topo::fits(ft, 1));
  EXPECT_TRUE(topo::fits(ft, 16));
  EXPECT_FALSE(topo::fits(ft, 17));
  // Torus extents must multiply to exactly the node count.
  const Spec to = *Spec::parse("torus:4x4");
  EXPECT_TRUE(topo::fits(to, 16));
  EXPECT_FALSE(topo::fits(to, 8));
  EXPECT_FALSE(topo::fits(to, 17));
  // The contention-free kinds fit everything.
  EXPECT_TRUE(topo::fits(Spec{}, 1024));
  EXPECT_TRUE(topo::fits(*Spec::parse("crossbar"), 1024));
}

// ---- Backend construction helpers ---------------------------------------

std::unique_ptr<topo::Topology> make(const char* spec, int nodes,
                                     engine::Simulator& sim,
                                     const ArchParams& arch = ArchParams{}) {
  return topo::make_topology(*Spec::parse(spec), arch, nodes,
                             [&sim](NodeId) -> engine::Simulator& {
                               return sim;
                             });
}

// ---- min_latency: the PDES lookahead floor ------------------------------

TEST(TopoMinLatency, CrossbarMatchesLegacyFormula) {
  engine::Simulator sim;
  const ArchParams arch;  // wire 100 + 32-byte header / 2.0 B/cycle = 116
  const auto xbar = make("crossbar", 4, sim, arch);
  EXPECT_FALSE(xbar->contended());
  EXPECT_EQ(xbar->link_count(), 0u);
  EXPECT_EQ(xbar->min_latency(),
            arch.wire_latency_cycles +
                static_cast<Cycles>(
                    static_cast<double>(arch.packet_header_bytes) /
                    arch.link_bytes_per_cycle));
}

TEST(TopoMinLatency, ContendedFloorIsCheapestHopClass) {
  engine::Simulator sim;
  const ArchParams arch;
  // Cheapest hop: an intra-node inject/eject link — latency plus the
  // header's serialization at that class's bandwidth (20 + 32/2.0 = 36
  // with the defaults). Inter-node links are strictly costlier.
  const Cycles want =
      arch.intra_hop_latency_cycles +
      static_cast<Cycles>(static_cast<double>(arch.packet_header_bytes) /
                          arch.intra_link_bytes_per_cycle);
  for (const char* spec : {"fattree:4", "torus:4x4"}) {
    const auto t = make(spec, 16, sim);
    EXPECT_TRUE(t->contended());
    EXPECT_EQ(t->min_latency(), want) << spec;
    EXPECT_GE(t->min_latency(), 1u) << spec;
  }
}

// ---- Route properties ---------------------------------------------------

TEST(TopoRoute, IsDeterministicAcrossCalls) {
  engine::Simulator sim;
  for (const char* spec : {"fattree:4", "torus:4x4"}) {
    const auto t = make(spec, 16, sim);
    for (NodeId s = 0; s < 16; ++s) {
      for (NodeId d = 0; d < 16; ++d) {
        topo::Topology::RouteBuf a;
        topo::Topology::RouteBuf b;
        t->route(s, d, a);
        t->route(s, d, b);
        ASSERT_EQ(a.hops, b.hops) << spec << " " << s << "->" << d;
        for (int i = 0; i < a.hops; ++i) {
          ASSERT_EQ(a.link[static_cast<std::size_t>(i)],
                    b.link[static_cast<std::size_t>(i)])
              << spec << " " << s << "->" << d << " hop " << i;
        }
      }
    }
  }
}

TEST(TopoRoute, TorusHopCountIsWraparoundManhattanDistance) {
  engine::Simulator sim;
  const int X = 4;
  const int Y = 4;
  const auto t = make("torus:4x4", X * Y, sim);
  for (NodeId s = 0; s < static_cast<NodeId>(X * Y); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(X * Y); ++d) {
      topo::Topology::RouteBuf r;
      t->route(s, d, r);
      const auto ring_dist = [](int a, int b, int n) {
        const int fwd = (b - a + n) % n;
        return fwd <= n - fwd ? fwd : n - fwd;
      };
      const int manhattan = ring_dist(s % X, d % X, X) +
                            ring_dist(s / X, d / X, Y);
      // inject + one ring link per grid step + eject.
      EXPECT_EQ(r.hops, 2 + manhattan) << s << "->" << d;
      EXPECT_EQ(t->link(r.link[0]).kind, LinkKind::kInject);
      EXPECT_EQ(t->link(r.link[static_cast<std::size_t>(r.hops - 1)]).kind,
                LinkKind::kEject);
      for (int i = 1; i + 1 < r.hops; ++i) {
        EXPECT_EQ(t->link(r.link[static_cast<std::size_t>(i)]).kind,
                  LinkKind::kRing);
      }
    }
  }
}

TEST(TopoRoute, FatTreePathsGoUpThenDownAndNeverRepeatALink) {
  engine::Simulator sim;
  const auto t = make("fattree:4", 16, sim);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      topo::Topology::RouteBuf r;
      t->route(s, d, r);
      ASSERT_GE(r.hops, 2) << s << "->" << d;
      EXPECT_EQ(t->link(r.link[0]).kind, LinkKind::kInject);
      EXPECT_EQ(t->link(r.link[static_cast<std::size_t>(r.hops - 1)]).kind,
                LinkKind::kEject);
      // Between inject and eject the kind sequence must match kUp* kDown*:
      // once a path turns downward it never climbs again (up*-down* routing
      // is what makes the fat tree loop-free).
      bool descending = false;
      std::set<topo::LinkId> seen;
      for (int i = 0; i < r.hops; ++i) {
        const topo::LinkId id = r.link[static_cast<std::size_t>(i)];
        EXPECT_TRUE(seen.insert(id).second)
            << "repeated link on " << s << "->" << d;
        const LinkKind k = t->link(id).kind;
        if (k == LinkKind::kDown) descending = true;
        if (k == LinkKind::kUp) {
          EXPECT_FALSE(descending) << "up after down on " << s << "->" << d;
        }
      }
    }
  }
}

// ---- Validation at Machine construction ---------------------------------

TEST(TopoMachine, RejectsInvalidArchParams) {
  SimConfig cfg;
  cfg.arch.link_bytes_per_cycle = 0.0;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
  cfg = SimConfig{};
  cfg.arch.wire_latency_cycles = 0;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
  cfg = SimConfig{};
  cfg.arch.intra_link_bytes_per_cycle = -1.0;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
}

TEST(TopoMachine, RejectsUnfittingTopology) {
  SimConfig cfg;  // the default machine has 4 nodes
  ASSERT_EQ(cfg.comm.node_count(), 4);
  cfg.topology = *Spec::parse("torus:4x4");
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
  cfg.topology = *Spec::parse("fattree:2");  // capacity 2 < 4 nodes
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
}

// ---- End-to-end identities ----------------------------------------------

TEST(TopoRun, CrossbarRunIsIdenticalToLegacy) {
  SimConfig legacy;
  auto w1 = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult a = run(*w1, legacy);

  SimConfig xbar;
  xbar.topology = *Spec::parse("crossbar");
  auto w2 = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult b = run(*w2, xbar);

  ASSERT_TRUE(a.validated);
  ASSERT_TRUE(b.validated);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_TRUE(b.stats.links().empty());
}

TEST(TopoRun, ContendedSerialAndParallelStatsIdentical) {
  SimConfig cfg;
  cfg.topology = *Spec::parse("torus:2x2");
  auto w1 = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult serial = run(*w1, cfg);

  cfg.par_cores = 2;
  auto w2 = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult par = run(*w2, cfg);

  ASSERT_TRUE(serial.validated);
  ASSERT_TRUE(par.validated);
  EXPECT_EQ(serial.time, par.time);
  // Stats::operator== covers the per-link rows, so this is the in-process
  // form of the tools/topology_equivalence.sh byte-diff.
  EXPECT_TRUE(serial.stats == par.stats);
}

TEST(TopoRun, ContendedRunReportsPerLinkOccupancy) {
  SimConfig cfg;
  cfg.topology = *Spec::parse("torus:2x2");
  auto w = apps::make_app("fft", apps::Scale::kTiny);
  const RunResult r = run(*w, cfg);
  ASSERT_TRUE(r.validated);

  // 4 nodes x (inject + eject + 2 directed ring links per dimension x 2).
  ASSERT_EQ(r.stats.links().size(), 4u * 6u);
  std::uint64_t grants = 0;
  std::uint64_t bytes = 0;
  for (const auto& l : r.stats.links()) {
    grants += l.grants;
    bytes += l.bytes;
  }
  EXPECT_GT(grants, 0u);
  EXPECT_GT(bytes, 0u);

  // The legacy network reports no link rows at all.
  auto wl = apps::make_app("fft", apps::Scale::kTiny);
  EXPECT_TRUE(run(*wl, SimConfig{}).stats.links().empty());
}

}  // namespace
}  // namespace svmsim
