// Wire-level message/packet model.
//
// A Message is the unit the protocol layer thinks in; the NIC fragments it
// into MTU-sized packets, charges per-packet NI occupancy and I/O-bus/
// memory-bus DMA on both sides, and reassembles at the receiver. Replies to
// synchronous requests are deposited directly into host memory and never
// interrupt (paper §3: "Requests are synchronous (RPC like), to avoid
// interrupts when replies arrive"); unsolicited requests interrupt a
// processor of the destination node.
//
// The body is a typed svm::Payload variant of pooled references (it used to
// be a std::any, which heap-allocated on every send); moving a Message moves
// a reference, and dropping the last reference recycles the body.
#pragma once

#include <cstdint>

#include "engine/types.hpp"
#include "svm/payload.hpp"

namespace svmsim::net {

enum class MsgType : int {
  kPageRequest,     // fetch a page from its home           (interrupts)
  kPageReply,       //                                      (no interrupt)
  kDiffBatch,       // diffs flushed to a home at release   (interrupts)
  kDiffAck,         //                                      (no interrupt)
  kLockAcquire,     // remote lock acquire -> lock home     (interrupts)
  kLockGrant,       // delayed reply to kLockAcquire        (no interrupt)
  kLockRecall,      // home asks token holder to give back  (interrupts)
  kTokenReturn,     // holder returns token to home         (interrupts)
  kBarrierArrive,   // node rep -> barrier manager          (no interrupt)
  kBarrierRelease,  // manager -> node reps                 (no interrupt)
  kUpdate,          // AURC automatic update run (hardware) (no interrupt)
  kUpdateMarker,    // AURC release marker, acked by the NI (no interrupt)
  kUpdateMarkerAck, //                                      (no interrupt)
};

/// True if delivery of this message must interrupt a host processor.
[[nodiscard]] constexpr bool interrupts_host(MsgType t) {
  switch (t) {
    case MsgType::kPageRequest:
    case MsgType::kDiffBatch:
    case MsgType::kLockAcquire:
    case MsgType::kLockRecall:
    case MsgType::kTokenReturn:
      return true;
    default:
      return false;
  }
}

/// True if this is a reply correlated to an outstanding synchronous request.
[[nodiscard]] constexpr bool is_reply(MsgType t) {
  switch (t) {
    case MsgType::kPageReply:
    case MsgType::kDiffAck:
    case MsgType::kLockGrant:
    case MsgType::kUpdateMarkerAck:
      return true;
    default:
      return false;
  }
}

struct Message {
  MsgType type{};
  NodeId src = -1;
  NodeId dst = -1;
  std::uint64_t rpc_id = 0;        ///< correlation id for replies
  std::uint64_t payload_bytes = 0; ///< protocol payload size on the wire

  // Protocol fields (used as relevant per type).
  std::uint64_t page = ~0ull;
  std::uint32_t offset = 0;  ///< byte offset within `page` (AURC updates)
  int lock_id = -1;
  int barrier_id = 0;
  svm::Payload body;  ///< typed payload (diff batches, vclocks, page data)

  /// Pool hook (Messages recycle through the Network's message pool): drop
  /// the body reference so it cascades back to its own pool; scalar fields
  /// are fully overwritten by assignment on reuse.
  void recycle() noexcept { body = svm::Payload{}; }
};

}  // namespace svmsim::net
