#include "svm/address_space.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace svmsim::svm {
namespace {

TEST(AddressSpace, AllocRoundsUpToPages) {
  AddressSpace as(4, 4096);
  const GlobalAddr a = as.alloc(100, Distribution::block());
  const GlobalAddr b = as.alloc(5000, Distribution::block());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4096u);
  EXPECT_EQ(as.page_count(), 3u);
}

TEST(AddressSpace, BlockDistributionSplitsEvenly) {
  AddressSpace as(4, 1024);
  as.alloc(8 * 1024, Distribution::block());
  EXPECT_EQ(as.home_of(0), 0);
  EXPECT_EQ(as.home_of(1), 0);
  EXPECT_EQ(as.home_of(2), 1);
  EXPECT_EQ(as.home_of(3), 1);
  EXPECT_EQ(as.home_of(6), 3);
  EXPECT_EQ(as.home_of(7), 3);
}

TEST(AddressSpace, CyclicDistributionInterleaves) {
  AddressSpace as(4, 1024);
  as.alloc(8 * 1024, Distribution::cyclic());
  for (PageId p = 0; p < 8; ++p) {
    EXPECT_EQ(as.home_of(p), static_cast<NodeId>(p % 4));
  }
}

TEST(AddressSpace, FixedDistribution) {
  AddressSpace as(4, 1024);
  as.alloc(4 * 1024, Distribution::fixed(2));
  for (PageId p = 0; p < 4; ++p) EXPECT_EQ(as.home_of(p), 2);
}

TEST(AddressSpace, FirstTouchAssignsOnDemand) {
  AddressSpace as(4, 1024);
  as.alloc(2 * 1024, Distribution::first_touch());
  EXPECT_EQ(as.home_of(0), -1);
  EXPECT_EQ(as.assign_home(0, 3), 3);
  EXPECT_EQ(as.home_of(0), 3);
  // Second toucher does not steal the home.
  EXPECT_EQ(as.assign_home(0, 1), 3);
}

TEST(AddressSpace, SetHomeRangeOverrides) {
  AddressSpace as(4, 1024);
  const GlobalAddr a = as.alloc(4 * 1024, Distribution::block());
  as.set_home_range(a + 1024, 2048, 3);
  EXPECT_EQ(as.home_of(1), 3);
  EXPECT_EQ(as.home_of(2), 3);
  EXPECT_NE(as.home_of(0), 3);
}

TEST(AddressSpace, DebugReadWriteRoundTripAcrossPages) {
  AddressSpace as(2, 1024);
  const GlobalAddr a = as.alloc(4096, Distribution::block());
  std::vector<std::uint8_t> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  as.debug_write(a + 500, data.data(), data.size());
  std::vector<std::uint8_t> out(3000);
  as.debug_read(a + 500, out.data(), out.size());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), data.size()), 0);
}

TEST(AddressSpace, CopiesAreLazyAndPerNode) {
  AddressSpace as(2, 1024);
  as.alloc(1024, Distribution::fixed(0));
  EXPECT_FALSE(as.has_copy(1, 0));
  PageCopy& c = as.copy(1, 0);
  EXPECT_TRUE(as.has_copy(1, 0));
  EXPECT_EQ(c.state, PageState::kUnmapped);
  EXPECT_EQ(c.data.size(), 1024u);
  // The home copy is a distinct object.
  as.home_data(0)[0] = std::byte{42};
  EXPECT_NE(c.data[0], std::byte{42});
}

TEST(AddressSpace, HomeDataCreatesReadOnlyHomeCopy) {
  AddressSpace as(2, 1024);
  as.alloc(1024, Distribution::fixed(1));
  (void)as.home_data(0);
  EXPECT_TRUE(as.has_copy(1, 0));
  EXPECT_EQ(as.copy(1, 0).state, PageState::kReadOnly);
}

TEST(AddressSpace, PageAndOffsetMath) {
  AddressSpace as(2, 4096);
  EXPECT_EQ(as.page_of(0), 0u);
  EXPECT_EQ(as.page_of(4095), 0u);
  EXPECT_EQ(as.page_of(4096), 1u);
  EXPECT_EQ(as.offset_of(4097), 1u);
}

}  // namespace
}  // namespace svmsim::svm
