// Trace analysis: recompute per-category totals from the records and
// cross-check them against the core::Stats embedded in the trace. Exact
// agreement turns the tracer into a whole-simulation correctness oracle:
// every counter increment and every Breakdown bucket must be matched by a
// record, and vice versa. Used by bench/trace_analyze and tests/test_trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace svmsim::trace {

/// One hot entity: (event count over the trace, page or lock id).
struct HotEntry {
  std::uint64_t count = 0;
  std::uint64_t id = 0;
};

struct Analysis {
  Stats recomputed{0};  ///< counters + breakdowns rebuilt from records only
  std::array<std::uint64_t, static_cast<std::size_t>(kCategories)>
      records_per_category{};
  std::vector<HotEntry> hot_pages;  ///< by protocol-event count, descending
  std::vector<HotEntry> hot_locks;
};

/// Scan `f.records` once and rebuild the run's statistics. `top_n` bounds
/// the hottest-pages/locks lists.
[[nodiscard]] Analysis analyze(const TraceFile& f, std::size_t top_n = 10);

/// Compare the recomputed statistics against the Stats embedded in the
/// trace. Counters (and breakdowns) whose category was masked out of the
/// trace are skipped. Returns one human-readable line per mismatch; empty
/// means the trace reproduces core::Stats exactly.
[[nodiscard]] std::vector<std::string> check(const TraceFile& f);

/// Render the analysis as printable text (breakdown table, counters,
/// hottest pages/locks).
[[nodiscard]] std::string report(const TraceFile& f, const Analysis& a);

}  // namespace svmsim::trace
