// Automatic Update Release Consistency (AURC).
//
// Instead of twins and diffs, a snooping device on the memory bus captures
// writes to shared pages whose home is remote and streams them to the home
// through the NI ("automatic update" hardware, as on SHRIMP). Consecutive
// writes to adjacent addresses coalesce into one update packet; scattered
// writes produce many small packets — which is why AURC is far more
// sensitive to NI occupancy than HLRC (Figure 12). Updates and the release
// marker are handled entirely by the NI at the home: no host overhead, no
// interrupts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "svm/hlrc.hpp"

namespace svmsim::svm {

class AurcAgent final : public SvmAgent {
 public:
  using SvmAgent::SvmAgent;

  void install() override;

 protected:
  engine::Task<void> arm_write(Processor& p, PageId page,
                               PageCopy& c) override;
  void on_store(Processor& p, PageId page, PageCopy& c, std::uint32_t offset,
                std::uint32_t len) override;
  engine::Task<void> propagate_dirty(Processor& p,
                                     const std::vector<PageId>& pages) override;
  engine::Task<void> flush_page_for_invalidation(Processor& p, PageId page,
                                                 PageCopy& c) override;
  void handle_direct(net::Message&& m) override;

 private:
  /// An open coalescing run of the automatic-update hardware.
  struct Run {
    std::uint32_t start = 0;
    std::uint32_t end = 0;
    bool active = false;
    bool listed = false;  ///< queued on active_pages_
  };

  [[nodiscard]] Run& run_of(PageId page);

  /// Emit the run as a kUpdate message (hardware: no host overhead).
  void emit_run(PageId page, Run& run);
  /// Send release markers to the given homes (skipping self) and wait for
  /// their acks. `ids` is caller-provided scratch for the outstanding RPCs.
  engine::Task<void> sync_homes(Processor& p, std::span<const NodeId> homes,
                                std::vector<std::uint64_t>& ids);
  void apply_update(const net::Message& m);

  // Coalescing-run table, dense by page id; active_pages_ lists the pages
  // with a queued run in first-touch order (the Run::listed flag keeps the
  // list duplicate-free). Replaces an unordered_map rebuilt every interval.
  std::vector<Run> runs_;
  std::vector<PageId> active_pages_;
  // Homes touched since the last flush: a flag per node plus the insertion
  // order, so release markers go out deterministically.
  std::vector<std::uint8_t> home_touched_;
  std::vector<NodeId> homes_touched_;
  // Flush scratch (serialized by node_flushing_).
  std::vector<NodeId> sync_scratch_;
  std::vector<std::uint64_t> rpc_ids_;
};

}  // namespace svmsim::svm
