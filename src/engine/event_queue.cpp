#include "engine/event_queue.hpp"

#include <cassert>
#include <utility>

namespace svmsim::engine {

void EventQueue::schedule_at(Cycles when, Action action) {
  assert(when >= now_ && "cannot schedule an event in the past");
  heap_.push(Event{when, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never reuse the slot.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ++fired_;
  ev.action();
  return true;
}

void EventQueue::run_until_idle() {
  while (step()) {
  }
}

bool EventQueue::run_until(Cycles deadline) {
  while (!heap_.empty()) {
    if (heap_.top().when > deadline) return false;
    step();
  }
  return true;
}

}  // namespace svmsim::engine
