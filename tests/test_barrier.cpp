// Hierarchical barrier tests.
#include <gtest/gtest.h>

#include <vector>

#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Shm;

TEST(Barrier, NoProcessorPassesEarly) {
  SimConfig cfg = config_with(16, 4);
  constexpr int kRounds = 10;
  std::vector<int> arrived(kRounds, 0);
  bool ok = true;

  LambdaWorkload w(
      "barrier-phases", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        apps::Rng rng(static_cast<std::uint64_t>(pid) * 7 + 1);
        for (int r = 0; r < kRounds; ++r) {
          shm.compute(rng.below(5000));  // skewed arrivals
          ++arrived[static_cast<std::size_t>(r)];
          co_await shm.barrier();
          // After the barrier, every processor must have arrived at round r.
          if (arrived[static_cast<std::size_t>(r)] != 16) ok = false;
        }
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(r.validated);
  // 10 explicit + 1 final runner barrier, per processor.
  EXPECT_EQ(r.stats.counters().barriers, 16u * 11u);
}

TEST(Barrier, WorksWithUniprocessorNodes) {
  SimConfig cfg = config_with(4, 1);
  int rounds_done = 0;
  LambdaWorkload w(
      "barrier-uni", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int r = 0; r < 5; ++r) {
          co_await shm.barrier();
          if (pid == 0) ++rounds_done;
        }
      });
  auto r = run(w, cfg);
  EXPECT_EQ(rounds_done, 5);
  EXPECT_TRUE(r.validated);
}

TEST(Barrier, SingleNodeUsesNoMessages) {
  SimConfig cfg = config_with(4, 4);
  LambdaWorkload w(
      "barrier-smp", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int r = 0; r < 5; ++r) co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().messages_sent, 0u);
  EXPECT_EQ(r.stats.counters().interrupts, 0u);
}

TEST(Barrier, CrossNodeBarrierUsesSynchronousMessagesWithoutInterrupts) {
  SimConfig cfg = config_with(8, 2);  // 4 nodes
  LambdaWorkload w(
      "barrier-msgs", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  // Two barriers total (explicit + runner): each costs (nodes-1) arrivals
  // plus (nodes-1) releases.
  EXPECT_EQ(r.stats.counters().messages_sent, 2u * 2u * 3u);
  EXPECT_EQ(r.stats.counters().interrupts, 0u);  // paper: no barrier interrupts
}

TEST(Barrier, RapidBackToBackEpisodes) {
  SimConfig cfg = config_with(16, 8);
  LambdaWorkload w(
      "barrier-burst", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int r = 0; r < 50; ++r) co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.stats.counters().barriers, 16u * 51u);
}

}  // namespace
}  // namespace svmsim::test
