#include "net/io_bus.hpp"

// Header-only implementation; anchor TU.
namespace svmsim::net {}
