#include "engine/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace svmsim::engine::detail {

// ---------------------------------------------------------------------------
// Wire-band arbitration (shared by both backends)
//
// Offers the arbiter one alternative per delivery channel — the channel's
// earliest pending event, in the band's fire order — and, when it picks
// alternative i > 0, defers the displaced events to fire just after it:
// every event ordered before the chosen one moves to (chosen.when,
// chosen.defer + 1 + rank), where rank is its position in the displaced
// set's original fire order. Two invariants make this a clean "which
// delivery fires next" permutation:
//
//  * Per-channel FIFO: a channel with a deferred member must not leave a
//    same-instant follower un-deferred (it would overtake). The closure loop
//    pulls those followers into the deferred set, in order.
//  * One decision per fire: the chosen event becomes the strict band
//    minimum, so it fires on the very next wire fire — unless deferral
//    pushed the band head past a pending (time, seq) event, which is why
//    callers re-compare band priority after arbitration.
// ---------------------------------------------------------------------------

bool arbitrate_wire(std::vector<WireEvent>& wire, WireArbiter& arb) {
  const std::size_t n = wire.size();
  if (n < 2) return false;
  // Fire-ordered view of the band (the heap itself is only partially
  // ordered). The band is small — tens of entries — so O(n log n) sorts and
  // O(n^2) channel scans are cheaper than hashing.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return WireFiresLater{}(wire[b], wire[a]);
  });
  std::vector<std::uint64_t> channels;
  std::vector<WireChoice> alts;
  std::vector<std::size_t> alt_pos;  // position of each alternative in order
  for (std::size_t p = 0; p < n; ++p) {
    const WireEvent& e = wire[order[p]];
    const std::uint64_t ch = e.key >> 32;
    if (std::find(channels.begin(), channels.end(), ch) != channels.end()) {
      continue;
    }
    channels.push_back(ch);
    alts.push_back(WireChoice{e.when, e.defer, e.key});
    alt_pos.push_back(p);
  }
  if (alts.size() < 2) return false;
  const std::size_t pick = arb.choose_wire(alts.data(), alts.size());
  assert(pick < alts.size() && "WireArbiter returned an out-of-range pick");
  if (pick == 0 || pick >= alts.size()) return false;
  const std::size_t chosen_pos = alt_pos[pick];
  const Cycles when = alts[pick].when;
  const std::uint32_t base = alts[pick].defer;
  std::vector<std::size_t> deferred;  // wire indices, in displaced fire order
  std::vector<std::uint64_t> hit;     // channels owning a deferred event
  deferred.reserve(chosen_pos);
  for (std::size_t p = 0; p < chosen_pos; ++p) {
    deferred.push_back(order[p]);
    const std::uint64_t ch = wire[order[p]].key >> 32;
    if (std::find(hit.begin(), hit.end(), ch) == hit.end()) hit.push_back(ch);
  }
  // FIFO closure: same-instant followers of an already-deferred channel.
  for (std::size_t p = chosen_pos + 1; p < n; ++p) {
    const WireEvent& e = wire[order[p]];
    if (e.when != when) break;  // order is ascending in when
    if (std::find(hit.begin(), hit.end(), e.key >> 32) != hit.end()) {
      deferred.push_back(order[p]);
    }
  }
  for (std::size_t r = 0; r < deferred.size(); ++r) {
    WireEvent& e = wire[deferred[r]];
    e.when = when;
    e.defer = base + 1 + static_cast<std::uint32_t>(r);
  }
  std::make_heap(wire.begin(), wire.end(), WireFiresLater{});
  return true;
}

// ---------------------------------------------------------------------------
// HeapScheduler
// ---------------------------------------------------------------------------

std::vector<HeapScheduler::Event>& HeapScheduler::spare_slot() {
  // One drained event vector per thread, recycled across scheduler
  // lifetimes so consecutive runs (a sweep on this thread) reuse warmed-up
  // capacity instead of regrowing from zero. thread_local keeps the parallel
  // sweep executor's workers from ever sharing storage.
  thread_local std::vector<Event> spare;
  return spare;
}

HeapScheduler::HeapScheduler() : heap_(std::move(spare_slot())) {
  heap_.clear();
  if (heap_.capacity() < 256) heap_.reserve(256);
}

HeapScheduler::~HeapScheduler() {
  heap_.clear();
  if (heap_.capacity() > spare_slot().capacity()) {
    spare_slot() = std::move(heap_);
  }
}

void HeapScheduler::schedule_at(Cycles when, Action action) {
  assert(when >= now_ && "cannot schedule an event in the past");
  heap_.push_back(Event{when, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
}

void HeapScheduler::schedule_wire(Cycles when, std::uint64_t key,
                                  Action action) {
  assert(when > now_ && "wire events must be strictly in the future");
  wire_.push_back(WireEvent{when, key, 0, std::move(action)});
  std::push_heap(wire_.begin(), wire_.end(), WireFiresLater{});
}

void HeapScheduler::fire_wire() {
  std::pop_heap(wire_.begin(), wire_.end(), WireFiresLater{});
  WireEvent ev = std::move(wire_.back());
  wire_.pop_back();
  now_ = ev.when;
  ++fired_;
  if (arbiter_ != nullptr) [[unlikely]] arbiter_->on_wire_fire(ev.key);
  ev.action();
}

HeapScheduler::Event HeapScheduler::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool HeapScheduler::step() {
  if (arbiter_ != nullptr && wire_first()) [[unlikely]] {
    arbitrate_wire(wire_, *arbiter_);
  }
  if (wire_first()) {
    fire_wire();
    return true;
  }
  if (heap_.empty()) return false;
  Event ev = pop_top();
  now_ = ev.when;
  ++fired_;
  ev.action();
  return true;
}

void HeapScheduler::run_until_idle() {
  while (step()) {
  }
}

bool HeapScheduler::run_until(Cycles deadline) {
  for (;;) {
    const Cycles next = next_time();
    if (next == kNever) return true;
    if (next > deadline) return false;
    step();
  }
}

// ---------------------------------------------------------------------------
// TieredScheduler
//
// Wheel geometry: level k (k = 0..3) has 256 slots of 256^k cycles each, so
// level k spans one 256^(k+1)-cycle window aligned on the cursor. An event
// lives at the lowest level whose current window contains it — i.e. the
// highest byte in which `when` still differs from the cursor picks the
// level, and that byte of `when` picks the slot. Each slot therefore covers
// exactly one child window; when the cursor enters a window, the parent slot
// "cascades": its nodes are relinked one level down (and the nodes of a
// level-0 slot, which share a single tick, splice onto the FIFO lane as a
// batch).
//
// Ordering invariant: a slot list, restricted to any single `when`, is
// always in ascending seq order. It holds because (a) a slot receives at
// most one cascade batch, exactly when the cursor enters its window and
// before any user code runs, (b) cascading walks the parent list in order,
// and (c) every later direct insert carries a seq greater than anything
// already stored anywhere. Splicing a level-0 slot onto the lane in list
// order is thus the (time, seq) order the contract requires.
// ---------------------------------------------------------------------------

namespace {

/// Heap comparator over pooled nodes (the heap tier stores pointers).
struct NodeFiresLater {
  template <typename NodePtr>
  bool operator()(const NodePtr& a, const NodePtr& b) const noexcept {
    if (a->when != b->when) return a->when > b->when;
    return a->seq > b->seq;
  }
};

}  // namespace

TieredScheduler::Storage& TieredScheduler::spare_storage() {
  // The whole node pool (chunks + free list + heap vector) is recycled
  // across scheduler lifetimes so consecutive runs on one thread reuse
  // warmed-up capacity. thread_local keeps the parallel sweep executor's
  // workers from ever sharing storage.
  thread_local Storage spare;
  return spare;
}

TieredScheduler::TieredScheduler() {
  Storage& sp = spare_storage();
  if (sp.node_count > 0) {
    chunks_ = std::move(sp.chunks);
    free_ = sp.free_list;
    node_count_ = sp.node_count;
    heap_ = std::move(sp.heap);
    sp.chunks.clear();
    sp.free_list = nullptr;
    sp.node_count = 0;
  }
  heap_.clear();
}

TieredScheduler::~TieredScheduler() {
  clear();
  Storage& sp = spare_storage();
  if (node_count_ > sp.node_count) {
    sp.chunks = std::move(chunks_);
    sp.free_list = free_;
    sp.node_count = node_count_;
    sp.heap = std::move(heap_);
  }
}

void TieredScheduler::refill() {
  // Geometric growth: double the pool each time, starting at 256 nodes.
  const std::size_t add = node_count_ == 0 ? 256 : node_count_;
  chunks_.push_back(std::make_unique<Node[]>(add));
  Node* nodes = chunks_.back().get();
  for (std::size_t i = 0; i < add; ++i) {
    nodes[i].next = free_;
    free_ = &nodes[i];
  }
  node_count_ += add;
}

void TieredScheduler::reserve(std::size_t events) {
  while (node_count_ < events) refill();
}

void TieredScheduler::route(Node* n) {
  // Routing happens against the wheel cursor, not now_: the cursor may have
  // swept ahead of now_ while moving a tick onto the lane. If the wheel and
  // lane are empty the cursor position carries no state, so drag it up to
  // now_ first — this keeps long heap-driven stretches (events beyond the
  // horizon) from degrading every later insert to the heap tier.
  if (wheel_count_ == 0 && lane_size_ == 0 && cursor_ < now_) cursor_ = now_;
  if (n->when < cursor_ || ((n->when ^ cursor_) >> (kLevels * kSlotBits)) != 0) {
    heap_.push_back(n);
    std::push_heap(heap_.begin(), heap_.end(), NodeFiresLater{});
    return;
  }
  wheel_insert(n);
}

void TieredScheduler::wheel_insert(Node* n) {
  // Highest differing byte between when and cursor picks the level.
  const Cycles x = n->when ^ cursor_;
  int level = 0;
  if (x >> kSlotBits) {
    level = (x >> (2 * kSlotBits)) ? ((x >> (3 * kSlotBits)) ? 3 : 2) : 1;
  }
  const std::size_t idx =
      static_cast<std::size_t>(n->when >> (level * kSlotBits)) & kSlotMask;
  List& s = slots_[level][idx];
  n->next = nullptr;
  if (s.tail) {
    s.tail->next = n;
  } else {
    s.head = n;
  }
  s.tail = n;
  ++counts_[level][idx];
  bits_[level][idx >> 6] |= std::uint64_t{1} << (idx & 63);
  ++wheel_count_;
}

int TieredScheduler::scan_bits(const std::uint64_t* words, std::size_t from) {
  std::size_t w = from >> 6;
  std::uint64_t cur = words[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (cur) {
      return static_cast<int>((w << 6) +
                              static_cast<std::size_t>(std::countr_zero(cur)));
    }
    if (++w == kWords) return -1;
    cur = words[w];
  }
}

bool TieredScheduler::drain_level0() {
  const int found =
      scan_bits(bits_[0], static_cast<std::size_t>(cursor_ & kSlotMask));
  if (found < 0) return false;
  const auto idx = static_cast<std::size_t>(found);
  const Cycles tick = (cursor_ & ~kSlotMask) | static_cast<Cycles>(idx);
  List& s = slots_[0][idx];
  assert(s.head != nullptr && s.head->when == tick &&
         "a level-0 slot must hold a single tick");
  // Splice the whole slot list (already in seq order) onto the lane: O(1).
  if (lane_.tail) {
    lane_.tail->next = s.head;
  } else {
    lane_.head = s.head;
  }
  lane_.tail = s.tail;
  lane_size_ += counts_[0][idx];
  wheel_count_ -= counts_[0][idx];
  counts_[0][idx] = 0;
  s.head = s.tail = nullptr;
  bits_[0][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  cursor_ = tick + 1;
  // Crossing a 256-cycle boundary enters new windows; cascade their parent
  // slots down *now*, before any insert can route against the new cursor.
  if ((cursor_ & kSlotMask) == 0) roll();
  return true;
}

void TieredScheduler::cascade(int level, std::size_t idx) {
  List& s = slots_[level][idx];
  Node* n = s.head;
  s.head = s.tail = nullptr;
  wheel_count_ -= counts_[level][idx];
  counts_[level][idx] = 0;
  bits_[level][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  while (n != nullptr) {
    Node* next = n->next;
    // Every cascaded node re-routes strictly below `level` (its window now
    // matches the cursor's through this level), so `s` is never re-entered
    // while we walk it.
    assert(((n->when ^ cursor_) >> (level * kSlotBits)) == 0);
    wheel_insert(n);
    n = next;
  }
}

void TieredScheduler::roll() {
  assert((cursor_ & kSlotMask) == 0);
  // Cascade top-down so each level's events are in place before the child
  // window is populated from them. At a 2^32 boundary there is nothing to
  // pull (beyond-horizon events wait in the heap tier), and the level-3
  // slot for the new window is empty by construction.
  if ((cursor_ & ((Cycles{1} << (3 * kSlotBits)) - 1)) == 0) {
    const std::size_t i3 =
        static_cast<std::size_t>(cursor_ >> (3 * kSlotBits)) & kSlotMask;
    if (bit_set(3, i3)) cascade(3, i3);
  }
  if ((cursor_ & ((Cycles{1} << (2 * kSlotBits)) - 1)) == 0) {
    const std::size_t i2 =
        static_cast<std::size_t>(cursor_ >> (2 * kSlotBits)) & kSlotMask;
    if (bit_set(2, i2)) cascade(2, i2);
  }
  const std::size_t i1 =
      static_cast<std::size_t>(cursor_ >> kSlotBits) & kSlotMask;
  if (bit_set(1, i1)) cascade(1, i1);
}

bool TieredScheduler::cascade_next(int level) {
  const int found = scan_bits(
      bits_[level],
      static_cast<std::size_t>(cursor_ >> (level * kSlotBits)) & kSlotMask);
  if (found < 0) return false;
  // Jump the cursor to the base of that slot's child window and unpack it.
  // Slots behind the per-level cursor index are empty (their times have
  // passed), so the jump skips only verified-empty space.
  const Cycles span = Cycles{1} << (level * kSlotBits);
  const Cycles window = span << kSlotBits;
  cursor_ = (cursor_ & ~(window - 1)) | (static_cast<Cycles>(found) * span);
  cascade(level, static_cast<std::size_t>(found));
  return true;
}

bool TieredScheduler::advance() {
  while (wheel_count_ > 0) {
    if (drain_level0()) return true;
    if (cascade_next(1) || cascade_next(2) || cascade_next(3)) continue;
    assert(false && "wheel_count_ out of sync with occupied slots");
    wheel_count_ = 0;  // defensive: fall back to lane/heap in release builds
  }
  return false;
}

void TieredScheduler::fire_lane() {
  Node* n = lane_.head;
  lane_.head = n->next;
  if (lane_.head == nullptr) lane_.tail = nullptr;
  --lane_size_;
  now_ = n->when;
  ++fired_;
  n->action();  // in place: no action move on the fire path
  release(n);
}

void TieredScheduler::fire_heap() {
  std::pop_heap(heap_.begin(), heap_.end(), NodeFiresLater{});
  Node* n = heap_.back();
  heap_.pop_back();
  now_ = n->when;
  ++fired_;
  n->action();
  release(n);
}

void TieredScheduler::schedule_wire(Cycles when, std::uint64_t key,
                                    Action action) {
  assert(when > now_ && "wire events must be strictly in the future");
  wire_.push_back(WireEvent{when, key, 0, std::move(action)});
  std::push_heap(wire_.begin(), wire_.end(), WireFiresLater{});
}

void TieredScheduler::fire_wire() {
  std::pop_heap(wire_.begin(), wire_.end(), WireFiresLater{});
  WireEvent ev = std::move(wire_.back());
  wire_.pop_back();
  now_ = ev.when;
  ++fired_;
  if (arbiter_ != nullptr) [[unlikely]] arbiter_->on_wire_fire(ev.key);
  ev.action();
}

void TieredScheduler::fire_next() {
  if (lane_.head != nullptr) [[likely]] {
    if (heap_.empty()) [[likely]] {
      fire_lane();
      return;
    }
    const Node* h = heap_.front();
    const Node* l = lane_.head;
    if (h->when > l->when || (h->when == l->when && h->seq > l->seq)) {
      fire_lane();
      return;
    }
  }
  fire_heap();
}

bool TieredScheduler::step() {
  const bool have_normal =
      !(lane_.head == nullptr && !advance() && heap_.empty());
  if (arbiter_ != nullptr && !wire_.empty() &&
      (!have_normal || wire_.front().when <= normal_next_time()))
      [[unlikely]] {
    // Arbitration may defer the band head past the normal band, so the
    // wire-vs-normal comparison below runs on the post-arbitration state.
    arbitrate_wire(wire_, *arbiter_);
  }
  if (!wire_.empty() &&
      (!have_normal || wire_.front().when <= normal_next_time())) {
    fire_wire();
    return true;
  }
  if (!have_normal) return false;
  fire_next();
  return true;
}

void TieredScheduler::run_until_idle() {
  while (step()) {
  }
}

bool TieredScheduler::run_until(Cycles deadline) {
  for (;;) {
    const bool have_normal =
        !(lane_.head == nullptr && !advance() && heap_.empty());
    Cycles next = have_normal ? normal_next_time() : kNever;
    if (arbiter_ != nullptr && !wire_.empty() && wire_.front().when <= next)
        [[unlikely]] {
      arbitrate_wire(wire_, *arbiter_);
    }
    bool wire = false;
    if (!wire_.empty() && wire_.front().when <= next) {
      next = wire_.front().when;
      wire = true;
    }
    if (next == kNever) return true;
    if (next > deadline) return false;
    if (wire) {
      fire_wire();
    } else {
      fire_next();
    }
  }
}

Cycles TieredScheduler::next_time() {
  Cycles next = kNever;
  if (!(lane_.head == nullptr && !advance() && heap_.empty())) {
    next = normal_next_time();
  }
  if (!wire_.empty() && wire_.front().when < next) next = wire_.front().when;
  return next;
}

void TieredScheduler::release_list(List& l) noexcept {
  Node* n = l.head;
  while (n != nullptr) {
    Node* next = n->next;
    release(n);
    n = next;
  }
  l.head = l.tail = nullptr;
}

void TieredScheduler::clear() noexcept {
  release_list(lane_);
  lane_size_ = 0;
  for (Node* n : heap_) release(n);
  heap_.clear();
  wire_.clear();
  if (wheel_count_ > 0) {
    for (int level = 0; level < kLevels; ++level) {
      for (std::size_t w = 0; w < kWords; ++w) {
        std::uint64_t bits = bits_[level][w];
        while (bits) {
          const std::size_t idx =
              (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          release_list(slots_[level][idx]);
          counts_[level][idx] = 0;
        }
        bits_[level][w] = 0;
      }
    }
    wheel_count_ = 0;
  }
}

}  // namespace svmsim::engine::detail
