// Parameter-sweep driver used by the figure/table benches: runs an
// application suite across a list of configurations, caching the
// uniprocessor baseline per application, and computes the paper's speedup
// metrics (achievable / best / ideal).
//
// Thread-safety contract: baseline(), run_point() and run_points() may be
// called from several threads at once (the baseline cache is internally
// locked and simulations share no state). run_points() with a JobPool fans
// the points out across the pool's workers after pre-warming every distinct
// baseline, and its results are bit-identical to the serial path: each point
// owns its Machine/EventQueue and writes an insertion-ordered result slot.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "harness/job_pool.hpp"

namespace svmsim::harness {

struct AppRun {
  std::string app;
  double param = 0.0;       ///< swept parameter value for this point
  RunResult result;
  Cycles uniprocessor = 0;  ///< baseline time for this app

  [[nodiscard]] double speedup() const {
    return result.time > 0
               ? static_cast<double>(uniprocessor) /
                     static_cast<double>(result.time)
               : 0.0;
  }
  /// The paper's ideal speedup: uniprocessor time over compute + local
  /// stall of the slowest processor in the parallel run.
  [[nodiscard]] double ideal_speedup() const {
    const Cycles local = result.stats.max_local_only();
    return local > 0 ? static_cast<double>(uniprocessor) /
                           static_cast<double>(local)
                     : 0.0;
  }
};

/// One simulation point of a sweep: an application at a configuration.
struct SweepPoint {
  std::string app;
  SimConfig cfg;
  double value = 0.0;  ///< recorded as AppRun::param
};

class Sweep {
 public:
  explicit Sweep(apps::Scale scale) : scale_(scale) {}

  /// Uniprocessor time for `app` under `base` (cached per app+page size).
  Cycles baseline(const std::string& app, const SimConfig& base);

  /// Run one application at one configuration.
  AppRun run_point(const std::string& app, const SimConfig& cfg,
                   double param_value);

  /// Run every point, concurrently on `pool` when it has more than one
  /// worker (serially otherwise). Results are returned in point order
  /// regardless of completion order.
  std::vector<AppRun> run_points(const std::vector<SweepPoint>& points,
                                 JobPool* pool = nullptr);

  /// Sweep `values`; `apply` writes the value into a config copy.
  std::vector<AppRun> run_sweep(
      const std::string& app, const SimConfig& base,
      const std::vector<double>& values,
      const std::function<void(SimConfig&, double)>& apply,
      JobPool* pool = nullptr);

  [[nodiscard]] apps::Scale scale() const noexcept { return scale_; }

 private:
  /// What the uniprocessor baseline actually depends on: communication
  /// parameters are irrelevant on one processor, but page size and protocol
  /// change local fault behavior.
  struct BaselineKey {
    std::string app;
    std::uint32_t page_bytes;
    Protocol protocol;
    auto operator<=>(const BaselineKey&) const = default;
  };
  static BaselineKey key_of(const std::string& app, const SimConfig& cfg) {
    return BaselineKey{app, cfg.comm.page_bytes, cfg.comm.protocol};
  }

  /// Compute-and-cache every distinct baseline `points` will need, using
  /// `pool` so baseline runs overlap; afterwards the fan-out only reads.
  void prewarm_baselines(const std::vector<SweepPoint>& points, JobPool* pool);

  apps::Scale scale_;
  std::mutex mu_;  ///< guards baselines_
  std::map<BaselineKey, Cycles> baselines_;
};

/// Max slowdown between the best and the worst speedup in a sweep, as a
/// percentage (Table 3). Negative values indicate a speedup.
[[nodiscard]] double max_slowdown_pct(const std::vector<AppRun>& runs);

}  // namespace svmsim::harness
