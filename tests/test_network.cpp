#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/stats.hpp"
#include "engine/simulator.hpp"
#include "memsys/memory_bus.hpp"
#include "net/messaging.hpp"
#include "net/nic.hpp"

namespace svmsim::net {
namespace {

/// Two-node network harness.
struct Net2 {
  SimConfig cfg;
  engine::Simulator sim;
  Stats stats{2};
  memsys::MemoryBus bus0{sim, cfg.arch};
  memsys::MemoryBus bus1{sim, cfg.arch};
  Network network{sim, cfg.arch};
  Nic nic0{sim, cfg.arch, cfg.comm, 0, 0, bus0, stats.counters()};
  Nic nic1{sim, cfg.arch, cfg.comm, 1, 0, bus1, stats.counters()};
  NodeComm comm0{sim, 0, {&nic0}, stats.counters()};
  NodeComm comm1{sim, 1, {&nic1}, stats.counters()};

  Net2() {
    cfg.comm = CommParams::achievable();
    network.add_nic(nic0);
    network.add_nic(nic1);
    // Default: no interrupt machinery; tests install handlers as needed.
    comm0.interrupt_dispatch = [this](std::function<engine::Task<void>()> b) {
      engine::spawn(b());
    };
    comm1.interrupt_dispatch = comm0.interrupt_dispatch;
  }
};

Message make_req(NodeId dst, std::uint64_t payload) {
  Message m;
  m.type = MsgType::kPageRequest;
  m.dst = dst;
  m.payload_bytes = payload;
  return m;
}

TEST(Nic, SmallMessageIsOnePacket) {
  Net2 n;
  n.comm1.request_handler = [](Message) -> engine::Task<void> { co_return; };
  engine::spawn(n.comm0.send(make_req(1, 16)));
  n.sim.run_until_idle();
  EXPECT_EQ(n.stats.counters().packets_sent, 1u);
  EXPECT_EQ(n.stats.counters().messages_sent, 1u);
  EXPECT_EQ(n.stats.counters().bytes_sent,
            16u + n.cfg.arch.message_header_bytes +
                n.cfg.arch.packet_header_bytes);
}

TEST(Nic, LargeMessageFragmentsAtMtu) {
  Net2 n;
  n.comm1.request_handler = [](Message) -> engine::Task<void> { co_return; };
  const std::uint64_t payload = 3 * n.cfg.arch.mtu_payload_bytes + 100;
  engine::spawn(n.comm0.send(make_req(1, payload)));
  n.sim.run_until_idle();
  EXPECT_EQ(n.stats.counters().packets_sent, 4u);
}

TEST(Nic, DeliveryLatencyIncludesPipelineStages) {
  Net2 n;
  Cycles delivered = 0;
  n.comm1.request_handler = [&](Message) -> engine::Task<void> {
    delivered = n.sim.now();
    co_return;
  };
  engine::spawn(n.comm0.send(make_req(1, 16)));
  n.sim.run_until_idle();
  const std::uint64_t wire = 16 + 32 + 32;  // payload + msg hdr + pkt hdr
  const Cycles min_latency =
      2 * n.cfg.comm.ni_occupancy +                   // tx + rx NI processing
      2 * n.cfg.comm.io_bus_cycles(wire) +            // both I/O buses
      n.cfg.arch.wire_latency_cycles;                 // wire
  EXPECT_GE(delivered, min_latency);
}

TEST(Messaging, RpcRoundTrip) {
  Net2 n;
  n.comm1.request_handler = [&](Message m) -> engine::Task<void> {
    Message rep;
    rep.type = MsgType::kPageReply;
    rep.payload_bytes = 64;
    co_await n.comm1.reply(m, std::move(rep));
  };
  bool got = false;
  engine::spawn([](Net2& net, bool& ok) -> engine::Task<void> {
    Message rep = co_await net.comm0.rpc(make_req(1, 16));
    ok = rep.type == MsgType::kPageReply;
  }(n, got));
  n.sim.run_until_idle();
  EXPECT_TRUE(got);
}

TEST(Messaging, OverlappedRpcsResolveIndependently) {
  Net2 n;
  n.comm1.request_handler = [&](Message m) -> engine::Task<void> {
    Message rep;
    rep.type = MsgType::kPageReply;
    rep.page = m.page;  // echo
    rep.payload_bytes = 8;
    co_await n.comm1.reply(m, std::move(rep));
  };
  std::vector<std::uint64_t> echoed;
  engine::spawn([](Net2& net, std::vector<std::uint64_t>& out) -> engine::Task<void> {
    Message a = make_req(1, 16);
    a.page = 111;
    Message b = make_req(1, 16);
    b.page = 222;
    const auto ida = net.comm0.rpc_post(a);
    const auto idb = net.comm0.rpc_post(b);
    co_await net.comm0.send(std::move(a));
    co_await net.comm0.send(std::move(b));
    out.push_back((co_await net.comm0.await_reply(ida)).page);
    out.push_back((co_await net.comm0.await_reply(idb)).page);
  }(n, echoed));
  n.sim.run_until_idle();
  EXPECT_EQ(echoed, (std::vector<std::uint64_t>{111, 222}));
}

TEST(Messaging, RepliesDoNotInterrupt) {
  Net2 n;
  int node0_dispatches = 0;
  int node1_dispatches = 0;
  n.comm0.interrupt_dispatch = [&](std::function<engine::Task<void>()> b) {
    ++node0_dispatches;
    engine::spawn(b());
  };
  n.comm1.interrupt_dispatch = [&](std::function<engine::Task<void>()> b) {
    ++node1_dispatches;
    engine::spawn(b());
  };
  n.comm1.request_handler = [&](Message m) -> engine::Task<void> {
    Message rep;
    rep.type = MsgType::kPageReply;
    rep.payload_bytes = 8;
    co_await n.comm1.reply(m, std::move(rep));
  };
  engine::spawn([](Net2& net) -> engine::Task<void> {
    (void)co_await net.comm0.rpc(make_req(1, 16));
  }(n));
  n.sim.run_until_idle();
  EXPECT_EQ(node0_dispatches, 0);  // the reply came back silently
  EXPECT_EQ(node1_dispatches, 1);  // only the request at node 1
}

TEST(Messaging, DirectMessagesBypassInterrupts) {
  Net2 n;
  bool direct = false;
  n.comm1.direct_handler = [&](Message&&) { direct = true; };
  Message m;
  m.type = MsgType::kBarrierArrive;
  m.dst = 1;
  m.payload_bytes = 32;
  engine::spawn(n.comm0.send(std::move(m)));
  n.sim.run_until_idle();
  EXPECT_TRUE(direct);
  EXPECT_EQ(n.stats.counters().interrupts, 0u);
}

TEST(Messaging, UpdatesGoToHardwarePath) {
  Net2 n;
  std::uint64_t applied = 0;
  n.nic1.on_update = [&](const Message& m) { applied = m.page; };
  Message m;
  m.type = MsgType::kUpdate;
  m.dst = 1;
  m.page = 42;
  m.payload_bytes = 24;
  engine::spawn(n.nic0.post(std::move(m)));
  n.sim.run_until_idle();
  EXPECT_EQ(applied, 42u);
  EXPECT_EQ(n.stats.counters().updates_sent, 1u);
  EXPECT_EQ(n.stats.counters().messages_sent, 0u);
}

TEST(Nic, OccupancySerializesPackets) {
  // With a huge NI occupancy, two messages' delivery times differ by at
  // least the occupancy.
  Net2 n;
  n.cfg.comm.ni_occupancy = 50000;
  std::vector<Cycles> arrivals;
  n.comm1.request_handler = [&](Message) -> engine::Task<void> {
    arrivals.push_back(n.sim.now());
    co_return;
  };
  engine::spawn(n.comm0.send(make_req(1, 16)));
  engine::spawn(n.comm0.send(make_req(1, 16)));
  n.sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], 50000u);
}

TEST(Nic, SelfSendLoopsBack) {
  Net2 n;
  bool got = false;
  n.comm0.request_handler = [&](Message) -> engine::Task<void> {
    got = true;
    co_return;
  };
  engine::spawn(n.comm0.send(make_req(0, 16)));
  n.sim.run_until_idle();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace svmsim::net
