#include "net/nic.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "check/checker.hpp"
#include "net/wire_key.hpp"
#include "trace/trace.hpp"

namespace svmsim::net {

namespace {

/// Shorthand: NI-context event (no acting processor => proc = -1).
#define SVMSIM_NIC_EVENT(ev, a0, a1)                                        \
  SVMSIM_TRACE_EVENT(*sim_, trace::Category::kNet, trace::Event::ev, -1,    \
                     self_, (a0), (a1))

}  // namespace

Nic::Nic(engine::Simulator& sim, const ArchParams& arch,
         const CommParams& comm, NodeId self, int index,
         memsys::MemoryBus& membus, Counters& counters)
    : sim_(&sim),
      arch_(&arch),
      comm_(&comm),
      self_(self),
      index_(index),
      membus_(&membus),
      counters_(&counters),
      iobus_(sim, comm),
      ni_tx_(sim),
      ni_rx_(sim),
      send_items_(sim, 0),
      send_space_(sim),
      recv_items_(sim, 0) {
  min_tx_ = Network::min_tx_cycles(arch, comm);
  dma_min_ = comm.io_bus_cycles(arch.packet_header_bytes);
  mem_min_ = min_tx_ - comm.ni_occupancy - dma_min_;
  engine::spawn(tx_loop());
  engine::spawn(rx_loop());
}

Cycles Nic::next_remote_tx_lb() const noexcept {
  // Bound the next packet launch of the in-pipeline message (if any) from
  // the last leg boundary, raised by the live state of the resource the
  // pipeline occupies: a barrier that catches a leg stalled on a contended
  // bus sees the stall-aware bound, not a stale snapshot. Each arm is a
  // lower bound whether the pipeline holds the resource or still waits in
  // its queue.
  Cycles t;
  switch (tx_stage_) {
    case TxStage::kIdle:
      // Nothing popped: the dequeue event fires no earlier than now, and
      // the first packet pays a full pipeline after it (added below).
      t = sim_->now();
      break;
    case TxStage::kNiServe:
      // tx_loop is the NI send processor's only client, so the pipeline
      // holds it: service completes exactly at busy_until().
      t = std::max(leg_lb_, ni_tx_.busy_until() + dma_min_ + mem_min_);
      break;
    case TxStage::kDma:
      // Holding, or queued behind the receive path's DMA: either way no
      // launch before the current I/O-bus grant completes plus our
      // memory-bus minimum.
      t = std::max(leg_lb_, iobus_.busy_until() + mem_min_);
      break;
    case TxStage::kMembus:
      // Holding: the launch happens the cycle our transaction completes,
      // which is busy_until(). Waiting: the launch is later still.
      t = std::max(leg_lb_, membus_->busy_until());
      break;
  }
  if (tx_stage_ != TxStage::kIdle && cur_remote_) return t;
  // The first remote message is still in the FIFO send queue: the
  // in-pipeline message's remaining packets finish no earlier than t, and
  // every queued message ahead of the remote one — plus the remote one
  // itself — pays at least one more full per-packet pipeline.
  Cycles queued = min_tx_;
  for (std::size_t i = 0; i < send_q_.size(); ++i) {
    if (network_->remote(self_, send_q_[i].dst)) break;
    queued += min_tx_;
  }
  return t + queued;
}

engine::Task<void> Nic::post(Message m) {
  const std::uint64_t wire = wire_bytes(m);
  while (send_q_bytes_ + wire > arch_->ni_queue_bytes) {
    // Send queue full: the NI interrupts the main processor and delays it
    // until the queue drains; we model the delay by blocking the poster.
    ++counters_->ni_queue_overflows;
    SVMSIM_NIC_EVENT(kNiOverflow, 0, send_q_bytes_);
    send_space_.reset();
    co_await send_space_.wait();
  }
  // The enqueue hook runs with no suspension point between it and
  // push_back below: its per-edge encoding order is the launch order.
  if (on_enqueue) on_enqueue(m);
  if (m.type == MsgType::kUpdate) {
    ++counters_->updates_sent;
    counters_->update_bytes += m.payload_bytes;
    SVMSIM_NIC_EVENT(kUpdateSend, m.page, m.payload_bytes);
  } else {
    ++counters_->messages_sent;
    SVMSIM_NIC_EVENT(kMsgSend,
                     (static_cast<std::uint64_t>(m.type) << 32) |
                         static_cast<std::uint32_t>(m.dst),
                     wire);
  }
  // Adaptive-window send bookkeeping: count the message as cross-partition
  // work in flight until its last packet is on the wire. A post still
  // suspended in the overflow wait above is not counted — its resumption is
  // itself a future event, so the head-of-queue + min_tx_cycles bound
  // already covers it.
  if (network_->remote(self_, m.dst)) ++remote_pending_;
  send_q_bytes_ += wire;
  send_q_.push_back(std::move(m));
  send_items_.release();
}

engine::Task<void> Nic::tx_loop() {
  for (;;) {
    co_await send_items_.acquire();
    assert(!send_q_.empty());
    MessageRef msg = network_->acquire_message();
    *msg = std::move(send_q_.front());
    send_q_.pop_front();
    cur_remote_ = network_->remote(self_, msg->dst);

    const std::uint64_t wire = wire_bytes(*msg);
    std::uint64_t remaining = wire;
    while (remaining > 0) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(remaining, arch_->mtu_payload_bytes);
      remaining -= chunk;
      const std::uint64_t pkt_bytes = chunk + arch_->packet_header_bytes;

      // NI firmware prepares the packet, then DMAs it out of host memory.
      // Each leg boundary refreshes the adaptive-window launch bound and
      // records which resource the pipeline occupies next, so a barrier
      // that catches the pipeline mid-leg can bound the launch from the
      // live resource state (next_remote_tx_lb).
      const Cycles ni_t0 = sim_->now();
      tx_stage_ = TxStage::kNiServe;
      leg_lb_ = sim_->now() + min_tx_;
      co_await ni_tx_.serve(comm_->ni_occupancy);
      SVMSIM_NIC_EVENT(kNiTx, pkt_bytes, sim_->now() - ni_t0);
      tx_stage_ = TxStage::kDma;
      // The I/O bus is FIFO and shared with the receive path: our DMA
      // completes no earlier than the already-committed backlog plus our
      // own transfer.
      leg_lb_ = std::max(sim_->now(), iobus_.committed_until()) +
                iobus_.transfer_cycles(pkt_bytes) + mem_min_;
      co_await iobus_.dma(pkt_bytes);
      SVMSIM_NIC_EVENT(kIoBus, pkt_bytes, 0);
      tx_stage_ = TxStage::kMembus;
      // NI-out wins the next memory-bus arbitration, so our transaction
      // completes no earlier than the current grant plus arbitration plus
      // our own transfer (later if another NI-out master is queued ahead).
      leg_lb_ = std::max(sim_->now(), membus_->busy_until()) +
                arch_->membus_arbitration_cycles +
                membus_->transfer_cycles(pkt_bytes);
      co_await membus_->transaction(memsys::BusMaster::kNIOut, pkt_bytes);

      ++counters_->packets_sent;
      counters_->bytes_sent += pkt_bytes;
      SVMSIM_NIC_EVENT(kPacketTx, static_cast<std::uint64_t>(msg->dst),
                       pkt_bytes);

      Packet p;
      p.src = self_;
      p.dst = msg->dst;
      p.nic_index = index_;
      p.bytes = pkt_bytes;
      p.wire_seq = wire_seq_++;
      p.last = remaining == 0;
      p.msg = msg;
      network_->transmit(std::move(p), sim_->now());
    }
    if (cur_remote_) {
      assert(remote_pending_ > 0);
      --remote_pending_;
    }
    tx_stage_ = TxStage::kIdle;
    cur_remote_ = false;
    leg_lb_ = sim_->now();
    msg.reset();
    send_q_bytes_ -= wire;
    send_space_.fire();
  }
}

void Nic::packet_arrived(Packet p) {
  if (SVMSIM_CHECK_MUTATION_IS(*sim_, kReorderSensitiveNotice)) {
    // Arm the planted bug when two arrivals share a cycle with the later
    // one from a lower-numbered source. The default band order delivers
    // same-cycle packets in ascending key = ascending source, so only an
    // explored (deferred) schedule can ever set this.
    if (sim_->now() == last_arrival_when_ && p.src < last_arrival_src_) {
      reorder_witnessed_ = true;
    }
    last_arrival_when_ = sim_->now();
    last_arrival_src_ = p.src;
  }
  recv_q_bytes_ += p.bytes;
  if (recv_q_bytes_ > arch_->ni_queue_bytes) {
    ++counters_->ni_queue_overflows;
    SVMSIM_NIC_EVENT(kNiOverflow, 1, recv_q_bytes_);
  }
  recv_q_.push_back(std::move(p));
  recv_items_.release();
}

engine::Task<void> Nic::rx_loop() {
  for (;;) {
    co_await recv_items_.acquire();
    assert(!recv_q_.empty());
    Packet p = std::move(recv_q_.front());
    recv_q_.pop_front();

    // Receive-side packet processing and DMA into host memory.
    const Cycles ni_t0 = sim_->now();
    co_await ni_rx_.serve(comm_->ni_occupancy);
    SVMSIM_NIC_EVENT(kNiRx, p.bytes, sim_->now() - ni_t0);
    co_await iobus_.dma(p.bytes);
    SVMSIM_NIC_EVENT(kIoBus, p.bytes, 1);
    co_await membus_->transaction(memsys::BusMaster::kNIIn, p.bytes);
    recv_q_bytes_ -= p.bytes;

    if (!p.last) continue;
    if (p.msg->type == MsgType::kUpdate) {
      if (on_update) on_update(*p.msg);
    } else if (on_message) {
      SVMSIM_NIC_EVENT(kMsgDeliver,
                       (static_cast<std::uint64_t>(p.msg->type) << 32) |
                           static_cast<std::uint32_t>(p.msg->src),
                       wire_bytes(*p.msg));
      on_message(std::move(*p.msg));
    }
    // p.msg dropped here: the pooled slot recycles for the next message.
  }
}

void Network::transmit(Packet p, Cycles now) {
  if (topo_ != nullptr && topo_->contended()) {
    transmit_routed(std::move(p), now);
    return;
  }
  const auto serialization =
      static_cast<Cycles>(static_cast<double>(p.bytes) /
                          arch_->link_bytes_per_cycle);
  Cycles latency = arch_->wire_latency_cycles + serialization;
  // Keep deliveries strictly in the future: min_latency() is the PDES
  // lookahead, and the wire band requires when > now at the destination.
  if (latency < 1) latency = 1;
  const Cycles when = now + latency;
  Nic* dst = nics_.at(static_cast<std::size_t>(p.dst))
                 .at(static_cast<std::size_t>(p.nic_index));
  // (dst, src, NI, launch seq): a total order on same-cycle deliveries that
  // only depends on the sending NI's local history — identical in serial
  // and partitioned runs. Packing/decoding lives in net/wire_key.hpp.
  const std::uint64_t key = make_wire_key(p.dst, p.src, p.nic_index,
                                          p.wire_seq);
  // The closure is kept to (pointer, ref, u32, bool) so it fits the event
  // queue's 24-byte inline action storage: no allocation per packet hop.
  const auto bytes32 = static_cast<std::uint32_t>(p.bytes);
  Action deliver = [dst, msg = std::move(p.msg), bytes32,
                    last = p.last]() mutable {
    Packet q;
    q.src = msg->src;
    q.dst = msg->dst;
    q.nic_index = dst->index();
    q.bytes = bytes32;
    q.last = last;
    q.msg = std::move(msg);
    dst->packet_arrived(std::move(q));
  };
  if (!routes_.empty()) {
    const Route& r = routes_[static_cast<std::size_t>(p.src)]
                            [static_cast<std::size_t>(p.dst)];
    if (r.channel != nullptr) {
      r.channel->push(when, key, std::move(deliver));
    } else {
      r.queue->schedule_wire(when, key, std::move(deliver));
    }
    return;
  }
  sim_->queue().schedule_wire(when, key, std::move(deliver));
}

void Network::transmit_routed(Packet p, Cycles now) {
  // Same key as the legacy path: (dst, src, NI, launch seq) totally orders
  // same-cycle wire events by sender history alone. A single packet's hop
  // events strictly increase in time (every link has latency >= 1), so the
  // key never repeats at one timestamp.
  const std::uint64_t key = make_wire_key(p.dst, p.src, p.nic_index,
                                          p.wire_seq);
  core::PoolRef<Hop> h = hop_pool_.acquire();
  h->msg = std::move(p.msg);
  h->key = key;
  h->bytes = static_cast<std::uint32_t>(p.bytes);
  h->next = 0;
  h->last = p.last;
  // hop() decrements the firing partition's wire-event count on entry; this
  // inline first hop was never scheduled, so pre-increment to wash. The
  // injection link is owned by the source node (topology contract), so the
  // firing partition is the caller's own.
  if (!wire_pending_.empty()) {
    ++wire_pending_[static_cast<std::size_t>(
                        node_part_[static_cast<std::size_t>(p.src)])]
          .n;
  }
  hop(std::move(h), now);
}

void Network::hop(core::PoolRef<Hop> h, Cycles now) {
  topo::Topology::RouteBuf r;
  topo_->route(wire_key_src(h->key), wire_key_dst(h->key), r);
  topo::Link& L =
      topo_->link(r.link[static_cast<std::size_t>(h->next)]);
  // This event fires on the thread of the partition owning L (scheduling
  // below targets the next link's owner), so link state and the pending
  // count are touched single-threaded, in deterministic wire-band order.
  if (!wire_pending_.empty()) {
    --wire_pending_[static_cast<std::size_t>(
                        node_part_[static_cast<std::size_t>(L.owner)])]
          .n;
  }
  // FIFO link serialization: same truncating bytes/bandwidth formula as the
  // legacy path, queued behind the link's committed backlog.
  const auto ser = static_cast<Cycles>(static_cast<double>(h->bytes) /
                                       L.bytes_per_cycle);
  const Cycles done = L.server.reserve(now, ser);
  const Cycles waited = (done - ser) - now;
  L.wait_cycles += waited;
  L.bytes += h->bytes;
  SVMSIM_TRACE_EVENT(*sim_, trace::Category::kNet, trace::Event::kLinkHop, -1,
                     L.owner, r.link[static_cast<std::size_t>(h->next)],
                     waited);
  // Hop advance = queueing + serialization + link latency >= latency +
  // header serialization >= Topology::min_latency() — the PDES lookahead
  // floor (and strictly positive, as the wire band requires).
  const Cycles when = done + L.latency;
  ++h->next;
  const bool final_hop = static_cast<int>(h->next) == r.hops;
  const NodeId from = L.owner;
  const NodeId to = final_hop
                        ? wire_key_dst(h->key)
                        : topo_->link(r.link[static_cast<std::size_t>(h->next)])
                              .owner;
  const std::uint64_t key = h->key;
  Action next = final_hop
                    ? Action([this, h = std::move(h)]() mutable {
                        deliver(std::move(h));
                      })
                    : Action([this, h = std::move(h), when]() mutable {
                        hop(std::move(h), when);
                      });
  if (!routes_.empty()) {
    const Route& rt = routes_[static_cast<std::size_t>(from)]
                             [static_cast<std::size_t>(to)];
    if (rt.channel != nullptr) {
      // Cross-partition: the receiver counts it on drain (note_drained).
      rt.channel->push(when, key, std::move(next));
      return;
    }
    if (!wire_pending_.empty()) {
      ++wire_pending_[static_cast<std::size_t>(
                          node_part_[static_cast<std::size_t>(to)])]
            .n;
    }
    rt.queue->schedule_wire(when, key, std::move(next));
    return;
  }
  sim_->queue().schedule_wire(when, key, std::move(next));
}

void Network::deliver(core::PoolRef<Hop> h) {
  const NodeId dst = wire_key_dst(h->key);
  if (!wire_pending_.empty()) {
    --wire_pending_[static_cast<std::size_t>(
                        node_part_[static_cast<std::size_t>(dst)])]
          .n;
  }
  Nic* nic = nics_.at(static_cast<std::size_t>(dst))
                 .at(static_cast<std::size_t>(wire_key_nic(h->key)));
  Packet q;
  q.src = wire_key_src(h->key);
  q.dst = dst;
  q.nic_index = nic->index();
  q.bytes = h->bytes;
  q.last = h->last;
  q.msg = std::move(h->msg);
  nic->packet_arrived(std::move(q));
}

}  // namespace svmsim::net
