// Bit-reproducibility guarantees: the same app+config simulated twice gives
// identical results, and a parallel (--jobs) sweep is byte-identical to the
// serial one.
#include <gtest/gtest.h>

#include <vector>

#include "apps/registry.hpp"
#include "core/runner.hpp"
#include "harness/job_pool.hpp"
#include "harness/sweep.hpp"

namespace svmsim {
namespace {

SimConfig achievable_config() {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  return cfg;
}

TEST(Determinism, RepeatedRunIsBitIdentical) {
  const SimConfig cfg = achievable_config();
  auto w1 = apps::make_app("fft", apps::Scale::kTiny);
  RunResult r1 = run(*w1, cfg);
  auto w2 = apps::make_app("fft", apps::Scale::kTiny);
  RunResult r2 = run(*w2, cfg);

  ASSERT_TRUE(r1.validated);
  ASSERT_TRUE(r2.validated);
  EXPECT_EQ(r1.time, r2.time);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_TRUE(r1.stats == r2.stats);
  EXPECT_TRUE(r1.stats.counters() == r2.stats.counters());
}

TEST(Determinism, RunResultCountsEvents) {
  auto w = apps::make_app("fft", apps::Scale::kTiny);
  RunResult r = run(*w, achievable_config());
  EXPECT_GT(r.events, 0u);
}

TEST(Determinism, SerialAndParallelSweepIdentical) {
  const std::vector<double> values{0, 500, 2000};
  const auto apply = [](SimConfig& c, double v) {
    c.comm.host_overhead = static_cast<Cycles>(v);
  };

  std::vector<harness::SweepPoint> points;
  for (const char* app : {"fft", "lu"}) {
    for (double v : values) {
      harness::SweepPoint p{app, achievable_config(), v};
      apply(p.cfg, v);
      points.push_back(std::move(p));
    }
  }

  harness::Sweep serial_sweep(apps::Scale::kTiny);
  auto serial = serial_sweep.run_points(points, nullptr);

  harness::JobPool pool(4);
  harness::Sweep parallel_sweep(apps::Scale::kTiny);
  auto parallel = parallel_sweep.run_points(points, &pool);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].app, parallel[i].app) << "point " << i;
    EXPECT_EQ(serial[i].param, parallel[i].param) << "point " << i;
    EXPECT_EQ(serial[i].uniprocessor, parallel[i].uniprocessor)
        << "point " << i;
    EXPECT_EQ(serial[i].result.time, parallel[i].result.time) << "point " << i;
    EXPECT_EQ(serial[i].result.events, parallel[i].result.events)
        << "point " << i;
    EXPECT_TRUE(serial[i].result.stats == parallel[i].result.stats)
        << "point " << i;
  }
}

TEST(Determinism, SweepBaselineCacheIsSharedAcrossPoints) {
  // All points of one app at one page size / protocol must report the same
  // uniprocessor baseline (one cache entry, computed once).
  harness::Sweep sweep(apps::Scale::kTiny);
  auto runs = sweep.run_sweep(
      "fft", achievable_config(), {0, 1000},
      [](SimConfig& c, double v) {
        c.comm.host_overhead = static_cast<Cycles>(v);
      });
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].uniprocessor, runs[1].uniprocessor);
  EXPECT_GT(runs[0].uniprocessor, 0u);
}

}  // namespace
}  // namespace svmsim
