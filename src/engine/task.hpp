// A lazy coroutine task type used for every simulated process.
//
// Simulated processors, protocol handlers and NI firmware are all written as
// coroutines returning Task<T>. Awaiting a Task starts it; when the callee
// finishes it transfers control back to the awaiter symmetrically, so deep
// protocol call chains cost no stack and no event-queue traffic. Only real
// simulated waiting (delays, resources, message arrival) goes through the
// event queue.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "engine/frame_pool.hpp"

namespace svmsim::engine {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
#ifndef SVMSIM_NO_FRAME_POOL
  // Coroutine frames are the single hottest allocation in the simulator;
  // recycle them through the thread-local FramePool (see frame_pool.hpp).
  static void* operator new(std::size_t n) { return FramePool::tls().allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::tls().deallocate(p, n);
  }
#endif

  std::coroutine_handle<> continuation;  // resumed when this task completes
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// Lazy task: does nothing until awaited (or detached via spawn()).
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;  // start the child task
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

  // spawn() needs to adopt the handle and manage the frame itself.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

namespace detail {

/// Self-destroying top-level coroutine used by spawn(). Live frames are
/// threaded on a per-thread intrusive list so Machine teardown can destroy
/// loops and blocked processes that never complete (NIC service loops,
/// workloads parked on a sync object when a run is abandoned); the frames
/// transitively own their child Task frames, which release pooled refs and
/// other resources through ordinary destructors.
struct Detached {
  struct promise_type {
#ifndef SVMSIM_NO_FRAME_POOL
    static void* operator new(std::size_t n) {
      return FramePool::tls().allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      FramePool::tls().deallocate(p, n);
    }
#endif
    promise_type* prev = nullptr;
    promise_type* next = nullptr;

    static promise_type*& live_head() noexcept {
      thread_local promise_type* head = nullptr;
      return head;
    }

    promise_type() noexcept {
      promise_type*& head = live_head();
      next = head;
      if (head) head->prev = this;
      head = this;
    }
    ~promise_type() {
      if (prev) {
        prev->next = next;
      } else {
        live_head() = next;
      }
      if (next) next->prev = prev;
    }

    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() {
      // A simulated process leaked an exception: that is a bug in the
      // simulator or an application kernel, never a recoverable condition.
      std::terminate();
    }
  };
};

inline Detached drive(Task<void> task) { co_await std::move(task); }

}  // namespace detail

/// Start `task` as an independent simulated process. The coroutine frame
/// frees itself on completion.
inline void spawn(Task<void> task) { detail::drive(std::move(task)); }

/// Destroy every spawned coroutine still suspended on this thread. Call only
/// while the whole simulation is being torn down (after the event queue is
/// cleared, before the objects the frames reference die): the frames never
/// run again, only their destructors do. Assumes the one-machine-per-thread
/// discipline of the runner and JobPool workers.
inline void destroy_lingering_frames() noexcept {
  using Promise = detail::Detached::promise_type;
  while (Promise* p = Promise::live_head()) {
    std::coroutine_handle<Promise>::from_promise(*p).destroy();
  }
}

}  // namespace svmsim::engine
