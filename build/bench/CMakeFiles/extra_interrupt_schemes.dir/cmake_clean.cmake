file(REMOVE_RECURSE
  "CMakeFiles/extra_interrupt_schemes.dir/extra_interrupt_schemes.cpp.o"
  "CMakeFiles/extra_interrupt_schemes.dir/extra_interrupt_schemes.cpp.o.d"
  "extra_interrupt_schemes"
  "extra_interrupt_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_interrupt_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
