#include "svm/vclock.hpp"

#include <gtest/gtest.h>

namespace svmsim::svm {
namespace {

TEST(VClock, StartsAtZero) {
  VClock v(4);
  for (int n = 0; n < 4; ++n) EXPECT_EQ(v.get(n), 0u);
}

TEST(VClock, AdvanceIncrementsOneComponent) {
  VClock v(4);
  EXPECT_EQ(v.advance(2), 1u);
  EXPECT_EQ(v.advance(2), 2u);
  EXPECT_EQ(v.get(2), 2u);
  EXPECT_EQ(v.get(0), 0u);
}

TEST(VClock, CoversInterval) {
  VClock v(2);
  v.set(1, 3);
  EXPECT_TRUE(v.covers(1, 3));
  EXPECT_TRUE(v.covers(1, 1));
  EXPECT_FALSE(v.covers(1, 4));
  EXPECT_TRUE(v.covers(0, 0));
}

TEST(VClock, CoversIsComponentWise) {
  VClock a(3), b(3);
  a.set(0, 2);
  a.set(1, 2);
  b.set(0, 1);
  b.set(1, 2);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  b.set(2, 1);
  EXPECT_FALSE(a.covers(b));  // incomparable
  EXPECT_FALSE(b.covers(a));
}

TEST(VClock, MergeTakesComponentMax) {
  VClock a(3), b(3);
  a.set(0, 5);
  b.set(1, 7);
  b.set(0, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(2), 0u);
  EXPECT_TRUE(a.covers(b));
}

TEST(VClock, EqualityAndToString) {
  VClock a(2), b(2);
  EXPECT_EQ(a, b);
  a.advance(0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "[1 0]");
}

}  // namespace
}  // namespace svmsim::svm
