// Paper §10 ("Discussion and Future Work"): polling instead of interrupts.
// For each application, compare interrupt-based delivery across interrupt
// costs against polling — polling trades a fixed poll latency for complete
// insensitivity to interrupt cost, giving "more predictable and portable
// performance across architectures and operating systems".
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  std::vector<harness::SweepPoint> points;
  for (const auto& app : opt.app_names) {
    for (double v : {500.0, 2500.0, 5000.0}) {
      SimConfig cfg = bench::base_config();
      cfg.comm.interrupt_cost = static_cast<Cycles>(v);
      points.push_back({app, cfg, v});
    }
    for (double tick : {1000.0, 4000.0}) {
      SimConfig cfg = bench::base_config();
      cfg.comm.interrupt_scheme = InterruptScheme::kPolling;
      cfg.comm.poll_interval = static_cast<Cycles>(tick);
      points.push_back({app, cfg, tick});
    }
  }
  auto runs = sweep.run_points(points, opt.pool());
  constexpr std::size_t kCols = 5;

  harness::Table t({"application", "intr cost=500", "intr cost=2500",
                    "intr cost=5000", "polling (1K tick)",
                    "polling (4K tick)"});
  for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
    std::vector<std::string> row{opt.app_names[i]};
    for (std::size_t c = 0; c < kCols; ++c) {
      row.push_back(harness::fmt(runs[i * kCols + c].speedup()));
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    t.add_row(std::move(row));
  }
  std::fprintf(stderr, "\n");
  std::printf("== Extra (paper 10): interrupts vs polling ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "extra_polling");
  return 0;
}
