# Empty compiler generated dependencies file for extra_polling.
# This may be replaced when dependencies are built.
