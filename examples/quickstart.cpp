// Quickstart: simulate one SPLASH-2-style application on a 16-processor SVM
// cluster at the paper's "achievable" communication parameters, and print
// the speedup plus a time breakdown.
//
//   ./quickstart [app] [--scale=tiny|small|large]
#include <cstdio>
#include <string>

#include "apps/registry.hpp"
#include "core/runner.hpp"
#include "harness/cli.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  harness::Cli cli(argc, argv);
  const std::string app_name =
      cli.positional().empty() ? "fft" : cli.positional().front();
  const std::string scale_name = cli.get_or("scale", "small");
  const apps::Scale scale = scale_name == "tiny"    ? apps::Scale::kTiny
                            : scale_name == "large" ? apps::Scale::kLarge
                                                    : apps::Scale::kSmall;

  // The cluster: 16 processors in 4-way SMP nodes, HLRC protocol, and the
  // paper's achievable communication parameters (Table 1).
  SimConfig cfg;
  cfg.comm = CommParams::achievable();

  std::printf("running '%s' (%s) on %d processors (%d nodes x %d), %s...\n",
              app_name.c_str(), scale_name.c_str(), cfg.comm.total_procs,
              cfg.comm.node_count(), cfg.comm.procs_per_node,
              to_string(cfg.comm.protocol).c_str());

  auto parallel = apps::make_app(app_name, scale);
  RunResult par = run(*parallel, cfg);

  auto sequential = apps::make_app(app_name, scale);
  RunResult uni = run(*sequential, uniprocessor_config(cfg));

  std::printf("\nresult valid: %s\n", par.validated ? "yes" : "NO");
  std::printf("uniprocessor time : %12llu cycles\n",
              static_cast<unsigned long long>(uni.time));
  std::printf("parallel time     : %12llu cycles\n",
              static_cast<unsigned long long>(par.time));
  std::printf("speedup           : %12.2f\n",
              static_cast<double>(uni.time) / static_cast<double>(par.time));
  std::printf("ideal speedup     : %12.2f  (compute + local stall only)\n",
              static_cast<double>(uni.time) /
                  static_cast<double>(par.stats.max_local_only()));

  std::printf("\nwhere the parallel time went (all processors):\n");
  const Breakdown agg = par.stats.aggregate();
  for (int i = 0; i < kTimeCats; ++i) {
    const auto cat = static_cast<TimeCat>(i);
    std::printf("  %-14s %6.2f%%\n", std::string(to_string(cat)).c_str(),
                100.0 * static_cast<double>(agg.get(cat)) /
                    static_cast<double>(agg.total()));
  }

  const Counters& c = par.stats.counters();
  std::printf("\nprotocol activity:\n");
  std::printf("  page fetches    %8llu\n",
              static_cast<unsigned long long>(c.page_fetches));
  std::printf("  lock acquires   %8llu local, %llu remote\n",
              static_cast<unsigned long long>(c.local_lock_acquires),
              static_cast<unsigned long long>(c.remote_lock_acquires));
  std::printf("  messages        %8llu (%.2f MB on the wire)\n",
              static_cast<unsigned long long>(c.messages_sent),
              static_cast<double>(c.bytes_sent) / 1e6);
  std::printf("  interrupts      %8llu\n",
              static_cast<unsigned long long>(c.interrupts));
  return par.validated ? 0 : 1;
}
