#include "core/machine.hpp"

#include <stdexcept>
#include <utility>

#include "check/checker.hpp"
#include "engine/task.hpp"
#include "trace/trace.hpp"

namespace svmsim {

Machine::Machine(const SimConfig& cfg)
    : cfg_(cfg),
      parts_(engine::effective_partitions(cfg.par_cores,
                                          cfg.comm.node_count())),
      sims_(static_cast<std::size_t>(parts_)),
      registries_(static_cast<std::size_t>(parts_)),
      stats_(cfg.comm.total_procs),
      part_counters_(static_cast<std::size_t>(parts_)),
      space_(cfg.comm.node_count(), cfg.comm.page_bytes),
      shared_(sims_.front(), cfg.comm.node_count(), kMaxLocks),
      network_(sims_.front(), cfg_.arch) {
  if (const std::string err = cfg_.arch.validate(); !err.empty()) {
    throw std::invalid_argument("arch: " + err);
  }
  if (cfg.comm.total_procs % cfg.comm.procs_per_node != 0) {
    throw std::invalid_argument(
        "total_procs must be a multiple of procs_per_node");
  }
  if (parts_ > 1 && cfg_.trace.enabled) {
    // A trace is one global event stream in emission order; partitions
    // emitting concurrently would interleave nondeterministically.
    throw std::invalid_argument("tracing requires par_cores == 1");
  }
#ifndef SVMSIM_TRACE_DISABLED
  if (cfg_.trace.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(
        cfg_.trace, cfg_.comm.total_procs, cfg_.comm.node_count());
    sims_.front().set_tracer(tracer_.get());
  }
#endif
#ifndef SVMSIM_CHECK_DISABLED
  if (cfg_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(cfg_.check, space_);
    for (auto& s : sims_) s.set_checker(checker_.get());
  }
#endif
  for (int p = 0; p < parts_; ++p) {
    pools_.emplace_back(sims_[static_cast<std::size_t>(p)]);
  }

  const int nodes = cfg_.comm.node_count();
  if (parts_ > 1) {
    // Shared structures that partitions touch concurrently take their locks;
    // everything else is partition-owned (see docs/engine.md, "PDES mode").
    network_.set_thread_safe();
    space_.set_thread_safe();
    for (auto& pl : pools_) pl.set_thread_safe();

    channels_.resize(static_cast<std::size_t>(parts_));
    for (auto& row : channels_) {
      row = std::vector<engine::TimedChannel<net::Network::Action>>(
          static_cast<std::size_t>(parts_));
    }
    std::vector<std::vector<net::Network::Route>> routes(
        static_cast<std::size_t>(nodes),
        std::vector<net::Network::Route>(static_cast<std::size_t>(nodes)));
    for (NodeId s = 0; s < nodes; ++s) {
      const auto ps = static_cast<std::size_t>(partition_of_node(s));
      for (NodeId d = 0; d < nodes; ++d) {
        const auto pd = static_cast<std::size_t>(partition_of_node(d));
        auto& r = routes[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(d)];
        if (ps == pd) {
          r.queue = &sims_[pd].queue();
        } else {
          r.channel = &channels_[ps][pd];
        }
      }
    }
    network_.set_routes(std::move(routes));
  }

  if (cfg_.topology.kind != topo::Kind::kLegacy) {
    // Throws std::invalid_argument when the spec does not fit `nodes`
    // (bench CLIs pre-check with topo::fits and exit kExitBadTopology).
    // Each link's FIFO server lives on the simulator of the partition that
    // owns the link, so hop events touch it single-threaded.
    topo_ = topo::make_topology(
        cfg_.topology, cfg_.arch, nodes, [this](NodeId n) -> engine::Simulator& {
          return sims_[static_cast<std::size_t>(partition_of_node(n))];
        });
    network_.set_topology(topo_.get());
    if (parts_ > 1 && topo_->contended()) {
      std::vector<int> node_part(static_cast<std::size_t>(nodes));
      for (NodeId n = 0; n < nodes; ++n) {
        node_part[static_cast<std::size_t>(n)] = partition_of_node(n);
      }
      network_.set_partition_map(std::move(node_part), parts_);
    }
  }

  nodes_.reserve(static_cast<std::size_t>(nodes));
  agents_.reserve(static_cast<std::size_t>(nodes));
  for (NodeId n = 0; n < nodes; ++n) {
    const int p = partition_of_node(n);
    // NIC service loops spawned in the Node constructor must register in
    // their partition's frame registry: they complete (or are torn down) on
    // that partition's thread.
    engine::ScopedFrameRegistry scope(partition_registry(p));
    nodes_.push_back(std::make_unique<Node>(
        sims_[static_cast<std::size_t>(p)], cfg_, n, cfg_.comm.procs_per_node,
        n * cfg_.comm.procs_per_node, network_, stats_,
        partition_counters(p)));
  }
  for (NodeId n = 0; n < nodes; ++n) {
    const int p = partition_of_node(n);
    engine::ScopedFrameRegistry scope(partition_registry(p));
    Node& nd = *nodes_[static_cast<std::size_t>(n)];
    std::unique_ptr<svm::SvmAgent> agent;
    if (cfg_.comm.protocol == Protocol::kAURC) {
      agent = std::make_unique<svm::AurcAgent>(
          sims_[static_cast<std::size_t>(p)], cfg_, n,
          cfg_.comm.procs_per_node, space_, shared_,
          pools_[static_cast<std::size_t>(p)], nd.comm(),
          partition_counters(p));
    } else {
      agent = std::make_unique<svm::HlrcAgent>(
          sims_[static_cast<std::size_t>(p)], cfg_, n,
          cfg_.comm.procs_per_node, space_, shared_,
          pools_[static_cast<std::size_t>(p)], nd.comm(),
          partition_counters(p));
    }
    agent->install();
    nd.wire(*agent);
    agents_.push_back(std::move(agent));
  }
}

std::uint64_t Machine::events_fired() {
  std::uint64_t total = 0;
  for (auto& s : sims_) total += s.queue().events_fired();
  return total;
}

bool Machine::run_parallel(Cycles max_cycles) {
  if (parts_ == 1) return sims_.front().run_until(max_cycles);

  std::vector<engine::EventQueue*> queues;
  queues.reserve(static_cast<std::size_t>(parts_));
  for (auto& s : sims_) queues.push_back(&s.queue());

  // Saved current_slot per partition, restored by worker_end (partition 0
  // runs on the calling thread, whose slot must survive the run).
  std::vector<engine::FrameRegistry*> prev_slot(
      static_cast<std::size_t>(parts_), nullptr);

  // Adaptive-window inputs: the host/NI cost floor between a posting event
  // and its first packet, and each partition's contiguous node range
  // (partition_of is monotone) for the NIC send-pipeline scan.
  const Cycles tx_floor = net::Network::min_tx_cycles(cfg_.arch, cfg_.comm);
  std::vector<std::pair<NodeId, NodeId>> node_range(
      static_cast<std::size_t>(parts_), {0, 0});
  for (NodeId n = 0; n < node_count(); ++n) {
    auto& [begin, end] = node_range[static_cast<std::size_t>(
        partition_of_node(n))];
    if (end == 0) begin = n;
    end = n + 1;
  }

  engine::WindowDriver::Hooks hooks;
  hooks.publish = [this, tx_floor, &node_range](int p) {
    engine::WindowDriver::Published pub;
    // Seal this window's outgoing batches; their minimum timestamp is this
    // partition's in-flight contribution to the barrier's reductions.
    for (int d = 0; d < parts_; ++d) {
      if (d == p) continue;
      const Cycles m =
          channels_[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)]
              .seal();
      if (m < pub.in_flight) pub.in_flight = m;
    }
    // Next cross-partition send. A send not yet posted must first be
    // posted by some event and then pay the full tx pipeline floor:
    // head-of-queue + tx_floor covers every such message. A remote message
    // already inside a NIC (posted but not fully on the wire) is bounded by
    // that NIC's live launch bound instead — the pipeline stage plus the
    // occupied resource's busy_until, plus a full pipeline per queued
    // message ahead of the first remote one (next_remote_tx_lb). A loose
    // bound only narrows the window; the WindowDriver clamps it to the
    // fixed-policy floor.
    // Contended-topology caveat: while this partition's queue holds
    // topology wire events (mid-route hops), a hop firing at head-of-queue
    // time can push a cross-partition record just min_latency ahead — far
    // inside tx_floor — so the floor must drop to zero until they drain.
    const Cycles floor = network_.wire_pending(p) ? 0 : tx_floor;
    Cycles send = sims_[static_cast<std::size_t>(p)].next_send_bound(floor);
    const auto [begin, end] = node_range[static_cast<std::size_t>(p)];
    for (NodeId n = begin; n < end; ++n) {
      Node& nd = *nodes_[static_cast<std::size_t>(n)];
      for (int k = 0; k < nd.nic_count(); ++k) {
        const net::Nic& nic = nd.nic(k);
        if (nic.remote_tx_pending()) {
          const Cycles lb = nic.next_remote_tx_lb();
          if (lb < send) send = lb;
        }
      }
    }
    pub.next_send = send;
    return pub;
  };
  hooks.drain = [this](int p) {
    auto& q = sims_[static_cast<std::size_t>(p)].queue();
    for (int s = 0; s < parts_; ++s) {
      if (s == p) continue;
      channels_[static_cast<std::size_t>(s)][static_cast<std::size_t>(p)]
          .drain([this, p, &q](auto& batch) {
            // In contended-topology mode every channel record is a wire
            // event (hop or delivery); count them so the publish hook can
            // drop its send floor while any are pending (note_drained is a
            // no-op otherwise).
            network_.note_drained(p, batch.size());
            q.schedule_wire_batch(batch);
          });
    }
  };
  hooks.worker_begin = [this, &prev_slot](int p) {
    auto& reg = registries_[static_cast<std::size_t>(p)];
    reg.bind_to_this_thread();
    prev_slot[static_cast<std::size_t>(p)] =
        std::exchange(engine::FrameRegistry::current_slot(), &reg);
  };
  hooks.worker_end = [&prev_slot](int p) {
    engine::FrameRegistry::current_slot() =
        prev_slot[static_cast<std::size_t>(p)];
  };

  engine::WindowDriver driver(std::move(queues), network_.min_latency(),
                              std::move(hooks), cfg_.pdes_window);
  bool drained = false;
  try {
    drained = driver.run(max_cycles);
  } catch (...) {
    windows_ += driver.windows();
    for (auto& r : registries_) r.bind_to_this_thread();
    throw;
  }
  windows_ += driver.windows();
  // Quiescent: workers have joined. Take partition state back so teardown
  // (and any further serial use) happens on this thread.
  for (auto& r : registries_) r.bind_to_this_thread();
  for (auto& c : part_counters_) {
    stats_.counters() += c;
    c = Counters{};
  }
  return drained;
}

void Machine::finalize_stats() {
  if (topo_ == nullptr || topo_->link_count() == 0) return;
  std::vector<LinkUse> links;
  links.reserve(topo_->link_count());
  for (std::size_t i = 0; i < topo_->link_count(); ++i) {
    const topo::Link& L = topo_->link(i);
    LinkUse u;
    u.id = static_cast<std::int32_t>(i);
    u.owner = L.owner;
    u.kind = static_cast<std::int8_t>(L.kind);
    u.grants = L.server.grants();
    u.busy = L.server.busy_cycles();
    u.wait = L.wait_cycles;
    u.bytes = L.bytes;
    links.push_back(u);
  }
  stats_.set_links(std::move(links));
}

void Machine::debug_write(svm::GlobalAddr a, const void* src,
                          std::uint64_t bytes) {
  space_.debug_write(a, src, bytes);
#ifndef SVMSIM_CHECK_DISABLED
  if (checker_) checker_->on_debug_write(a, src, bytes);
#endif
}

Machine::~Machine() {
  // Scheduled closures (e.g. in-flight transmits of an aborted run) can hold
  // pooled references into the protocol pools; drop them — queues first,
  // then in-flight cross-partition channel records — before the pools go
  // away. Then destroy still-suspended coroutines (NIC service loops,
  // processes blocked on a sync object in an abandoned run) so their frames
  // release pooled refs and frame memory while the objects they reference
  // are still alive.
  for (auto& s : sims_) s.queue().clear();
  for (auto& row : channels_) {
    for (auto& ch : row) ch.clear();
  }
  for (auto& r : registries_) {
    r.bind_to_this_thread();
    r.destroy_all();
  }
}

}  // namespace svmsim
