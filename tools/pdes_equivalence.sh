#!/usr/bin/env bash
# Prove the PDES mode is observationally inert: run sweep_dump serially and
# at --par-cores 2 and 4 — under both the adaptive (default) and the fixed
# window policy — and diff the output byte-for-byte. The dump covers
# both protocols (HLRC and AURC), two real apps and four stress-gen seeds, so
# a byte-identical dump means every counter, every per-processor time-
# category breakdown and every execution time replays the serial event order
# exactly from four partition threads. Run by ctest as the pdes_equivalence
# test.
#
# A 256-processor arm repeats the serial-vs-par4 byte-diff on a 64-node
# machine (stress-gen only: the real apps' tiny problem sizes stop at 16
# procs), where the sparse clock transport of docs/scaling.md carries every
# synchronization message.
#
# The last arm re-runs the PR-5 checked matrix (fig05 host-overhead sweep
# with the shadow consistency checker) under --par-cores=4: the checker's
# verdict — zero violations — must survive its hooks firing from four
# threads.
#
#   tools/pdes_equivalence.sh <build_dir>
#
#   build_dir   an already-built default tree
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:?usage: pdes_equivalence.sh <build_dir>}"

out_dir="$build_dir/pdes-equivalence"
mkdir -p "$out_dir"

apps="fft,lu,stress-gen@3,stress-gen@5,stress-gen@7,stress-gen@11"

"$build_dir/bench/sweep_dump" --apps="$apps" > "$out_dir/dump-serial.txt"
# Both window policies: adaptive is the default; --pdes-window=fixed is the
# runtime mirror of the -DSVMSIM_PDES_WINDOW=fixed escape hatch. The window
# policy only changes barrier placement, so every arm must stay
# byte-identical to serial.
for window in adaptive fixed; do
  for cores in 2 4; do
    "$build_dir/bench/sweep_dump" --apps="$apps" --par-cores="$cores" \
      --pdes-window="$window" > "$out_dir/dump-par$cores-$window.txt"
    if ! diff -u "$out_dir/dump-serial.txt" \
         "$out_dir/dump-par$cores-$window.txt"; then
      echo "pdes_equivalence: serial vs --par-cores=$cores" \
        "--pdes-window=$window DIVERGES" >&2
      exit 1
    fi
  done
done

# Large-machine arm: the same byte-identity contract at 256 processors (64
# nodes), where the sparse clock transport and incremental barrier reduction
# (docs/scaling.md) carry the protocol. stress-gen only: the real apps'
# tiny-scale problem sizes do not decompose past the paper's 16 processors.
"$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=256 \
  > "$out_dir/dump-serial-256.txt"
"$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=256 \
  --par-cores=4 > "$out_dir/dump-par4-256.txt"
if ! diff -u "$out_dir/dump-serial-256.txt" "$out_dir/dump-par4-256.txt"; then
  echo "pdes_equivalence: 256-proc serial vs --par-cores=4 DIVERGES" >&2
  exit 1
fi

# Checked arm: also gates on zero violations (sweep_dump exits 1 otherwise).
"$build_dir/bench/sweep_dump" --apps="$apps" --par-cores=4 \
  --check-consistency > "$out_dir/dump-par4-checked.txt"
if ! diff -u "$out_dir/dump-serial.txt" "$out_dir/dump-par4-checked.txt"; then
  echo "pdes_equivalence: serial vs checked --par-cores=4 DIVERGES" >&2
  exit 1
fi

# The PR-5 checked matrix, now on four partition workers. Exit status is the
# verdict (the figure output itself legitimately differs from serial runs
# only in wall-clock, which it does not print).
"$build_dir/bench/fig05_host_overhead" --scale=tiny --jobs=2 \
  --apps=stress-gen@3,stress-gen@11 --check-consistency --par-cores=4 \
  > "$out_dir/fig05-checked-par4.txt"

echo "pdes_equivalence: serial == par{2,4} x {adaptive,fixed} == par4+check" \
  "($(wc -l < "$out_dir/dump-serial.txt") lines identical;" \
  "256-proc arm $(wc -l < "$out_dir/dump-serial-256.txt") lines identical)"
