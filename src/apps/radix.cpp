// Radix: parallel radix sort (SPLASH-2). Per digit pass: local histogram,
// global rank computation, then the permutation phase whose highly
// scattered writes to remotely-allocated data give Radix its very high
// communication-to-computation ratio and bandwidth sensitivity (paper §4.2,
// Figures 8/9; also the one application that prefers large pages, Fig 13).
#include <cassert>
#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

class RadixApp final : public Application {
 public:
  explicit RadixApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 2048;
        break;
      case Scale::kSmall:
        n_ = 16384;
        break;
      case Scale::kLarge:
        n_ = 65536;
        break;
    }
  }

  [[nodiscard]] std::string name() const override { return "radix"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    keys0_ = SharedArray<std::uint32_t>::alloc(mach, n_, Distribution::block());
    keys1_ = SharedArray<std::uint32_t>::alloc(mach, n_, Distribution::block());
    // rank[p][d]: processor p's global write offset for digit d, page-padded
    // per processor and homed at the writer.
    const std::size_t stride =
        std::max<std::size_t>(kRadix, mach.config().comm.page_bytes /
                                          sizeof(std::uint32_t));
    rank_stride_ = stride;
    rank_ = SharedArray<std::uint32_t>::alloc(
        mach, stride * static_cast<std::size_t>(P_), Distribution::fixed(0));
    const int ppn = mach.config().comm.procs_per_node;
    for (int p = 0; p < P_; ++p) {
      mach.space().set_home_range(
          rank_.addr(stride * static_cast<std::size_t>(p)),
          stride * sizeof(std::uint32_t), p / ppn);
    }

    Rng rng(0xADD5u);
    input_.resize(n_);
    for (auto& k : input_) {
      k = static_cast<std::uint32_t>(rng.next() & (kKeyRange - 1));
    }
    for (std::size_t i = 0; i < n_; ++i) keys0_.debug_put(mach, i, input_[i]);
    expected_ = input_;
    std::sort(expected_.begin(), expected_.end());
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    const std::size_t slice = n_ / static_cast<std::size_t>(P_);
    const std::size_t k0 = slice * static_cast<std::size_t>(pid);
    const std::size_t kn =
        pid == P_ - 1 ? n_ : k0 + slice;  // last takes the remainder

    const SharedArray<std::uint32_t>* src = &keys0_;
    const SharedArray<std::uint32_t>* dst = &keys1_;
    std::vector<std::uint32_t> local(kn - k0);
    std::vector<std::uint32_t> hist(kRadix);
    std::vector<std::uint32_t> offsets(kRadix);

    for (unsigned pass = 0; pass * kLogRadix < kKeyBits; ++pass) {
      const unsigned shift = pass * kLogRadix;
      // Phase 1: local histogram over this processor's block.
      co_await src->get_block(shm, k0, local.data(), local.size());
      std::fill(hist.begin(), hist.end(), 0u);
      for (std::uint32_t k : local) ++hist[(k >> shift) & (kRadix - 1)];
      shm.compute(kWorkScale * static_cast<Cycles>(local.size()) * 4);
      co_await rank_.put_block(shm, rank_stride_ * static_cast<std::size_t>(pid),
                               hist.data(), kRadix);
      co_await shm.barrier();

      // Phase 2: processor 0 turns histograms into global ranks.
      if (pid == 0) {
        std::vector<std::uint32_t> all(static_cast<std::size_t>(P_) * kRadix);
        for (int p = 0; p < P_; ++p) {
          co_await rank_.get_block(shm,
                                   rank_stride_ * static_cast<std::size_t>(p),
                                   all.data() + static_cast<std::size_t>(p) * kRadix,
                                   kRadix);
        }
        std::uint32_t sum = 0;
        for (std::size_t d = 0; d < kRadix; ++d) {
          for (int p = 0; p < P_; ++p) {
            const std::size_t idx = static_cast<std::size_t>(p) * kRadix + d;
            const std::uint32_t c = all[idx];
            all[idx] = sum;
            sum += c;
          }
        }
        shm.compute(kWorkScale * static_cast<Cycles>(P_) * kRadix * 2);
        for (int p = 0; p < P_; ++p) {
          co_await rank_.put_block(shm,
                                   rank_stride_ * static_cast<std::size_t>(p),
                                   all.data() + static_cast<std::size_t>(p) * kRadix,
                                   kRadix);
        }
      }
      co_await shm.barrier();

      // Phase 3: permutation — scattered writes to remote key pages.
      co_await rank_.get_block(shm, rank_stride_ * static_cast<std::size_t>(pid),
                               offsets.data(), kRadix);
      for (std::uint32_t k : local) {
        const std::uint32_t d = (k >> shift) & (kRadix - 1);
        co_await dst->put(shm, offsets[d]++, k);
        shm.compute(kWorkScale * 4);
      }
      co_await shm.barrier();
      std::swap(src, dst);
    }
    final_is_keys0_ = (src == &keys0_);
  }

  bool validate(Machine& mach) override {
    const auto& fin = final_is_keys0_ ? keys0_ : keys1_;
    for (std::size_t i = 0; i < n_; ++i) {
      if (fin.debug_get(mach, i) != expected_[i]) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 8;
  static constexpr unsigned kLogRadix = 8;
  static constexpr std::size_t kRadix = 1u << kLogRadix;
  static constexpr unsigned kKeyBits = 16;
  static constexpr std::uint32_t kKeyRange = 1u << kKeyBits;

  std::size_t n_ = 2048;
  int P_ = 1;
  std::size_t rank_stride_ = kRadix;
  SharedArray<std::uint32_t> keys0_;
  SharedArray<std::uint32_t> keys1_;
  SharedArray<std::uint32_t> rank_;
  std::vector<std::uint32_t> input_;
  std::vector<std::uint32_t> expected_;
  bool final_is_keys0_ = true;
};

}  // namespace

std::unique_ptr<Application> make_radix(Scale scale) {
  return std::make_unique<RadixApp>(scale);
}

}  // namespace svmsim::apps
