#include "svm/page_directory.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace svmsim::svm {
namespace {

TEST(PageDirectory, CollectsOnlyUncoveredIntervals) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {10, 11});
  dir.record_interval(0, 2, {12});
  dir.record_interval(1, 1, {20});

  VClock have(2);  // has seen nothing
  VClock target(2);
  target.set(0, 2);
  target.set(1, 1);

  std::multiset<PageId> pages;
  const auto n = dir.collect_notices(
      have, target, [&](PageId p, NodeId) { pages.insert(p); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(pages, (std::multiset<PageId>{10, 11, 12, 20}));
}

TEST(PageDirectory, SkipsCoveredIntervals) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {10});
  dir.record_interval(0, 2, {11});
  VClock have(2);
  have.set(0, 1);
  VClock target(2);
  target.set(0, 2);
  std::vector<PageId> pages;
  dir.collect_notices(have, target, [&](PageId p, NodeId) {
    pages.push_back(p);
  });
  EXPECT_EQ(pages, (std::vector<PageId>{11}));
}

TEST(PageDirectory, ReportsWriterNode) {
  PageDirectory dir(3);
  dir.record_interval(2, 1, {5});
  VClock have(3);
  VClock target(3);
  target.set(2, 1);
  NodeId writer = -1;
  dir.collect_notices(have, target, [&](PageId, NodeId w) { writer = w; });
  EXPECT_EQ(writer, 2);
}

TEST(PageDirectory, CountMatchesCollect) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {1, 2, 3});
  dir.record_interval(1, 1, {4});
  dir.record_interval(1, 2, {5, 6});
  VClock have(2);
  have.set(1, 1);
  VClock target(2);
  target.set(0, 1);
  target.set(1, 2);
  std::size_t collected = 0;
  dir.collect_notices(have, target, [&](PageId, NodeId) { ++collected; });
  EXPECT_EQ(dir.count_notices(have, target), collected);
  EXPECT_EQ(collected, 5u);
}

TEST(PageDirectory, IntervalsOf) {
  PageDirectory dir(2);
  EXPECT_EQ(dir.intervals_of(0), 0u);
  dir.record_interval(0, 1, {});
  dir.record_interval(0, 2, {});
  EXPECT_EQ(dir.intervals_of(0), 2u);
  EXPECT_EQ(dir.intervals_of(1), 0u);
}

TEST(PageDirectory, EmptyIntervalContributesNothing) {
  PageDirectory dir(1);
  dir.record_interval(0, 1, {});
  VClock have(1);
  VClock target(1);
  target.set(0, 1);
  EXPECT_EQ(dir.count_notices(have, target), 0u);
}

// Large-machine growth under concurrent partition scans (run under TSan by
// tools/sanitize.sh): writers append intervals — growing the flat per-node
// logs through many reallocations — while readers count and collect
// notices. Readers follow the protocol's happens-before discipline: a scan
// only targets interval counts a writer has already published, mirroring
// how a clock carried by a message names only completed intervals.
TEST(PageDirectory, GrowthAt256NodesUnderConcurrentScans) {
  constexpr int kNodes = 256;
  constexpr int kWriters = 8;
  constexpr int kNodesPerWriter = kNodes / kWriters;
  constexpr std::uint32_t kIntervals = 64;
  PageDirectory dir(kNodes);
  std::vector<std::atomic<std::uint32_t>> published(kNodes);
  for (auto& p : published) p.store(0, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint32_t idx = 1; idx <= kIntervals; ++idx) {
        for (int k = 0; k < kNodesPerWriter; ++k) {
          const NodeId n = static_cast<NodeId>(w * kNodesPerWriter + k);
          const PageId pages[3] = {static_cast<PageId>(n), 1000u + idx,
                                   2000u + static_cast<PageId>(n) + idx};
          dir.record_interval(n, idx, pages);
          published[static_cast<std::size_t>(n)].store(
              idx, std::memory_order_release);
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      VClock have(kNodes), target(kNodes);
      while (!stop.load(std::memory_order_acquire)) {
        for (int n = 0; n < kNodes; ++n) {
          const std::uint32_t seen =
              published[static_cast<std::size_t>(n)].load(
                  std::memory_order_acquire);
          target.set(n, seen);
          have.set(n, seen / 2);
        }
        const std::uint64_t counted = dir.count_notices(have, target);
        std::uint64_t collected = 0;
        dir.collect_notices(have, target,
                            [&](PageId, NodeId) { ++collected; });
        // Both scans are bounded by the same (have, target) pair, and the
        // intervals they name were published before the clocks were built,
        // so the wire-sizing count and the walk must agree even while the
        // logs grow underneath.
        ASSERT_EQ(collected, counted);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Final state: every interval of every node is visible and exact.
  VClock none(kNodes), all(kNodes);
  for (int n = 0; n < kNodes; ++n) all.set(n, kIntervals);
  EXPECT_EQ(dir.count_notices(none, all),
            static_cast<std::uint64_t>(kNodes) * kIntervals * 3);
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_EQ(dir.intervals_of(n), kIntervals);
  }
}

}  // namespace
}  // namespace svmsim::svm
