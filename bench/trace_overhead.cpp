// Tracing-overhead measurement: how much the trace subsystem costs the
// simulator hot path, in the three build/runtime configurations that matter
// for ISSUE acceptance:
//
//   compiled_in_disabled  tracer compiled in (default build), --trace off
//   enabled               tracer compiled in, recording every category
//   compiled_out          built with -DSVMSIM_TRACE=OFF (no tracer code)
//
// One binary can only measure the configurations its own build supports: the
// default build writes the first two subsections, an -DSVMSIM_TRACE=OFF build
// writes "compiled_out". Each run preserves the other build's subsections in
// the shared BENCH_sweep.json (see tools/trace_overhead.sh, which runs both
// builds back to back), and whichever run sees both sides recomputes the
// headline percentages:
//
//   disabled_vs_out_pct   cost of compiling the tracer in but leaving it off
//                         (the acceptance bound: must stay <= 2%)
//   enabled_vs_disabled_pct   cost of actually recording
//
//   ./trace_overhead [--app=fft] [--scale=tiny] [--reps=5]
//                    [--out=BENCH_sweep.json]
//
// The measured runs are also a determinism spot-check: simulated time must
// be identical across every rep and arm, traced or not, or we exit 1.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "trace/trace.hpp"

namespace {

using namespace svmsim;

struct Arm {
  double wall_seconds = 0.0;   ///< total over all reps
  double best_rep_wall = 0.0;  ///< fastest single rep
  std::uint64_t events = 0;    ///< total over all reps
  std::uint64_t rep_events = 0;  ///< events of one rep (deterministic)
  std::uint64_t sim_time = 0;

  /// Peak rate (fastest rep). The mean is useless on a shared/throttled
  /// machine — external load stalls whole reps — but the best rep of many
  /// converges on the unthrottled speed for every arm alike, which is what
  /// an overhead *ratio* needs.
  [[nodiscard]] double events_per_sec() const {
    return best_rep_wall > 0
               ? static_cast<double>(rep_events) / best_rep_wall
               : 0.0;
  }

  /// One measured repetition.
  void add_rep(double wall, std::uint64_t ev) {
    if (best_rep_wall == 0.0 || wall < best_rep_wall) best_rep_wall = wall;
    wall_seconds += wall;
    events += ev;
    rep_events = ev;
  }
};

/// One run of `app` with the given trace config, folded into `a`; checks
/// the simulated end time never wavers.
void run_rep(Arm& a, const std::string& app_name, apps::Scale scale,
             bool traced, const std::string& trace_path) {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  cfg.trace.enabled = traced;
  if (traced) cfg.trace.path = trace_path;
  std::unique_ptr<Workload> app = apps::make_app(app_name, scale);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = run(*app, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.validated) {
    std::fprintf(stderr, "trace_overhead: %s failed validation\n",
                 app_name.c_str());
    std::exit(1);
  }
  if (a.sim_time != 0 && a.sim_time != r.time) {
    std::fprintf(stderr,
                 "trace_overhead: simulated time wavered (%llu vs %llu) -- "
                 "tracing must not affect simulation\n",
                 static_cast<unsigned long long>(a.sim_time),
                 static_cast<unsigned long long>(r.time));
    std::exit(1);
  }
  a.sim_time = r.time;
  a.add_rep(std::chrono::duration<double>(t1 - t0).count(), r.events);
}

std::string arm_json(const Arm& a, int reps) {
  std::ostringstream os;
  os << "{\"wall_seconds\": " << a.wall_seconds << ", \"events\": " << a.events
     << ", \"events_per_sec\": " << a.events_per_sec()
     << ", \"sim_time\": " << a.sim_time << ", \"reps\": " << reps << "}";
  return os.str();
}

/// events_per_sec out of a subsection written by arm_json (strtod after the
/// key's colon; exact for our own flat output).
std::optional<double> eps_of(const std::optional<std::string>& sub) {
  if (!sub) return std::nullopt;
  const std::size_t k = sub->find("\"events_per_sec\"");
  if (k == std::string::npos) return std::nullopt;
  const std::size_t colon = sub->find(':', k);
  if (colon == std::string::npos) return std::nullopt;
  return std::strtod(sub->c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  harness::Cli cli(argc, argv);
  const std::string app_name = cli.get_or("app", "fft");
  const std::string scale_name = cli.get_or("scale", "tiny");
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");

  apps::Scale scale = apps::Scale::kTiny;
  if (scale_name == "small") scale = apps::Scale::kSmall;
  if (scale_name == "large") scale = apps::Scale::kLarge;

  // Subsections from a previous run of the *other* build (or this one; a
  // re-run simply refreshes its own side).
  std::optional<std::string> sub_out, sub_disabled, sub_enabled;
  std::string text;
  {
    std::ifstream in(out_path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      text = ss.str();
      if (auto sec = harness::json_object_section(text, "trace_overhead")) {
        sub_out = harness::json_object_section(*sec, "compiled_out");
        sub_disabled =
            harness::json_object_section(*sec, "compiled_in_disabled");
        sub_enabled = harness::json_object_section(*sec, "enabled");
      }
    }
  }

#ifdef SVMSIM_TRACE_DISABLED
  std::printf("== trace_overhead (tracer compiled OUT): %s/%s x%d ==\n",
              app_name.c_str(), scale_name.c_str(), reps);
  Arm out_arm;
  for (int i = 0; i < reps; ++i) run_rep(out_arm, app_name, scale, false, "");
  if (eps_of(sub_out).value_or(0) < out_arm.events_per_sec()) {
    sub_out = arm_json(out_arm, reps);
  }
#else
  std::printf("== trace_overhead (tracer compiled in): %s/%s x%d ==\n",
              app_name.c_str(), scale_name.c_str(), reps);
  const std::string tmp_trace = out_path + ".overhead-trace.bin";
  // Interleave the two arms rep-by-rep so external load perturbs both
  // equally; the recorded rate is each arm's best rep.
  Arm disabled_arm, enabled_arm;
  for (int i = 0; i < reps; ++i) {
    run_rep(disabled_arm, app_name, scale, false, "");
    run_rep(enabled_arm, app_name, scale, true, tmp_trace);
  }
  if (disabled_arm.sim_time != enabled_arm.sim_time) {
    std::fprintf(stderr,
                 "trace_overhead: --trace changed simulated time "
                 "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(disabled_arm.sim_time),
                 static_cast<unsigned long long>(enabled_arm.sim_time));
    return 1;
  }
  std::remove(tmp_trace.c_str());
  // Keep the best measurement across invocations (tools/trace_overhead.sh
  // alternates the two builds several times): on a shared machine a single
  // invocation can land entirely inside a throttled window, and only the
  // max over invocations of the per-rep peak is comparable across
  // binaries. Delete the section from the JSON to reset.
  if (eps_of(sub_disabled).value_or(0) < disabled_arm.events_per_sec()) {
    sub_disabled = arm_json(disabled_arm, reps);
  }
  if (eps_of(sub_enabled).value_or(0) < enabled_arm.events_per_sec()) {
    sub_enabled = arm_json(enabled_arm, reps);
  }
#endif

  // Headline percentages, recomputed from whatever subsections exist now.
  const auto eps_out = eps_of(sub_out);
  const auto eps_dis = eps_of(sub_disabled);
  const auto eps_en = eps_of(sub_enabled);
  std::ostringstream section;
  section << "\"trace_overhead\": {\n    \"app\": \"" << app_name
          << "\",\n    \"scale\": \"" << scale_name << "\"";
  harness::Table t({"configuration", "events/sec", "overhead"});
  auto row = [&](const char* name, const std::optional<double>& eps,
                 const std::optional<double>& base) {
    if (!eps) return;
    std::string over = "-";
    if (base && *base > 0) over = harness::fmt(100.0 * (*base - *eps) / *base, 2) + "%";
    t.add_row({name, harness::fmt(*eps, 0), over});
  };
  row("compiled_out", eps_out, std::nullopt);
  row("compiled_in_disabled", eps_dis, eps_out);
  row("enabled", eps_en, eps_dis);
  if (sub_out) section << ",\n    \"compiled_out\": " << *sub_out;
  if (sub_disabled) {
    section << ",\n    \"compiled_in_disabled\": " << *sub_disabled;
  }
  if (sub_enabled) section << ",\n    \"enabled\": " << *sub_enabled;
  if (eps_out && eps_dis && *eps_out > 0) {
    section << ",\n    \"disabled_vs_out_pct\": "
            << 100.0 * (*eps_out - *eps_dis) / *eps_out;
  }
  if (eps_dis && eps_en && *eps_dis > 0) {
    section << ",\n    \"enabled_vs_disabled_pct\": "
            << 100.0 * (*eps_dis - *eps_en) / *eps_dis;
  }
  section << "\n  }";
  t.print();

  // Merge into the shared BENCH JSON like the other tools do.
  text = harness::strip_json_section(text, "trace_overhead");
  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) {
    text = "{\n  \"bench\": \"sweep\",\n  \"schema\": 2,\n  \"build\": \"" +
           trace::build_provenance() + "\",\n  " + section.str() + "\n}\n";
  } else {
    text = text.substr(0, close) + ",\n  " + section.str() + "\n}\n";
  }
  harness::write_file_atomic(out_path, text);
  std::printf("(merged into %s)\n", out_path.c_str());
  return 0;
}
