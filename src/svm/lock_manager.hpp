// Home-based queue locks with node-level token caching.
//
// Every lock has a home node (id % nodes). The token (ownership) migrates
// between nodes and is cached: a processor whose node holds the free token
// acquires locally through hardware synchronization with no messages or
// interrupts ("local lock acquire" in Table 2). Otherwise the node RPCs the
// home, which recalls the token from its current owner and grants FIFO.
//
// The LockDirectory holds the home-side state; per-node proxy state lives in
// the protocol agents. The per-lock release timestamp (`vc`) conceptually
// travels with the token; keeping it here is a simulator shortcut that does
// not change message counts or sizes (grants still carry it on the wire).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "engine/types.hpp"
#include "net/message.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

struct LockHomeState {
  NodeId owner = -1;        ///< node currently holding the token
  bool recall_sent = false; ///< a recall to `owner` is outstanding
  std::deque<net::Message> waiters;  ///< queued kLockAcquire requests
  VClock vc;                ///< timestamp of the lock's last release
};

class LockDirectory {
 public:
  LockDirectory(int nodes, int max_locks)
      : nodes_(nodes),
        locks_(static_cast<std::size_t>(max_locks)) {
    for (auto& l : locks_) {
      l.vc = VClock(nodes);
    }
  }

  [[nodiscard]] int max_locks() const noexcept {
    return static_cast<int>(locks_.size());
  }
  [[nodiscard]] NodeId home_of(int lock) const { return lock % nodes_; }

  [[nodiscard]] LockHomeState& state(int lock) {
    return locks_[static_cast<std::size_t>(lock)];
  }

  /// Initialize token ownership lazily: the home owns an untouched token.
  LockHomeState& ensure_owner(int lock) {
    auto& s = state(lock);
    if (s.owner < 0) s.owner = home_of(lock);
    return s;
  }

 private:
  int nodes_;
  std::vector<LockHomeState> locks_;
};

}  // namespace svmsim::svm
