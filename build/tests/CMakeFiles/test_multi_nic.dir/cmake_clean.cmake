file(REMOVE_RECURSE
  "CMakeFiles/test_multi_nic.dir/test_multi_nic.cpp.o"
  "CMakeFiles/test_multi_nic.dir/test_multi_nic.cpp.o.d"
  "test_multi_nic"
  "test_multi_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
