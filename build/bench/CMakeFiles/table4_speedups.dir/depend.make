# Empty dependencies file for table4_speedups.
# This may be replaced when dependencies are built.
