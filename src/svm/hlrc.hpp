// SVM protocol agents.
//
// SvmAgent is the per-node protocol engine: it implements the application-
// facing shared-memory operations (read/write/lock/unlock/barrier), the
// page-fault path, LRC invalidations, the node-caching token locks and the
// hierarchical barrier. The two concrete protocols of the paper specialize
// write propagation:
//
//  * HlrcAgent — home-based lazy release consistency: a twin is created at
//    the first write fault; at release, word-granularity diffs are computed
//    and flushed to each page's home, which applies them (paper's HLRC).
//  * AurcAgent (aurc.hpp) — automatic update release consistency: writes to
//    remotely-homed pages are snooped and streamed to the home as automatic
//    updates; no twins or diffs (paper's AURC).
//
// Consistency model: intervals are per-node (the node is the coherence
// agent; processors inside an SMP node share pages through hardware), with
// vector timestamps, eager home updates at releases, and invalidation at
// acquires via write notices.
//
// Hot-path structure (PR 2): protocol episodes recycle pooled Triggers with
// generation counters instead of allocating shared_ptr<Trigger> per miss;
// in-flight fetch/flush triggers live in dense per-page slot vectors; lock
// proxies are indexed by lock id; message bodies come from the per-machine
// ProtocolPools; and every per-release scratch container is a reused member.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "core/processor.hpp"
#include "core/stats.hpp"
#include "engine/ring_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "net/messaging.hpp"
#include "net/nic.hpp"
#include "svm/address_space.hpp"
#include "svm/barrier_manager.hpp"
#include "svm/diff.hpp"
#include "svm/lock_manager.hpp"
#include "svm/page_directory.hpp"
#include "svm/pools.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

/// Protocol state shared across all nodes of one machine (interval history,
/// lock homes, barrier rendezvous). Object pools are NOT here: they are
/// per-partition (svm/pools.hpp) so pooled Triggers schedule on the right
/// simulator in PDES mode. The structures below are the simulator shortcuts
/// of docs/design — in PDES mode they are the only mutable state reachable
/// from several partitions, so each is internally synchronized (their
/// *contents* stay deterministic because every cross-partition read is
/// happens-before-ordered behind a message that took >= the lookahead to
/// arrive; see docs/engine.md, "PDES mode").
///
/// The hub's simulator must be the partition-0 simulator: the barrier
/// manager is node 0, which the contiguous partition map always places in
/// partition 0.
struct SharedState {
  SharedState(engine::Simulator& sim, int nodes, int max_locks)
      : dir(nodes), locks(nodes, max_locks), hub(sim, nodes) {}

  PageDirectory dir;
  LockDirectory locks;
  BarrierHub hub;
};

class SvmAgent {
 public:
  SvmAgent(engine::Simulator& sim, const SimConfig& cfg, NodeId self,
           int procs_on_node, AddressSpace& space, SharedState& shared,
           ProtocolPools& pools, net::NodeComm& comm, Counters& counters);
  virtual ~SvmAgent() = default;

  SvmAgent(const SvmAgent&) = delete;
  SvmAgent& operator=(const SvmAgent&) = delete;

  /// Wire this agent into its node's messaging layer. Called once by the
  /// Machine after construction.
  virtual void install();

  // ---- application-facing operations (called through apps::Shm) ----
  engine::Task<void> read(Processor& p, GlobalAddr addr, void* dst,
                          std::uint64_t bytes);
  engine::Task<void> write(Processor& p, GlobalAddr addr, const void* src,
                           std::uint64_t bytes);
  engine::Task<void> acquire_lock(Processor& p, int lock);
  engine::Task<void> release_lock(Processor& p, int lock);
  engine::Task<void> barrier(Processor& p);

  /// Set by the node: drops stale cached lines on all its processors.
  std::function<void(GlobalAddr, std::uint64_t)> invalidate_caches;

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] const VClock& vclock() const noexcept { return vc_; }

  /// Deadlock diagnostics: dump this node's lock-proxy state to stderr.
  void dump_lock_state() const;

 protected:
  struct LockProxy {
    bool init = false;            ///< token ownership has been initialized
    bool token = false;
    bool held = false;
    bool remote_pending = false;  ///< a remote acquire is in flight
    bool recall_pending = false;  ///< home wants the token back
    engine::RingQueue<engine::Trigger*> waiters;  // local processors queued
  };

  // Page access paths.
  engine::Task<PageCopy*> ensure_valid(Processor& p, PageId page,
                                       bool for_write);
  engine::Task<PageCopy*> readable(Processor& p, PageId page);
  engine::Task<PageCopy*> writable(Processor& p, PageId page);
  engine::Task<void> fetch_page(Processor& p, PageId page, PageCopy& c);
  void mark_dirty(PageId page, PageCopy& c);

  // Release-time propagation (protocol-specific).
  virtual engine::Task<void> arm_write(Processor& p, PageId page,
                                       PageCopy& c) = 0;
  virtual void on_store(Processor& p, PageId page, PageCopy& c,
                        std::uint32_t offset, std::uint32_t len) = 0;
  /// Propagate all dirty pages to their homes and close the interval.
  engine::Task<void> flush(Processor& p);
  virtual engine::Task<void> propagate_dirty(Processor& p,
                                             const std::vector<PageId>& pages) = 0;
  /// Flush one concurrently-dirty page before invalidating it.
  virtual engine::Task<void> flush_page_for_invalidation(Processor& p,
                                                         PageId page,
                                                         PageCopy& c) = 0;

  // Acquire-time invalidations.
  engine::Task<void> apply_invalidations(Processor& p, const VClock& target);

  // Sparse clock transport (docs/scaling.md). Clock-bearing requests
  // (kLockAcquire, kTokenReturn, kBarrierArrive) all have the same wire
  // size, so per (src, dst) edge they complete in send order; the sender
  // rewrites the full pooled clock into the entries that differ from the
  // previous clock message on that edge (encode_clock, at the NI enqueue
  // point) and the receiver replays them into its mirror cache in arrival
  // order (expand_clock, at dispatch). Barrier arrivals use a separate
  // cache class so an arrival delta is exactly "what changed since this
  // node's previous arrival" — the incremental barrier reduction merges
  // only those pairs. Variable-size replies (kLockGrant, kBarrierRelease)
  // are instead encoded relative to the clock carried by the request they
  // answer, which both sides hold.
  struct PeerClocks {
    explicit PeerClocks(int nodes)
        : out_sync(nodes),
          out_barrier(nodes),
          in_sync(nodes),
          in_barrier(nodes) {}
    VClock out_sync;     ///< last sync-class clock sent to this peer
    VClock out_barrier;  ///< last barrier arrival sent to this peer
    VClock in_sync;      ///< last sync-class clock received from this peer
    VClock in_barrier;   ///< last barrier arrival received from this peer
  };
  [[nodiscard]] PeerClocks& peer(NodeId n);
  void encode_clock(net::Message& m);  // full body -> delta (sender NI)
  void expand_clock(net::Message& m);  // delta -> full clock (receiver)
  /// Delta of `target` past `base` (reply encoding: base is the answered
  /// request's clock, which the receiver still holds).
  [[nodiscard]] VClockDeltaRef encode_reply_delta(const VClock& base,
                                                  const VClock& target);
  void check_expansion(const VClockDeltaBody& d, const VClock& got) const;

  // Incoming request handlers (interrupt context).
  engine::Task<void> handle_request(net::Message m);
  virtual void handle_direct(net::Message&& m);
  engine::Task<void> handle_page_request(net::Message m);
  engine::Task<void> handle_diff_batch(net::Message m);
  engine::Task<void> handle_lock_acquire(net::Message m);
  engine::Task<void> handle_lock_recall(net::Message m);
  engine::Task<void> handle_token_return(net::Message m);

  // Lock helpers.
  LockProxy& proxy(int lock);
  engine::Task<void> grant_lock(net::Message req);
  /// Return the token to the lock's home. `p` is the application processor
  /// when called from a release; nullptr when called from a handler.
  engine::Task<void> send_token_return(int lock, Processor* p);
  void wake_one_waiter(LockProxy& lp);

  // Helpers.
  [[nodiscard]] NodeId home_of(PageId page);
  [[nodiscard]] std::uint64_t vclock_wire_bytes() const {
    return 16 + 4 * static_cast<std::uint64_t>(space_->nodes());
  }
  /// Charge host overhead for posting a message from application context.
  void charge_send(Processor& p) {
    p.charge(TimeCat::kProtocol, cfg_->comm.host_overhead);
  }
  /// Index of `p` within this node (for per-processor scratch buffers).
  [[nodiscard]] int local_index(const Processor& p) const noexcept {
    return p.id() - self_ * procs_on_node_;
  }

  engine::Simulator* sim_;
  const SimConfig* cfg_;
  NodeId self_;
  int procs_on_node_;
  AddressSpace* space_;
  SharedState* shared_;
  ProtocolPools* pools_;
  net::NodeComm* comm_;
  Counters* counters_;

  VClock vc_;
  std::vector<PageId> dirty_pages_;     ///< need propagation at next flush
  std::vector<PageId> interval_pages_;  ///< all pages dirtied this interval
  // Scratch buffers swapped with the lists above at flush time (the lists
  // refill while the flush is in flight); storage ping-pongs between them.
  std::vector<PageId> propagating_;
  std::vector<PageId> interval_scratch_;
  bool node_flushing_ = false;          ///< a release flush is in progress
  /// Waiters hold a generation-stamped Episode across the flush completing
  /// under them; the flusher ends the episode with complete().
  engine::Trigger node_flush_done_;
  std::deque<LockProxy> lock_proxies_;  ///< by lock id; lazily grown
  // Per-page transient protocol state, kept as structure-of-arrays tables
  // sized once at install() (they grow lazily only if the app allocates
  // pages mid-run): the flush/fetch paths scan many pages per operation,
  // and striding through the fat PageCopy records for a one-word stamp or
  // trigger pointer wastes the whole cache line.
  /// Fault coalescing: in-flight fetches, one pooled trigger slot per page.
  /// Non-null iff a fetch for the page is in flight.
  std::vector<engine::Trigger*> pending_fetch_;
  /// In-flight release flushes, one pooled trigger slot per page; non-null
  /// iff a flush for the page is in flight. An invalidation of a page whose
  /// diff/updates are still in flight to the home must wait for the ack:
  /// refetching earlier could resurrect a home copy that misses this node's
  /// own flushed writes.
  std::vector<engine::Trigger*> pending_flush_;
  /// Pages whose flush triggers this propagate pass owns (scratch; the pass
  /// is serialized by node_flushing_).
  std::vector<PageId> flush_in_flight_;
  /// Stamp for deduplicating the dirty list within one propagate pass
  /// (compared against flush_epoch_of(page)).
  std::uint32_t flush_epoch_ = 0;
  /// Last propagate pass that visited each page (see flush_epoch_).
  std::vector<std::uint32_t> flush_epoch_by_page_;
  /// Per-local-processor invalidation scratch (apply_invalidations can run
  /// on several processors of the node concurrently).
  std::vector<std::vector<PageId>> inval_scratch_;

  engine::Trigger*& fetch_slot(PageId page);
  engine::Trigger*& flush_slot(PageId page);
  std::uint32_t& flush_epoch_of(PageId page);
  void begin_page_flush(PageId page);
  void end_page_flush(PageId page);
  engine::Task<void> wait_page_flush(Processor& p, PageId page);

  // Sparse clock transport state: per-peer edge caches (allocated on the
  // first clock message to/from that peer — most edges never carry clock
  // traffic), the clocks carried by outstanding lock acquires (the grant
  // delta's reference, keyed by rpc id; at most one per local processor),
  // and the clock this rep's barrier arrival carried (the release delta's
  // reference, held from arrival send to release receipt).
  std::vector<std::unique_ptr<PeerClocks>> peers_;
  std::vector<std::pair<std::uint64_t, VClockRef>> grant_bases_;
  VClockRef barrier_sent_;

  // Hierarchical-barrier state (one episode at a time).
  int barrier_arrived_ = 0;
  engine::Trigger barrier_done_;
  engine::Trigger barrier_release_;
  net::Message barrier_release_msg_;
  std::vector<net::Message> barrier_arrivals_;  ///< manager scratch
  /// Manager state: the running N-way merge. Persists across episodes —
  /// every clock feeding episode k covers episode k-1's merged clock (each
  /// rep merged it at the last release), so episode k only folds in this
  /// episode's arrival deltas plus the manager's own clock.
  VClock barrier_merged_;
};

class HlrcAgent final : public SvmAgent {
 public:
  using SvmAgent::SvmAgent;

  void install() override;  ///< chains SvmAgent; sizes the batch tables

 protected:
  engine::Task<void> arm_write(Processor& p, PageId page,
                               PageCopy& c) override;
  void on_store(Processor& p, PageId page, PageCopy& c, std::uint32_t offset,
                std::uint32_t len) override;
  engine::Task<void> propagate_dirty(Processor& p,
                                     const std::vector<PageId>& pages) override;
  engine::Task<void> flush_page_for_invalidation(Processor& p, PageId page,
                                                 PageCopy& c) override;

 private:
  /// Diff one dirty page against its twin into `out` (a pooled batch slot)
  /// and reset its write detection.
  void make_diff(Processor& p, PageId page, PageCopy& c, PageDiff& out);

  // Release-flush scratch, reused across flushes (serialized by
  // node_flushing_). batch_by_home_/batch_bytes_ are indexed by home node;
  // batch_homes_ keeps the deterministic (first-touch) emission order.
  std::vector<DiffBatchRef> batch_by_home_;
  std::vector<std::uint64_t> batch_bytes_;
  std::vector<NodeId> batch_homes_;
  std::vector<std::uint64_t> rpc_ids_;
};

}  // namespace svmsim::svm
