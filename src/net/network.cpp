#include "net/nic.hpp"

// Network::transmit is defined in nic.cpp next to the NIC packet paths;
// this TU anchors the network component for the build.
namespace svmsim::net {}
