#include "explore/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "apps/registry.hpp"
#include "check/checker.hpp"
#include "engine/choice.hpp"
#include "net/wire_key.hpp"
#include "svm/vclock.hpp"

namespace svmsim::explore {

namespace {

/// One logged free decision: everything the driver needs to fork siblings.
struct FreeDecision {
  std::size_t index;  ///< absolute decision index (offset into `taken`)
  ChoiceKind kind;
  std::vector<std::uint64_t> alts;      ///< branchable alternative values
  std::vector<std::uint64_t> sleep_at;  ///< live sleep snapshot (wire keys)
};

}  // namespace

struct Explorer::RunLog {
  Schedule taken;                   ///< every decision, forced and free
  std::vector<FreeDecision> free;   ///< branch points (open portion only)
  std::uint64_t sleep_suppressed = 0;
  std::uint64_t independent_suppressed = 0;
  std::uint64_t hb_suppressed = 0;
  /// True once the run executed an action its sleep set suppressed —
  /// either a choice point found every co-enabled choice asleep, or a
  /// slept delivery fired solo (no choice point: nothing else co-pended).
  /// Either way the continuation only re-derives already-explored traces,
  /// so decisions past that point are not recorded as branch points.
  bool closed = false;
};

namespace {

/// The per-run ChoiceHook: replays a forced prefix, then takes engine
/// defaults while logging alternatives and maintaining the sleep set.
class DriverHook final : public engine::ChoiceHook {
 public:
  DriverHook(const Schedule& forced, const ExploreConfig& xcfg,
             std::vector<std::uint64_t> sleep, Explorer::RunLog& log)
      : forced_(forced), xcfg_(xcfg), sleep_(std::move(sleep)), log_(log) {}

  void on_attach(check::Checker* checker) override { checker_ = checker; }

  [[nodiscard]] bool diverged() const noexcept { return diverged_; }
  [[nodiscard]] const std::string& divergence() const noexcept {
    return diverge_msg_;
  }

  std::size_t choose_wire(const engine::WireChoice* alts,
                          std::size_t n) override {
    const std::size_t d = log_.taken.size();
    if (d < forced_.size()) {
      const Choice& c = forced_[d];
      if (c.kind != ChoiceKind::kWire) {
        return diverge(d, c, "engine offered a wire decision"), 0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (alts[i].key == c.value) {
          take(c);
          return i;
        }
      }
      return diverge(d, c, "forced wire key not co-enabled"), 0;
    }
    if (log_.closed) {
      take({ChoiceKind::kWire, alts[0].key});
      return 0;
    }
    // Default: the first channel head the sleep set does not suppress.
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!slept(alts[i].key)) {
        pick = i;
        break;
      }
    }
    if (pick == n) {
      // Every co-enabled choice was already explored from this state by an
      // earlier sibling: the subtree is covered (classic sleep sets).
      log_.closed = true;
      take({ChoiceKind::kWire, alts[0].key});
      return 0;
    }
    const std::uint64_t chosen = alts[pick].key;
    FreeDecision fd{d, ChoiceKind::kWire, {}, sleep_};
    for (std::size_t i = 0; i < n; ++i) {
      if (i == pick) continue;
      const std::uint64_t k = alts[i].key;
      if (slept(k)) {
        ++log_.sleep_suppressed;
        continue;
      }
      if (xcfg_.branching == Branching::kDependent) {
        if (net::wire_key_dst(k) != net::wire_key_dst(chosen)) {
          ++log_.independent_suppressed;
          continue;
        }
        if (xcfg_.hb_prune && checker_ != nullptr && hb_ordered(k, chosen)) {
          ++log_.hb_suppressed;
          continue;
        }
      }
      fd.alts.push_back(k);
    }
    if (!fd.alts.empty()) log_.free.push_back(std::move(fd));
    take({ChoiceKind::kWire, chosen});
    return pick;
  }

  int choose_victim(NodeId node, int nprocs, int preferred) override {
    const std::size_t d = log_.taken.size();
    if (d < forced_.size()) {
      const Choice& c = forced_[d];
      const int idx = static_cast<int>(c.value & 0xffffffffull);
      if (c.kind != ChoiceKind::kVictim ||
          static_cast<NodeId>(c.value >> 32) != node || idx >= nprocs) {
        return diverge(d, c, "engine offered a victim decision"), preferred;
      }
      take(c);
      return idx;
    }
    if (!log_.closed && xcfg_.irq_choices) {
      FreeDecision fd{d, ChoiceKind::kVictim, {}, sleep_};
      for (int i = 0; i < nprocs; ++i) {
        if (i != preferred) fd.alts.push_back(pack(node, i));
      }
      if (!fd.alts.empty()) log_.free.push_back(std::move(fd));
    }
    take({ChoiceKind::kVictim, pack(node, preferred)});
    return preferred;
  }

  void on_wire_fire(std::uint64_t key) override {
    // Prefix fires re-enact history the branch snapshot already reflects;
    // only the free region maintains the sleep set. A slept key firing
    // means this run is re-deriving a sibling's subtree: close it. Any
    // other fire is dependent with (and therefore wakes) sleeping entries
    // bound for the same node.
    if (log_.taken.size() < forced_.size() || log_.closed) return;
    if (slept(key)) {
      log_.closed = true;
      return;
    }
    const NodeId dst = net::wire_key_dst(key);
    std::erase_if(sleep_, [dst](std::uint64_t k) {
      return net::wire_key_dst(k) == dst;
    });
  }

  bool choose_poll_slip(NodeId node) override {
    const std::size_t d = log_.taken.size();
    if (d < forced_.size()) {
      const Choice& c = forced_[d];
      if (c.kind != ChoiceKind::kPollSlip ||
          static_cast<NodeId>(c.value >> 32) != node) {
        return diverge(d, c, "engine offered a poll-slip decision"), false;
      }
      take(c);
      return (c.value & 1ull) != 0;
    }
    if (!log_.closed && xcfg_.irq_choices) {
      log_.free.push_back(
          {d, ChoiceKind::kPollSlip, {pack(node, 1)}, sleep_});
    }
    take({ChoiceKind::kPollSlip, pack(node, 0)});
    return false;
  }

 private:
  static std::uint64_t pack(NodeId node, int v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 32) |
           static_cast<std::uint32_t>(v);
  }

  [[nodiscard]] bool slept(std::uint64_t key) const {
    return std::find(sleep_.begin(), sleep_.end(), key) != sleep_.end();
  }

  /// True when the two deliveries' *sending* nodes are causally ordered at
  /// decision time: the alternative order cannot arise from commuting
  /// concurrent events, so the branch is redundant.
  [[nodiscard]] bool hb_ordered(std::uint64_t a, std::uint64_t b) const {
    const svm::VClock ca = checker_->node_clock(net::wire_key_src(a));
    const svm::VClock cb = checker_->node_clock(net::wire_key_src(b));
    return !(ca == cb) && (ca.covers(cb) || cb.covers(ca));
  }

  void take(Choice c) {
    // Sleep-set propagation (free decisions only — replaying the forced
    // prefix must not disturb the sleep set the branch constructed, since
    // its entries were already filtered against the whole prefix): a
    // delivery is dependent with everything bound for the same node, so
    // executing it wakes (drops) the entries it does not commute with.
    // Victim and poll decisions touch their node's dispatch state the same
    // way. After a dependent action the slept trace is no longer provably
    // covered, hence the wake.
    if (log_.taken.size() >= forced_.size()) {
      const NodeId dst = c.kind == ChoiceKind::kWire
                             ? net::wire_key_dst(c.value)
                             : static_cast<NodeId>(c.value >> 32);
      std::erase_if(sleep_, [dst](std::uint64_t k) {
        return net::wire_key_dst(k) == dst;
      });
    }
    log_.taken.push_back(c);
  }

  void diverge(std::size_t d, const Choice& want, const char* what) {
    if (diverged_) return;
    diverged_ = true;
    std::ostringstream os;
    os << "schedule divergence at decision " << d << ": forced "
       << to_string(want.kind) << "/0x" << std::hex << want.value << std::dec
       << ", but " << what;
    diverge_msg_ = os.str();
  }

  const Schedule& forced_;
  const ExploreConfig& xcfg_;
  std::vector<std::uint64_t> sleep_;
  Explorer::RunLog& log_;
  check::Checker* checker_ = nullptr;
  bool diverged_ = false;
  std::string diverge_msg_;
};

}  // namespace

Explorer::Explorer(std::string app, apps::Scale scale, SimConfig cfg,
                   ExploreConfig xcfg)
    : app_(std::move(app)),
      scale_(scale),
      cfg_(std::move(cfg)),
      xcfg_(xcfg),
      fingerprint_(config_fingerprint(app_, cfg_)) {}

RunOutcome Explorer::run_internal(const Schedule& forced,
                                  const std::vector<std::uint64_t>& sleep,
                                  RunLog* log, ExploreResult* tally) {
  RunLog local;
  RunLog& lg = log != nullptr ? *log : local;
  DriverHook hook(forced, xcfg_, sleep, lg);
  RunOutcome out;
  // A fresh application instance per run: stateless re-execution from t=0.
  const std::unique_ptr<apps::Application> app = apps::make_app(app_, scale_);
  try {
    out.result = run(*app, cfg_, Cycles{1} << 42, &hook);
  } catch (const std::invalid_argument&) {
    throw;  // configuration misuse (par_cores > 1): not a run outcome
  } catch (const std::exception& e) {
    out.error = true;
    out.error_message = e.what();
  }
  if (hook.diverged()) throw std::runtime_error(hook.divergence());
  if (lg.taken.size() < forced.size()) {
    throw std::runtime_error(
        "schedule divergence: run consumed " +
        std::to_string(lg.taken.size()) + " of " +
        std::to_string(forced.size()) + " forced choices");
  }
  out.schedule = lg.taken;
  if (tally != nullptr) {
    tally->decisions += lg.taken.size();
    tally->sleep_pruned += lg.sleep_suppressed;
    tally->independent_pruned += lg.independent_suppressed;
    tally->hb_pruned += lg.hb_suppressed;
    tally->max_depth = std::max<std::uint64_t>(tally->max_depth,
                                               lg.taken.size());
  }
  return out;
}

RunOutcome Explorer::run_schedule(const Schedule& forced) {
  return run_internal(forced, {}, nullptr, nullptr);
}

ExploreResult Explorer::explore() {
  ExploreResult res;
  struct Pending {
    Schedule prefix;
    std::vector<std::uint64_t> sleep;
  };
  std::vector<Pending> stack;
  stack.push_back({{}, {}});
  while (!stack.empty()) {
    if (res.states >= xcfg_.max_states) {
      res.budget_exhausted = true;
      break;
    }
    const Pending cur = std::move(stack.back());
    stack.pop_back();
    RunLog log;
    const RunOutcome out = run_internal(cur.prefix, cur.sleep, &log, &res);
    ++res.states;
    if (log.closed) ++res.redundant;
    const bool violating =
        out.error || !out.result.validated || out.result.check_violations > 0;
    if (violating) {
      ++res.violations;
      if (res.violating.size() < xcfg_.max_violations_kept) {
        res.violating.push_back(out.schedule);
      }
      if (xcfg_.stop_on_violation) break;
    }
    // Fork children. Reverse push order makes the stack pop branches in
    // (decision, alternative) order, so exploration is deterministic.
    for (auto it = log.free.rbegin(); it != log.free.rend(); ++it) {
      const FreeDecision& fd = *it;
      for (std::size_t i = fd.alts.size(); i-- > 0;) {
        Pending child;
        child.prefix.assign(
            out.schedule.begin(),
            out.schedule.begin() + static_cast<std::ptrdiff_t>(fd.index));
        child.prefix.push_back({fd.kind, fd.alts[i]});
        // Child sleep set (Godefroid): start from the decision's snapshot
        // plus — for wire decisions — the default choice and every earlier
        // sibling (their subtrees are explored before this child runs),
        // then drop entries *dependent* with the alternative being taken:
        // after a same-destination action a slept trace is no longer
        // provably covered.
        std::vector<std::uint64_t> pool = fd.sleep_at;
        if (fd.kind == ChoiceKind::kWire) {
          pool.push_back(out.schedule[fd.index].value);
          for (std::size_t j = 0; j < i; ++j) pool.push_back(fd.alts[j]);
        }
        const NodeId adst = fd.kind == ChoiceKind::kWire
                                ? net::wire_key_dst(fd.alts[i])
                                : static_cast<NodeId>(fd.alts[i] >> 32);
        for (std::uint64_t k : pool) {
          if (net::wire_key_dst(k) != adst) child.sleep.push_back(k);
        }
        ++res.branches;
        stack.push_back(std::move(child));
      }
    }
  }
  return res;
}

std::uint64_t config_fingerprint(const std::string& app,
                                 const SimConfig& cfg) {
  std::ostringstream os;
  os << app << '\0' << cfg.comm.describe()
     << " scheme=" << static_cast<int>(cfg.comm.interrupt_scheme)
     << " poll=" << cfg.comm.poll_interval
     << " pollchk=" << cfg.comm.poll_check_cost
     << " topo=" << cfg.topology.to_string()
     << " wire=" << cfg.arch.wire_latency_cycles
     << " check=" << (cfg.check.enabled ? 1 : 0);
  return fnv1a(os.str());
}

}  // namespace svmsim::explore
