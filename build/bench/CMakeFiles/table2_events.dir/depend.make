# Empty dependencies file for table2_events.
# This may be replaced when dependencies are built.
