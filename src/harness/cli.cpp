#include "harness/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace svmsim::harness {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      kv_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      kv_.emplace(std::string(arg), std::string(argv[++i]));
    } else {
      kv_.emplace(std::string(arg), "1");
    }
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

long Cli::get_int(const std::string& key, long def) const {
  auto v = get(key);
  return v ? std::strtol(v->c_str(), nullptr, 10) : def;
}

double Cli::get_double(const std::string& key, double def) const {
  auto v = get(key);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Cli::has(const std::string& key) const { return kv_.contains(key); }

}  // namespace svmsim::harness
