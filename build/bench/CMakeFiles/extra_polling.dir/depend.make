# Empty dependencies file for extra_polling.
# This may be replaced when dependencies are built.
