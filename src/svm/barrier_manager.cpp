#include "svm/barrier_manager.hpp"

// Header-only rendezvous state; the barrier protocol itself is in hlrc.cpp.
namespace svmsim::svm {}
