#include "core/params.hpp"

#include <sstream>

namespace svmsim {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kHLRC:
      return "HLRC";
    case Protocol::kAURC:
      return "AURC";
  }
  return "?";
}

std::string ArchParams::validate() const {
  // !(x > 0) instead of x <= 0: a NaN bandwidth must fail too.
  if (!(link_bytes_per_cycle > 0.0)) {
    return "link_bytes_per_cycle must be > 0";
  }
  if (!(intra_link_bytes_per_cycle > 0.0)) {
    return "intra_link_bytes_per_cycle must be > 0";
  }
  if (!(inter_link_bytes_per_cycle > 0.0)) {
    return "inter_link_bytes_per_cycle must be > 0";
  }
  if (wire_latency_cycles == 0) return "wire_latency_cycles must be nonzero";
  if (intra_hop_latency_cycles == 0) {
    return "intra_hop_latency_cycles must be nonzero";
  }
  if (inter_hop_latency_cycles == 0) {
    return "inter_hop_latency_cycles must be nonzero";
  }
  return {};
}

std::string to_string(InterruptScheme s) {
  switch (s) {
    case InterruptScheme::kFixedProcessor:
      return "fixed-proc0";
    case InterruptScheme::kRoundRobin:
      return "round-robin";
    case InterruptScheme::kPolling:
      return "polling";
  }
  return "?";
}

CommParams CommParams::achievable() {
  CommParams p;
  p.host_overhead = 500;
  p.io_bus_mb_per_mhz = 0.5;  // 100 MB/s at 200 MHz
  p.ni_occupancy = 1000;
  p.interrupt_cost = 500;  // null interrupt: 1000 cycles
  return p;
}

CommParams CommParams::best() {
  CommParams p;
  p.host_overhead = 0;
  p.io_bus_mb_per_mhz = 2.0;  // == memory bus bandwidth
  p.ni_occupancy = 0;
  p.interrupt_cost = 0;
  return p;
}

std::string CommParams::describe() const {
  std::ostringstream os;
  os << to_string(protocol) << " o=" << host_overhead
     << " bw=" << io_bus_mb_per_mhz << "MB/MHz occ=" << ni_occupancy
     << " intr=" << interrupt_cost << " page=" << page_bytes
     << " procs/node=" << procs_per_node << "x" << node_count();
  return os.str();
}

}  // namespace svmsim
