// RingQueue / TimedChannel unit tests: wrap-around, growth boundaries,
// move-only payloads, and the batched SPSC contract the PDES channels rely
// on (seal publishes a whole window's records with one atomic store, drain
// consumes sealed batches oldest-first in production order, and the only
// cross-thread synchronization is the channel's own seal/drain counters).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/ring_queue.hpp"

namespace svmsim::engine {
namespace {

TEST(RingQueue, StartsEmpty) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(RingQueue, PushPopFifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapAroundKeepsOrder) {
  RingQueue<int> q;
  q.reserve(8);
  const std::size_t cap = q.capacity();
  ASSERT_EQ(cap, 8u);

  // Walk the head index all the way around the buffer several times while
  // the queue stays partially full: every pop must still see FIFO order.
  int next_in = 0;
  int next_out = 0;
  for (int i = 0; i < 5; ++i) q.push_back(next_in++);
  for (int round = 0; round < 64; ++round) {
    q.push_back(next_in++);
    q.push_back(next_in++);
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
  }
  // Never grew: the whole walk fit in the reserved capacity.
  EXPECT_EQ(q.capacity(), cap);
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, GrowthAtFullBoundaryPreservesOrder) {
  RingQueue<int> q;
  // Misalign head first so growth has to unwrap a wrapped queue.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  int next_in = 0;
  // Fill to exactly capacity, then push one more to force a grow.
  while (q.size() < q.capacity()) q.push_back(next_in++);
  const std::size_t old_cap = q.capacity();
  q.push_back(next_in++);
  EXPECT_GT(q.capacity(), old_cap);
  for (int i = 0; i < next_in; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, EmptyFullBoundaries) {
  RingQueue<int> q;
  q.push_back(1);
  q.pop_front();
  EXPECT_TRUE(q.empty());
  // Drain-to-empty then refill repeatedly across the boundary.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < round; ++i) q.push_back(i);
    EXPECT_EQ(q.size(), static_cast<std::size_t>(round));
    for (int i = 0; i < round; ++i) {
      EXPECT_EQ(q.front(), i);
      q.pop_front();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(RingQueue, ReserveRoundsUpAndKeepsElements) {
  RingQueue<int> q;
  q.push_back(7);
  q.push_back(8);
  q.reserve(100);
  EXPECT_GE(q.capacity(), 100u);
  // Power-of-two capacity.
  EXPECT_EQ(q.capacity() & (q.capacity() - 1), 0u);
  EXPECT_EQ(q.front(), 7);
  q.pop_front();
  EXPECT_EQ(q.front(), 8);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, MoveOnlyPayload) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 40; ++i) q.push_back(std::make_unique<int>(i));
  // pop_front must release the slot's resource immediately.
  ASSERT_NE(q.front(), nullptr);
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(q.front(), nullptr);
    EXPECT_EQ(*q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, PopReleasesSlotResources) {
  auto counter = std::make_shared<int>(0);
  RingQueue<std::shared_ptr<int>> q;
  q.push_back(counter);
  EXPECT_EQ(counter.use_count(), 2);
  q.pop_front();
  // The slot must not keep the payload alive until overwrite/destruction.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(RingQueue, ClearResetsToEmpty) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 10; ++i) q.push_back(std::make_unique<int>(i));
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(std::make_unique<int>(42));
  EXPECT_EQ(*q.front(), 42);
}

TEST(TimedChannel, EmptyChannelReportsNever) {
  TimedChannel<int> ch;
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.open_min(), kNever);
  EXPECT_EQ(ch.open_size(), 0u);
  EXPECT_EQ(ch.sealed_batches(), 0u);
}

TEST(TimedChannel, OpenMinTracksSmallestTimestamp) {
  TimedChannel<int> ch;
  ch.push(500, 1, 0);
  EXPECT_EQ(ch.open_min(), 500u);
  ch.push(900, 2, 1);
  EXPECT_EQ(ch.open_min(), 500u);
  ch.push(300, 3, 2);
  EXPECT_EQ(ch.open_min(), 300u);
  // Seal reports the batch minimum and resets the open tracker.
  EXPECT_EQ(ch.seal(), 300u);
  EXPECT_EQ(ch.open_min(), kNever);
  EXPECT_EQ(ch.open_size(), 0u);
  EXPECT_EQ(ch.sealed_batches(), 1u);
  ch.drain([](TimedChannel<int>::Batch&) {});
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, EmptySealConsumesNoSlot) {
  // Publish hooks seal every window, traffic or not: a sealless window must
  // not eat ring slots (there are only kSlots of them).
  TimedChannel<int> ch;
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(ch.seal(), kNever);
  EXPECT_EQ(ch.sealed_batches(), 0u);
  ch.push(42, 0, 42);
  EXPECT_EQ(ch.seal(), 42u);
  int got = 0;
  ch.drain([&got](TimedChannel<int>::Batch& b) {
    ASSERT_EQ(b.size(), 1u);
    got = b[0].item;
  });
  EXPECT_EQ(got, 42);
}

TEST(TimedChannel, DrainDeliversBatchInProductionOrder) {
  TimedChannel<std::string> ch;
  ch.push(10, 7, "a");
  ch.push(5, 9, "b");  // earlier timestamp, later production: still second
  ch.push(10, 1, "c");
  EXPECT_EQ(ch.seal(), 5u);

  std::vector<std::string> got;
  std::vector<Cycles> whens;
  std::vector<std::uint64_t> keys;
  std::size_t batches = 0;
  ch.drain([&](TimedChannel<std::string>::Batch& b) {
    ++batches;
    for (auto& e : b) {
      whens.push_back(e.when);
      keys.push_back(e.key);
      got.push_back(std::move(e.item));
    }
  });
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(whens, (std::vector<Cycles>{10, 5, 10}));
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{7, 9, 1}));
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, MultipleSealedBatchesDrainOldestFirst) {
  // A producer may run up to kSlots windows ahead of the consumer; the
  // consumer must then see whole batches, oldest first, order preserved
  // within and across them.
  TimedChannel<int> ch;
  int next = 0;
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 3 + w; ++i) {
      ch.push(static_cast<Cycles>(100 * w + i), 0, next++);
    }
    EXPECT_EQ(ch.seal(), static_cast<Cycles>(100 * w));
  }
  EXPECT_EQ(ch.sealed_batches(), 4u);

  std::vector<std::size_t> batch_sizes;
  int expect = 0;
  ch.drain([&](TimedChannel<int>::Batch& b) {
    batch_sizes.push_back(b.size());
    for (const auto& e : b) EXPECT_EQ(e.item, expect++);
  });
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{3, 4, 5, 6}));
  EXPECT_EQ(expect, next);
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, MoveOnlyItemsSurviveSealAndDrain) {
  TimedChannel<std::unique_ptr<int>> ch;
  for (int i = 0; i < 16; ++i) {
    ch.push(static_cast<Cycles>(100 + i), static_cast<std::uint64_t>(i),
            std::make_unique<int>(i));
  }
  EXPECT_EQ(ch.seal(), 100u);
  int expect = 0;
  ch.drain([&](TimedChannel<std::unique_ptr<int>>::Batch& b) {
    for (auto& e : b) {
      ASSERT_NE(e.item, nullptr);
      EXPECT_EQ(*e.item, expect++);
    }
  });
  EXPECT_EQ(expect, 16);
}

TEST(TimedChannel, ConcurrentProducerConsumerKeepsOrder) {
  // The real PDES shape: the producer pushes and seals window batches while
  // the consumer concurrently drains, with nothing but the channel's own
  // seal/drain counters synchronizing the two threads. (Under TSan this is
  // the test that would catch a publication race.) The producer applies the
  // same backpressure the window barrier provides: it never runs more than
  // two sealed batches ahead.
  constexpr int kWindows = 500;
  constexpr int kPerWindow = 20;
  TimedChannel<int> ch;

  std::thread producer([&ch] {
    int next = 0;
    for (int w = 0; w < kWindows; ++w) {
      for (int i = 0; i < kPerWindow; ++i) {
        ch.push(static_cast<Cycles>(1000 + w), static_cast<std::uint64_t>(i),
                next++);
      }
      while (ch.sealed_batches() >= 2) std::this_thread::yield();
      ch.seal();
    }
  });

  std::vector<int> got;
  got.reserve(kWindows * kPerWindow);
  while (got.size() < static_cast<std::size_t>(kWindows * kPerWindow)) {
    ch.drain([&got](TimedChannel<int>::Batch& b) {
      for (const auto& e : b) got.push_back(e.item);
    });
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kWindows * kPerWindow));
  for (int i = 0; i < kWindows * kPerWindow; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, ReusableAcrossWindows) {
  // Window N produces and seals, window N+1 drains, repeat — open_min must
  // reset every window and the batch vectors must ping-pong (seal takes the
  // drained slot's capacity back), not regrow forever.
  TimedChannel<int> ch;
  for (int w = 0; w < 50; ++w) {
    for (int i = 0; i < 9; ++i) {
      ch.push(static_cast<Cycles>(w * 100 + i), 0, w * 100 + i);
    }
    EXPECT_EQ(ch.open_min(), static_cast<Cycles>(w * 100));
    EXPECT_EQ(ch.seal(), static_cast<Cycles>(w * 100));
    int expect = w * 100;
    ch.drain([&](TimedChannel<int>::Batch& b) {
      for (const auto& e : b) EXPECT_EQ(e.item, expect++);
    });
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.open_min(), kNever);
  }
}

TEST(TimedChannel, ClearDropsOpenAndSealed) {
  TimedChannel<int> ch;
  ch.push(10, 0, 1);
  ch.seal();
  ch.push(20, 0, 2);  // left open
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.open_min(), kNever);
  // Still usable after the wipe.
  ch.push(30, 0, 3);
  EXPECT_EQ(ch.seal(), 30u);
  int got = 0;
  ch.drain([&got](TimedChannel<int>::Batch& b) { got = b.at(0).item; });
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace svmsim::engine
