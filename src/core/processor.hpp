// One simulated processor.
//
// Timing model (augmint-style direct execution): application compute and
// cache hits accumulate on a *local* pending-cycle counter without touching
// the event queue; the processor synchronizes with global simulated time
// (drain()) only at misses, faults, messages and synchronization points.
//
// Interrupt handlers for incoming remote requests run on a victim processor
// (processor 0 of the node by default). Handler occupancy is "stolen" from
// the victim's application: it is injected into the app's timeline at its
// next drain, except where it overlapped a wait (a processor idling at a
// barrier services interrupts for free).
#pragma once

#include <array>
#include <functional>

#include "core/params.hpp"
#include "core/stats.hpp"
#include "engine/resource.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "memsys/memory_bus.hpp"
#include "memsys/memory_system.hpp"

namespace svmsim {

class Processor {
 public:
  Processor(engine::Simulator& sim, const SimConfig& cfg, ProcId global_id,
            int local_index, NodeId node, memsys::MemoryBus& membus,
            Breakdown& breakdown);

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  [[nodiscard]] ProcId id() const noexcept { return id_; }
  [[nodiscard]] int local_index() const noexcept { return local_index_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] engine::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] memsys::ProcMemory& mem() noexcept { return mem_; }
  [[nodiscard]] Breakdown& breakdown() noexcept { return *bd_; }

  /// The processor's local clock: global time plus unsynchronized work.
  [[nodiscard]] Cycles local_now() const noexcept {
    return sim_->now() + pending_;
  }

  /// Account `c` cycles of local work (accumulates; no event-queue traffic).
  void charge(TimeCat cat, Cycles c) {
    bd_->add(cat, c);
    pending_ += c;
    trace_time(cat, c);
  }

  /// Account cycles that already elapsed on the global clock (slow paths).
  void note(TimeCat cat, Cycles c) {
    bd_->add(cat, c);
    trace_time(cat, c);
  }

  /// Synchronize local time with the global clock, absorbing any handler
  /// time stolen by interrupts in the meantime.
  engine::Task<void> drain();

  /// Begin a timed wait: drains first, returns the wait start time.
  engine::Task<Cycles> wait_begin();

  /// End a timed wait started at `t0`: charge the elapsed time to `cat` and
  /// forgive handler steal that overlapped the wait.
  void wait_end(TimeCat cat, Cycles t0);

  /// Run an interrupt handler on this processor: pays interrupt issue +
  /// delivery cost, serializes with other handlers on this processor, and
  /// steals the elapsed time from the application.
  void service_interrupt(std::function<engine::Task<void>()> body);

  /// Run a handler found by polling: like service_interrupt but without
  /// the interrupt issue/delivery cost (only the poll-check charge).
  void service_polled(std::function<engine::Task<void>()> body);

  /// Total simulated time at which this processor finished its program.
  [[nodiscard]] Cycles finished_at() const noexcept { return finished_at_; }
  void mark_finished(Cycles t);

 private:
  engine::Task<void> interrupt_body(std::function<engine::Task<void>()> body,
                                    Cycles entry_cost);

  /// Tracing mirror of the Breakdown: every bucket increment accumulates
  /// here too (only while a tracer is attached) and is flushed as one
  /// kTimeSpan record per category at drain()/mark_finished(), so the
  /// per-processor per-category sums over a trace equal the Breakdown
  /// exactly. Two extra instructions on the hot charge() path when tracing
  /// is compiled in but off; nothing when compiled out.
  void trace_time(TimeCat cat, Cycles c) noexcept {
#ifndef SVMSIM_TRACE_DISABLED
    if (sim_->tracer() != nullptr) {
      trace_acc_[static_cast<std::size_t>(cat)] += c;
    }
#else
    (void)cat;
    (void)c;
#endif
  }
  void flush_trace_spans();

  engine::Simulator* sim_;
  const SimConfig* cfg_;
  ProcId id_;
  int local_index_;
  NodeId node_;
  Breakdown* bd_;
  memsys::ProcMemory mem_;

  Cycles pending_ = 0;  ///< local work not yet pushed to the global clock
  Cycles steal_ = 0;    ///< handler time to inject at the next drain
  engine::Resource handler_cpu_;  ///< serializes handlers on this processor
  Cycles finished_at_ = 0;
  std::array<Cycles, kTimeCats> trace_acc_{};  ///< unflushed span cycles
};

}  // namespace svmsim
