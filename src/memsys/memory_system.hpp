// Per-processor memory hierarchy: write-through L1 + write buffer +
// write-back L2, sharing the node's split-transaction memory bus.
//
// The fast path (hits, stores) is a plain function that only returns a cycle
// count: like augmint-style execution-driven simulators, hit latencies
// accumulate on the processor's local clock and never touch the event queue.
// Only L2 misses (and background writebacks/retirements) arbitrate for the
// bus on the global timeline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "memsys/cache.hpp"
#include "memsys/memory_bus.hpp"
#include "memsys/write_buffer.hpp"

namespace svmsim::memsys {

class ProcMemory {
 public:
  ProcMemory(engine::Simulator& sim, const ArchParams& arch, MemoryBus& bus);

  [[nodiscard]] std::uint32_t line_bytes() const noexcept {
    return l1_.line_bytes();
  }

  /// A load of one cache line, fast path. Returns the hit latency, or
  /// nullopt if the line misses to memory (call `read_line_slow`).
  /// `now` is the processor's current local time.
  [[nodiscard]] std::optional<Cycles> read_line_fast(std::uint64_t line_addr,
                                                     Cycles now);

  /// A load that missed: fetch the line over the memory bus. Simulated time
  /// advances; returns the cycles the processor stalled.
  engine::Task<Cycles> read_line_slow(std::uint64_t line_addr);

  /// A store to one line: write-through L1 + write buffer. Always completes
  /// locally; returns {issue cycles, write-buffer-full stall cycles}.
  struct StoreCost {
    Cycles issue;
    Cycles wb_stall;
  };
  StoreCost write_line(std::uint64_t line_addr, Cycles now);

  /// Page replaced or invalidated by the SVM layer: drop stale lines.
  void invalidate_range(std::uint64_t start, std::uint64_t len);

  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }
  [[nodiscard]] const WriteBuffer& wb() const noexcept { return wb_; }

 private:
  /// Account a retired write-buffer entry: L2 write-allocate; misses and
  /// dirty evictions produce background bus traffic.
  void absorb_retired(const std::vector<std::uint64_t>& retired);
  void background_fill(std::uint64_t line_addr, BusMaster master);

  engine::Simulator* sim_;
  const ArchParams* arch_;
  MemoryBus* bus_;
  Cache l1_;
  Cache l2_;
  WriteBuffer wb_;
  std::vector<std::uint64_t> retired_scratch_;
};

}  // namespace svmsim::memsys
