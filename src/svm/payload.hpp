// Typed, pooled message payloads.
//
// net::Message used to carry its body in a std::any, which meant one heap
// allocation per send plus RTTI-based casts per receive. The protocol layer
// only ever ships three body shapes — a vector clock, a byte buffer (page
// data / AURC update runs), and a batch of page diffs — so the body is now a
// closed variant of pool references (core/pool.hpp). Building a message
// acquires a recycled body from the owning Machine's ProtocolPools, and the
// last reference (usually the receive handler finishing) sends it back.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <variant>
#include <vector>

#include "core/pool.hpp"
#include "svm/diff.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

/// A pooled vector clock (lock grants, token returns, barrier traffic).
struct VClockBody {
  VClock vc;
  void recycle() noexcept {}  // overwritten by assignment on next use
};

/// A pooled batch of page diffs flushed to one home node. The `diffs`
/// vector only ever grows; `used` marks the live prefix so recycled batches
/// reuse both the vector and each PageDiff's run/data capacity.
struct DiffBatchBody {
  std::vector<PageDiff> diffs;
  std::size_t used = 0;

  /// Next writable diff slot (cleared, capacity intact).
  [[nodiscard]] PageDiff& next() {
    if (used == diffs.size()) diffs.emplace_back();
    PageDiff& d = diffs[used++];
    d.clear();
    return d;
  }
  /// Drop the most recently handed-out slot (e.g. the diff came up empty).
  void pop_last() noexcept {
    assert(used > 0);
    --used;
  }

  [[nodiscard]] std::span<const PageDiff> view() const noexcept {
    return {diffs.data(), used};
  }
  [[nodiscard]] bool empty() const noexcept { return used == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return used; }

  void recycle() noexcept {
    for (std::size_t i = 0; i < used; ++i) diffs[i].clear();
    used = 0;
  }
};

/// A pooled sparse clock delta (docs/scaling.md): the (node, value) entries
/// by which a message's clock differs from a reference clock the receiver
/// already holds — the per-edge cache for clock-bearing requests, or the
/// answered request's clock for replies. Values are absolute interval
/// indices, not increments, so expansion replays them with set/merge and the
/// receiver-side cache mirrors the sender's exactly. The delta is a host-side
/// representation only: `payload_bytes` is still sized from the full-clock
/// wire encoding. `shadow` is the expected post-expansion clock, captured
/// only in checked runs; expansion cross-checks against it.
struct VClockDeltaBody {
  struct Entry {
    NodeId node;
    std::uint32_t value;
  };
  std::vector<Entry> entries;
  VClock shadow;  ///< checked runs only; size() == 0 otherwise

  void recycle() noexcept {
    entries.clear();          // keep capacity
    shadow = VClock();
  }
};

using VClockRef = core::PoolRef<VClockBody>;
using BytesRef = core::PoolRef<core::PooledBytes>;
using DiffBatchRef = core::PoolRef<DiffBatchBody>;
using VClockDeltaRef = core::PoolRef<VClockDeltaBody>;

/// The closed set of protocol message bodies.
using Payload = std::variant<std::monostate, VClockRef, BytesRef, DiffBatchRef,
                             VClockDeltaRef>;

[[nodiscard]] inline const VClock& vclock_body(const Payload& p) {
  return std::get<VClockRef>(p)->vc;
}
[[nodiscard]] inline const std::vector<std::byte>& bytes_body(
    const Payload& p) {
  return std::get<BytesRef>(p)->bytes;
}
[[nodiscard]] inline const DiffBatchBody& diff_batch_body(const Payload& p) {
  return *std::get<DiffBatchRef>(p);
}
[[nodiscard]] inline const VClockDeltaBody& vclock_delta_body(
    const Payload& p) {
  return *std::get<VClockDeltaRef>(p);
}

}  // namespace svmsim::svm
