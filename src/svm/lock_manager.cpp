#include "svm/lock_manager.hpp"

// State-only component; the protocol logic lives in the agents (hlrc.cpp).
namespace svmsim::svm {}
