// Paper §10 ("Discussion and Future Work"): "Multiple network interfaces
// per node is another approach that can increase the available bandwidth."
// Sweep NI count at the achievable I/O bandwidth and at a starved one.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  for (double bw : {0.5, 0.125}) {
    std::vector<harness::SweepPoint> points;
    for (const auto& app : opt.app_names) {
      for (int nics : {1, 2, 4}) {
        SimConfig cfg = bench::base_config();
        cfg.comm.io_bus_mb_per_mhz = bw;
        cfg.comm.nics_per_node = nics;
        points.push_back({app, cfg, static_cast<double>(nics)});
      }
    }
    auto runs = sweep.run_points(points, opt.pool());

    harness::Table t({"application", "1 NI", "2 NIs", "4 NIs"});
    for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
      std::vector<std::string> row{opt.app_names[i]};
      for (std::size_t c = 0; c < 3; ++c) {
        row.push_back(harness::fmt(runs[i * 3 + c].speedup()));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      t.add_row(std::move(row));
    }
    std::fprintf(stderr, "\n");
    std::printf("== Extra (paper 10): NIs per node at %.3f MB/MHz ==\n", bw);
    t.print();
    harness::maybe_write_csv(t, opt.csv_dir,
                             bw == 0.5 ? "extra_multi_nic_ach"
                                       : "extra_multi_nic_low");
  }
  return 0;
}
