// Figure 11: relation between the slowdown due to interrupt cost and the
// number of page fetches plus remote lock acquires (both normalized).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  auto sweeps = bench::run_figure(
      "fig11_sweep", "intr", {0, 5000},
      [](SimConfig& c, double v) {
        c.comm.interrupt_cost = static_cast<Cycles>(v);
      },
      opt, sweep);
  bench::print_relation(
      "fig11", "interrupt-cost slowdown", "fetches+remote-locks/proc/Mcycle",
      sweeps,
      [](const harness::AppRun& r) {
        const auto& c = r.result.stats.counters();
        return r.result.per_proc_per_mcycles(c.page_fetches +
                                             c.remote_lock_acquires);
      },
      opt);
  return 0;
}
