// Software diffs (HLRC): word-granularity comparison of a dirty page against
// its twin, producing runs of modified bytes that the home merges. Diffs
// carry real data, so protocol correctness is testable end to end.
//
// Storage is flat: one byte vector per PageDiff holds the data of all runs
// back to back, and each DiffRun is a (page offset, length, data offset)
// triple into it. A recycled PageDiff (see core/pool.hpp) therefore reuses
// exactly two growable buffers no matter how fragmented the write pattern
// was, where the old vector<DiffRun{vector<byte>}> layout allocated per run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "engine/types.hpp"

namespace svmsim::svm {

using PageId = std::uint64_t;

inline constexpr std::uint32_t kDiffWordBytes = 4;

struct DiffRun {
  std::uint32_t offset = 0;    ///< byte offset within the page
  std::uint32_t len = 0;       ///< run length in bytes
  std::uint32_t data_off = 0;  ///< offset of the run's bytes in PageDiff::data
};

struct PageDiff {
  PageId page = 0;
  std::vector<DiffRun> runs;
  std::vector<std::byte> data;  ///< concatenated bytes of all runs

  [[nodiscard]] std::uint64_t modified_bytes() const noexcept {
    return data.size();
  }
  /// Size on the wire: 16-byte page header + 8-byte run headers + data.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return 16 + 8 * runs.size() + data.size();
  }
  [[nodiscard]] bool empty() const noexcept { return runs.empty(); }

  [[nodiscard]] std::span<const std::byte> bytes_of(
      const DiffRun& r) const noexcept {
    return {data.data() + r.data_off, r.len};
  }

  void clear() noexcept {  // keeps capacity
    page = 0;
    runs.clear();
    data.clear();
  }
};

/// Compare `current` against `twin` (same length, multiple of the word size)
/// and collect the modified runs into `out` (cleared first, capacity kept).
void compute_diff(PageId page, std::span<const std::byte> current,
                  std::span<const std::byte> twin, PageDiff& out);

/// Convenience overload for tests and cold paths.
[[nodiscard]] inline PageDiff compute_diff(PageId page,
                                           std::span<const std::byte> current,
                                           std::span<const std::byte> twin) {
  PageDiff d;
  compute_diff(page, current, twin, d);
  return d;
}

/// Merge a diff into `target` (the home copy).
void apply_diff(std::span<std::byte> target, const PageDiff& diff);

/// Handler cost of creating *or* applying a diff (paper §2): a fixed cost
/// per word compared plus an extra cost per word actually included.
[[nodiscard]] Cycles diff_cycles(const ArchParams& arch,
                                 std::uint64_t words_compared,
                                 std::uint64_t words_included);

/// Cost of creating this diff over a `page_bytes` page.
[[nodiscard]] Cycles diff_create_cycles(const ArchParams& arch,
                                        const PageDiff& diff,
                                        std::uint32_t page_bytes);

/// Cost of applying this diff at the home (only included words touched).
[[nodiscard]] Cycles diff_apply_cycles(const ArchParams& arch,
                                       const PageDiff& diff);

}  // namespace svmsim::svm
