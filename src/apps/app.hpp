// Application-facing shared-memory API and the Application base class.
//
// Shm is the per-processor view of the shared virtual address space; every
// access goes through the node's SVM protocol agent, so application kernels
// read and write *real data* with full protocol and timing behaviour.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/runner.hpp"
#include "engine/task.hpp"
#include "svm/address_space.hpp"

namespace svmsim::apps {

using svm::Distribution;
using svm::GlobalAddr;

class Shm {
 public:
  Shm(Machine& m, ProcId pid)
      : machine_(&m),
        proc_(&m.proc(pid)),
        agent_(&m.agent_of(pid)),
        pid_(pid),
        nprocs_(m.total_procs()) {}

  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] Processor& proc() noexcept { return *proc_; }

  /// Model `c` cycles of private computation (private-data accesses
  /// included, as in the paper's compute time).
  void compute(Cycles c) { proc_->charge(TimeCat::kCompute, c); }

  template <typename T>
  engine::Task<T> read(GlobalAddr a) {
    T v{};
    co_await agent_->read(*proc_, a, &v, sizeof(T));
    co_return v;
  }

  template <typename T>
  engine::Task<void> write(GlobalAddr a, T v) {
    co_await agent_->write(*proc_, a, &v, sizeof(T));
  }

  engine::Task<void> read_block(GlobalAddr a, void* dst,
                                std::uint64_t bytes) {
    return agent_->read(*proc_, a, dst, bytes);
  }
  engine::Task<void> write_block(GlobalAddr a, const void* src,
                                 std::uint64_t bytes) {
    return agent_->write(*proc_, a, src, bytes);
  }

  /// Lock ids must be in [0, Machine::kMaxLocks). Larger ids are rejected in
  /// debug builds; release builds take them modulo the cap, which stays
  /// *coherent* (two ids mapping to the same lock alias one mutex — stricter
  /// than intended, never unsafe) but can serialize unrelated critical
  /// sections. See tests/test_check.cpp:LockAliasing.
  engine::Task<void> lock(int id) {
    assert(id >= 0 && id < Machine::kMaxLocks &&
           "lock id out of range (would alias modulo Machine::kMaxLocks)");
    return agent_->acquire_lock(*proc_, id % Machine::kMaxLocks);
  }
  engine::Task<void> unlock(int id) {
    assert(id >= 0 && id < Machine::kMaxLocks &&
           "lock id out of range (would alias modulo Machine::kMaxLocks)");
    return agent_->release_lock(*proc_, id % Machine::kMaxLocks);
  }
  engine::Task<void> barrier() { return agent_->barrier(*proc_); }

 private:
  Machine* machine_;
  Processor* proc_;
  svm::SvmAgent* agent_;
  int pid_;
  int nprocs_;
};

/// A typed window over a shared allocation.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(GlobalAddr base, std::uint64_t count)
      : base_(base), count_(count) {}

  /// Allocate `count` elements with distribution `d` in machine `m`.
  static SharedArray alloc(Machine& m, std::uint64_t count, Distribution d) {
    return SharedArray(m.alloc(count * sizeof(T), d), count);
  }

  [[nodiscard]] GlobalAddr addr(std::uint64_t i = 0) const {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }

  engine::Task<T> get(Shm& shm, std::uint64_t i) const {
    return shm.read<T>(addr(i));
  }
  engine::Task<void> put(Shm& shm, std::uint64_t i, T v) const {
    return shm.write<T>(addr(i), v);
  }
  engine::Task<void> get_block(Shm& shm, std::uint64_t i, T* dst,
                               std::uint64_t n) const {
    return shm.read_block(addr(i), dst, n * sizeof(T));
  }
  engine::Task<void> put_block(Shm& shm, std::uint64_t i, const T* src,
                               std::uint64_t n) const {
    return shm.write_block(addr(i), src, n * sizeof(T));
  }

  // Untimed init/validation access.
  void debug_put(Machine& m, std::uint64_t i, const T& v) const {
    m.debug_write(addr(i), &v, sizeof(T));
  }
  [[nodiscard]] T debug_get(Machine& m, std::uint64_t i) const {
    T v{};
    m.debug_read(addr(i), &v, sizeof(T));
    return v;
  }

 private:
  GlobalAddr base_ = 0;
  std::uint64_t count_ = 0;
};

/// Problem-size scaling for the suite: kTiny for unit tests, kSmall for the
/// default bench runs, kLarge for closer-to-paper inputs.
enum class Scale { kTiny, kSmall, kLarge };

[[nodiscard]] std::string to_string(Scale s);

class Application : public Workload {
 public:
  explicit Application(Scale scale) : scale_(scale) {}
  [[nodiscard]] Scale scale() const noexcept { return scale_; }

 protected:
  Scale scale_;
};

/// Deterministic 64-bit RNG (splitmix64) for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }

 private:
  std::uint64_t s_;
};

}  // namespace svmsim::apps
