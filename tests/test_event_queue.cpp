#include "engine/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/ring_queue.hpp"

namespace svmsim::engine {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycles fired_at = 0;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { fired_at = q.now(); });
  });
  q.run_until_idle();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(10, chain);
  };
  q.schedule_in(10, chain);
  q.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(q.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilInclusiveOfDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(50, [&] { ++fired; });
  EXPECT_TRUE(q.run_until(50));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CountsFiredEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(static_cast<Cycles>(i), [] {});
  q.run_until_idle();
  EXPECT_EQ(q.events_fired(), 7u);
}

TEST(EventQueue, ZeroDelayEventRunsAfterCurrentEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] {
    order.push_back(1);
    q.schedule_in(0, [&] { order.push_back(2); });
    order.push_back(3);
  });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, ScheduleNowMatchesScheduleInZero) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] {
    q.schedule_in(0, [&] { order.push_back(1); });
    q.schedule_now([&] { order.push_back(2); });
    q.schedule_at(10, [&] { order.push_back(3); });
  });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10u);
}

// Regression: while step() is mid-fire at tick T, a mix of already-queued
// time-T events and same-tick inserts made *during* the in-flight event must
// still fire in global insertion order — the same-tick fast lane may not
// jump ahead of previously queued work, and pre-queued events may not
// starve the new inserts.
TEST(EventQueue, SameTickInsertionOrderDuringInFlightStep) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(7, [&] {
    order.push_back(0);
    q.schedule_in(0, [&] { order.push_back(3); });
    q.schedule_at(7, [&] {
      order.push_back(4);
      q.schedule_now([&] { order.push_back(6); });
    });
  });
  q.schedule_at(7, [&] { order.push_back(1); });
  q.schedule_at(7, [&] {
    order.push_back(2);
    q.schedule_now([&] { order.push_back(5); });
  });
  q.schedule_at(9, [&] { order.push_back(7); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(q.events_fired(), 8u);
}

// ------------------------------------------------------- next_send_bound
// The adaptive-window query (docs/engine.md §5): a conservative lower bound
// on the earliest time an event fired from this queue could launch a
// cross-partition send. Both backends must agree on the contract.

template <typename Scheduler>
void expect_next_send_bound_contract() {
  {
    // Empty queue: provably nothing can send, whatever the floor.
    Scheduler q;
    EXPECT_EQ(q.next_send_bound(0), kNever);
    EXPECT_EQ(q.next_send_bound(1084), kNever);
  }
  {
    // Head-of-queue + floor for (time, seq) events.
    Scheduler q;
    q.schedule_at(500, [] {});
    q.schedule_at(900, [] {});
    EXPECT_EQ(q.next_send_bound(0), 500u);
    EXPECT_EQ(q.next_send_bound(84), 584u);
  }
  {
    // A queue whose only occupancy is the wire band must still count: a
    // drained cross-partition delivery is an event that can trigger a send.
    Scheduler q;
    q.schedule_wire(300, 7, [] {});
    EXPECT_EQ(q.next_send_bound(0), 300u);
    EXPECT_EQ(q.next_send_bound(50), 350u);
  }
  {
    // The bound saturates at kNever instead of wrapping.
    Scheduler q;
    q.schedule_at(kNever - 10, [] {});
    EXPECT_EQ(q.next_send_bound(0), kNever - 10);
    EXPECT_EQ(q.next_send_bound(100), kNever);
  }
}

TEST(WireBatch, TieredSchedulerNextSendBound) {
  expect_next_send_bound_contract<detail::TieredScheduler>();
}

TEST(WireBatch, HeapSchedulerNextSendBound) {
  expect_next_send_bound_contract<detail::HeapScheduler>();
}

// ---------------------------------------------------- schedule_wire_batch
// The PDES drain path: a whole TimedChannel batch splices into the wire
// band in one call and the final firing order is still (when, key) merged
// with whatever the band already held — batching changes the transport,
// never the delivery order.

template <typename Scheduler>
void expect_wire_batch_splice_order() {
  Scheduler q;
  std::vector<std::string> order;
  auto tag = [&order](const char* s) {
    return [&order, s] { order.push_back(s); };
  };

  // Pre-existing band and seq events the batch must interleave with.
  q.schedule_wire(10, 22, tag("wire-22"));
  q.schedule_wire(12, 1, tag("late-1"));
  q.schedule_at(10, tag("seq"));

  TimedChannel<typename Scheduler::Action> ch;
  ch.push(10, 28, tag("wire-28"));
  ch.push(7, 99, tag("early-99"));
  ch.push(10, 15, tag("wire-15"));
  ch.seal();
  ch.drain([&q](typename TimedChannel<typename Scheduler::Action>::Batch& b) {
    q.schedule_wire_batch(b);
  });

  q.run_until_idle();
  EXPECT_EQ(order,
            (std::vector<std::string>{"early-99", "wire-15", "wire-22",
                                      "wire-28", "seq", "late-1"}));
  EXPECT_EQ(q.events_fired(), 6u);
}

TEST(WireBatch, TieredSchedulerSplicesBatchByWhenAndKey) {
  expect_wire_batch_splice_order<detail::TieredScheduler>();
}

TEST(WireBatch, HeapSchedulerSplicesBatchByWhenAndKey) {
  expect_wire_batch_splice_order<detail::HeapScheduler>();
}

TEST(WireBatch, EmptyBatchIsANoOp) {
  EventQueue q;
  std::vector<TimedChannel<EventQueue::Action>::Entry> batch;
  q.schedule_wire_batch(batch);
  EXPECT_TRUE(q.empty());
}

#ifndef NDEBUG
TEST(EventQueueDeathTest, SchedulingInThePastAsserts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.schedule_at(10, [&] { q.schedule_at(5, [] {}); });
        q.run_until_idle();
      },
      "cannot schedule an event in the past");
}
#endif

}  // namespace
}  // namespace svmsim::engine
