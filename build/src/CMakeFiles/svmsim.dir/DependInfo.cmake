
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/CMakeFiles/svmsim.dir/apps/app.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/app.cpp.o.d"
  "/root/repo/src/apps/barnes.cpp" "src/CMakeFiles/svmsim.dir/apps/barnes.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/barnes.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/CMakeFiles/svmsim.dir/apps/fft.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/fft.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/svmsim.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/ocean.cpp" "src/CMakeFiles/svmsim.dir/apps/ocean.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/ocean.cpp.o.d"
  "/root/repo/src/apps/radix.cpp" "src/CMakeFiles/svmsim.dir/apps/radix.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/radix.cpp.o.d"
  "/root/repo/src/apps/raytrace.cpp" "src/CMakeFiles/svmsim.dir/apps/raytrace.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/raytrace.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/CMakeFiles/svmsim.dir/apps/registry.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/registry.cpp.o.d"
  "/root/repo/src/apps/volrend.cpp" "src/CMakeFiles/svmsim.dir/apps/volrend.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/volrend.cpp.o.d"
  "/root/repo/src/apps/water_nsquared.cpp" "src/CMakeFiles/svmsim.dir/apps/water_nsquared.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/water_nsquared.cpp.o.d"
  "/root/repo/src/apps/water_spatial.cpp" "src/CMakeFiles/svmsim.dir/apps/water_spatial.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/apps/water_spatial.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/svmsim.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/svmsim.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/node.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/svmsim.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/params.cpp.o.d"
  "/root/repo/src/core/processor.cpp" "src/CMakeFiles/svmsim.dir/core/processor.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/processor.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/svmsim.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/svmsim.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/core/stats.cpp.o.d"
  "/root/repo/src/engine/event_queue.cpp" "src/CMakeFiles/svmsim.dir/engine/event_queue.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/engine/event_queue.cpp.o.d"
  "/root/repo/src/engine/resource.cpp" "src/CMakeFiles/svmsim.dir/engine/resource.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/engine/resource.cpp.o.d"
  "/root/repo/src/engine/simulator.cpp" "src/CMakeFiles/svmsim.dir/engine/simulator.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/engine/simulator.cpp.o.d"
  "/root/repo/src/harness/cli.cpp" "src/CMakeFiles/svmsim.dir/harness/cli.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/harness/cli.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/svmsim.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/CMakeFiles/svmsim.dir/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/harness/sweep.cpp.o.d"
  "/root/repo/src/memsys/cache.cpp" "src/CMakeFiles/svmsim.dir/memsys/cache.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/memsys/cache.cpp.o.d"
  "/root/repo/src/memsys/memory_bus.cpp" "src/CMakeFiles/svmsim.dir/memsys/memory_bus.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/memsys/memory_bus.cpp.o.d"
  "/root/repo/src/memsys/memory_system.cpp" "src/CMakeFiles/svmsim.dir/memsys/memory_system.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/memsys/memory_system.cpp.o.d"
  "/root/repo/src/memsys/write_buffer.cpp" "src/CMakeFiles/svmsim.dir/memsys/write_buffer.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/memsys/write_buffer.cpp.o.d"
  "/root/repo/src/net/io_bus.cpp" "src/CMakeFiles/svmsim.dir/net/io_bus.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/net/io_bus.cpp.o.d"
  "/root/repo/src/net/messaging.cpp" "src/CMakeFiles/svmsim.dir/net/messaging.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/net/messaging.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/svmsim.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/net/network.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/CMakeFiles/svmsim.dir/net/nic.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/net/nic.cpp.o.d"
  "/root/repo/src/svm/address_space.cpp" "src/CMakeFiles/svmsim.dir/svm/address_space.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/address_space.cpp.o.d"
  "/root/repo/src/svm/aurc.cpp" "src/CMakeFiles/svmsim.dir/svm/aurc.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/aurc.cpp.o.d"
  "/root/repo/src/svm/barrier_manager.cpp" "src/CMakeFiles/svmsim.dir/svm/barrier_manager.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/barrier_manager.cpp.o.d"
  "/root/repo/src/svm/diff.cpp" "src/CMakeFiles/svmsim.dir/svm/diff.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/diff.cpp.o.d"
  "/root/repo/src/svm/hlrc.cpp" "src/CMakeFiles/svmsim.dir/svm/hlrc.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/hlrc.cpp.o.d"
  "/root/repo/src/svm/lock_manager.cpp" "src/CMakeFiles/svmsim.dir/svm/lock_manager.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/lock_manager.cpp.o.d"
  "/root/repo/src/svm/page_directory.cpp" "src/CMakeFiles/svmsim.dir/svm/page_directory.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/page_directory.cpp.o.d"
  "/root/repo/src/svm/vclock.cpp" "src/CMakeFiles/svmsim.dir/svm/vclock.cpp.o" "gcc" "src/CMakeFiles/svmsim.dir/svm/vclock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
