// k-ary fat tree (three tiers, nearest-common-ancestor routing).
//
// Standard k-ary fat-tree shape: k pods, each with k/2 edge and k/2
// aggregation switches; (k/2)^2 core switches; capacity k^3/4 hosts.
// Partial trees (fewer hosts than capacity) are allowed — the bench's
// 64-node machine runs on a fattree:8 whose capacity is 128.
//
// Routing is up*-down* through the nearest common ancestor, with the
// equal-cost choice (which aggregation switch, which core switch) made by a
// pure function of the destination address — the classic destination-based
// ECMP spread, and exactly what route()'s determinism contract requires.
//
// Every edge of the physical tree is two directed Links (up and down
// contend independently, as on real full-duplex ports). Host<->edge links
// are the intra-node class; everything above is inter-node.
#pragma once

#include <vector>

#include "topo/topology.hpp"

namespace svmsim::topo {

class FatTree final : public Topology {
 public:
  /// Throws std::invalid_argument when nodes > k^3/4.
  FatTree(const ArchParams& arch, int nodes, int k,
          const SimOfNode& sim_of_node);

  [[nodiscard]] const char* name() const noexcept override {
    return "fattree";
  }
  void route(NodeId src, NodeId dst, RouteBuf& out) const noexcept override;

 private:
  int nodes_;
  int k_;
  int half_;       ///< k/2: up-ports per switch, hosts per edge switch
  int pod_hosts_;  ///< (k/2)^2: hosts per pod

  // Link-id tables, indexed by the tree coordinates. All full-capacity
  // slots exist (partial trees simply never route through the empty pods);
  // owners of links past the populated hosts are clamped modulo nodes_.
  std::vector<LinkId> host_up_;    // [host]            host -> edge
  std::vector<LinkId> host_down_;  // [host]            edge -> host
  std::vector<LinkId> edge_up_;    // [(pod*half+e)*half+a]  edge -> aggr
  std::vector<LinkId> aggr_down_;  // [(pod*half+a)*half+e]  aggr -> edge
  std::vector<LinkId> aggr_up_;    // [(pod*half+a)*half+ci] aggr -> core
  std::vector<LinkId> core_down_;  // [core*k + pod]         core -> aggr
};

}  // namespace svmsim::topo
