// Software diffs (HLRC): word-granularity comparison of a dirty page against
// its twin, producing runs of modified bytes that the home merges. Diffs
// carry real data, so protocol correctness is testable end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "engine/types.hpp"

namespace svmsim::svm {

using PageId = std::uint64_t;

inline constexpr std::uint32_t kDiffWordBytes = 4;

struct DiffRun {
  std::uint32_t offset = 0;  ///< byte offset within the page
  std::vector<std::byte> bytes;
};

struct PageDiff {
  PageId page = 0;
  std::vector<DiffRun> runs;

  [[nodiscard]] std::uint64_t modified_bytes() const;
  /// Size on the wire: 16-byte page header + 8-byte run headers + data.
  [[nodiscard]] std::uint64_t wire_bytes() const;
  [[nodiscard]] bool empty() const noexcept { return runs.empty(); }
};

/// Compare `current` against `twin` (same length, multiple of the word size)
/// and collect the modified runs.
[[nodiscard]] PageDiff compute_diff(PageId page,
                                    std::span<const std::byte> current,
                                    std::span<const std::byte> twin);

/// Merge a diff into `target` (the home copy).
void apply_diff(std::span<std::byte> target, const PageDiff& diff);

/// Handler cost of creating *or* applying a diff (paper §2): a fixed cost
/// per word compared plus an extra cost per word actually included.
[[nodiscard]] Cycles diff_cycles(const ArchParams& arch,
                                 std::uint64_t words_compared,
                                 std::uint64_t words_included);

/// Cost of creating this diff over a `page_bytes` page.
[[nodiscard]] Cycles diff_create_cycles(const ArchParams& arch,
                                        const PageDiff& diff,
                                        std::uint32_t page_bytes);

/// Cost of applying this diff at the home (only included words touched).
[[nodiscard]] Cycles diff_apply_cycles(const ArchParams& arch,
                                       const PageDiff& diff);

}  // namespace svmsim::svm
