// Application-suite validation matrix: every application must compute the
// right answer through the full protocol stack, across protocols, cluster
// shapes and page sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

TEST(Registry, SuiteHasTenApplicationsInPaperOrder) {
  const auto& s = apps::suite();
  ASSERT_EQ(s.size(), 10u);
  EXPECT_EQ(s.front(), "fft");
  EXPECT_EQ(s.back(), "barnes-space");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(apps::make_app("nosuch", apps::Scale::kTiny),
               std::invalid_argument);
}

TEST(Registry, RegularIrregularGrouping) {
  EXPECT_TRUE(apps::is_regular("fft"));
  EXPECT_TRUE(apps::is_regular("lu"));
  EXPECT_TRUE(apps::is_regular("ocean"));
  EXPECT_FALSE(apps::is_regular("radix"));
  EXPECT_FALSE(apps::is_regular("barnes"));
}

using AppCase = std::tuple<std::string, Protocol, int /*total*/, int /*ppn*/>;

class AppMatrix : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppMatrix, ValidatesAtTinyScale) {
  auto [name, proto, total, ppn] = GetParam();
  SimConfig cfg = config_with(total, ppn, proto);
  auto app = apps::make_app(name, apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  EXPECT_TRUE(r.validated) << name;
  EXPECT_GT(r.time, 0u);
}

std::vector<AppCase> app_cases() {
  std::vector<AppCase> cases;
  for (const auto& name : apps::suite()) {
    cases.emplace_back(name, Protocol::kHLRC, 16, 4);
    cases.emplace_back(name, Protocol::kHLRC, 16, 1);
    cases.emplace_back(name, Protocol::kHLRC, 8, 8);
    cases.emplace_back(name, Protocol::kAURC, 16, 4);
  }
  return cases;
}

std::string app_case_name(const ::testing::TestParamInfo<AppCase>& info) {
  std::string n = std::get<0>(info.param);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_" + to_string(std::get<1>(info.param)) + "_" +
         std::to_string(std::get<2>(info.param)) + "p" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Suite, AppMatrix, ::testing::ValuesIn(app_cases()),
                         app_case_name);

using PageCase = std::tuple<std::string, int /*page KB*/>;

class PageSizeMatrix : public ::testing::TestWithParam<PageCase> {};

TEST_P(PageSizeMatrix, ValidatesAcrossPageSizes) {
  auto [name, page_kb] = GetParam();
  SimConfig cfg = config_with(16, 4);
  cfg.comm.page_bytes = static_cast<std::uint32_t>(page_kb) * 1024;
  auto app = apps::make_app(name, apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  EXPECT_TRUE(r.validated) << name << " @" << page_kb << "K";
}

std::string page_case_name(const ::testing::TestParamInfo<PageCase>& info) {
  std::string n = std::get<0>(info.param);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_" + std::to_string(std::get<1>(info.param)) + "K";
}

INSTANTIATE_TEST_SUITE_P(
    Pages, PageSizeMatrix,
    ::testing::Combine(::testing::Values(std::string("fft"),
                                         std::string("radix"),
                                         std::string("water-nsq"),
                                         std::string("barnes")),
                       ::testing::Values(1, 2, 8, 16)),
    page_case_name);

TEST(AppBehaviour, RegularAppsAreSingleWriter) {
  // The paper's defining property of FFT/LU/Ocean: with proper data
  // placement writes are (almost) all local to the home, so HLRC computes
  // no diffs for FFT/LU and only a handful of boundary-page diffs for
  // Ocean. Needs kSmall so rows/blocks align with pages.
  for (const auto& name : {"fft", "lu"}) {
    SimConfig cfg = config_with(16, 4);
    auto app = apps::make_app(name, apps::Scale::kSmall);
    auto r = svmsim::run(*app, cfg);
    ASSERT_TRUE(r.validated) << name;
    EXPECT_EQ(r.stats.counters().diffs_created, 0u) << name;
  }
  SimConfig cfg = config_with(16, 4);
  auto ocean = apps::make_app("ocean", apps::Scale::kSmall);
  auto r = svmsim::run(*ocean, cfg);
  ASSERT_TRUE(r.validated);
  // A few row-straddling pages diff each sweep; nothing like the irregular
  // applications' volumes.
  EXPECT_LT(r.stats.counters().diff_bytes, r.stats.counters().bytes_sent / 4);
}

TEST(AppBehaviour, IrregularAppsCreateDiffs) {
  for (const auto& name : {"water-nsq", "barnes", "radix"}) {
    SimConfig cfg = config_with(16, 4);
    auto app = apps::make_app(name, apps::Scale::kTiny);
    auto r = svmsim::run(*app, cfg);
    ASSERT_TRUE(r.validated) << name;
    EXPECT_GT(r.stats.counters().diffs_created, 0u) << name;
  }
}

TEST(AppBehaviour, BarnesRebuildLocksFarMoreThanSpace) {
  SimConfig cfg = config_with(16, 4);
  auto rebuild = apps::make_app("barnes", apps::Scale::kTiny);
  auto space = apps::make_app("barnes-space", apps::Scale::kTiny);
  auto rr = svmsim::run(*rebuild, cfg);
  auto rs = svmsim::run(*space, cfg);
  ASSERT_TRUE(rr.validated);
  ASSERT_TRUE(rs.validated);
  const auto locks_rebuild = rr.stats.counters().local_lock_acquires +
                             rr.stats.counters().remote_lock_acquires;
  const auto locks_space = rs.stats.counters().local_lock_acquires +
                           rs.stats.counters().remote_lock_acquires;
  EXPECT_GT(locks_rebuild, 10 * (locks_space + 1));
}

TEST(AppBehaviour, TaskStealingAppsUseLocks) {
  for (const auto& name : {"raytrace", "volrend"}) {
    SimConfig cfg = config_with(16, 4);
    auto app = apps::make_app(name, apps::Scale::kTiny);
    auto r = svmsim::run(*app, cfg);
    ASSERT_TRUE(r.validated) << name;
    EXPECT_GT(r.stats.counters().local_lock_acquires +
                  r.stats.counters().remote_lock_acquires,
              16u)
        << name;
  }
}

TEST(AppBehaviour, UniprocessorRunsHaveNoCommunication) {
  for (const auto& name : apps::suite()) {
    SimConfig cfg = config_with(1, 1);
    auto app = apps::make_app(name, apps::Scale::kTiny);
    auto r = svmsim::run(*app, cfg);
    ASSERT_TRUE(r.validated) << name;
    EXPECT_EQ(r.stats.counters().messages_sent, 0u) << name;
    EXPECT_EQ(r.stats.counters().page_fetches, 0u) << name;
    EXPECT_EQ(r.stats.counters().interrupts, 0u) << name;
  }
}

}  // namespace
}  // namespace svmsim::test
