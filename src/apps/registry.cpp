#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/factories.hpp"

namespace svmsim::apps {

const std::vector<std::string>& suite() {
  static const std::vector<std::string> kSuite = {
      "fft",   "lu",       "ocean",   "water-nsq", "water-sp",
      "radix", "raytrace", "volrend", "barnes",    "barnes-space",
  };
  return kSuite;
}

bool is_regular(const std::string& name) {
  return name == "fft" || name == "lu" || name == "ocean";
}

std::unique_ptr<Application> make_app(const std::string& name, Scale scale) {
  if (name == "fft") return make_fft(scale);
  if (name == "lu") return make_lu(scale);
  if (name == "ocean") return make_ocean(scale);
  if (name == "radix") return make_radix(scale);
  if (name == "water-nsq") return make_water_nsquared(scale);
  if (name == "water-sp") return make_water_spatial(scale);
  if (name == "barnes") return make_barnes_rebuild(scale);
  if (name == "barnes-space") return make_barnes_space(scale);
  if (name == "raytrace") return make_raytrace(scale);
  if (name == "volrend") return make_volrend(scale);
  throw std::invalid_argument("unknown application: " + name);
}

}  // namespace svmsim::apps
