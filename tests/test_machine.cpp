// Machine/Processor/Stats/Params level tests.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Shm;

TEST(Params, AchievableMatchesPaperTable1) {
  const CommParams p = CommParams::achievable();
  EXPECT_EQ(p.host_overhead, 500u);
  EXPECT_DOUBLE_EQ(p.io_bus_mb_per_mhz, 0.5);
  EXPECT_EQ(p.ni_occupancy, 1000u);
  EXPECT_EQ(p.interrupt_cost, 500u);
  EXPECT_EQ(p.page_bytes, 4096u);
  EXPECT_EQ(p.procs_per_node, 4);
  EXPECT_EQ(p.total_procs, 16);
}

TEST(Params, BestZeroesSweptCostsAndMatchesMemoryBusBandwidth) {
  const CommParams p = CommParams::best();
  EXPECT_EQ(p.host_overhead, 0u);
  EXPECT_EQ(p.ni_occupancy, 0u);
  EXPECT_EQ(p.interrupt_cost, 0u);
  // Best I/O bandwidth equals the memory bus: 2 bytes/cycle.
  EXPECT_DOUBLE_EQ(p.io_bus_mb_per_mhz, 2.0);
}

TEST(Params, IoBusCyclesScaleInversely) {
  CommParams p;
  p.io_bus_mb_per_mhz = 0.5;
  EXPECT_EQ(p.io_bus_cycles(1000), 2000u);
  p.io_bus_mb_per_mhz = 2.0;
  EXPECT_EQ(p.io_bus_cycles(1000), 500u);
}

TEST(Params, NodeCount) {
  CommParams p;
  p.total_procs = 16;
  p.procs_per_node = 4;
  EXPECT_EQ(p.node_count(), 4);
  p.procs_per_node = 1;
  EXPECT_EQ(p.node_count(), 16);
}

TEST(Machine, RejectsIndivisibleClustering) {
  SimConfig cfg = achievable_config();
  cfg.comm.total_procs = 16;
  cfg.comm.procs_per_node = 3;
  EXPECT_THROW(Machine m(cfg), std::invalid_argument);
}

TEST(Machine, ProcessorNodeMapping) {
  SimConfig cfg = config_with(16, 4);
  Machine m(cfg);
  EXPECT_EQ(m.node_count(), 4);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(3), 0);
  EXPECT_EQ(m.node_of(4), 1);
  EXPECT_EQ(m.node_of(15), 3);
  EXPECT_EQ(m.proc(5).id(), 5);
  EXPECT_EQ(m.proc(5).local_index(), 1);
  EXPECT_EQ(m.proc(5).node(), 1);
}

TEST(Stats, BreakdownSumsMatchExecutionTime) {
  // Per-processor breakdown buckets must account for (approximately) the
  // whole execution time: the books have to balance.
  SimConfig cfg = config_with(8, 4);
  auto app = apps::make_app("ocean", apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  ASSERT_TRUE(r.validated);
  for (int p = 0; p < 8; ++p) {
    const Cycles sum = r.stats.proc(p).total();
    const double ratio =
        static_cast<double>(sum) / static_cast<double>(r.time);
    EXPECT_GT(ratio, 0.97) << "proc " << p;
    EXPECT_LT(ratio, 1.03) << "proc " << p;
  }
}

TEST(Stats, CountersAccumulate) {
  Counters a, b;
  a.page_fetches = 3;
  a.messages_sent = 5;
  b.page_fetches = 2;
  b.bytes_sent = 100;
  a += b;
  EXPECT_EQ(a.page_fetches, 5u);
  EXPECT_EQ(a.messages_sent, 5u);
  EXPECT_EQ(a.bytes_sent, 100u);
}

TEST(Stats, BreakdownHelpers) {
  Breakdown b;
  b.add(TimeCat::kCompute, 100);
  b.add(TimeCat::kMemStall, 20);
  b.add(TimeCat::kWriteBufStall, 5);
  b.add(TimeCat::kDataWait, 50);
  EXPECT_EQ(b.total(), 175u);
  EXPECT_EQ(b.local_only(), 125u);
}

TEST(Runner, UniprocessorConfigCollapsesCluster) {
  SimConfig cfg = config_with(16, 4);
  SimConfig uni = uniprocessor_config(cfg);
  EXPECT_EQ(uni.comm.total_procs, 1);
  EXPECT_EQ(uni.comm.procs_per_node, 1);
  // Other parameters preserved.
  EXPECT_EQ(uni.comm.host_overhead, cfg.comm.host_overhead);
}

TEST(Runner, ThrowsOnDeadlock) {
  SimConfig cfg = config_with(2, 1);
  LambdaWorkload w(
      "deadlock", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 0) co_await shm.barrier();  // pid 1 never arrives...
        if (pid == 1) co_await shm.lock(1), co_await shm.lock(1);  // self-deadlock
      });
  EXPECT_THROW(svmsim::run(w, cfg), std::runtime_error);
}

TEST(Runner, PerProcPerMCyclesNormalization) {
  RunResult r;
  r.stats = Stats(4);
  r.stats.proc(0).add(TimeCat::kCompute, 1000000);
  r.stats.proc(1).add(TimeCat::kCompute, 1000000);
  r.stats.proc(2).add(TimeCat::kCompute, 1000000);
  r.stats.proc(3).add(TimeCat::kCompute, 1000000);
  // 400 events over 4M total compute cycles = 100 per M.
  EXPECT_DOUBLE_EQ(r.per_proc_per_mcycles(400), 100.0);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  SimConfig cfg = config_with(8, 2);
  auto a1 = apps::make_app("fft", apps::Scale::kTiny);
  auto a2 = apps::make_app("fft", apps::Scale::kTiny);
  auto r1 = svmsim::run(*a1, cfg);
  auto r2 = svmsim::run(*a2, cfg);
  EXPECT_EQ(r1.time, r2.time);
  EXPECT_EQ(r1.stats.counters().messages_sent,
            r2.stats.counters().messages_sent);
  EXPECT_EQ(r1.stats.counters().page_fetches,
            r2.stats.counters().page_fetches);
  EXPECT_EQ(r1.stats.counters().bytes_sent, r2.stats.counters().bytes_sent);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(r1.stats.proc(p).total(), r2.stats.proc(p).total());
  }
}

TEST(InterruptScheme, RoundRobinSpreadsHandlerLoad) {
  SimConfig cfg = config_with(4, 4);
  cfg.comm.interrupt_scheme = InterruptScheme::kRoundRobin;
  auto app = apps::make_app("fft", apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  EXPECT_TRUE(r.validated);
}

}  // namespace
}  // namespace svmsim::test
