// A deterministic discrete-event queue.
//
// Events are (time, sequence) ordered; the sequence number makes simultaneous
// events fire in insertion order, which keeps every simulation run
// bit-reproducible regardless of heap internals.
//
// Hot-path notes: callbacks are stored in a small-buffer-optimized
// InlineAction (no per-event heap allocation for typical captures), the heap
// is a plain std::vector driven by std::push_heap/pop_heap so its storage can
// be reserved, and drained event vectors are recycled through a thread-local
// spare slot so back-to-back simulations on one thread skip the allocator
// warm-up entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/inline_function.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

class EventQueue {
 public:
  /// Inline capacity of 24 bytes covers the captures the simulator's hot
  /// resumption paths create (a coroutine handle, or this + a handle or
  /// two) while keeping Event at 64 bytes — one cache line; larger workload
  /// captures fall back to one heap allocation.
  using Action = BasicInlineAction<24>;

  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (must be >= now()).
  void schedule_at(Cycles when, Action action);

  /// Schedule `action` to run `delay` cycles from now.
  void schedule_in(Cycles delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Pre-size the event storage (events, not bytes).
  void reserve(std::size_t events) { heap_.reserve(events); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Run a single event; returns false if none pending.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until no events remain or simulated time would exceed `deadline`.
  /// Returns true if the queue drained, false if the deadline stopped it.
  bool run_until(Cycles deadline);

  /// Drop all pending events without running them. Used when tearing down a
  /// simulation that stopped early: scheduled closures may hold pooled
  /// references, which must die before the pools they point into.
  void clear() noexcept { heap_.clear(); }

 private:
  struct Event {
    Cycles when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop the earliest event off the heap (caller checked non-empty).
  Event pop_top();

  /// Per-thread recycled event storage (see event_queue.cpp).
  static std::vector<Event>& spare_slot();

  std::vector<Event> heap_;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace svmsim::engine
