#include "svm/vclock.hpp"

#include <cassert>
#include <charconv>
#include <cstring>

namespace svmsim::svm {

void VClock::recompute_max() noexcept {
  const std::uint32_t* v = data();
  std::uint32_t m = 0;
  for (int i = 0; i < size_; ++i) {
    if (v[i] > m) m = v[i];
  }
  max_ = m;
}

bool VClock::covers(const VClock& o) const {
  assert(size_ == o.size_);
  if (this == &o || o.sum_ == 0) return true;
  // Dominance implies both sum and max dominance; equal sums reduce
  // dominance to equality.
  if (sum_ < o.sum_ || max_ < o.max_) return false;
  const std::uint32_t* a = data();
  const std::uint32_t* b = o.data();
  if (sum_ == o.sum_) {
    return std::memcmp(a, b, static_cast<std::size_t>(size_) *
                                 sizeof(std::uint32_t)) == 0;
  }
  for (int i = 0; i < size_; ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

void VClock::merge(const VClock& o) {
  assert(size_ == o.size_);
  if (this == &o || o.sum_ == 0) return;
  const std::uint32_t* b = o.data();
  // Equal sums + equal bytes: the common "nothing new since last time" case
  // on re-acquired locks and repeated barriers.
  if (sum_ == o.sum_ &&
      std::memcmp(data(), b,
                  static_cast<std::size_t>(size_) * sizeof(std::uint32_t)) ==
          0) {
    return;
  }
  std::uint32_t* a = mut();
  bool changed = false;
  for (int i = 0; i < size_; ++i) {
    if (b[i] > a[i]) {
      sum_ += b[i] - a[i];
      a[i] = b[i];
      changed = true;
    }
  }
  if (o.max_ > max_) max_ = o.max_;
  if (changed) ++version_;
}

bool VClock::operator==(const VClock& o) const {
  if (size_ != o.size_ || sum_ != o.sum_ || max_ != o.max_) return false;
  return std::memcmp(data(), o.data(),
                     static_cast<std::size_t>(size_) *
                         sizeof(std::uint32_t)) == 0;
}

std::string VClock::to_string() const {
  // One reserve + one pass: this renders in violation reports and debug
  // paths where a 256-node clock through an ostringstream was quadratic.
  std::string out;
  out.reserve(static_cast<std::size_t>(size_) * 11 + 2);
  out += '[';
  const std::uint32_t* v = data();
  char buf[12];
  for (int i = 0; i < size_; ++i) {
    if (i) out += ' ';
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v[i]);
    (void)ec;
    out.append(buf, end);
  }
  out += ']';
  return out;
}

}  // namespace svmsim::svm
