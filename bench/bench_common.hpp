// Shared infrastructure for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale=tiny|small|large   problem sizes (default small)
//   --csv=<dir>                also dump machine-readable CSV
//   --apps=a,b,c               restrict to a subset of the suite
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/params.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

namespace svmsim::bench {

struct Options {
  apps::Scale scale = apps::Scale::kSmall;
  std::string csv_dir;
  std::vector<std::string> app_names;

  static Options parse(int argc, char** argv);
};

/// The paper's default machine at the achievable point.
[[nodiscard]] SimConfig base_config();

/// Run one parameter sweep over the whole suite and print the figure's
/// series: one row per application, one speedup column per parameter value.
/// Returns all runs (apps x values) for further analysis.
std::vector<std::vector<harness::AppRun>> run_figure(
    const std::string& figure, const std::string& param_name,
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, const Options& opt,
    harness::Sweep& sweep,
    const std::function<std::string(double)>& value_label = nullptr);

/// Normalized-correlation figure (Figures 6/9/11): slowdown between the
/// sweep's endpoints, against a per-app predictor metric, both normalized
/// to their maxima.
void print_relation(const std::string& figure,
                    const std::string& slowdown_label,
                    const std::string& metric_label,
                    const std::vector<std::vector<harness::AppRun>>& sweeps,
                    const std::function<double(const harness::AppRun&)>& metric,
                    const Options& opt);

}  // namespace svmsim::bench
