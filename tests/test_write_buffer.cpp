#include "memsys/write_buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace svmsim::memsys {
namespace {

TEST(WriteBuffer, NoStallWhileBelowCapacity) {
  WriteBuffer wb(8, 4, 10);
  std::vector<std::uint64_t> retired;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(wb.push(static_cast<std::uint64_t>(i) * 64, 0, retired), 0u);
  }
}

TEST(WriteBuffer, CoalescesSameLine) {
  WriteBuffer wb(4, 4, 10);
  std::vector<std::uint64_t> retired;
  wb.push(0, 0, retired);
  wb.push(0, 1, retired);
  wb.push(0, 2, retired);
  EXPECT_EQ(wb.occupancy(), 1u);
  EXPECT_EQ(wb.coalesced(), 2u);
}

TEST(WriteBuffer, RetiresOncePolicyThresholdReached) {
  WriteBuffer wb(8, 4, 10);
  std::vector<std::uint64_t> retired;
  for (int i = 0; i < 4; ++i) {
    wb.push(static_cast<std::uint64_t>(i) * 64, 0, retired);
  }
  // At time 0 we have 4 entries: draining starts; after 10 cycles the first
  // entry retires.
  wb.advance(9, retired);
  EXPECT_TRUE(retired.empty());
  wb.advance(10, retired);
  EXPECT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0], 0u);
  EXPECT_EQ(wb.occupancy(), 3u);
}

TEST(WriteBuffer, DrainStopsBelowThreshold) {
  WriteBuffer wb(8, 4, 10);
  std::vector<std::uint64_t> retired;
  for (int i = 0; i < 4; ++i) {
    wb.push(static_cast<std::uint64_t>(i) * 64, 0, retired);
  }
  wb.advance(1000, retired);
  // Retire down to threshold-1 entries, then stop.
  EXPECT_EQ(retired.size(), 1u);
  EXPECT_EQ(wb.occupancy(), 3u);
}

TEST(WriteBuffer, FullBufferStallsUntilRetirement) {
  WriteBuffer wb(4, 4, 10);
  std::vector<std::uint64_t> retired;
  for (int i = 0; i < 4; ++i) {
    wb.push(static_cast<std::uint64_t>(i) * 64, 0, retired);
  }
  // Buffer full at t=5: the in-flight retirement (started at t=0) completes
  // at t=10, so we stall 5 cycles.
  const Cycles stall = wb.push(1000, 5, retired);
  EXPECT_EQ(stall, 5u);
  EXPECT_EQ(wb.full_stalls(), 1u);
  EXPECT_EQ(wb.occupancy(), 4u);
}

TEST(WriteBuffer, NoStallWhenRetirementAlreadyDone) {
  WriteBuffer wb(4, 2, 10);
  std::vector<std::uint64_t> retired;
  for (int i = 0; i < 4; ++i) {
    wb.push(static_cast<std::uint64_t>(i) * 64, 0, retired);
  }
  // By t=100 the drain (threshold 2) got occupancy down to 1.
  const Cycles stall = wb.push(1000, 100, retired);
  EXPECT_EQ(stall, 0u);
}

TEST(WriteBuffer, ContainsReportsBufferedLines) {
  WriteBuffer wb(8, 4, 10);
  std::vector<std::uint64_t> retired;
  wb.push(128, 0, retired);
  EXPECT_TRUE(wb.contains(128));
  EXPECT_FALSE(wb.contains(64));
}

TEST(WriteBuffer, RetirementIsFifo) {
  WriteBuffer wb(8, 2, 10);
  std::vector<std::uint64_t> retired;
  wb.push(64, 0, retired);
  wb.push(128, 0, retired);
  wb.push(192, 0, retired);
  wb.advance(100, retired);
  ASSERT_EQ(retired.size(), 2u);
  EXPECT_EQ(retired[0], 64u);
  EXPECT_EQ(retired[1], 128u);
}

}  // namespace
}  // namespace svmsim::memsys
