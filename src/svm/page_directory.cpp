#include "svm/page_directory.hpp"

#include <cassert>

namespace svmsim::svm {

void PageDirectory::record_interval(NodeId n, std::uint32_t index,
                                    std::vector<PageId> pages) {
  auto& h = hist_[static_cast<std::size_t>(n)];
  assert(index == h.size() + 1 && "intervals must be recorded in order");
  (void)index;
  h.push_back(std::move(pages));
}

std::uint64_t PageDirectory::collect_notices(
    const VClock& have, const VClock& target,
    const std::function<void(PageId, NodeId)>& fn) const {
  std::uint64_t count = 0;
  for (NodeId n = 0; n < nodes(); ++n) {
    const auto& h = hist_[static_cast<std::size_t>(n)];
    const std::uint32_t from = have.get(n);
    const std::uint32_t to = target.get(n);
    for (std::uint32_t i = from; i < to; ++i) {
      for (PageId p : h[i]) {
        fn(p, n);
        ++count;
      }
    }
  }
  return count;
}

std::uint64_t PageDirectory::count_notices(const VClock& have,
                                           const VClock& target) const {
  std::uint64_t count = 0;
  for (NodeId n = 0; n < nodes(); ++n) {
    const auto& h = hist_[static_cast<std::size_t>(n)];
    for (std::uint32_t i = have.get(n); i < target.get(n); ++i) {
      count += h[i].size();
    }
  }
  return count;
}

}  // namespace svmsim::svm
