// Figure 5: effects of host overhead on application performance.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig05", "overhead", {0, 250, 500, 1000, 2000},
      [](SimConfig& c, double v) {
        c.comm.host_overhead = static_cast<Cycles>(v);
      },
      opt, sweep);
  return 0;
}
