# Empty dependencies file for extra_multi_nic.
# This may be replaced when dependencies are built.
