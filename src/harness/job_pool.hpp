// A small fixed-size worker pool for running independent simulation points
// concurrently (the `--jobs N` sweep executor).
//
// Semantics are deliberately batch-shaped: run() hands the workers an
// indexed list of jobs, blocks until every job finished, and rethrows the
// first exception any job raised. Jobs must be independent; determinism is
// the caller's problem and is trivially obtained by having job i write only
// slot i of a pre-sized result vector (simulations themselves are
// single-threaded and bit-reproducible, so execution order cannot leak into
// results).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svmsim::harness {

class JobPool {
 public:
  using Job = std::function<void()>;

  /// Spawn `threads` workers; 0 means hardware_default().
  explicit JobPool(unsigned threads = 0);
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run every job to completion (in unspecified order, on the workers).
  /// Blocks the caller; rethrows the first exception a job threw after the
  /// whole batch has drained. Not reentrant: one batch at a time.
  void run(std::vector<Job> jobs);

  /// std::thread::hardware_concurrency, floored at 1.
  [[nodiscard]] static unsigned hardware_default() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Job>* batch_ = nullptr;  // non-null while a batch is running
  std::size_t next_ = 0;               // next unclaimed job index
  std::size_t remaining_ = 0;          // jobs not yet finished
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace svmsim::harness
