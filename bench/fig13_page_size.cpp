// Figure 13: effects of page size (the coherence/transfer granularity) on
// application performance.
#include "bench_common.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig13", "page", {1024, 2048, 4096, 8192, 16384},
      [](SimConfig& c, double v) {
        c.comm.page_bytes = static_cast<std::uint32_t>(v);
      },
      opt, sweep, [](double v) {
        return std::to_string(static_cast<int>(v) / 1024) + "K";
      });
  return 0;
}
