// Water-spatial: cell-decomposed molecular dynamics (SPLASH-2
// Water-Spatial style). Space is divided into cells larger than the force
// cutoff; processors own contiguous cell blocks, rebuild the shared cell
// lists each step (locking only when inserting into another processor's
// cell), and compute forces for molecules in their own cells by scanning
// the 27 neighbouring cells. Communication and locking are far lower than
// Water-nsquared (paper §4.2: "very little communication").
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}
inline Vec3& operator+=(Vec3& a, const Vec3& b) {
  a.x += b.x;
  a.y += b.y;
  a.z += b.z;
  return a;
}
inline Vec3 operator*(const Vec3& a, double s) {
  return {a.x * s, a.y * s, a.z * s};
}

/// Cutoff Lennard-Jones-style force on `a` from `b`; zero outside kCutoff.
inline Vec3 pair_force(const Vec3& pa, const Vec3& pb, double cutoff2) {
  const Vec3 d = pa - pb;
  const double r2 = d.x * d.x + d.y * d.y + d.z * d.z + 0.05;
  if (r2 > cutoff2) return {};
  const double inv2 = 1.0 / r2;
  const double inv6 = inv2 * inv2 * inv2;
  const double mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
  return d * mag;
}

class WaterSpApp final : public Application {
 public:
  explicit WaterSpApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 128;
        cells_ = 2;  // per dimension
        steps_ = 2;
        break;
      case Scale::kSmall:
        n_ = 512;
        cells_ = 4;
        steps_ = 2;
        break;
      case Scale::kLarge:
        n_ = 1728;
        cells_ = 6;
        steps_ = 2;
        break;
    }
    ncells_ = cells_ * cells_ * cells_;
    box_ = cells_ * kCellSize;
  }

  [[nodiscard]] std::string name() const override { return "water-sp"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    pos_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    vel_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    frc_ = SharedArray<Vec3>::alloc(mach, n_, Distribution::block());
    // Cell lists: per-cell occupancy counter plus member slots.
    max_per_cell_ = 4 * (static_cast<int>(n_) / ncells_ + 4);
    cell_count_ =
        SharedArray<std::int32_t>::alloc(mach, ncells_, Distribution::block());
    cell_mol_ = SharedArray<std::int32_t>::alloc(
        mach, static_cast<std::size_t>(ncells_) * max_per_cell_,
        Distribution::block());

    Rng rng(0x5AA77u);
    init_pos_.resize(n_);
    init_vel_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      init_pos_[i] = {rng.uniform(0.05, box_ - 0.05),
                      rng.uniform(0.05, box_ - 0.05),
                      rng.uniform(0.05, box_ - 0.05)};
      init_vel_[i] = {rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01),
                      rng.uniform(-0.01, 0.01)};
    }
    for (std::size_t i = 0; i < n_; ++i) {
      pos_.debug_put(mach, i, init_pos_[i]);
      vel_.debug_put(mach, i, init_vel_[i]);
      frc_.debug_put(mach, i, Vec3{});
    }
    expected_pos_ = reference();
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    // Cell ownership: contiguous cell-index blocks.
    const int c0 = ncells_ * pid / P_;
    const int c1 = ncells_ * (pid + 1) / P_;
    // Molecule ownership for the rebuild scatter: contiguous blocks.
    const std::size_t m0 = n_ * static_cast<std::size_t>(pid) / P_;
    const std::size_t m1 = n_ * static_cast<std::size_t>(pid + 1) / P_;

    std::vector<Vec3> positions(n_);

    for (int step = 0; step < steps_; ++step) {
      // --- Rebuild cell lists ---
      for (int c = c0; c < c1; ++c) {
        co_await cell_count_.put(shm, c, 0);
      }
      co_await shm.barrier();
      co_await pos_.get_block(shm, 0, positions.data(), n_);
      for (std::size_t i = m0; i < m1; ++i) {
        const int c = cell_of(positions[i]);
        co_await shm.lock(kCellLockBase + c);
        const std::int32_t cnt = co_await cell_count_.get(shm, c);
        co_await cell_mol_.put(
            shm, static_cast<std::size_t>(c) * max_per_cell_ + cnt,
            static_cast<std::int32_t>(i));
        co_await cell_count_.put(shm, c, cnt + 1);
        co_await shm.unlock(kCellLockBase + c);
        shm.compute(kWorkScale * 12);
      }
      co_await shm.barrier();

      // --- Forces: own cells scan their 27 neighbours ---
      const double cutoff2 = kCutoff * kCutoff;
      std::vector<std::int32_t> members(max_per_cell_);
      std::vector<std::int32_t> neigh(max_per_cell_);
      for (int c = c0; c < c1; ++c) {
        const std::int32_t cnt = co_await cell_count_.get(shm, c);
        if (cnt == 0) continue;
        co_await cell_mol_.get_block(
            shm, static_cast<std::size_t>(c) * max_per_cell_, members.data(),
            static_cast<std::size_t>(cnt));
        std::sort(members.begin(), members.begin() + cnt);
        std::vector<Vec3> force(static_cast<std::size_t>(cnt));
        const int cx = c % cells_;
        const int cy = (c / cells_) % cells_;
        const int cz = c / (cells_ * cells_);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = cx + dx;
              const int ny = cy + dy;
              const int nz = cz + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= cells_ || ny >= cells_ ||
                  nz >= cells_) {
                continue;
              }
              const int nc = (nz * cells_ + ny) * cells_ + nx;
              const std::int32_t ncnt = co_await cell_count_.get(shm, nc);
              if (ncnt == 0) continue;
              co_await cell_mol_.get_block(
                  shm, static_cast<std::size_t>(nc) * max_per_cell_,
                  neigh.data(), static_cast<std::size_t>(ncnt));
              std::sort(neigh.begin(), neigh.begin() + ncnt);
              for (std::int32_t k = 0; k < cnt; ++k) {
                const std::int32_t i = members[static_cast<std::size_t>(k)];
                for (std::int32_t l = 0; l < ncnt; ++l) {
                  const std::int32_t j = neigh[static_cast<std::size_t>(l)];
                  if (j == i) continue;
                  force[static_cast<std::size_t>(k)] +=
                      pair_force(positions[static_cast<std::size_t>(i)],
                                 positions[static_cast<std::size_t>(j)],
                                 cutoff2);
                }
                shm.compute(kWorkScale * static_cast<Cycles>(ncnt) * 16);
              }
            }
          }
        }
        for (std::int32_t k = 0; k < cnt; ++k) {
          co_await frc_.put(shm, static_cast<std::size_t>(members[k]),
                            force[static_cast<std::size_t>(k)]);
        }
      }
      co_await shm.barrier();

      // --- Integrate: molecules in own cells ---
      for (int c = c0; c < c1; ++c) {
        const std::int32_t cnt = co_await cell_count_.get(shm, c);
        for (std::int32_t k = 0; k < cnt; ++k) {
          const auto i = static_cast<std::size_t>(co_await cell_mol_.get(
              shm, static_cast<std::size_t>(c) * max_per_cell_ + k));
          const Vec3 f = co_await frc_.get(shm, i);
          Vec3 v = co_await vel_.get(shm, i);
          v += f * kDt;
          Vec3 x = positions[i];
          x += v * kDt;
          x = clamp_box(x);
          co_await vel_.put(shm, i, v);
          co_await pos_.put(shm, i, x);
          shm.compute(kWorkScale * 12);
        }
      }
      co_await shm.barrier();
    }
  }

  bool validate(Machine& mach) override {
    for (std::size_t i = 0; i < n_; ++i) {
      const Vec3 got = pos_.debug_get(mach, i);
      const Vec3 want = expected_pos_[i];
      const double err = std::abs(got.x - want.x) + std::abs(got.y - want.y) +
                         std::abs(got.z - want.z);
      const double mag =
          1.0 + std::abs(want.x) + std::abs(want.y) + std::abs(want.z);
      if (err > 1e-7 * mag) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 40;
  static constexpr int kCellLockBase = 1024;
  static constexpr double kCellSize = 2.0;
  static constexpr double kCutoff = 1.8;
  static constexpr double kDt = 0.002;

  [[nodiscard]] int cell_of(const Vec3& p) const {
    auto idx = [&](double v) {
      return std::clamp(static_cast<int>(v / kCellSize), 0, cells_ - 1);
    };
    return (idx(p.z) * cells_ + idx(p.y)) * cells_ + idx(p.x);
  }
  [[nodiscard]] Vec3 clamp_box(Vec3 p) const {
    p.x = std::clamp(p.x, 0.0, box_ - 1e-9);
    p.y = std::clamp(p.y, 0.0, box_ - 1e-9);
    p.z = std::clamp(p.z, 0.0, box_ - 1e-9);
    return p;
  }

  /// Sequential reference: same cell algorithm, cells in order, members
  /// sorted, so the per-molecule accumulation order matches.
  [[nodiscard]] std::vector<Vec3> reference() const {
    std::vector<Vec3> pos = init_pos_;
    std::vector<Vec3> vel = init_vel_;
    const double cutoff2 = kCutoff * kCutoff;
    for (int step = 0; step < steps_; ++step) {
      std::vector<std::vector<std::int32_t>> cell(
          static_cast<std::size_t>(ncells_));
      for (std::size_t i = 0; i < n_; ++i) {
        cell[static_cast<std::size_t>(cell_of(pos[i]))].push_back(
            static_cast<std::int32_t>(i));
      }
      std::vector<Vec3> frc(n_);
      for (int c = 0; c < ncells_; ++c) {
        auto members = cell[static_cast<std::size_t>(c)];
        std::sort(members.begin(), members.end());
        const int cx = c % cells_;
        const int cy = (c / cells_) % cells_;
        const int cz = c / (cells_ * cells_);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = cx + dx;
              const int ny = cy + dy;
              const int nz = cz + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= cells_ || ny >= cells_ ||
                  nz >= cells_) {
                continue;
              }
              const int nc = (nz * cells_ + ny) * cells_ + nx;
              auto neigh = cell[static_cast<std::size_t>(nc)];
              std::sort(neigh.begin(), neigh.end());
              for (std::int32_t i : members) {
                for (std::int32_t j : neigh) {
                  if (j == i) continue;
                  frc[static_cast<std::size_t>(i)] += pair_force(
                      pos[static_cast<std::size_t>(i)],
                      pos[static_cast<std::size_t>(j)], cutoff2);
                }
              }
            }
          }
        }
      }
      for (std::size_t i = 0; i < n_; ++i) {
        vel[i] += frc[i] * kDt;
        pos[i] += vel[i] * kDt;
        pos[i] = clamp_box(pos[i]);
      }
    }
    return pos;
  }

  std::size_t n_ = 128;
  int cells_ = 2;
  int ncells_ = 8;
  int steps_ = 2;
  int P_ = 1;
  int max_per_cell_ = 64;
  double box_ = 4.0;
  SharedArray<Vec3> pos_;
  SharedArray<Vec3> vel_;
  SharedArray<Vec3> frc_;
  SharedArray<std::int32_t> cell_count_;
  SharedArray<std::int32_t> cell_mol_;
  std::vector<Vec3> init_pos_;
  std::vector<Vec3> init_vel_;
  std::vector<Vec3> expected_pos_;
};

}  // namespace

std::unique_ptr<Application> make_water_spatial(Scale scale) {
  return std::make_unique<WaterSpApp>(scale);
}

}  // namespace svmsim::apps
