// Table and CSV output for the bench harness: prints the rows/series the
// paper's tables and figures report.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace svmsim::harness {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render to stdout.
  void print() const;
  /// Write as CSV to `path` (parent directory must exist). The first line
  /// is a `# build: ...` provenance comment (git revision, scheduler
  /// backend, sanitize/trace gates); data rows start at line 2.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);

/// If `csv_dir` is non-empty, write `table` to `<csv_dir>/<name>.csv`.
void maybe_write_csv(const Table& table, const std::string& csv_dir,
                     const std::string& name);

/// Write `content` to `path` via a sibling temp file and an atomic rename,
/// so readers (and a crashed writer) never observe a half-written file.
/// Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content);

/// Extract `"key": {...}` verbatim from a flat JSON object using a
/// brace-depth scan. Exact for the JSON the bench tools themselves write
/// (no braces inside strings); used to carry sections of the shared
/// BENCH_sweep.json across rewrites by different tools.
[[nodiscard]] std::optional<std::string> json_object_section(
    const std::string& text, const std::string& key);

/// Remove `"key": {...}` (plus the separating comma) from a flat JSON
/// object; returns the input unchanged when the key is absent.
[[nodiscard]] std::string strip_json_section(std::string text,
                                             const std::string& key);

}  // namespace svmsim::harness
