// Sensitivity sanity tests: varying each of the paper's communication
// parameters must move end performance in the documented direction.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"
#include "harness/sweep.hpp"

namespace svmsim::test {
namespace {

Cycles time_with(const std::string& app, SimConfig cfg) {
  auto a = apps::make_app(app, apps::Scale::kTiny);
  auto r = svmsim::run(*a, cfg);
  EXPECT_TRUE(r.validated);
  return r.time;
}

TEST(Sensitivity, InterruptCostHurtsEveryApp) {
  for (const auto& name : {"fft", "water-nsq", "barnes"}) {
    SimConfig lo = achievable_config();
    lo.comm.interrupt_cost = 0;
    SimConfig hi = achievable_config();
    hi.comm.interrupt_cost = 5000;
    EXPECT_GT(time_with(name, hi), time_with(name, lo)) << name;
  }
}

TEST(Sensitivity, BandwidthHelpsDataIntensiveApps) {
  SimConfig lo = achievable_config();
  lo.comm.io_bus_mb_per_mhz = 0.125;
  SimConfig hi = achievable_config();
  hi.comm.io_bus_mb_per_mhz = 2.0;
  EXPECT_GT(time_with("fft", lo), time_with("fft", hi));
  EXPECT_GT(time_with("radix", lo), time_with("radix", hi));
}

TEST(Sensitivity, HostOverheadHasModestEffect) {
  SimConfig lo = achievable_config();
  lo.comm.host_overhead = 0;
  SimConfig hi = achievable_config();
  hi.comm.host_overhead = 2000;
  const Cycles tlo = time_with("fft", lo);
  const Cycles thi = time_with("fft", hi);
  EXPECT_GE(thi, tlo);
  // Host overhead is amortized over page-grain transfers (paper §5):
  // a 2000-cycle overhead must cost far less than 2000 x messages.
  EXPECT_LT(static_cast<double>(thi) / static_cast<double>(tlo), 2.0);
}

TEST(Sensitivity, BestIsAtLeastAsFastAsAchievable) {
  for (const auto& name : {"fft", "lu", "water-nsq"}) {
    SimConfig ach = achievable_config();
    SimConfig best = achievable_config();
    best.comm = CommParams::best();
    EXPECT_LE(time_with(name, best), time_with(name, ach)) << name;
  }
}

TEST(Sensitivity, AurcIsMoreOccupancySensitiveThanHlrc) {
  // Figure 12's qualitative claim: raising NI occupancy hurts AURC more
  // than HLRC (updates are fine-grained packets).
  auto slowdown = [&](Protocol proto) {
    SimConfig lo = achievable_config();
    lo.comm.protocol = proto;
    lo.comm.ni_occupancy = 0;
    SimConfig hi = lo;
    hi.comm.ni_occupancy = 4000;
    return static_cast<double>(time_with("water-nsq", hi)) /
           static_cast<double>(time_with("water-nsq", lo));
  };
  EXPECT_GT(slowdown(Protocol::kAURC), slowdown(Protocol::kHLRC) * 0.95);
}

TEST(Sweep, BaselineIsCachedPerApp) {
  harness::Sweep sweep(apps::Scale::kTiny);
  SimConfig cfg = achievable_config();
  const Cycles b1 = sweep.baseline("fft", cfg);
  const Cycles b2 = sweep.baseline("fft", cfg);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(b1, 0u);
}

TEST(Sweep, RunSweepProducesOnePointPerValue) {
  harness::Sweep sweep(apps::Scale::kTiny);
  SimConfig cfg = achievable_config();
  auto runs = sweep.run_sweep("lu", cfg, {0, 1000, 5000},
                              [](SimConfig& c, double v) {
                                c.comm.interrupt_cost = static_cast<Cycles>(v);
                              });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].param, 0.0);
  EXPECT_EQ(runs[2].param, 5000.0);
  for (const auto& r : runs) {
    EXPECT_GT(r.speedup(), 0.0);
    EXPECT_GE(r.ideal_speedup(), r.speedup() * 0.99);
  }
  // Higher interrupt cost, lower speedup at the extremes.
  EXPECT_GT(runs[0].speedup(), runs[2].speedup());
  EXPECT_GT(harness::max_slowdown_pct(runs), 0.0);
}

TEST(Sweep, IdealSpeedupIgnoresCommunication) {
  harness::Sweep sweep(apps::Scale::kTiny);
  SimConfig cfg = achievable_config();
  auto point = sweep.run_point("ocean", cfg, 0);
  EXPECT_GT(point.ideal_speedup(), point.speedup());
}

}  // namespace
}  // namespace svmsim::test
