#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace svmsim::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote only when needed.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void maybe_write_csv(const Table& table, const std::string& csv_dir,
                     const std::string& name) {
  if (csv_dir.empty()) return;
  table.write_csv(csv_dir + "/" + name + ".csv");
}

}  // namespace svmsim::harness
