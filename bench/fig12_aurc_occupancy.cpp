// Figure 12: effects of network interface occupancy under AURC (automatic
// update) — far more sensitive than HLRC because updates travel as many
// fine-grained packets.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig12", "occupancy", {0, 250, 500, 1000, 2000, 4000},
      [](SimConfig& c, double v) {
        c.comm.protocol = Protocol::kAURC;
        c.comm.ni_occupancy = static_cast<Cycles>(v);
      },
      opt, sweep);
  return 0;
}
