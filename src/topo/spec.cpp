#include "topo/spec.hpp"

#include <charconv>
#include <sstream>

namespace svmsim::topo {

namespace {

/// Strict positive-integer parse of the whole of `text` (no sign, no
/// whitespace, no trailing junk). Returns -1 on failure.
int parse_pos_int(std::string_view text) {
  int v = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || v <= 0) return -1;
  return v;
}

}  // namespace

std::optional<Spec> Spec::parse(std::string_view text) {
  Spec s;
  if (text == "legacy") {
    s.kind = Kind::kLegacy;
    return s;
  }
  if (text == "crossbar") {
    s.kind = Kind::kCrossbar;
    return s;
  }
  if (text.starts_with("fattree:")) {
    const int k = parse_pos_int(text.substr(8));
    // Arity must be even (k/2 up-ports per switch) and small enough that
    // the full k-ary tree's link table stays sane; 64 hosts 65536 nodes,
    // far past the bench ceiling.
    if (k < 2 || k > 64 || k % 2 != 0) return std::nullopt;
    s.kind = Kind::kFatTree;
    s.fat_k = k;
    return s;
  }
  if (text.starts_with("torus:")) {
    std::string_view rest = text.substr(6);
    int n = 0;
    while (!rest.empty()) {
      if (n == 3) return std::nullopt;  // more than three dimensions
      const std::size_t x = rest.find('x');
      const std::string_view tok =
          x == std::string_view::npos ? rest : rest.substr(0, x);
      const int d = parse_pos_int(tok);
      if (d < 1 || d > 16384) return std::nullopt;
      s.dims[static_cast<std::size_t>(n++)] = d;
      if (x == std::string_view::npos) break;
      rest = rest.substr(x + 1);
      if (rest.empty()) return std::nullopt;  // trailing 'x'
    }
    if (n < 2) return std::nullopt;  // a 1D "torus" is a spec typo
    if (n == 2) s.dims[2] = 1;
    s.kind = Kind::kTorus;
    return s;
  }
  return std::nullopt;
}

std::string Spec::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kLegacy:
      os << "legacy";
      break;
    case Kind::kCrossbar:
      os << "crossbar";
      break;
    case Kind::kFatTree:
      os << "fattree:" << fat_k;
      break;
    case Kind::kTorus:
      os << "torus:" << dims[0] << "x" << dims[1];
      if (dims[2] > 1) os << "x" << dims[2];
      break;
  }
  return os.str();
}

}  // namespace svmsim::topo
