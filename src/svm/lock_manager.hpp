// Home-based queue locks with node-level token caching.
//
// Every lock has a home node (id % nodes). The token (ownership) migrates
// between nodes and is cached: a processor whose node holds the free token
// acquires locally through hardware synchronization with no messages or
// interrupts ("local lock acquire" in Table 2). Otherwise the node RPCs the
// home, which recalls the token from its current owner and grants FIFO.
//
// The LockDirectory holds the home-side state; per-node proxy state lives in
// the protocol agents. The per-lock release timestamp (`vc`) conceptually
// travels with the token; keeping it here is a simulator shortcut that does
// not change message counts or sizes (grants still carry it on the wire).
//
// Home-state slots are created lazily on first touch (a std::deque keeps
// references stable across growth — handlers hold LockHomeState& over
// co_awaits): a machine exposing 8192 lock ids no longer pays 8192 VClock
// allocations up front for the handful of locks an application uses.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/ring_queue.hpp"
#include "engine/types.hpp"
#include "net/message.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

struct LockHomeState {
  /// Node currently holding the token. Written under the growth mutex at
  /// slot creation (to the home), then only ever from the home node's
  /// partition; read from the home's partition (every home handler first
  /// re-enters state(), whose mutex orders it after creation) — non-home
  /// nodes must not read it (SvmAgent::proxy short-circuits on home_of).
  NodeId owner = -1;
  bool recall_sent = false; ///< a recall to `owner` is outstanding
  engine::RingQueue<net::Message> waiters;  ///< queued kLockAcquire requests
  VClock vc;                ///< timestamp of the lock's last release
};

class LockDirectory {
 public:
  LockDirectory(int nodes, int max_locks)
      : nodes_(nodes), max_locks_(max_locks) {}

  [[nodiscard]] int max_locks() const noexcept { return max_locks_; }
  [[nodiscard]] NodeId home_of(int lock) const { return lock % nodes_; }

  [[nodiscard]] LockHomeState& state(int lock) {
    // Any partition may touch any lock home (a local acquire reads the
    // token's release timestamp directly — the simulator shortcut in the
    // file comment), so lazy growth is serialized. References stay stable
    // across growth (deque), and the *fields* of a slot need no lock: every
    // cross-partition read is ordered behind the token's travel, which in
    // PDES mode means at least one full lookahead window of separation.
    const std::lock_guard<std::mutex> g(grow_mu_);
    while (locks_.size() <= static_cast<std::size_t>(lock)) {
      locks_.emplace_back();
      locks_.back().vc = VClock(nodes_);
      // The home owns an untouched token. Initialized here, inside the
      // growth lock, so no slot is ever visible with owner unset and the
      // only later writers are the home's own handlers (one partition).
      locks_.back().owner = home_of(static_cast<int>(locks_.size()) - 1);
    }
    return locks_[static_cast<std::size_t>(lock)];
  }

 private:
  int nodes_;
  int max_locks_;
  mutable std::mutex grow_mu_;       // guards lazy growth of locks_
  std::deque<LockHomeState> locks_;  // lazily grown; stable references
};

}  // namespace svmsim::svm
