#include "core/processor.hpp"

#include <utility>

namespace svmsim {

Processor::Processor(engine::Simulator& sim, const SimConfig& cfg,
                     ProcId global_id, int local_index, NodeId node,
                     memsys::MemoryBus& membus, Breakdown& breakdown)
    : sim_(&sim),
      cfg_(&cfg),
      id_(global_id),
      local_index_(local_index),
      node_(node),
      bd_(&breakdown),
      mem_(sim, cfg.arch, membus),
      handler_cpu_(sim) {}

engine::Task<void> Processor::drain() {
  while (pending_ > 0 || steal_ > 0) {
    const Cycles p = std::exchange(pending_, 0);
    const Cycles s = std::exchange(steal_, 0);
    if (s > 0) bd_->add(TimeCat::kHandler, s);
    co_await sim_->delay(p + s);
    // More handler time may have been stolen while we advanced; loop.
  }
}

engine::Task<Cycles> Processor::wait_begin() {
  co_await drain();
  co_return sim_->now();
}

void Processor::wait_end(TimeCat cat, Cycles t0) {
  const Cycles waited = sim_->now() - t0;
  bd_->add(cat, waited);
  // Handler work that ran while the application was blocked anyway did not
  // slow the application down; forgive that much of the pending steal.
  steal_ = steal_ > waited ? steal_ - waited : 0;
}

engine::Task<void> Processor::interrupt_body(
    std::function<engine::Task<void>()> body, Cycles entry_cost) {
  const Cycles t0 = sim_->now();
  // Delivery cost (interrupt issue+delivery, or the poll check), then the
  // handler dispatch and the handler itself.
  co_await sim_->delay(entry_cost + cfg_->arch.handler_dispatch_cycles);
  co_await body();
  steal_ += sim_->now() - t0;
}

void Processor::service_interrupt(std::function<engine::Task<void>()> body) {
  engine::spawn(handler_cpu_.with(
      [this, body = std::move(body)]() mutable -> engine::Task<void> {
        return interrupt_body(std::move(body), 2 * cfg_->comm.interrupt_cost);
      }));
}

void Processor::service_polled(std::function<engine::Task<void>()> body) {
  engine::spawn(handler_cpu_.with(
      [this, body = std::move(body)]() mutable -> engine::Task<void> {
        return interrupt_body(std::move(body), cfg_->comm.poll_check_cost);
      }));
}

}  // namespace svmsim
