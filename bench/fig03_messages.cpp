// Figure 3: number of messages sent per processor per million compute
// cycles, at 1, 4 and 8 processors per node.
#include <cstdio>

#include "bench_common.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);

  harness::Table t(
      {"application", "1 proc/node", "4 procs/node", "8 procs/node"});
  for (const auto& app : opt.app_names) {
    std::vector<std::string> row{app};
    for (int ppn : {1, 4, 8}) {
      SimConfig cfg = bench::base_config();
      cfg.comm.procs_per_node = ppn;
      auto w = apps::make_app(app, opt.scale);
      auto r = run(*w, cfg);
      row.push_back(
          harness::fmt(r.per_proc_per_mcycles(r.stats.counters().messages_sent)));
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    t.add_row(std::move(row));
  }
  std::fprintf(stderr, "\n");
  std::printf(
      "== Figure 3: messages per processor per M compute cycles ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "fig03");
  return 0;
}
