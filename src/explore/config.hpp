// Exploration budgets and branching policy for the schedule explorer.
//
// Kept free of explorer machinery (like check/config.hpp vs checker.hpp) so
// bench/explore.cpp can parse flags into an ExploreConfig without pulling in
// the DFS driver.
#pragma once

#include <cstdint>

namespace svmsim::explore {

/// Which alternatives at a wire decision point become branches.
enum class Branching : std::uint8_t {
  /// Branch to every co-enabled alternative (minus sleep-set suppression).
  /// Exhaustive over the hook-visible choice tree; the pinned-state-count
  /// smoke tests use this on configs small enough to enumerate fully.
  kFull,
  /// DPOR-style: branch only to alternatives *dependent* on the default
  /// choice — deliveries to the same destination node (different-node
  /// deliveries commute: they touch disjoint NI/host state and their
  /// mutual order is invisible to every oracle rule). Optionally refined
  /// by happens-before pruning (ExploreConfig::hb_prune).
  kDependent,
};

[[nodiscard]] constexpr const char* to_string(Branching b) noexcept {
  return b == Branching::kFull ? "full" : "dependent";
}

struct ExploreConfig {
  Branching branching = Branching::kFull;

  /// kDependent only: skip a same-destination alternative when the sending
  /// nodes' checker clocks are strictly ordered at decision time — the
  /// deliveries are causally chained, so the alternative order is not
  /// reachable by any commuting of concurrent events. Requires a run with
  /// checking enabled; silently inert otherwise.
  bool hb_prune = true;

  /// Branch on interrupt-dispatch nondeterminism too: round-robin victim
  /// override and poll-tick slip. Off = wire deliveries only.
  bool irq_choices = true;

  /// Hard cap on complete runs (states). Exploration stops with
  /// budget_exhausted once reached.
  std::uint64_t max_states = 4096;

  /// Stop at the first schedule with a violation (oracle, validate(), or
  /// run error) instead of exhausting the tree.
  bool stop_on_violation = false;

  /// How many violating schedules to keep (each is a full replay recipe).
  std::uint64_t max_violations_kept = 8;
};

}  // namespace svmsim::explore
