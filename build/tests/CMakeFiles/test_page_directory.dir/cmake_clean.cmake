file(REMOVE_RECURSE
  "CMakeFiles/test_page_directory.dir/test_page_directory.cpp.o"
  "CMakeFiles/test_page_directory.dir/test_page_directory.cpp.o.d"
  "test_page_directory"
  "test_page_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
