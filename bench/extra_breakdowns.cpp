// Paper §7 ("Limitations on Application Performance"): where the parallel
// execution time goes for each application, at the achievable and the best
// configurations. This is the per-application cut behind the paper's
// conclusions about which parameter limits which program.
#include <cstdio>

#include "bench_common.hpp"
#include "core/runner.hpp"

namespace {

std::vector<std::string> breakdown_row(const std::string& app,
                                       const char* config,
                                       const svmsim::RunResult& r) {
  using namespace svmsim;
  const Breakdown agg = r.stats.aggregate();
  const auto pct = [&](TimeCat c) {
    return harness::fmt(100.0 * static_cast<double>(agg.get(c)) /
                            static_cast<double>(agg.total()),
                        1) +
           "%";
  };
  return {app,
          config,
          pct(TimeCat::kCompute),
          pct(TimeCat::kMemStall),
          pct(TimeCat::kDataWait),
          pct(TimeCat::kLockWait),
          pct(TimeCat::kBarrierWait),
          pct(TimeCat::kHandler),
          pct(TimeCat::kProtocol)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);

  harness::Table t({"application", "config", "compute", "mem", "data-wait",
                    "lock", "barrier", "handler", "protocol"});
  for (const auto& app : opt.app_names) {
    {
      auto w = apps::make_app(app, opt.scale);
      auto r = run(*w, bench::base_config());
      t.add_row(breakdown_row(app, "achievable", r));
    }
    {
      SimConfig best = bench::base_config();
      best.comm = CommParams::best();
      auto w = apps::make_app(app, opt.scale);
      auto r = run(*w, best);
      t.add_row(breakdown_row(app, "best", r));
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf("== Extra (paper 7): execution-time breakdowns ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "extra_breakdowns");
  return 0;
}
