// Table 2: protocol events per processor per million compute cycles for
// each application, at 1, 4 and 8 processors per node (16 total).
#include <cstdio>

#include "bench_common.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);

  harness::Table t({"application", "procs/node", "page faults", "page fetches",
                    "local locks", "remote locks", "barriers"});
  for (const auto& app : opt.app_names) {
    for (int ppn : {1, 4, 8}) {
      SimConfig cfg = bench::base_config();
      cfg.comm.procs_per_node = ppn;
      auto w = apps::make_app(app, opt.scale);
      auto r = run(*w, cfg);
      const auto& c = r.stats.counters();
      t.add_row({app, std::to_string(ppn),
                 harness::fmt(r.per_proc_per_mcycles(c.page_faults)),
                 harness::fmt(r.per_proc_per_mcycles(c.page_fetches)),
                 harness::fmt(r.per_proc_per_mcycles(c.local_lock_acquires)),
                 harness::fmt(r.per_proc_per_mcycles(c.remote_lock_acquires)),
                 harness::fmt(r.per_proc_per_mcycles(c.barriers / 16))});
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");
  std::printf(
      "== Table 2: protocol events per processor per M compute cycles ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "table2");
  return 0;
}
