#include "core/node.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"

namespace svmsim {

Node::Node(engine::Simulator& sim, const SimConfig& cfg, NodeId id, int procs,
           ProcId first_proc, net::Network& network, Stats& stats,
           Counters& counters)
    : sim_(&sim),
      cfg_(&cfg),
      id_(id),
      counters_(&counters),
      membus_(sim, cfg.arch) {
  std::vector<net::Nic*> nic_ptrs;
  for (int k = 0; k < std::max(1, cfg.comm.nics_per_node); ++k) {
    nics_.push_back(std::make_unique<net::Nic>(sim, cfg.arch, cfg.comm, id, k,
                                               membus_, counters));
    network.add_nic(*nics_.back());
    nic_ptrs.push_back(nics_.back().get());
  }
  comm_ = std::make_unique<net::NodeComm>(sim, id, std::move(nic_ptrs),
                                          counters);
  procs_.reserve(static_cast<std::size_t>(procs));
  for (int i = 0; i < procs; ++i) {
    const ProcId gid = first_proc + i;
    procs_.push_back(std::make_unique<Processor>(sim, cfg, gid, i, id,
                                                 membus_, stats.proc(gid)));
  }
}

Processor& Node::pick_interrupt_victim() {
  // Round-robin delivery for the rotating scheme; polling also rotates
  // (whichever processor's poll loop finds the request services it).
  if (cfg_->comm.interrupt_scheme != InterruptScheme::kFixedProcessor) {
    Processor& victim = *procs_[static_cast<std::size_t>(rr_next_)];
    rr_next_ = (rr_next_ + 1) % static_cast<int>(procs_.size());
    return victim;
  }
  return *procs_.front();  // paper's base scheme: always processor 0
}

void Node::wire(svm::SvmAgent& agent) {
  comm_->interrupt_dispatch =
      [this](std::function<engine::Task<void>()> body) {
        if (cfg_->comm.interrupt_scheme == InterruptScheme::kPolling) {
          ++counters_->polled_requests;
          // No interrupt: the request sits until a processor's next poll
          // tick notices it (paper §10's polling proposal).
          const Cycles interval = std::max<Cycles>(1, cfg_->comm.poll_interval);
          const Cycles next_tick =
              (sim_->now() / interval + 1) * interval;
          sim_->queue().schedule_at(
              next_tick, [this, body = std::move(body)]() mutable {
                Processor& victim = pick_interrupt_victim();
                SVMSIM_TRACE_EVENT(*sim_, trace::Category::kIrq,
                                   trace::Event::kPollDeliver, victim.id(),
                                   id_, 0, 0);
                victim.service_polled(std::move(body));
              });
          return;
        }
        ++counters_->interrupts;
        Processor& victim = pick_interrupt_victim();
        SVMSIM_TRACE_EVENT(*sim_, trace::Category::kIrq,
                           trace::Event::kIrqIssue, victim.id(), id_, 0, 0);
        victim.service_interrupt(std::move(body));
      };
  agent.invalidate_caches = [this](std::uint64_t addr, std::uint64_t len) {
    invalidate_caches(addr, len);
  };
}

void Node::invalidate_caches(std::uint64_t addr, std::uint64_t len) {
  for (auto& p : procs_) {
    p->mem().invalidate_range(addr, len);
  }
}

}  // namespace svmsim
