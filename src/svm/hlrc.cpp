#include "svm/hlrc.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "check/checker.hpp"
#include "trace/trace.hpp"

namespace svmsim::svm {

namespace {

/// Ad-hoc stderr debugging (distinct from the src/trace/ recorder): set
/// SVMSIM_DBG_PAGE=<page-id> to log every protocol action touching that page.
long dbg_page() {
  static const long page = [] {
    const char* env = std::getenv("SVMSIM_DBG_PAGE");
    return env ? std::atol(env) : -1;
  }();
  return page;
}

bool dbg_flush() {
  static const bool on = std::getenv("SVMSIM_DBG_FLUSH") != nullptr;
  return on;
}

long dbg_lock() {
  static const long lock = [] {
    const char* env = std::getenv("SVMSIM_DBG_LOCK");
    return env ? std::atol(env) : -1;
  }();
  return lock;
}

#define SVMSIM_DBG_LK(lock, fmt, ...)                                        \
  do {                                                                       \
    if (static_cast<long>(lock) == dbg_lock()) {                             \
      std::fprintf(stderr, "[t=%8llu node=%d lk=%d] " fmt "\n",             \
                   static_cast<unsigned long long>(sim_->now()), self_,      \
                   static_cast<int>(lock), ##__VA_ARGS__);                   \
    }                                                                        \
  } while (0)

#define SVMSIM_DBG_EVT(page, fmt, ...)                                       \
  do {                                                                       \
    if (static_cast<long>(page) == dbg_page()) {                             \
      std::fprintf(stderr, "[t=%8llu node=%d pg=%llu] " fmt "\n",            \
                   static_cast<unsigned long long>(sim_->now()), self_,      \
                   static_cast<unsigned long long>(page), ##__VA_ARGS__);    \
    }                                                                        \
  } while (0)

/// Shorthand: protocol-agent event on the trace recorder (no-op when tracing
/// is compiled out or the run is untraced). `proc` is the acting processor's
/// global id, or -1 for handler/agent context.
#define SVMSIM_AGENT_EVENT(cat, ev, proc, a0, a1)                            \
  SVMSIM_TRACE_EVENT(*sim_, trace::Category::cat, trace::Event::ev, (proc),  \
                     self_, (a0), (a1))

using engine::Task;

/// Wire size of a page install/copy in handler time (paper §2 models page
/// copies as a per-KB software cost).
Cycles install_cycles(const ArchParams& arch, std::uint32_t page_bytes) {
  return arch.page_install_cycles_per_kb * ((page_bytes + 1023) / 1024);
}

}  // namespace

SvmAgent::SvmAgent(engine::Simulator& sim, const SimConfig& cfg, NodeId self,
                   int procs_on_node, AddressSpace& space, SharedState& shared,
                   ProtocolPools& pools, net::NodeComm& comm,
                   Counters& counters)
    : sim_(&sim),
      cfg_(&cfg),
      self_(self),
      procs_on_node_(procs_on_node),
      space_(&space),
      shared_(&shared),
      pools_(&pools),
      comm_(&comm),
      counters_(&counters),
      vc_(space.nodes()),
      node_flush_done_(sim),
      inval_scratch_(static_cast<std::size_t>(procs_on_node)),
      peers_(static_cast<std::size_t>(space.nodes())),
      barrier_done_(sim),
      barrier_release_(sim),
      barrier_merged_(space.nodes()) {}

void SvmAgent::install() {
  comm_->request_handler = [this](net::Message m) -> Task<void> {
    return handle_request(std::move(m));
  };
  comm_->direct_handler = [this](net::Message&& m) {
    handle_direct(std::move(m));
  };
  comm_->on_deliver = [this](net::Message& m) { expand_clock(m); };
  comm_->set_on_enqueue([this](net::Message& m) { encode_clock(m); });
  // Size the per-page SoA tables once for the pages allocated up front
  // (apps allocate before the run starts; the slot accessors still grow
  // lazily if one allocates mid-run).
  const auto pages = static_cast<std::size_t>(space_->page_count());
  pending_fetch_.resize(pages, nullptr);
  pending_flush_.resize(pages, nullptr);
  flush_epoch_by_page_.resize(pages, 0);
}

// ---------------------------------------------------------------------------
// Sparse clock transport (docs/scaling.md)
// ---------------------------------------------------------------------------

SvmAgent::PeerClocks& SvmAgent::peer(NodeId n) {
  std::unique_ptr<PeerClocks>& slot = peers_[static_cast<std::size_t>(n)];
  if (!slot) slot = std::make_unique<PeerClocks>(space_->nodes());
  return *slot;
}

void SvmAgent::encode_clock(net::Message& m) {
  VClock* last;
  switch (m.type) {
    case net::MsgType::kLockAcquire:
    case net::MsgType::kTokenReturn:
      last = &peer(m.dst).out_sync;
      break;
    case net::MsgType::kBarrierArrive:
      last = &peer(m.dst).out_barrier;
      break;
    default:
      return;
  }
  const VClock& sent = vclock_body(m.body);
  VClockDeltaRef d = pools_->clock_delta();
  // Entries are *differences*, not advances: two processors can construct
  // messages in one order and enqueue them in the other, so successive
  // clocks on an edge need not be monotone. Plain set() on both caches
  // keeps the receiver's mirror exact either way.
  if (!(sent == *last)) {  // summary + memcmp short-circuit
    const std::uint32_t* s = sent.data();
    const std::uint32_t* l = last->data();
    const int n = sent.size();
    for (int i = 0; i < n; ++i) {
      if (s[i] != l[i]) {
        d->entries.push_back({static_cast<NodeId>(i), s[i]});
        last->set(static_cast<NodeId>(i), s[i]);
      }
    }
  }
  if (sim_->checker() != nullptr) d->shadow = sent;
  m.body = std::move(d);  // drops the full-clock body reference
}

VClockDeltaRef SvmAgent::encode_reply_delta(const VClock& base,
                                            const VClock& target) {
  VClockDeltaRef d = pools_->clock_delta();
  const std::uint32_t* b = base.data();
  const std::uint32_t* t = target.data();
  const int n = base.size();
  for (int i = 0; i < n; ++i) {
    if (t[i] > b[i]) d->entries.push_back({static_cast<NodeId>(i), t[i]});
  }
  if (sim_->checker() != nullptr) {
    d->shadow = base;
    d->shadow.merge(target);
  }
  return d;
}

void SvmAgent::check_expansion(const VClockDeltaBody& d,
                               const VClock& got) const {
  if (d.shadow.size() == 0 || got == d.shadow) return;
  std::fprintf(stderr,
               "[svmsim] node %d: clock delta expansion mismatch\n"
               "  expanded %s\n  expected %s\n",
               self_, got.to_string().c_str(), d.shadow.to_string().c_str());
  std::abort();
}

void SvmAgent::expand_clock(net::Message& m) {
  switch (m.type) {
    case net::MsgType::kLockAcquire: {
      const VClockDeltaBody& d = vclock_delta_body(m.body);
      VClock& in = peer(m.src).in_sync;
      for (const VClockDeltaBody::Entry& e : d.entries) in.set(e.node, e.value);
      check_expansion(d, in);
      // The grant may be issued long after later traffic moves this edge
      // cache on; the request keeps its own copy of the expanded clock.
      m.body = pools_->vclock(in);
      break;
    }
    case net::MsgType::kTokenReturn: {
      const VClockDeltaBody& d = vclock_delta_body(m.body);
      VClock& in = peer(m.src).in_sync;
      for (const VClockDeltaBody::Entry& e : d.entries) in.set(e.node, e.value);
      check_expansion(d, in);
      break;  // the handler never reads the body; the delta recycles with it
    }
    case net::MsgType::kBarrierArrive: {
      const VClockDeltaBody& d = vclock_delta_body(m.body);
      VClock& in = peer(m.src).in_barrier;
      for (const VClockDeltaBody::Entry& e : d.entries) in.set(e.node, e.value);
      check_expansion(d, in);
      break;  // barrier() reads the delta entries for the incremental merge
    }
    case net::MsgType::kBarrierRelease: {
      const VClockDeltaBody& d = vclock_delta_body(m.body);
      assert(barrier_sent_ && "release without an outstanding arrival");
      VClock& vc = barrier_sent_->vc;
      for (const VClockDeltaBody::Entry& e : d.entries) vc.set(e.node, e.value);
      check_expansion(d, vc);
      m.body = std::move(barrier_sent_);
      break;
    }
    case net::MsgType::kLockGrant: {
      const VClockDeltaBody& d = vclock_delta_body(m.body);
      for (std::size_t i = 0; i < grant_bases_.size(); ++i) {
        if (grant_bases_[i].first != m.rpc_id) continue;
        VClockRef base = std::move(grant_bases_[i].second);
        grant_bases_[i] = std::move(grant_bases_.back());
        grant_bases_.pop_back();
        VClock& vc = base->vc;
        // Reply-relative entries always advance past the base (the home
        // computed them against this very clock).
        for (const VClockDeltaBody::Entry& e : d.entries) {
          vc.set(e.node, e.value);
        }
        check_expansion(d, vc);
        m.body = std::move(base);
        return;
      }
      assert(false && "lock grant with no registered request clock");
      break;
    }
    default:
      break;
  }
}

void SvmAgent::dump_lock_state() const {
  std::size_t fetches = 0, flushes = 0;
  for (auto* t : pending_fetch_) fetches += t != nullptr;
  for (auto* t : pending_flush_) flushes += t != nullptr;
  std::fprintf(stderr,
               "  node %d: barrier_arrived=%d/%d node_flushing=%d "
               "pending_fetch=%zu pending_flush=%zu vc=%s\n",
               self_, barrier_arrived_, procs_on_node_, (int)node_flushing_,
               fetches, flushes, vc_.to_string().c_str());
  for (std::size_t i = 0; i < lock_proxies_.size(); ++i) {
    const LockProxy& lp = lock_proxies_[i];
    if (!lp.init) continue;
    if (!lp.token && !lp.held && !lp.remote_pending && !lp.recall_pending &&
        lp.waiters.empty()) {
      continue;
    }
    const int lock = static_cast<int>(i);
    const LockHomeState& s = shared_->locks.state(lock);
    std::fprintf(stderr,
                 "  node %d lock %d: token=%d held=%d remote_pending=%d "
                 "recall_pending=%d local_waiters=%zu | home: owner=%d "
                 "recall_sent=%d queue=%zu\n",
                 self_, lock, (int)lp.token, (int)lp.held,
                 (int)lp.remote_pending, (int)lp.recall_pending,
                 lp.waiters.size(), s.owner, (int)s.recall_sent,
                 s.waiters.size());
  }
}

NodeId SvmAgent::home_of(PageId page) {
  const NodeId h = space_->home_of(page);
  return h >= 0 ? h : space_->assign_home(page, self_);
}

engine::Trigger*& SvmAgent::fetch_slot(PageId page) {
  if (pending_fetch_.size() <= page) {
    pending_fetch_.resize(
        std::max<std::size_t>(space_->page_count(), page + 1), nullptr);
  }
  return pending_fetch_[static_cast<std::size_t>(page)];
}

engine::Trigger*& SvmAgent::flush_slot(PageId page) {
  if (pending_flush_.size() <= page) {
    pending_flush_.resize(
        std::max<std::size_t>(space_->page_count(), page + 1), nullptr);
  }
  return pending_flush_[static_cast<std::size_t>(page)];
}

std::uint32_t& SvmAgent::flush_epoch_of(PageId page) {
  if (flush_epoch_by_page_.size() <= page) {
    flush_epoch_by_page_.resize(
        std::max<std::size_t>(space_->page_count(), page + 1), 0);
  }
  return flush_epoch_by_page_[static_cast<std::size_t>(page)];
}

// ---------------------------------------------------------------------------
// Page access
// ---------------------------------------------------------------------------

Task<PageCopy*> SvmAgent::ensure_valid(Processor& p, PageId page,
                                       bool for_write) {
  const NodeId h = home_of(page);
  PageCopy& c = space_->copy(self_, page);
  bool counted_fault = false;
  for (;;) {
    if (c.state == PageState::kReadOnly || c.state == PageState::kReadWrite) {
      co_return &c;
    }
    if (!counted_fault) {
      counted_fault = true;
      ++counters_->page_faults;
      if (for_write) {
        ++counters_->write_faults;
      } else {
        ++counters_->read_faults;
      }
      SVMSIM_AGENT_EVENT(kPage, kPageFault, p.id(), page, for_write ? 1 : 0);
      p.charge(TimeCat::kProtocol,
               cfg_->arch.fault_trap_cycles + cfg_->arch.tlb_access_cycles);
    }
    if (c.state == PageState::kUnmapped && h == self_) {
      SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page,
                        c.state, PageState::kReadOnly,
                        check::PageEvent::kHomeMap);
      c.state = PageState::kReadOnly;  // home pages map without protocol
      co_return &c;
    }
    if (engine::Trigger* t = fetch_slot(page)) {
      // Another processor of this node already requested the page; wait for
      // its fetch instead of issuing a duplicate (fault coalescing). The
      // episode handle stays valid after the fetcher recycles the trigger.
      engine::Episode ep(*t);
      const Cycles t0 = co_await p.wait_begin();
      co_await ep.wait();
      p.wait_end(TimeCat::kDataWait, t0);
      continue;  // re-check the state (fetch may have raced an invalidation)
    }
    co_await fetch_page(p, page, c);
  }
}

Task<PageCopy*> SvmAgent::readable(Processor& p, PageId page) {
  return ensure_valid(p, page, /*for_write=*/false);
}

Task<PageCopy*> SvmAgent::writable(Processor& p, PageId page) {
  PageCopy& c = space_->copy(self_, page);
  if (c.state == PageState::kReadWrite) co_return &c;
  const bool was_valid = c.state == PageState::kReadOnly;
  PageCopy* vc = co_await ensure_valid(p, page, /*for_write=*/true);
  if (vc->state == PageState::kReadWrite) co_return vc;  // raced a co-writer
  if (was_valid) {
    // Pure write-protection fault on a valid page (write detection).
    ++counters_->page_faults;
    ++counters_->write_faults;
    SVMSIM_AGENT_EVENT(kPage, kPageFault, p.id(), page, 1);
    p.charge(TimeCat::kProtocol,
             cfg_->arch.fault_trap_cycles + cfg_->arch.tlb_access_cycles);
  }
  co_await arm_write(p, page, *vc);  // twin (HLRC) / AU mapping (AURC)
  mark_dirty(page, *vc);
  SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, vc->state,
                    PageState::kReadWrite, check::PageEvent::kArmWrite);
  vc->state = PageState::kReadWrite;
  co_return vc;
}

Task<void> SvmAgent::fetch_page(Processor& p, PageId page, PageCopy& c) {
  ++counters_->page_fetches;
  const NodeId h = home_of(page);
  const std::uint32_t pb = space_->page_bytes();
  SVMSIM_AGENT_EVENT(kPage, kPageFetch, p.id(), page, h);

  if (cfg_->disable_remote_fetches) {
    // Guided simulation (paper §6): pretend the fetch is free/local.
    auto home = space_->home_data(page);
    std::memcpy(c.data.data(), home.data(), pb);
    if (invalidate_caches) invalidate_caches(page * pb, pb);
    SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                      PageState::kReadOnly, check::PageEvent::kFetchInstall);
    c.state = PageState::kReadOnly;
    SVMSIM_AGENT_EVENT(kPage, kPageInstall, p.id(), page, 1);
    co_return;
  }

  SVMSIM_DBG_EVT(page, "fetch issued (gen=%u)", c.inval_gen);
  assert(fetch_slot(page) == nullptr && "duplicate fetch for a page");
  fetch_slot(page) = pools_->triggers.acquire();
  const std::uint32_t gen_at_start = c.inval_gen;
  SVMSIM_CHECK_HOOK(*sim_, on_fetch_issue, self_, page);

  net::Message m;
  m.type = net::MsgType::kPageRequest;
  m.dst = h;
  m.page = page;
  m.payload_bytes = 16;
  charge_send(p);
  co_await p.drain();
  const std::uint64_t id = comm_->rpc_post(m);
  co_await comm_->send(std::move(m));
  const Cycles t0 = sim_->now();
  net::Message rep = co_await comm_->await_reply(id);
  p.wait_end(TimeCat::kDataWait, t0);

  const std::vector<std::byte>& data = bytes_body(rep.body);
  assert(data.size() == pb);
  // Fault injection (kStaleRead): a refetch after an invalidation keeps the
  // stale bytes, as if the install wrote the wrong copy.
  if (!(SVMSIM_CHECK_MUTATION_IS(*sim_, kStaleRead) && c.inval_gen > 0)) {
    std::memcpy(c.data.data(), data.data(), pb);
  }
  SVMSIM_DBG_EVT(page, "fetch installed (gen %u -> %u) word0=%d",
                   gen_at_start, c.inval_gen,
                   *reinterpret_cast<const int*>(c.data.data()));
  p.charge(TimeCat::kProtocol, install_cycles(cfg_->arch, pb));
  if (invalidate_caches) invalidate_caches(page * pb, pb);
  SVMSIM_AGENT_EVENT(kPage, kPageInstall, p.id(), page, 0);

  // If a write notice invalidated this page while the fetch was in flight,
  // the copy may already be stale: leave it invalid and let the access
  // retry; otherwise map it read-only.
  const PageState installed = c.inval_gen == gen_at_start
                                  ? PageState::kReadOnly
                                  : PageState::kInvalid;
  SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                    installed,
                    installed == PageState::kReadOnly
                        ? check::PageEvent::kFetchInstall
                        : check::PageEvent::kFetchInstallStale);
  c.state = installed;
  engine::Trigger* t = fetch_slot(page);
  fetch_slot(page) = nullptr;
  t->complete();  // wakes coalesced waiters, invalidates their episodes
  pools_->triggers.release(t);
}

void SvmAgent::begin_page_flush(PageId page) {
  if (dbg_flush()) {
    std::fprintf(stderr, "[n=%d] begin_page_flush pg=%llu\n", self_,
                 (unsigned long long)page);
  }
  assert(flush_slot(page) == nullptr && "overlapping flushes of one page");
  flush_slot(page) = pools_->triggers.acquire();
}

void SvmAgent::end_page_flush(PageId page) {
  if (dbg_flush()) {
    std::fprintf(stderr, "[n=%d] end_page_flush pg=%llu\n", self_,
                 (unsigned long long)page);
  }
  engine::Trigger* t = flush_slot(page);
  if (t == nullptr) return;
  flush_slot(page) = nullptr;
  t->complete();
  pools_->triggers.release(t);
}

engine::Task<void> SvmAgent::wait_page_flush(Processor& p, PageId page) {
  for (;;) {
    engine::Trigger* t = flush_slot(page);
    if (t == nullptr) co_return;
    if (dbg_flush()) {
      std::fprintf(stderr, "[t=%llu n=%d p=%d] wait_page_flush pg=%llu\n",
                   (unsigned long long)sim_->now(), self_, p.id(),
                   (unsigned long long)page);
    }
    engine::Episode ep(*t);
    const Cycles t0 = co_await p.wait_begin();
    co_await ep.wait();
    p.wait_end(TimeCat::kProtocol, t0);
  }
}

void SvmAgent::mark_dirty(PageId page, PageCopy& c) {
  if (c.dirty) return;
  c.dirty = true;
  dirty_pages_.push_back(page);
  interval_pages_.push_back(page);
}

Task<void> SvmAgent::read(Processor& p, GlobalAddr addr, void* dst,
                          std::uint64_t bytes) {
  auto* out = static_cast<std::byte*>(dst);
  const std::uint32_t pb = space_->page_bytes();
  const std::uint32_t lb = p.mem().line_bytes();
  while (bytes > 0) {
    const PageId page = space_->page_of(addr);
    const std::uint32_t off = space_->offset_of(addr);
    const std::uint64_t chunk = std::min<std::uint64_t>(bytes, pb - off);
    PageCopy* c = co_await readable(p, page);
    if (out != nullptr) {
      std::memcpy(out, c->data.data() + off, chunk);
      out += chunk;
    }
    SVMSIM_CHECK_HOOK(*sim_, on_read, sim_->now(), self_, vc_, addr,
                      c->data.data() + off, chunk);
    // Timing: one access per cache line touched.
    const std::uint64_t first_line = addr / lb;
    const std::uint64_t last_line = (addr + chunk - 1) / lb;
    for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
      const std::uint64_t line_addr = ln * lb;
      if (auto hit = p.mem().read_line_fast(line_addr, p.local_now())) {
        p.charge(TimeCat::kCompute, 1);
        if (*hit > 1) p.charge(TimeCat::kMemStall, *hit - 1);
      } else {
        p.charge(TimeCat::kCompute, 1);
        co_await p.drain();
        const Cycles stall = co_await p.mem().read_line_slow(line_addr);
        p.note(TimeCat::kMemStall, stall);
      }
    }
    addr += chunk;
    bytes -= chunk;
  }
}

Task<void> SvmAgent::write(Processor& p, GlobalAddr addr, const void* src,
                           std::uint64_t bytes) {
  const auto* in = static_cast<const std::byte*>(src);
  const std::uint32_t pb = space_->page_bytes();
  const std::uint32_t lb = p.mem().line_bytes();
  while (bytes > 0) {
    const PageId page = space_->page_of(addr);
    const std::uint32_t off = space_->offset_of(addr);
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, pb - off));
    PageCopy* c = co_await writable(p, page);
    if (in != nullptr) {
      std::memcpy(c->data.data() + off, in, chunk);
      SVMSIM_CHECK_HOOK(*sim_, on_write, sim_->now(), self_, vc_, addr, in,
                        chunk);
      in += chunk;
    }
    on_store(p, page, *c, off, chunk);
    const std::uint64_t first_line = addr / lb;
    const std::uint64_t last_line = (addr + chunk - 1) / lb;
    for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
      const auto cost = p.mem().write_line(ln * lb, p.local_now());
      p.charge(TimeCat::kCompute, cost.issue);
      if (cost.wb_stall > 0) p.charge(TimeCat::kWriteBufStall, cost.wb_stall);
    }
    addr += chunk;
    bytes -= chunk;
  }
}

// ---------------------------------------------------------------------------
// Release-time flush and acquire-time invalidation
// ---------------------------------------------------------------------------

Task<void> SvmAgent::flush(Processor& p) {
  // Serialize release flushes within the node: if another processor's flush
  // is in progress it may be carrying *our* critical-section writes, and a
  // release is only complete once those are at their homes and the interval
  // is recorded. Without this wait, a lock token could leave the node ahead
  // of the data it protects.
  while (node_flushing_) {
    if (dbg_flush()) {
      std::fprintf(stderr, "[t=%llu n=%d p=%d] flush: wait node_flushing\n",
                   (unsigned long long)sim_->now(), self_, p.id());
    }
    // The episode stays answerable after the flusher complete()s under us.
    engine::Episode ep(node_flush_done_);
    const Cycles t0 = co_await p.wait_begin();
    co_await ep.wait();
    p.wait_end(TimeCat::kProtocol, t0);
  }
  if (interval_pages_.empty()) co_return;

  if (dbg_flush()) {
    std::fprintf(stderr, "[t=%llu n=%d p=%d] flush: start (%zu pages)\n",
                 (unsigned long long)sim_->now(), self_, p.id(),
                 interval_pages_.size());
  }
  node_flushing_ = true;
  // Swap the live lists into scratch members: they refill while this flush
  // is in flight, and the storage ping-pongs between the pairs so the
  // steady state allocates nothing.
  propagating_.clear();
  propagating_.swap(dirty_pages_);
  interval_scratch_.clear();
  interval_scratch_.swap(interval_pages_);
  // The swap is the interval boundary: writes from here on refill the live
  // lists and belong to the *next* interval even though the vector clock
  // only advances after the propagation below completes.
  SVMSIM_CHECK_HOOK(*sim_, on_flush_cut, self_);

  co_await propagate_dirty(p, propagating_);

  const std::uint32_t idx = vc_.advance(self_);
  SVMSIM_CHECK_HOOK(*sim_, on_vclock, sim_->now(), self_, vc_);
  shared_->dir.record_interval(self_, idx, interval_scratch_);

  if (dbg_flush()) {
    std::fprintf(stderr, "[t=%llu n=%d p=%d] flush: done\n",
                 (unsigned long long)sim_->now(), self_, p.id());
  }
  node_flushing_ = false;
  node_flush_done_.complete();
}

Task<void> SvmAgent::apply_invalidations(Processor& p, const VClock& target) {
  if (vc_.covers(target)) co_return;

  std::vector<PageId>& pages = inval_scratch_[local_index(p)];
  pages.clear();
  const std::uint64_t notices = shared_->dir.collect_notices(
      vc_, target, [&](PageId page, NodeId writer) {
        if (writer != self_) pages.push_back(page);
      });
  counters_->write_notices += notices;
  if (notices > 0) {
    SVMSIM_AGENT_EVENT(kPage, kWriteNotices, p.id(), notices, 0);
  }
  p.charge(TimeCat::kProtocol, notices * cfg_->arch.write_notice_cycles);

  // Deduplicate (a page can appear in many intervals); sorting also makes
  // the invalidation order independent of the interval log layout.
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  // Fault injection (kSkippedNotice): silently forget one write notice, so
  // a stale copy survives the acquire.
  if (SVMSIM_CHECK_MUTATION_IS(*sim_, kSkippedNotice) && !pages.empty()) {
    pages.pop_back();
  }
  // Fault injection (kReorderSensitiveNotice): the same dropped notice, but
  // latent until some NI on this node has witnessed a same-cycle descending-
  // source arrival pair — a state only a reordered (explored) schedule can
  // reach, never the baseline wire-band order. See docs/exploration.md.
  if (SVMSIM_CHECK_MUTATION_IS(*sim_, kReorderSensitiveNotice) &&
      comm_->reorder_witnessed() && !pages.empty()) {
    pages.pop_back();
  }

  const std::uint32_t pb = space_->page_bytes();
  for (PageId page : pages) {
    if (home_of(page) == self_) continue;  // the home is always up to date
    if (!space_->has_copy(self_, page)) continue;
    PageCopy& c = space_->copy(self_, page);
    ++c.inval_gen;  // makes racing in-flight fetches install as invalid
    SVMSIM_CHECK_HOOK(*sim_, on_inval_notice, self_, page);
    // If this node's own diff/updates for the page are still in flight, a
    // refetch could miss them; wait for the home's ack first.
    co_await wait_page_flush(p, page);
    if (c.state == PageState::kUnmapped || c.state == PageState::kInvalid) {
      continue;
    }
    while (c.dirty) {
      // False sharing: we are mid-interval on this page; push our own
      // modifications home before dropping the copy. Writes can race the
      // flush (another processor of this node mid-critical-section), so
      // repeat until the page stays clean.
      co_await flush_page_for_invalidation(p, page, c);
    }
    SVMSIM_DBG_EVT(page, "invalidated (state was %d)",
                     static_cast<int>(c.state));
    SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                      PageState::kInvalid, check::PageEvent::kInvalidate);
    c.state = PageState::kInvalid;
    c.twin.reset();
    c.au_active = false;
    ++counters_->invalidations;
    SVMSIM_AGENT_EVENT(kPage, kPageInval, p.id(), page, 0);
    p.charge(TimeCat::kProtocol, cfg_->arch.tlb_access_cycles);
    if (invalidate_caches) invalidate_caches(page * pb, pb);
  }
  vc_.merge(target);
  SVMSIM_CHECK_HOOK(*sim_, on_vclock, sim_->now(), self_, vc_);
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

SvmAgent::LockProxy& SvmAgent::proxy(int lock) {
  while (lock_proxies_.size() <= static_cast<std::size_t>(lock)) {
    lock_proxies_.emplace_back();
  }
  LockProxy& lp = lock_proxies_[static_cast<std::size_t>(lock)];
  if (!lp.init) {
    lp.init = true;
    // The home owns an untouched lock's token, so a non-home node starts
    // without it — decided from home_of alone, WITHOUT reading the home
    // state: `owner` belongs to the home's partition, and a node that has
    // never touched this lock cannot be its owner anyway (a grant answers a
    // kLockAcquire, which this proxy init precedes). The home's own read is
    // partition-local.
    lp.token = shared_->locks.home_of(lock) == self_ &&
               shared_->locks.state(lock).owner == self_;
  }
  return lp;
}

void SvmAgent::wake_one_waiter(LockProxy& lp) {
  if (lp.waiters.empty()) return;
  engine::Trigger* t = lp.waiters.front();
  lp.waiters.pop_front();
  t->fire();
}

Task<void> SvmAgent::acquire_lock(Processor& p, int lock) {
  LockProxy& lp = proxy(lock);
  p.charge(TimeCat::kProtocol, cfg_->arch.smp_lock_cycles);

  for (;;) {
    if (!lp.held && !lp.remote_pending) {
      if (lp.token && !lp.recall_pending) {
        // Node holds the free token: hardware lock, no messages.
        lp.held = true;
        ++counters_->local_lock_acquires;
        SVMSIM_AGENT_EVENT(kLock, kLockLocal, p.id(), lock, 0);
        SVMSIM_DBG_LK(lock, "local acquire");
        SVMSIM_CHECK_HOOK(*sim_, on_lock_acquired, sim_->now(), self_, lock,
                          vc_);
        co_return;
      }
      if (lp.token && lp.recall_pending) {
        // The home recalled the token while it sat here free: hand it back
        // first, then queue remotely like everyone else.
        lp.recall_pending = false;
        lp.token = false;
        co_await send_token_return(lock, &p);
      }
      // Fetch the token from the lock's home.
      lp.remote_pending = true;
      ++counters_->remote_lock_acquires;
      SVMSIM_AGENT_EVENT(kLock, kLockRequest, p.id(), lock,
                         shared_->locks.home_of(lock));
      net::Message m;
      m.type = net::MsgType::kLockAcquire;
      m.dst = shared_->locks.home_of(lock);
      m.lock_id = lock;
      m.payload_bytes = vclock_wire_bytes();
      m.body = pools_->vclock(vc_);
      charge_send(p);
      co_await p.drain();
      const std::uint64_t id = comm_->rpc_post(m);
      // The grant comes back relative to this request's clock; keep a
      // reference so expand_clock can reconstruct the full grant clock.
      grant_bases_.push_back({id, std::get<VClockRef>(m.body)});
      co_await comm_->send(std::move(m));
      const Cycles t0 = sim_->now();
      net::Message grant = co_await comm_->await_reply(id);
      p.wait_end(TimeCat::kLockWait, t0);
      lp.remote_pending = false;
      lp.token = true;
      lp.held = true;
      SVMSIM_DBG_LK(lock, "remote acquire granted");
      co_await apply_invalidations(p, vclock_body(grant.body));
      SVMSIM_CHECK_HOOK(*sim_, on_lock_acquired, sim_->now(), self_, lock,
                        vc_);
      co_return;
    }
    // Queue behind local activity on this lock.
    engine::Trigger t(*sim_);
    lp.waiters.push_back(&t);
    const Cycles t0 = co_await p.wait_begin();
    co_await t.wait();
    p.wait_end(TimeCat::kLockWait, t0);
  }
}

Task<void> SvmAgent::release_lock(Processor& p, int lock) {
  // Release consistency: modifications must reach the homes before anyone
  // can acquire this lock and see the write notices.
  co_await flush(p);

  LockProxy& lp = proxy(lock);
  SVMSIM_DBG_LK(lock, "release (recall_pending=%d waiters=%zu)",
                  (int)lp.recall_pending, lp.waiters.size());
  assert(lp.held && "release of a lock this node does not hold");
  shared_->locks.state(lock).vc = vc_;
  SVMSIM_CHECK_HOOK(*sim_, on_lock_release, sim_->now(), self_, lock, vc_);
  p.charge(TimeCat::kProtocol, cfg_->arch.smp_lock_cycles);
  lp.held = false;

  if (lp.recall_pending) {
    lp.recall_pending = false;
    lp.token = false;
    co_await send_token_return(lock, &p);
  }
  wake_one_waiter(lp);
}

Task<void> SvmAgent::send_token_return(int lock, Processor* p) {
  const NodeId home = shared_->locks.home_of(lock);
  SVMSIM_AGENT_EVENT(kLock, kTokenReturn, p != nullptr ? p->id() : -1, lock,
                     home);
  if (p != nullptr) {
    charge_send(*p);
    co_await p->drain();
  } else {
    co_await sim_->delay(cfg_->comm.host_overhead);
  }
  if (home == self_) {
    // Token is already at its home node: process the return locally.
    net::Message local;
    local.lock_id = lock;
    co_await handle_token_return(std::move(local));
    co_return;
  }
  net::Message m;
  m.type = net::MsgType::kTokenReturn;
  m.dst = home;
  m.lock_id = lock;
  m.payload_bytes = vclock_wire_bytes();
  m.body = pools_->vclock(vc_);
  co_await comm_->send(std::move(m));
}

// ---------------------------------------------------------------------------
// Barrier (hierarchical: hardware inside the node, messages across nodes)
// ---------------------------------------------------------------------------

Task<void> SvmAgent::barrier(Processor& p) {
  ++counters_->barriers;
  SVMSIM_AGENT_EVENT(kLock, kBarrierEnter, p.id(), barrier_arrived_, 0);
  p.charge(TimeCat::kProtocol, cfg_->arch.smp_barrier_cycles);

  if (++barrier_arrived_ < procs_on_node_) {
    // The representative complete()s the episode, possibly while we are
    // still draining; the generation stamp keeps the wait answerable.
    engine::Episode ep(barrier_done_);
    const Cycles t0 = co_await p.wait_begin();
    co_await ep.wait();
    p.wait_end(TimeCat::kBarrierWait, t0);
    SVMSIM_AGENT_EVENT(kLock, kBarrierExit, p.id(), 0, 0);
    co_return;
  }

  // Last arriver: node representative.
  barrier_arrived_ = 0;
  co_await flush(p);
  SVMSIM_CHECK_HOOK(*sim_, on_barrier_flush, sim_->now(), self_, vc_);

  if (self_ == shared_->hub.manager()) {
    const Cycles t0 = co_await p.wait_begin();
    co_await shared_->hub.collect(barrier_arrivals_);
    p.wait_end(TimeCat::kBarrierWait, t0);

    // Incremental reduction: merged_{k-1} survives from the last episode,
    // and every episode-k clock covers it (each representative applied
    // invalidations with merged_{k-1} before leaving episode k-1), so
    // folding in vc_ plus each arrival's *delta entries* reproduces the
    // full N-clock gather-merge byte for byte — in O(changes), not
    // O(nodes^2).
    barrier_merged_.merge(vc_);
    for (const auto& a : barrier_arrivals_) {
      const VClockDeltaBody& d = vclock_delta_body(a.body);
      for (const VClockDeltaBody::Entry& e : d.entries) {
        // Guarded: an edge-cache delta records any change vs the last
        // arrival, and a component can lag the running merge.
        if (e.value > barrier_merged_.get(e.node)) {
          barrier_merged_.set(e.node, e.value);
        }
      }
    }
    for (const auto& a : barrier_arrivals_) {
      // in_barrier mirrors a.src's arrival clock exactly and cannot move
      // until a.src re-arrives, which needs this very release first.
      const VClock& their_vc = peer(a.src).in_barrier;
      const std::uint64_t notices =
          shared_->dir.count_notices(their_vc, barrier_merged_);
      net::Message rel;
      rel.type = net::MsgType::kBarrierRelease;
      rel.dst = a.src;
      rel.payload_bytes = vclock_wire_bytes() + 8 * notices;
      rel.body = encode_reply_delta(their_vc, barrier_merged_);
      charge_send(p);
      co_await p.drain();
      co_await comm_->send(std::move(rel));
    }
    barrier_arrivals_.clear();  // drops the arrival bodies back to the pool
    co_await apply_invalidations(p, barrier_merged_);
    SVMSIM_CHECK_HOOK(*sim_, on_barrier_exit, sim_->now(), self_, vc_);
  } else {
    barrier_release_.reset();
    net::Message arr;
    arr.type = net::MsgType::kBarrierArrive;
    arr.dst = shared_->hub.manager();
    arr.payload_bytes = vclock_wire_bytes();
    // Keep a reference to the arrival clock: the release comes back as a
    // delta relative to it (expand_clock resolves it through barrier_sent_).
    barrier_sent_ = pools_->vclock(vc_);
    arr.body = barrier_sent_;
    charge_send(p);
    co_await p.drain();
    co_await comm_->send(std::move(arr));

    const Cycles t0 = co_await p.wait_begin();
    co_await barrier_release_.wait();
    p.wait_end(TimeCat::kBarrierWait, t0);
    co_await apply_invalidations(p,
                                 vclock_body(barrier_release_msg_.body));
    barrier_release_msg_.recycle();  // return the shared body reference
    SVMSIM_CHECK_HOOK(*sim_, on_barrier_exit, sim_->now(), self_, vc_);
  }

  // Release the node's processors into the next episode.
  SVMSIM_AGENT_EVENT(kLock, kBarrierExit, p.id(), 1, 0);
  barrier_done_.complete();
}

// ---------------------------------------------------------------------------
// Incoming request handlers (interrupt context on a victim processor)
// ---------------------------------------------------------------------------

Task<void> SvmAgent::handle_request(net::Message m) {
  switch (m.type) {
    case net::MsgType::kPageRequest:
      co_await handle_page_request(std::move(m));
      break;
    case net::MsgType::kDiffBatch:
      co_await handle_diff_batch(std::move(m));
      break;
    case net::MsgType::kLockAcquire:
      co_await handle_lock_acquire(std::move(m));
      break;
    case net::MsgType::kLockRecall:
      co_await handle_lock_recall(std::move(m));
      break;
    case net::MsgType::kTokenReturn:
      co_await handle_token_return(std::move(m));
      break;
    default:
      assert(false && "unexpected request type");
  }
}

void SvmAgent::handle_direct(net::Message&& m) {
  switch (m.type) {
    case net::MsgType::kBarrierArrive:
      assert(self_ == shared_->hub.manager());
      shared_->hub.arrive(std::move(m));
      break;
    case net::MsgType::kBarrierRelease:
      barrier_release_msg_ = std::move(m);
      barrier_release_.fire();
      break;
    default:
      assert(false && "unexpected direct message");
  }
}

Task<void> SvmAgent::handle_page_request(net::Message m) {
  const std::uint32_t pb = space_->page_bytes();
  co_await sim_->delay(cfg_->arch.tlb_access_cycles +
                       install_cycles(cfg_->arch, pb));
  auto home = space_->home_data(m.page);
  BytesRef data = pools_->bytes();
  data->bytes.assign(home.begin(), home.end());
  SVMSIM_DBG_EVT(m.page, "page reply snapshot for node %d word0=%d", m.src,
                   *reinterpret_cast<const int*>(data->bytes.data()));
  co_await sim_->delay(cfg_->comm.host_overhead);
  net::Message rep;
  rep.type = net::MsgType::kPageReply;
  rep.page = m.page;
  rep.payload_bytes = pb;
  rep.body = std::move(data);
  co_await comm_->reply(m, std::move(rep));
}

Task<void> SvmAgent::handle_diff_batch(net::Message m) {
  const DiffBatchBody& batch = diff_batch_body(m.body);
  const std::uint32_t pb = space_->page_bytes();
  Cycles cost = 0;
  for (const PageDiff& d : batch.view()) {
    apply_diff(space_->home_data(d.page), d);
    SVMSIM_CHECK_HOOK(*sim_, on_diff_apply, sim_->now(), m.src, d.page);
    SVMSIM_AGENT_EVENT(kPage, kDiffApply, -1, d.page, d.modified_bytes());
    SVMSIM_DBG_EVT(d.page, "diff applied at home from node %d (%llu bytes)",
                     m.src, static_cast<unsigned long long>(d.modified_bytes()));
    cost += cfg_->arch.tlb_access_cycles + diff_apply_cycles(cfg_->arch, d);
    if (invalidate_caches) invalidate_caches(d.page * pb, pb);
  }
  co_await sim_->delay(cost + cfg_->comm.host_overhead);
  net::Message rep;
  rep.type = net::MsgType::kDiffAck;
  rep.payload_bytes = 8;
  co_await comm_->reply(m, std::move(rep));
}

Task<void> SvmAgent::grant_lock(net::Message req) {
  LockHomeState& s = shared_->locks.state(req.lock_id);
  SVMSIM_AGENT_EVENT(kLock, kLockGrant, -1, req.lock_id, req.src);
  SVMSIM_DBG_LK(req.lock_id, "grant to node %d (waiters=%zu)", req.src,
                  s.waiters.size());
  s.owner = req.src;
  s.recall_sent = false;
  const std::uint64_t notices =
      shared_->dir.count_notices(vclock_body(req.body), s.vc);
  co_await sim_->delay(cfg_->comm.host_overhead);
  net::Message g;
  g.type = net::MsgType::kLockGrant;
  g.lock_id = req.lock_id;
  g.payload_bytes = vclock_wire_bytes() + 8 * notices;
  g.body = encode_reply_delta(vclock_body(req.body), s.vc);
  co_await comm_->reply(req, std::move(g));
  // Pipeline the next handoff if more requesters are queued.
  if (!s.waiters.empty() && !s.recall_sent) {
    s.recall_sent = true;
    if (s.owner == self_) {
      proxy(req.lock_id).recall_pending = true;
    } else {
      co_await sim_->delay(cfg_->comm.host_overhead);
      net::Message rec;
      rec.type = net::MsgType::kLockRecall;
      rec.dst = s.owner;
      rec.lock_id = req.lock_id;
      rec.payload_bytes = 16;
      co_await comm_->send(std::move(rec));
    }
  }
}

Task<void> SvmAgent::handle_lock_acquire(net::Message m) {
  const int lock = m.lock_id;
  LockHomeState& s = shared_->locks.state(lock);
  if (s.owner == self_) {
    LockProxy& lp = proxy(lock);
    SVMSIM_DBG_LK(lock, "acquire request from node %d (owner=self)", m.src);
    if (lp.token && !lp.held && !lp.remote_pending && lp.waiters.empty() &&
        !lp.recall_pending) {
      lp.token = false;
      co_await grant_lock(std::move(m));
      co_return;
    }
    // Busy here at home: queue the request; our own release will hand over.
    lp.recall_pending = true;
    s.recall_sent = true;
    s.waiters.push_back(std::move(m));
    co_return;
  }
  SVMSIM_DBG_LK(lock, "acquire request from node %d queued (owner=%d)",
                  m.src, s.owner);
  s.waiters.push_back(std::move(m));
  if (!s.recall_sent) {
    s.recall_sent = true;
    co_await sim_->delay(cfg_->comm.host_overhead);
    net::Message rec;
    rec.type = net::MsgType::kLockRecall;
    rec.dst = s.owner;
    rec.lock_id = lock;
    rec.payload_bytes = 16;
    co_await comm_->send(std::move(rec));
  }
}

Task<void> SvmAgent::handle_lock_recall(net::Message m) {
  LockProxy& lp = proxy(m.lock_id);
  SVMSIM_AGENT_EVENT(kLock, kLockRecall, -1, m.lock_id, m.src);
  SVMSIM_DBG_LK(m.lock_id, "recall received (held=%d token=%d)",
                  (int)lp.held, (int)lp.token);
  if (lp.token && !lp.held && !lp.remote_pending) {
    // Token is free: return it now, even if local processors are queued —
    // leaving it cached with nobody holding it would strand the token
    // (no release will ever trigger the handoff). Queued locals re-acquire
    // through the home like everyone else.
    lp.token = false;
    co_await send_token_return(m.lock_id, nullptr);
    wake_one_waiter(lp);
    co_return;
  }
  // Busy (or the recall overtook our grant): give it back at release time.
  lp.recall_pending = true;
}

Task<void> SvmAgent::handle_token_return(net::Message m) {
  const int lock = m.lock_id;
  SVMSIM_DBG_LK(lock, "token returned");
  assert(lock >= 0);
  LockHomeState& s = shared_->locks.state(lock);
  s.recall_sent = false;
  if (!s.waiters.empty()) {
    net::Message req = std::move(s.waiters.front());
    s.waiters.pop_front();
    co_await grant_lock(std::move(req));
    co_return;
  }
  s.owner = self_;
  proxy(lock).token = true;
}

// ---------------------------------------------------------------------------
// HLRC specialization
// ---------------------------------------------------------------------------

Task<void> HlrcAgent::arm_write(Processor& p, PageId page, PageCopy& c) {
  (void)page;
  if (home_of(page) == self_) co_return;  // home writes need no twin
  if (c.twin) co_return;
  c.twin = space_->acquire_twin(c.data);
  ++counters_->twins_created;
  SVMSIM_AGENT_EVENT(kPage, kTwinCreate, p.id(), page, 0);
  p.charge(TimeCat::kProtocol,
           install_cycles(cfg_->arch, space_->page_bytes()));
}

void HlrcAgent::on_store(Processor&, PageId, PageCopy&, std::uint32_t,
                         std::uint32_t) {}

void HlrcAgent::make_diff(Processor& p, PageId page, PageCopy& c,
                          PageDiff& out) {
  assert(c.twin && "diffing a page without a twin");
  compute_diff(page, c.data, c.twin->bytes, out);
  SVMSIM_DBG_EVT(page, "diff created (%llu bytes modified)",
                   static_cast<unsigned long long>(out.modified_bytes()));
  p.charge(TimeCat::kProtocol,
           diff_create_cycles(cfg_->arch, out, space_->page_bytes()));
  ++counters_->diffs_created;
  counters_->diff_bytes += out.wire_bytes();
  SVMSIM_AGENT_EVENT(kPage, kDiffCreate, p.id(), page, out.wire_bytes());
  c.twin.reset();
}

void HlrcAgent::install() {
  SvmAgent::install();
  // Per-home batch tables, sized once: the node count never changes.
  batch_by_home_.resize(static_cast<std::size_t>(space_->nodes()));
  batch_bytes_.resize(static_cast<std::size_t>(space_->nodes()), 0);
}

Task<void> HlrcAgent::propagate_dirty(Processor& p,
                                      const std::vector<PageId>& pages) {
  batch_homes_.clear();
  flush_in_flight_.clear();
  rpc_ids_.clear();
  // The dirty list can hold duplicates (a page flushed early by an
  // invalidation and then re-dirtied); processing one twice would wait on
  // this very batch's own in-flight flush. Stamp instead of a seen-set.
  const std::uint32_t epoch = ++flush_epoch_;
  bool dropped_diff = false;  // kLostDiff fault injection, one per pass

  for (PageId page : pages) {
    std::uint32_t& stamp = flush_epoch_of(page);
    if (stamp == epoch) continue;
    stamp = epoch;
    PageCopy& c = space_->copy(self_, page);
    // Always serialize behind an in-flight flush of this page first: a
    // concurrent flush_page_for_invalidation may be carrying *this
    // release's* writes, and the release is not complete until they are
    // acked at the home. Only then decide whether anything is left to send.
    co_await wait_page_flush(p, page);
    if (!c.dirty) continue;  // flushed early by an invalidation
    c.dirty = false;
    const NodeId h = home_of(page);
    if (h == self_) {
      SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page,
                        c.state, PageState::kReadOnly,
                        check::PageEvent::kFlushDemote);
      c.state = PageState::kReadOnly;  // re-arm write detection at home
      continue;
    }
    DiffBatchRef& bref = batch_by_home_[static_cast<std::size_t>(h)];
    if (!bref) {
      bref = pools_->diff_batch();
      batch_bytes_[static_cast<std::size_t>(h)] = 0;
      batch_homes_.push_back(h);
    }
    PageDiff& d = bref->next();
    make_diff(p, page, c, d);
    SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                      PageState::kReadOnly, check::PageEvent::kFlushDemote);
    c.state = PageState::kReadOnly;
    if (d.empty()) {
      bref->pop_last();
      continue;
    }
    SVMSIM_CHECK_HOOK(*sim_, on_diff_create, self_, page);
    // Fault injection (kLostDiff): drop the first diff of every release
    // flush on the floor, as if the batch had been truncated.
    if (SVMSIM_CHECK_MUTATION_IS(*sim_, kLostDiff) && !dropped_diff) {
      dropped_diff = true;
      bref->pop_last();
      continue;
    }
    begin_page_flush(page);
    flush_in_flight_.push_back(page);
    batch_bytes_[static_cast<std::size_t>(h)] += d.wire_bytes();
  }

  for (NodeId h : batch_homes_) {
    DiffBatchRef& bref = batch_by_home_[static_cast<std::size_t>(h)];
    if (bref->empty()) {  // every diff of this home came up empty
      bref.reset();
      continue;
    }
    net::Message m;
    m.type = net::MsgType::kDiffBatch;
    m.dst = h;
    m.payload_bytes = 16 + batch_bytes_[static_cast<std::size_t>(h)];
    m.body = std::move(bref);  // leaves the per-home slot empty
    charge_send(p);
    co_await p.drain();
    rpc_ids_.push_back(comm_->rpc_post(m));
    co_await comm_->send(std::move(m));
  }
  if (!rpc_ids_.empty()) {
    const Cycles t0 = co_await p.wait_begin();
    for (std::uint64_t id : rpc_ids_) {
      co_await comm_->await_reply(id);
    }
    p.wait_end(TimeCat::kProtocol, t0);
  }
  for (PageId page : flush_in_flight_) end_page_flush(page);
}

Task<void> HlrcAgent::flush_page_for_invalidation(Processor& p, PageId page,
                                                  PageCopy& c) {
  co_await wait_page_flush(p, page);
  if (!c.dirty) co_return;
  c.dirty = false;
  DiffBatchRef batch = pools_->diff_batch();
  PageDiff& d = batch->next();
  make_diff(p, page, c, d);
  // Demote immediately: a write racing the ack below must fault so it gets
  // a fresh twin and is not silently dropped by the coming invalidation.
  SVMSIM_CHECK_HOOK(*sim_, on_page_state, sim_->now(), self_, page, c.state,
                    PageState::kReadOnly, check::PageEvent::kFlushDemote);
  c.state = PageState::kReadOnly;
  if (d.empty()) co_return;  // dropping the ref recycles the batch
  SVMSIM_CHECK_HOOK(*sim_, on_diff_create, self_, page);
  begin_page_flush(page);
  const std::uint64_t wire = d.wire_bytes();
  net::Message m;
  m.type = net::MsgType::kDiffBatch;
  m.dst = home_of(page);
  m.payload_bytes = 16 + wire;
  m.body = std::move(batch);
  charge_send(p);
  co_await p.drain();
  const std::uint64_t id = comm_->rpc_post(m);
  co_await comm_->send(std::move(m));
  const Cycles t0 = sim_->now();
  co_await comm_->await_reply(id);
  p.wait_end(TimeCat::kProtocol, t0);
  end_page_flush(page);
}

}  // namespace svmsim::svm
