// The simulated cluster: nodes x processors, network, shared address space
// and one protocol agent per node. This is the library's main entry type.
#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "engine/simulator.hpp"
#include "net/nic.hpp"
#include "svm/address_space.hpp"
#include "svm/aurc.hpp"
#include "svm/hlrc.hpp"

namespace svmsim::trace {
class Tracer;
}  // namespace svmsim::trace

namespace svmsim::check {
class Checker;
}  // namespace svmsim::check

namespace svmsim {

class Machine {
 public:
  /// Lock-id pool available to applications (ids are taken modulo this).
  static constexpr int kMaxLocks = 8192;

  explicit Machine(const SimConfig& cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] engine::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] Stats& stats() noexcept { return stats_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] svm::AddressSpace& space() noexcept { return space_; }

  /// The run's event recorder, or nullptr when cfg.trace is disabled (or
  /// tracing is compiled out). Also reachable as sim().tracer().
  [[nodiscard]] trace::Tracer* tracer() noexcept { return tracer_.get(); }

  /// The run's consistency checker, or nullptr when cfg.check is disabled
  /// (or checking is compiled out). Also reachable as sim().checker().
  [[nodiscard]] check::Checker* checker() noexcept { return checker_.get(); }

  [[nodiscard]] int total_procs() const noexcept {
    return cfg_.comm.total_procs;
  }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] NodeId node_of(ProcId p) const noexcept {
    return p / cfg_.comm.procs_per_node;
  }

  [[nodiscard]] Node& node(NodeId n) { return *nodes_.at(n); }
  [[nodiscard]] Processor& proc(ProcId p) {
    return nodes_.at(node_of(p))->proc(p % cfg_.comm.procs_per_node);
  }
  [[nodiscard]] svm::SvmAgent& agent(NodeId n) { return *agents_.at(n); }
  [[nodiscard]] svm::SvmAgent& agent_of(ProcId p) {
    return agent(node_of(p));
  }

  /// Allocate shared memory (application setup).
  svm::GlobalAddr alloc(std::uint64_t bytes, svm::Distribution d) {
    return space_.alloc(bytes, d);
  }

  /// Out-of-band data access for initialization/validation.
  void debug_read(svm::GlobalAddr a, void* dst, std::uint64_t bytes) {
    space_.debug_read(a, dst, bytes);
  }
  /// Out-of-band write; mirrored into the checker's shadow (initialization
  /// data is happens-before everything), hence out of line.
  void debug_write(svm::GlobalAddr a, const void* src, std::uint64_t bytes);

 private:
  SimConfig cfg_;
  engine::Simulator sim_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<check::Checker> checker_;
  Stats stats_;
  svm::AddressSpace space_;
  svm::SharedState shared_;
  net::Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<svm::SvmAgent>> agents_;
};

}  // namespace svmsim
