// Multiple network interfaces per node (paper §10 future work).
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

TEST(MultiNic, CorrectAcrossNicCounts) {
  for (int nics : {1, 2, 4}) {
    SimConfig cfg = config_with(16, 4);
    cfg.comm.nics_per_node = nics;
    auto app = apps::make_app("water-nsq", apps::Scale::kTiny);
    auto r = svmsim::run(*app, cfg);
    EXPECT_TRUE(r.validated) << nics << " NIs";
  }
}

TEST(MultiNic, CorrectUnderAurc) {
  SimConfig cfg = config_with(16, 4, Protocol::kAURC);
  cfg.comm.nics_per_node = 2;
  auto app = apps::make_app("radix", apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  EXPECT_TRUE(r.validated);
}

TEST(MultiNic, RelievesBandwidthBoundApps) {
  // With a slow I/O bus, a second NI (its own I/O bus and packet engines)
  // should speed up the bandwidth-bound codes.
  SimConfig slow1 = config_with(16, 4);
  slow1.comm.io_bus_mb_per_mhz = 0.125;
  SimConfig slow2 = slow1;
  slow2.comm.nics_per_node = 2;
  auto a1 = apps::make_app("fft", apps::Scale::kTiny);
  auto a2 = apps::make_app("fft", apps::Scale::kTiny);
  auto r1 = svmsim::run(*a1, slow1);
  auto r2 = svmsim::run(*a2, slow2);
  EXPECT_TRUE(r1.validated);
  EXPECT_TRUE(r2.validated);
  EXPECT_LT(r2.time, r1.time);
}

TEST(MultiNic, PairwiseTrafficStaysOrdered) {
  // The locked-accumulation exactness test is the ordering canary: if
  // messages between a node pair could reorder across NIs, diffs would
  // race grants and updates would be lost.
  SimConfig cfg = config_with(16, 4);
  cfg.comm.nics_per_node = 3;  // deliberately not a divisor of anything
  constexpr int kSlots = 32;
  apps::SharedArray<long long> acc;
  LambdaWorkload w(
      "multi-nic-acc",
      [&](Machine& m) {
        acc = apps::SharedArray<long long>::alloc(
            m, kSlots, apps::Distribution::block());
        for (int i = 0; i < kSlots; ++i) acc.debug_put(m, i, 0LL);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        apps::Shm shm(m, pid);
        for (int k = 0; k < 16; ++k) {
          const int t = (pid + k) % 16;
          co_await shm.lock(70 + t);
          for (int i = t * 2; i < t * 2 + 2; ++i) {
            const long long v = co_await acc.get(shm, i);
            co_await acc.put(shm, i, v + 1);
          }
          co_await shm.unlock(70 + t);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        for (int i = 0; i < kSlots; ++i) {
          if (acc.debug_get(m, i) != 16) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
}

}  // namespace
}  // namespace svmsim::test
