// A small-buffer-optimized, move-only callable for the event-queue hot path.
//
// std::function heap-allocates for captures beyond ~16 bytes and dispatches
// through RTTI-adorned vtables; every simulated event used to pay that cost.
// BasicInlineAction stores callables up to `Capacity` bytes inline and
// dispatches through plain function pointers, falling back to a single heap
// allocation only for oversized, over-aligned or throwing-move captures.
// Relocation (the operation heap sifts perform on every event move) is a
// fixed-size memcpy for trivially copyable and heap-backed callables —
// only non-trivial inline captures pay an indirect call to a per-type
// manager, so moving events around the heap vector stays branch-light.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace svmsim::engine {

template <std::size_t Capacity>
class BasicInlineAction {
  static_assert(Capacity >= sizeof(void*), "buffer must hold a pointer");

 public:
  static constexpr std::size_t kCapacity = Capacity;

  BasicInlineAction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, BasicInlineAction> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  BasicInlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      if constexpr (std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>) {
        kind_ = Kind::kTrivialInline;
      } else {
        kind_ = Kind::kManagedInline;
        manage_ = [](Op op, void* self, void* dst) {
          Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
          if (op == Op::kRelocate) {
            ::new (dst) Fn(std::move(*fn));
          }
          fn->~Fn();
        };
      }
    } else {
      void* p = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      kind_ = Kind::kHeap;
      invoke_ = [](void* s) {
        void* p;
        std::memcpy(&p, s, sizeof(p));
        (*static_cast<Fn*>(p))();
      };
      manage_ = [](Op, void* self, void*) {
        void* p;
        std::memcpy(&p, self, sizeof(p));
        delete static_cast<Fn*>(p);
      };
    }
  }

  BasicInlineAction(BasicInlineAction&& other) noexcept { adopt(other); }

  BasicInlineAction& operator=(BasicInlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(other);
    }
    return *this;
  }

  BasicInlineAction(const BasicInlineAction&) = delete;
  BasicInlineAction& operator=(const BasicInlineAction&) = delete;

  ~BasicInlineAction() { reset(); }

  void operator()() {
    assert(invoke_ && "calling an empty action");
    invoke_(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// True if the stored callable lives in the inline buffer (introspection
  /// for tests; an empty action reports false).
  [[nodiscard]] bool stores_inline() const noexcept {
    return invoke_ != nullptr && kind_ != Kind::kHeap;
  }

  /// Whether a callable of type F would be stored inline (vs heap).
  template <typename F>
  static constexpr bool stores_inline_v =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

 private:
  enum class Op : std::uint8_t { kDestroy, kRelocate };
  enum class Kind : std::uint8_t { kTrivialInline, kManagedInline, kHeap };

  void adopt(BasicInlineAction& other) noexcept {
    if (!other.invoke_) return;
    if (other.kind_ == Kind::kManagedInline) {
      other.manage_(Op::kRelocate, other.buf_, buf_);
    } else {
      // Trivially copyable inline state and heap pointers alike relocate by
      // a fixed-size copy; the moved-from side is dropped without a destroy.
      std::memcpy(buf_, other.buf_, Capacity);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    kind_ = other.kind_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_ && kind_ != Kind::kTrivialInline) {
      manage_(Op::kDestroy, buf_, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void*, void*);

  alignas(void*) unsigned char buf_[Capacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;  // null for trivially copyable inline state
  Kind kind_ = Kind::kTrivialInline;
};

}  // namespace svmsim::engine
