// FFT: six-step 1D complex FFT over an m x m matrix (SPLASH-2 style).
//
// The communication is the three blocked all-to-all transposes; the row FFTs
// are local to each processor's block of rows. This gives the paper's
// "all-to-all, read-based" pattern with a high inherent communication-to-
// computation ratio, which makes FFT one of the bandwidth-bound codes
// (Figures 8/9).
#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

using Cplx = std::complex<double>;

/// In-place iterative radix-2 FFT (inverse when sign = +1).
void fft_inplace(std::vector<Cplx>& a, int sign) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

/// Sequential six-step reference, matching the parallel phase structure
/// exactly (same per-row FFT order), so results compare bitwise.
std::vector<Cplx> six_step_reference(const std::vector<Cplx>& x,
                                     std::size_t m) {
  const std::size_t n = m * m;
  std::vector<Cplx> A = x;
  std::vector<Cplx> B(n);
  auto transpose = [&](const std::vector<Cplx>& src, std::vector<Cplx>& dst) {
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) dst[a * m + b] = src[b * m + a];
    }
  };
  auto fft_rows = [&](std::vector<Cplx>& mat) {
    std::vector<Cplx> row(m);
    for (std::size_t r = 0; r < m; ++r) {
      std::copy(mat.begin() + static_cast<std::ptrdiff_t>(r * m),
                mat.begin() + static_cast<std::ptrdiff_t>((r + 1) * m),
                row.begin());
      fft_inplace(row, -1);
      std::copy(row.begin(), row.end(),
                mat.begin() + static_cast<std::ptrdiff_t>(r * m));
    }
  };
  transpose(A, B);
  fft_rows(B);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(a) *
                         static_cast<double>(b) / static_cast<double>(n);
      B[a * m + b] *= Cplx(std::cos(ang), std::sin(ang));
    }
  }
  transpose(B, A);
  fft_rows(A);
  transpose(A, B);
  return B;
}

class FftApp final : public Application {
 public:
  explicit FftApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        m_ = 16;
        break;
      case Scale::kSmall:
        m_ = 64;
        break;
      case Scale::kLarge:
        m_ = 128;
        break;
    }
  }

  [[nodiscard]] std::string name() const override { return "fft"; }

  void setup(Machine& mach) override {
    const std::size_t n = m_ * m_;
    a_ = SharedArray<Cplx>::alloc(mach, n, Distribution::block());
    b_ = SharedArray<Cplx>::alloc(mach, n, Distribution::block());
    input_.resize(n);
    Rng rng(0xFF7u);
    for (auto& v : input_) v = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    for (std::size_t i = 0; i < n; ++i) a_.debug_put(mach, i, input_[i]);
    expected_ = six_step_reference(input_, m_);
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    const std::size_t P = static_cast<std::size_t>(shm.nprocs());
    const std::size_t rows = m_ / P;       // rows per processor
    const std::size_t r0 = rows * static_cast<std::size_t>(pid);

    co_await transpose(shm, a_, b_, r0, rows);
    co_await shm.barrier();
    co_await fft_rows(shm, b_, r0, rows, /*twiddle=*/true);
    co_await shm.barrier();
    co_await transpose(shm, b_, a_, r0, rows);
    co_await shm.barrier();
    co_await fft_rows(shm, a_, r0, rows, /*twiddle=*/false);
    co_await shm.barrier();
    co_await transpose(shm, a_, b_, r0, rows);
  }

  bool validate(Machine& mach) override {
    const std::size_t n = m_ * m_;
    for (std::size_t i = 0; i < n; ++i) {
      const Cplx got = b_.debug_get(mach, i);
      if (std::abs(got - expected_[i]) > 1e-9 * (1.0 + std::abs(expected_[i]))) {
        return false;
      }
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 25;
  /// dst[a][b] = src[b][a] for this processor's rows a in [r0, r0+rows):
  /// blocked column gathers (contiguous sub-row reads from every node).
  engine::Task<void> transpose(Shm& shm, const SharedArray<Cplx>& src,
                               const SharedArray<Cplx>& dst, std::size_t r0,
                               std::size_t rows) {
    std::vector<Cplx> local(rows * m_);
    std::vector<Cplx> strip(rows);
    for (std::size_t b = 0; b < m_; ++b) {
      // Elements src[b][r0 .. r0+rows) land in column b of our rows.
      co_await src.get_block(shm, b * m_ + r0, strip.data(), rows);
      for (std::size_t a = 0; a < rows; ++a) local[a * m_ + b] = strip[a];
      shm.compute(kWorkScale * 2 * rows);  // scatter/copy work
    }
    for (std::size_t a = 0; a < rows; ++a) {
      co_await dst.put_block(shm, (r0 + a) * m_, local.data() + a * m_, m_);
    }
  }

  engine::Task<void> fft_rows(Shm& shm, const SharedArray<Cplx>& mat,
                              std::size_t r0, std::size_t rows, bool twiddle) {
    const std::size_t n = m_ * m_;
    std::vector<Cplx> row(m_);
    const auto log2m = static_cast<Cycles>(std::lround(std::log2(m_)));
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t a = r0 + r;
      co_await mat.get_block(shm, a * m_, row.data(), m_);
      fft_inplace(row, -1);
      shm.compute(kWorkScale * 5 * m_ * log2m);  // ~5 cycles per butterfly stage element
      if (twiddle) {
        for (std::size_t b = 0; b < m_; ++b) {
          const double ang = -2.0 * std::numbers::pi * static_cast<double>(a) *
                             static_cast<double>(b) / static_cast<double>(n);
          row[b] *= Cplx(std::cos(ang), std::sin(ang));
        }
        shm.compute(kWorkScale * 8 * m_);
      }
      co_await mat.put_block(shm, a * m_, row.data(), m_);
    }
  }

  std::size_t m_ = 16;
  SharedArray<Cplx> a_;
  SharedArray<Cplx> b_;
  std::vector<Cplx> input_;
  std::vector<Cplx> expected_;
};

}  // namespace

std::unique_ptr<Application> make_fft(Scale scale) {
  return std::make_unique<FftApp>(scale);
}

}  // namespace svmsim::apps
