// Pluggable interconnect topologies with link-level contention.
//
// The legacy network (paper §2) is a contention-free crossbar: a packet's
// in-flight time is wire latency + serialization, independent of every other
// packet. A Topology replaces that single formula with a deterministic route
// — a sequence of physical links — where each link is an engine::Resource:
// packets serialize at the link's bandwidth in FIFO order and queue behind
// each other, so congestion on a shared fat-tree up-link or a torus ring is
// actually modeled. Links split into two cost classes (ArchParams): the
// intra-node injection/ejection links between a host and its first
// switch/router, and the inter-node switch-to-switch links.
//
// Contract (docs/topology.md):
//  - route() is a pure function of (src, dst): same pair, same link
//    sequence, every call, on every thread. This is what makes the PDES
//    replay of a contended network deterministic — link state is only ever
//    touched by its owner partition, in wire-band (time, key) order.
//  - Every link's owner names the node whose partition serves the link.
//  - min_latency() is the analytic minimum advance of a single hop
//    (latency + header serialization over the fastest link class) and is
//    the PDES lookahead floor: a hop event firing at t schedules its
//    successor no earlier than t + min_latency().
//  - contended() == false (the Crossbar backend) short-circuits
//    Network::transmit back onto the byte-identical legacy path.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>

#include "core/params.hpp"
#include "engine/resource.hpp"
#include "engine/simulator.hpp"
#include "engine/types.hpp"
#include "topo/spec.hpp"

namespace svmsim::topo {

/// Link cost/role classes, stored in Stats::LinkUse::kind.
enum class LinkKind : std::int8_t {
  kInject = 0,  ///< host -> first switch/router (intra-node class)
  kEject,       ///< last switch/router -> host (intra-node class)
  kUp,          ///< fat tree: toward the core
  kDown,        ///< fat tree: toward the hosts
  kRing,        ///< torus: directed neighbor link
};

[[nodiscard]] std::string_view to_string(LinkKind k) noexcept;

using LinkId = std::uint32_t;

/// One directed physical link. The Resource provides the FIFO serialization
/// point (reserve(): no coroutine needed from a scheduled hop event); the
/// tallies feed the per-link occupancy rows of Stats.
struct Link {
  engine::Resource server;
  NodeId owner;            ///< node whose partition serves this link
  Cycles latency;          ///< propagation delay after serialization
  double bytes_per_cycle;  ///< serialization bandwidth
  LinkKind kind;
  std::uint64_t wait_cycles = 0;  ///< accumulated queueing delay
  std::uint64_t bytes = 0;        ///< bytes serialized

  Link(engine::Simulator& sim, NodeId owner_node, Cycles lat, double bw,
       LinkKind k) noexcept
      : server(sim),
        owner(owner_node),
        latency(lat),
        bytes_per_cycle(bw),
        kind(k) {}
};

/// Which partition simulator owns a node — the Machine curries its
/// partition mapping through this when constructing a backend, so each
/// link's Resource is bound to the owner partition's clock.
using SimOfNode = std::function<engine::Simulator&(NodeId)>;

class Topology {
 public:
  /// Routes never exceed this many links: the per-packet hop index travels
  /// in 8 bits of pooled wire state (net::Network::Hop). Backends whose
  /// diameter could exceed it (a long thin torus) reject at construction.
  static constexpr int kMaxHops = 255;

  /// Allocation-free route output buffer (route() runs per hop on the
  /// transmit hot path).
  struct RouteBuf {
    std::array<LinkId, kMaxHops> link;
    int hops = 0;
    void push(LinkId id) noexcept {
      link[static_cast<std::size_t>(hops++)] = id;
    }
  };

  virtual ~Topology() = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Deterministic route computation: fill `out` with the link sequence
  /// from src's injection link to dst's ejection link. Pure in (src, dst).
  virtual void route(NodeId src, NodeId dst, RouteBuf& out) const noexcept = 0;

  /// False only for the Crossbar backend (no links, legacy transmit path).
  [[nodiscard]] virtual bool contended() const noexcept { return true; }

  /// Analytic PDES lookahead floor; see the header comment.
  [[nodiscard]] Cycles min_latency() const noexcept { return min_latency_; }

  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] Link& link(std::size_t i) noexcept { return links_[i]; }
  [[nodiscard]] const Link& link(std::size_t i) const noexcept {
    return links_[i];
  }

 protected:
  explicit Topology(const ArchParams& arch) noexcept : arch_(&arch) {}

  /// Register one directed link of the given class; returns its id.
  LinkId add_link(engine::Simulator& sim, NodeId owner, LinkKind kind);
  /// Compute min_latency_ over the registered links. Every contended
  /// backend's constructor ends with this.
  void seal_links() noexcept;

  const ArchParams* arch_;
  std::deque<Link> links_;  // deque: Resource addresses must be stable
  Cycles min_latency_ = 1;
};

/// Whether `spec` can host a cluster of `nodes` nodes: fat tree capacity is
/// k^3/4 hosts (partial trees allowed), torus extents must multiply to
/// exactly `nodes`. kLegacy/kCrossbar fit everything.
[[nodiscard]] bool fits(const Spec& spec, int nodes) noexcept;

/// Construct the backend for `spec`. Throws std::invalid_argument when the
/// spec cannot host `nodes` nodes (callers that want an exit code instead
/// check topo::fits first — see bench_common).
[[nodiscard]] std::unique_ptr<Topology> make_topology(
    const Spec& spec, const ArchParams& arch, int nodes,
    const SimOfNode& sim_of_node);

}  // namespace svmsim::topo
