#include "svm/vclock.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace svmsim::svm {
namespace {

TEST(VClock, StartsAtZero) {
  VClock v(4);
  for (int n = 0; n < 4; ++n) EXPECT_EQ(v.get(n), 0u);
}

TEST(VClock, AdvanceIncrementsOneComponent) {
  VClock v(4);
  EXPECT_EQ(v.advance(2), 1u);
  EXPECT_EQ(v.advance(2), 2u);
  EXPECT_EQ(v.get(2), 2u);
  EXPECT_EQ(v.get(0), 0u);
}

TEST(VClock, CoversInterval) {
  VClock v(2);
  v.set(1, 3);
  EXPECT_TRUE(v.covers(1, 3));
  EXPECT_TRUE(v.covers(1, 1));
  EXPECT_FALSE(v.covers(1, 4));
  EXPECT_TRUE(v.covers(0, 0));
}

TEST(VClock, CoversIsComponentWise) {
  VClock a(3), b(3);
  a.set(0, 2);
  a.set(1, 2);
  b.set(0, 1);
  b.set(1, 2);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  b.set(2, 1);
  EXPECT_FALSE(a.covers(b));  // incomparable
  EXPECT_FALSE(b.covers(a));
}

TEST(VClock, MergeTakesComponentMax) {
  VClock a(3), b(3);
  a.set(0, 5);
  b.set(1, 7);
  b.set(0, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(2), 0u);
  EXPECT_TRUE(a.covers(b));
}

TEST(VClock, EqualityAndToString) {
  VClock a(2), b(2);
  EXPECT_EQ(a, b);
  a.advance(0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "[1 0]");
}

// ---------------------------------------------------------------------------
// Property tests (fixed seed, sizes straddling the SBO boundary). These
// model the sparse clock transport of hlrc.cpp at the VClock level: the
// edge caches mirror each other through plain value entries, and reply
// deltas expand to the dense merge.
// ---------------------------------------------------------------------------

const int kPropertySizes[] = {1, 4, 15, 16, 17, 64, 256};

VClock random_clock(std::mt19937& rng, int nodes, std::uint32_t cap) {
  VClock v(nodes);
  std::uniform_int_distribution<std::uint32_t> d(0, cap);
  for (int i = 0; i < nodes; ++i) v.set(i, d(rng));
  return v;
}

/// Edge transport as hlrc.cpp implements it: entries are the components
/// that differ from the sender's last-sent cache, applied with plain set()
/// on both sides.
struct Edge {
  explicit Edge(int nodes) : out(nodes), in(nodes) {}
  VClock out, in;

  void send(const VClock& sent) {
    std::vector<std::pair<NodeId, std::uint32_t>> entries;
    if (!(sent == out)) {
      for (int i = 0; i < sent.size(); ++i) {
        if (sent.get(i) != out.get(i)) {
          entries.push_back({i, sent.get(i)});
          out.set(i, sent.get(i));
        }
      }
    }
    for (const auto& [node, value] : entries) in.set(node, value);
  }
};

TEST(VClockProperty, EdgeDeltaRoundTripMirrorsSender) {
  std::mt19937 rng(20260809);
  for (int nodes : kPropertySizes) {
    Edge edge(nodes);
    VClock cur(nodes);
    for (int step = 0; step < 200; ++step) {
      // Mix monotone advances with completely fresh clocks: construction
      // and enqueue order can invert between processors, so successive
      // clocks on one edge are NOT monotone and entries can move down.
      if (step % 5 == 4) {
        cur = random_clock(rng, nodes, 8);  // out-of-order / stale clock
      } else {
        cur.advance(static_cast<NodeId>(step % nodes));
        if (step % 3 == 0) cur.merge(random_clock(rng, nodes, 6));
      }
      edge.send(cur);
      ASSERT_EQ(edge.in, cur) << "nodes=" << nodes << " step=" << step;
      ASSERT_EQ(edge.in, edge.out);
    }
    // A repeat send encodes zero entries and still round-trips.
    edge.send(cur);
    EXPECT_EQ(edge.in, cur);
  }
}

TEST(VClockProperty, ReplyDeltaExpandsToDenseMerge) {
  std::mt19937 rng(7);
  for (int nodes : kPropertySizes) {
    for (int trial = 0; trial < 100; ++trial) {
      const VClock base = random_clock(rng, nodes, 10);
      VClock target = random_clock(rng, nodes, 10);
      if (trial % 4 == 0) target.merge(base);  // covering replies too
      // Encode {i : target[i] > base[i]}, expand onto a copy of the base.
      VClock expanded = base;
      for (int i = 0; i < nodes; ++i) {
        if (target.get(i) > base.get(i)) expanded.set(i, target.get(i));
      }
      VClock dense = base;
      dense.merge(target);
      ASSERT_EQ(expanded, dense) << "nodes=" << nodes << " trial=" << trial;
      ASSERT_TRUE(expanded.covers(base));
      ASSERT_TRUE(expanded.covers(target));
    }
  }
}

TEST(VClockProperty, CoversMatchesNaiveAndIsAntisymmetric) {
  std::mt19937 rng(99);
  for (int nodes : kPropertySizes) {
    for (int trial = 0; trial < 100; ++trial) {
      const VClock a = random_clock(rng, nodes, 4);
      VClock b = trial % 2 == 0 ? random_clock(rng, nodes, 4) : a;
      if (trial % 4 == 1) b.advance(static_cast<NodeId>(trial % nodes));
      bool naive = true;
      for (int i = 0; i < nodes; ++i) {
        naive = naive && a.get(i) >= b.get(i);
      }
      ASSERT_EQ(a.covers(b), naive);
      // Antisymmetry: mutual covers is exactly equality.
      ASSERT_EQ(a.covers(b) && b.covers(a), a == b);
      // A merge dominates both inputs; a covers it only when a covers b.
      VClock m = a;
      m.merge(b);
      ASSERT_TRUE(m.covers(a));
      ASSERT_TRUE(m.covers(b));
      ASSERT_EQ(a.covers(m), a.covers(b));
    }
  }
}

TEST(VClockProperty, SummariesTrackValuesThroughRandomOps) {
  std::mt19937 rng(1234);
  for (int nodes : kPropertySizes) {
    VClock v(nodes);
    VClock other = random_clock(rng, nodes, 20);
    std::uniform_int_distribution<int> op(0, 3);
    std::uniform_int_distribution<int> pick(0, nodes - 1);
    std::uniform_int_distribution<std::uint32_t> val(0, 20);
    std::uint64_t last_version = v.version();
    for (int step = 0; step < 300; ++step) {
      switch (op(rng)) {
        case 0:
          v.advance(static_cast<NodeId>(pick(rng)));
          break;
        case 1:
          v.set(static_cast<NodeId>(pick(rng)), val(rng));
          break;
        case 2:
          v.merge(other);
          break;
        case 3:
          other = random_clock(rng, nodes, 20);
          v = other;  // copy assignment must refresh the summaries too
          break;
      }
      std::uint64_t sum = 0;
      std::uint32_t max = 0;
      for (int i = 0; i < nodes; ++i) {
        sum += v.get(i);
        max = std::max(max, v.get(i));
      }
      ASSERT_EQ(v.sum(), sum) << "nodes=" << nodes << " step=" << step;
      ASSERT_EQ(v.max_component(), max);
      ASSERT_GE(v.version(), last_version);  // monotone mutation counter
      last_version = v.version();
      // The summary-based short circuits agree with value semantics.
      VClock copy = v;
      ASSERT_EQ(copy, v);
      ASSERT_TRUE(v.covers(copy) && copy.covers(v));
    }
  }
}

}  // namespace
}  // namespace svmsim::svm
