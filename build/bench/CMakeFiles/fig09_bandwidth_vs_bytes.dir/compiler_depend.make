# Empty compiler generated dependencies file for fig09_bandwidth_vs_bytes.
# This may be replaced when dependencies are built.
