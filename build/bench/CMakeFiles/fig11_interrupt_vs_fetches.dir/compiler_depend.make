# Empty compiler generated dependencies file for fig11_interrupt_vs_fetches.
# This may be replaced when dependencies are built.
