// RingQueue / TimedChannel unit tests: wrap-around, growth boundaries,
// move-only payloads, and the cross-thread handoff contract the PDES
// channels rely on (production order survives a thread handoff that is
// ordered by an external happens-before edge, as the WindowDriver barriers
// provide).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/ring_queue.hpp"

namespace svmsim::engine {
namespace {

TEST(RingQueue, StartsEmpty) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(RingQueue, PushPopFifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapAroundKeepsOrder) {
  RingQueue<int> q;
  q.reserve(8);
  const std::size_t cap = q.capacity();
  ASSERT_EQ(cap, 8u);

  // Walk the head index all the way around the buffer several times while
  // the queue stays partially full: every pop must still see FIFO order.
  int next_in = 0;
  int next_out = 0;
  for (int i = 0; i < 5; ++i) q.push_back(next_in++);
  for (int round = 0; round < 64; ++round) {
    q.push_back(next_in++);
    q.push_back(next_in++);
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
  }
  // Never grew: the whole walk fit in the reserved capacity.
  EXPECT_EQ(q.capacity(), cap);
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, GrowthAtFullBoundaryPreservesOrder) {
  RingQueue<int> q;
  // Misalign head first so growth has to unwrap a wrapped queue.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  int next_in = 0;
  // Fill to exactly capacity, then push one more to force a grow.
  while (q.size() < q.capacity()) q.push_back(next_in++);
  const std::size_t old_cap = q.capacity();
  q.push_back(next_in++);
  EXPECT_GT(q.capacity(), old_cap);
  for (int i = 0; i < next_in; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, EmptyFullBoundaries) {
  RingQueue<int> q;
  q.push_back(1);
  q.pop_front();
  EXPECT_TRUE(q.empty());
  // Drain-to-empty then refill repeatedly across the boundary.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < round; ++i) q.push_back(i);
    EXPECT_EQ(q.size(), static_cast<std::size_t>(round));
    for (int i = 0; i < round; ++i) {
      EXPECT_EQ(q.front(), i);
      q.pop_front();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(RingQueue, ReserveRoundsUpAndKeepsElements) {
  RingQueue<int> q;
  q.push_back(7);
  q.push_back(8);
  q.reserve(100);
  EXPECT_GE(q.capacity(), 100u);
  // Power-of-two capacity.
  EXPECT_EQ(q.capacity() & (q.capacity() - 1), 0u);
  EXPECT_EQ(q.front(), 7);
  q.pop_front();
  EXPECT_EQ(q.front(), 8);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, MoveOnlyPayload) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 40; ++i) q.push_back(std::make_unique<int>(i));
  // pop_front must release the slot's resource immediately.
  ASSERT_NE(q.front(), nullptr);
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(q.front(), nullptr);
    EXPECT_EQ(*q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, PopReleasesSlotResources) {
  auto counter = std::make_shared<int>(0);
  RingQueue<std::shared_ptr<int>> q;
  q.push_back(counter);
  EXPECT_EQ(counter.use_count(), 2);
  q.pop_front();
  // The slot must not keep the payload alive until overwrite/destruction.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(RingQueue, ClearResetsToEmpty) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 10; ++i) q.push_back(std::make_unique<int>(i));
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(std::make_unique<int>(42));
  EXPECT_EQ(*q.front(), 42);
}

TEST(TimedChannel, EmptyChannelReportsNever) {
  TimedChannel<int> ch;
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.min_pending(), kNever);
}

TEST(TimedChannel, MinPendingTracksSmallestTimestamp) {
  TimedChannel<int> ch;
  ch.push(500, 1, 0);
  EXPECT_EQ(ch.min_pending(), 500u);
  ch.push(900, 2, 1);
  EXPECT_EQ(ch.min_pending(), 500u);
  ch.push(300, 3, 2);
  EXPECT_EQ(ch.min_pending(), 300u);
  ch.drain([](Cycles, std::uint64_t, int&&) {});
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.min_pending(), kNever);
}

TEST(TimedChannel, DrainDeliversInProductionOrder) {
  TimedChannel<std::string> ch;
  ch.push(10, 7, "a");
  ch.push(5, 9, "b");  // earlier timestamp, later production: still second
  ch.push(10, 1, "c");

  std::vector<std::string> got;
  std::vector<Cycles> whens;
  std::vector<std::uint64_t> keys;
  ch.drain([&](Cycles when, std::uint64_t key, std::string&& s) {
    whens.push_back(when);
    keys.push_back(key);
    got.push_back(std::move(s));
  });
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(whens, (std::vector<Cycles>{10, 5, 10}));
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{7, 9, 1}));
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, MoveOnlyItemsSurviveDrain) {
  TimedChannel<std::unique_ptr<int>> ch;
  for (int i = 0; i < 16; ++i) {
    ch.push(static_cast<Cycles>(100 + i), static_cast<std::uint64_t>(i),
            std::make_unique<int>(i));
  }
  int expect = 0;
  ch.drain([&](Cycles, std::uint64_t, std::unique_ptr<int>&& p) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, expect++);
  });
  EXPECT_EQ(expect, 16);
}

TEST(TimedChannel, CrossThreadHandoffKeepsProductionOrder) {
  // The PDES usage: a producer thread fills the channel during a window, a
  // barrier-equivalent (here: thread join) orders the handoff, then the
  // consumer drains on another thread. Production (FIFO) order must be what
  // the consumer sees — the wire band re-sorts by (when, key) later, but the
  // transport itself must not reorder.
  constexpr int kRecords = 10000;
  TimedChannel<int> ch;

  std::thread producer([&ch] {
    for (int i = 0; i < kRecords; ++i) {
      ch.push(static_cast<Cycles>(1000 + i % 7),
              static_cast<std::uint64_t>(i * 31 % 11), i);
    }
  });
  producer.join();  // the happens-before edge (stands in for the barrier)

  EXPECT_EQ(ch.size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(ch.min_pending(), 1000u);

  std::vector<int> got;
  std::thread consumer([&ch, &got] {
    ch.drain([&got](Cycles, std::uint64_t, int&& v) { got.push_back(v); });
  });
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(TimedChannel, ReusableAcrossWindows) {
  // Window N produces, window N+1 drains, repeat — min_pending must reset
  // every cycle and the backing ring must be recycled, not regrown.
  TimedChannel<int> ch;
  for (int w = 0; w < 50; ++w) {
    for (int i = 0; i < 9; ++i) {
      ch.push(static_cast<Cycles>(w * 100 + i), 0, w * 100 + i);
    }
    EXPECT_EQ(ch.min_pending(), static_cast<Cycles>(w * 100));
    int expect = w * 100;
    ch.drain([&](Cycles, std::uint64_t, int&& v) { EXPECT_EQ(v, expect++); });
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.min_pending(), kNever);
  }
}

}  // namespace
}  // namespace svmsim::engine
