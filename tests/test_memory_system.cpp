#include "memsys/memory_system.hpp"

#include <gtest/gtest.h>

#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "memsys/memory_bus.hpp"

namespace svmsim::memsys {
namespace {

struct Fixture {
  SimConfig cfg;
  engine::Simulator sim;
  MemoryBus bus{sim, cfg.arch};
  ProcMemory mem{sim, cfg.arch, bus};
};

TEST(MemoryBus, TransferCyclesMatchWidthAndClock) {
  Fixture f;
  // 64 bytes at 8 bytes per bus cycle, 4 CPU cycles per bus cycle.
  EXPECT_EQ(f.bus.transfer_cycles(64), 32u);
  EXPECT_EQ(f.bus.transfer_cycles(8), 4u);
  EXPECT_EQ(f.bus.transfer_cycles(1), 4u);  // rounds up to one bus cycle
}

TEST(ProcMemory, ColdReadMissesToMemory) {
  Fixture f;
  EXPECT_FALSE(f.mem.read_line_fast(0, 0).has_value());
}

TEST(ProcMemory, ReadMissFillsBothLevels) {
  Fixture f;
  Cycles stall = 0;
  engine::spawn([](Fixture& fx, Cycles& s) -> engine::Task<void> {
    s = co_await fx.mem.read_line_slow(0);
  }(f, stall));
  f.sim.run_until_idle();
  // request phase (arb 4 + 4) + DRAM 28 + reply (arb 4 + 64B = 32).
  EXPECT_EQ(stall, 72u);
  auto hit = f.mem.read_line_fast(0, f.sim.now());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, f.cfg.arch.l1.hit_cycles);
}

TEST(ProcMemory, L2HitAfterL1Eviction) {
  Fixture f;
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    co_await fx.mem.read_line_slow(0);
  }(f));
  f.sim.run_until_idle();
  // Evict line 0 from the (direct-mapped 16KB) L1 with a conflicting line;
  // 16KB direct mapped: stride 16384.
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    co_await fx.mem.read_line_slow(16384);
  }(f));
  f.sim.run_until_idle();
  auto hit = f.mem.read_line_fast(0, f.sim.now());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, f.cfg.arch.l2.hit_cycles);  // L1 miss, L2 hit
}

TEST(ProcMemory, WritesAlwaysCompleteLocally) {
  Fixture f;
  auto cost = f.mem.write_line(0, 0);
  EXPECT_EQ(cost.issue, f.cfg.arch.l1.hit_cycles);
  EXPECT_EQ(cost.wb_stall, 0u);
}

TEST(ProcMemory, WriteBufferSatisfiesReads) {
  Fixture f;
  f.mem.write_line(64, 0);
  auto hit = f.mem.read_line_fast(64, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, f.cfg.arch.wb_hit_cycles);
}

TEST(ProcMemory, SustainedWritesEventuallyStall) {
  Fixture f;
  Cycles total_stall = 0;
  // Burst far more distinct lines than the buffer at time 0: entries cannot
  // retire instantly, so the buffer must fill and stall.
  for (int i = 0; i < 64; ++i) {
    auto cost = f.mem.write_line(static_cast<std::uint64_t>(i) * 64, 0);
    total_stall += cost.wb_stall;
  }
  EXPECT_GT(total_stall, 0u);
  EXPECT_GT(f.mem.wb().full_stalls(), 0u);
}

TEST(ProcMemory, InvalidateRangeForcesRefetch) {
  Fixture f;
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    co_await fx.mem.read_line_slow(4096);
  }(f));
  f.sim.run_until_idle();
  ASSERT_TRUE(f.mem.read_line_fast(4096, f.sim.now()).has_value());
  f.mem.invalidate_range(4096, 4096);
  EXPECT_FALSE(f.mem.read_line_fast(4096, f.sim.now()).has_value());
}

TEST(ProcMemory, BusContentionSerializesMisses) {
  SimConfig cfg;
  engine::Simulator sim;
  MemoryBus bus(sim, cfg.arch);
  ProcMemory m1(sim, cfg.arch, bus);
  ProcMemory m2(sim, cfg.arch, bus);
  Cycles t1 = 0, t2 = 0;
  engine::spawn([](engine::Simulator& s, ProcMemory& m, Cycles& t) -> engine::Task<void> {
    co_await m.read_line_slow(0);
    t = s.now();
  }(sim, m1, t1));
  engine::spawn([](engine::Simulator& s, ProcMemory& m, Cycles& t) -> engine::Task<void> {
    co_await m.read_line_slow(0);
    t = s.now();
  }(sim, m2, t2));
  sim.run_until_idle();
  // Second miss completes later than the first: it shares the bus.
  EXPECT_GT(t2, t1);
}

}  // namespace
}  // namespace svmsim::memsys
