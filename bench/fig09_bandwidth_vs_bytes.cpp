// Figure 9: relation between the slowdown due to I/O bus bandwidth and the
// number of bytes transferred (both normalized).
#include "bench_common.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  auto sweeps = bench::run_figure(
      "fig09_sweep", "MB/MHz", {2.0, 0.125},
      [](SimConfig& c, double v) { c.comm.io_bus_mb_per_mhz = v; }, opt, sweep,
      [](double v) { return harness::fmt(v, 3); });
  bench::print_relation(
      "fig09", "I/O-bandwidth slowdown", "bytes/proc/Mcycle", sweeps,
      [](const harness::AppRun& r) {
        return r.result.per_proc_per_mcycles(
            r.result.stats.counters().bytes_sent);
      },
      opt);
  return 0;
}
