// One SMP node: c processors with private cache hierarchies sharing a
// split-transaction memory bus, one NIC on the I/O bus, and the node's
// messaging endpoint. Figure 2 of the paper.
#pragma once

#include <memory>
#include <vector>

#include "core/params.hpp"
#include "core/processor.hpp"
#include "core/stats.hpp"
#include "engine/simulator.hpp"
#include "memsys/memory_bus.hpp"
#include "net/messaging.hpp"
#include "net/nic.hpp"
#include "svm/hlrc.hpp"

namespace svmsim {

class Node {
 public:
  /// `counters` is where this node's machine-wide counters accumulate: the
  /// global Stats counters in serial mode, the partition's staging counters
  /// in PDES mode (merged after the run). Per-processor breakdowns always
  /// come from `stats` — rows are disjoint per node, so they are safe to
  /// write from the owning partition directly.
  Node(engine::Simulator& sim, const SimConfig& cfg, NodeId id, int procs,
       ProcId first_proc, net::Network& network, Stats& stats,
       Counters& counters);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] int proc_count() const noexcept {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] Processor& proc(int local) { return *procs_.at(local); }
  [[nodiscard]] memsys::MemoryBus& membus() noexcept { return membus_; }
  [[nodiscard]] net::Nic& nic(int k = 0) noexcept { return *nics_.at(k); }
  [[nodiscard]] int nic_count() const noexcept {
    return static_cast<int>(nics_.size());
  }
  [[nodiscard]] net::NodeComm& comm() noexcept { return *comm_; }

  /// Wire the protocol agent to this node: interrupt dispatch and cache
  /// invalidation callbacks.
  void wire(svm::SvmAgent& agent);

  /// Drop stale cached lines on every processor of this node.
  void invalidate_caches(std::uint64_t addr, std::uint64_t len);

 private:
  [[nodiscard]] Processor& pick_interrupt_victim();

  engine::Simulator* sim_;
  const SimConfig* cfg_;
  NodeId id_;
  Counters* counters_;
  memsys::MemoryBus membus_;
  std::vector<std::unique_ptr<net::Nic>> nics_;
  std::unique_ptr<net::NodeComm> comm_;
  std::vector<std::unique_ptr<Processor>> procs_;
  int rr_next_ = 0;
};

}  // namespace svmsim
