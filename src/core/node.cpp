#include "core/node.hpp"

#include <algorithm>
#include <utility>

#include "engine/choice.hpp"
#include "trace/trace.hpp"

namespace svmsim {

Node::Node(engine::Simulator& sim, const SimConfig& cfg, NodeId id, int procs,
           ProcId first_proc, net::Network& network, Stats& stats,
           Counters& counters)
    : sim_(&sim),
      cfg_(&cfg),
      id_(id),
      counters_(&counters),
      membus_(sim, cfg.arch) {
  std::vector<net::Nic*> nic_ptrs;
  for (int k = 0; k < std::max(1, cfg.comm.nics_per_node); ++k) {
    nics_.push_back(std::make_unique<net::Nic>(sim, cfg.arch, cfg.comm, id, k,
                                               membus_, counters));
    network.add_nic(*nics_.back());
    nic_ptrs.push_back(nics_.back().get());
  }
  comm_ = std::make_unique<net::NodeComm>(sim, id, std::move(nic_ptrs),
                                          counters);
  procs_.reserve(static_cast<std::size_t>(procs));
  for (int i = 0; i < procs; ++i) {
    const ProcId gid = first_proc + i;
    procs_.push_back(std::make_unique<Processor>(sim, cfg, gid, i, id,
                                                 membus_, stats.proc(gid)));
  }
}

Processor& Node::pick_interrupt_victim() {
  // Round-robin delivery for the rotating scheme; polling also rotates
  // (whichever processor's poll loop finds the request services it). A
  // schedule-choice hook may override the rotating default with any legal
  // victim — which processor's poll loop wins the race is not determined by
  // the model — but the rotation still advances by one either way, so the
  // decision stream stays aligned with the baseline schedule.
  if (cfg_->comm.interrupt_scheme != InterruptScheme::kFixedProcessor) {
    int idx = rr_next_;
    rr_next_ = (rr_next_ + 1) % static_cast<int>(procs_.size());
    engine::ChoiceHook* hook = sim_->choice_hook();
    if (hook != nullptr && procs_.size() > 1) [[unlikely]] {
      idx = hook->choose_victim(id_, static_cast<int>(procs_.size()), idx);
    }
    return *procs_[static_cast<std::size_t>(idx)];
  }
  return *procs_.front();  // paper's base scheme: always processor 0
}

void Node::wire(svm::SvmAgent& agent) {
  comm_->interrupt_dispatch =
      [this](std::function<engine::Task<void>()> body) {
        if (cfg_->comm.interrupt_scheme == InterruptScheme::kPolling) {
          ++counters_->polled_requests;
          // No interrupt: the request sits until a processor's next poll
          // tick notices it (paper §10's polling proposal).
          const Cycles interval = std::max<Cycles>(1, cfg_->comm.poll_interval);
          Cycles next_tick = (sim_->now() / interval + 1) * interval;
          // A schedule-choice hook may slip the dispatch one interval: the
          // arrival racing an in-flight poll that has already passed the
          // check is a real interleaving the deterministic model collapses.
          engine::ChoiceHook* hook = sim_->choice_hook();
          if (hook != nullptr && hook->choose_poll_slip(id_)) [[unlikely]] {
            next_tick += interval;
          }
          sim_->queue().schedule_at(
              next_tick, [this, body = std::move(body)]() mutable {
                Processor& victim = pick_interrupt_victim();
                SVMSIM_TRACE_EVENT(*sim_, trace::Category::kIrq,
                                   trace::Event::kPollDeliver, victim.id(),
                                   id_, 0, 0);
                victim.service_polled(std::move(body));
              });
          return;
        }
        ++counters_->interrupts;
        Processor& victim = pick_interrupt_victim();
        SVMSIM_TRACE_EVENT(*sim_, trace::Category::kIrq,
                           trace::Event::kIrqIssue, victim.id(), id_, 0, 0);
        victim.service_interrupt(std::move(body));
      };
  agent.invalidate_caches = [this](std::uint64_t addr, std::uint64_t len) {
    invalidate_caches(addr, len);
  };
}

void Node::invalidate_caches(std::uint64_t addr, std::uint64_t len) {
  for (auto& p : procs_) {
    p->mem().invalidate_range(addr, len);
  }
}

}  // namespace svmsim
