// Conservative windowed synchronization for the node-partitioned PDES mode.
//
// Each partition owns one EventQueue and one worker thread. The driver runs
// an adaptive variant of the classic conservative window (YAWNS-style)
// protocol. Per window, every partition:
//
//   1. *publishes*: seals its outgoing channel batches and computes two
//      bounds — its head-of-queue event time (folded with the sealed
//      batches' minimum timestamp) and a conservative lower bound on its
//      next cross-partition *send* (kNever when provably none is pending),
//   2. crosses one combining barrier that min-reduces both bounds while
//      threads arrive; the last arriver opens the window [T, E) with
//      T = min(next) and E = min(send) + L under the adaptive policy or
//      E = T + L under the fixed policy, L being the network's minimum
//      inter-node latency (the lookahead),
//   3. *drains* every sealed incoming batch into its scheduler's wire band
//      and runs its queue up to E - 1; the next publish closes the window.
//
// Safety: each partition's send bound under-approximates its own next
// cross-partition transmit, so any packet launched during [T, E) leaves at
// >= min(send) and arrives at >= min(send) + L = E — never inside the
// window that produced it. Sealed-batch minima feed *both* reductions
// because a record still in flight is an event the consumer's queue does not
// know about yet, and once delivered it can trigger a send no earlier than
// its own timestamp. Progress: send bounds never undercut head-of-queue
// times, so E >= T + L and the partition holding the global minimum fires at
// least one event per window; when no cross-traffic is pending anywhere
// (min(send) = kNever) the remaining work collapses into a single window to
// the horizon. Determinism: a partition is a sequential deterministic
// machine; its inputs — the channel records and the window boundaries — are
// pure functions of the partition states meeting at the barrier, independent
// of wall-clock interleaving, so the parallel run replays the serial order
// exactly (docs/engine.md, "PDES mode").
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "engine/event_queue.hpp"
#include "engine/types.hpp"

namespace svmsim::engine {

/// Number of partitions actually used for `par_cores` over `node_count`
/// simulated nodes: at least one, never more than one per node.
[[nodiscard]] constexpr int effective_partitions(int par_cores,
                                                 int node_count) noexcept {
  if (par_cores < 1) return 1;
  return par_cores < node_count ? par_cores : node_count;
}

/// Contiguous block partition map: node `n` of `node_count` belongs to
/// partition floor(n * parts / node_count). Contiguity keeps a node group's
/// procs, NICs and pools on one worker.
[[nodiscard]] constexpr int partition_of(int node, int node_count,
                                         int parts) noexcept {
  return static_cast<int>(static_cast<std::int64_t>(node) * parts /
                          node_count);
}

/// Runs a set of partition EventQueues under the windowed protocol above.
/// Partition 0 runs on the calling thread; partitions 1..P-1 each get a
/// worker thread for the duration of run().
class WindowDriver {
 public:
  /// What a partition's publish hook reports at each window boundary.
  struct Published {
    /// Smallest timestamp among the cross-partition records the partition
    /// just sealed into its outgoing channels (kNever if none): traffic no
    /// consumer queue accounts for yet, folded into both reductions.
    Cycles in_flight = kNever;
    /// Conservative lower bound on the partition's next cross-partition
    /// send time; kNever means provably no cross-traffic is pending.
    Cycles next_send = kNever;
  };

  struct Hooks {
    /// Seal partition p's outgoing channel batches and report its bounds.
    /// Called on p's worker before every barrier crossing. May be null
    /// (a partition with no cross-partition traffic at all).
    std::function<Published(int)> publish;
    /// Deliver every sealed incoming batch into partition p's queue
    /// (schedule_wire_batch). Called on p's worker right after every
    /// barrier crossing, before the window runs. May be null.
    std::function<void(int)> drain;
    /// Called once on p's worker thread before the first window — bind
    /// partition-owned thread-affine state (frame registries) to it.
    std::function<void(int)> worker_begin;
    /// Called once on p's worker thread after the last window.
    std::function<void(int)> worker_end;
  };

  WindowDriver(std::vector<EventQueue*> queues, Cycles lookahead, Hooks hooks,
               WindowPolicy policy = WindowPolicy::kAdaptive);

  /// Run all partitions until globally idle or until the next window would
  /// start beyond `max_cycles`. Returns true if the queues drained (mirrors
  /// EventQueue::run_until). No event past `max_cycles` is fired. An
  /// exception thrown by an event action aborts the run and rethrows here.
  bool run(Cycles max_cycles);

  /// Windows executed by the last run() (the sync-overhead figure reported
  /// by perf_selfcheck).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

  [[nodiscard]] WindowPolicy policy() const noexcept { return policy_; }

 private:
  std::vector<EventQueue*> queues_;
  Cycles lookahead_;
  Hooks hooks_;
  WindowPolicy policy_;

  // Per-run window state: written only by the combining barrier's completion
  // function and read by workers after the crossing, which is all the
  // ordering they need.
  Cycles window_end_ = 0;
  bool stop_ = false;
  bool drained_ = false;
  std::uint64_t windows_ = 0;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace svmsim::engine
