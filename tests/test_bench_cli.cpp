// CLI-layer tests for the shared bench option parser (bench_common): the
// --trace / --par-cores conflict must terminate with its own exit code
// (kExitTracedParallel) and a diagnostic naming both flags and the docs,
// and --pdes-window must parse, default, reject, and propagate into every
// sweep point. Exit codes are part of the contract — scripts branch on
// them — so the failure paths are exercised as death/exit tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace svmsim::bench {
namespace {

/// Run Options::parse over a fake argv. --jobs=1 is forced so no worker
/// pool is spawned (keeps the death tests' fork clean of threads).
Options parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  args.push_back("--jobs=1");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCliDeathTest, TracedParallelExitsWithDistinctCode) {
  EXPECT_EXIT(parse({"--trace=/tmp/t.bin", "--par-cores=4"}),
              ::testing::ExitedWithCode(kExitTracedParallel),
              "--trace cannot be combined with --par-cores=4");
}

TEST(BenchCliDeathTest, TracedParallelDiagnosticPointsAtDocs) {
  EXPECT_EXIT(parse({"--trace=/tmp/t.bin", "--par-cores=2"}),
              ::testing::ExitedWithCode(kExitTracedParallel),
              "docs/tracing.md");
}

TEST(BenchCliDeathTest, UnknownWindowPolicyExitsWithUsageCode) {
  EXPECT_EXIT(parse({"--pdes-window=bogus"}), ::testing::ExitedWithCode(2),
              "pdes-window");
}

TEST(BenchCliDeathTest, ZeroProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", 0, 4),
              ::testing::ExitedWithCode(kExitBadProcs), "out of range");
}

TEST(BenchCliDeathTest, NegativeProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", -8, 4),
              ::testing::ExitedWithCode(kExitBadProcs), "out of range");
}

TEST(BenchCliDeathTest, OverMaxProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(
      checked_total_procs("bench_test", "--procs", kMaxTotalProcs + 1, 4),
      ::testing::ExitedWithCode(kExitBadProcs), "between 1 and");
}

TEST(BenchCliDeathTest, IndivisibleProcsNamesFlagAndDivisor) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", 10, 4),
              ::testing::ExitedWithCode(kExitBadProcs),
              "--pdes-procs=10 is not a multiple of procs_per_node=4");
}

TEST(BenchCli, ValidProcsPassThrough) {
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", 256, 4), 256);
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", 4, 4), 4);
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", kMaxTotalProcs,
                                4),
            kMaxTotalProcs);
}

TEST(BenchCli, WindowPolicyFlagParses) {
  EXPECT_EQ(parse({"--pdes-window=fixed"}).pdes_window, WindowPolicy::kFixed);
  EXPECT_EQ(parse({"--pdes-window=adaptive"}).pdes_window,
            WindowPolicy::kAdaptive);
  // Unset: the build's compiled-in default (SVMSIM_PDES_WINDOW).
  EXPECT_EQ(parse({}).pdes_window, SimConfig{}.pdes_window);
}

TEST(BenchCli, TraceAloneAndParCoresAloneAreAccepted) {
  EXPECT_EQ(parse({"--par-cores=4"}).par_cores, 4);
  EXPECT_TRUE(parse({"--trace=/tmp/t.bin"}).trace.enabled);
}

TEST(BenchCli, SweepPointsCarryParCoresAndWindowPolicy) {
  auto opt = parse({"--par-cores=2", "--pdes-window=fixed", "--apps=fft"});
  auto pts = suite_points({0.0}, [](SimConfig&, double) {}, opt);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].cfg.par_cores, 2);
  EXPECT_EQ(pts[0].cfg.pdes_window, WindowPolicy::kFixed);
}

// ---- --topology (src/topo/): malformed or unfitting specs must exit with
// kExitBadTopology, distinct from 2/3/4, because the equivalence scripts
// branch on it. ----

TEST(BenchCliDeathTest, ZeroTorusExtentExitsWithBadTopologyCode) {
  EXPECT_EXIT(parse({"--topology=torus:0x4"}),
              ::testing::ExitedWithCode(kExitBadTopology),
              "unknown --topology value 'torus:0x4'");
}

TEST(BenchCliDeathTest, OddFatTreeArityExitsWithBadTopologyCode) {
  EXPECT_EXIT(parse({"--topology=fattree:3"}),
              ::testing::ExitedWithCode(kExitBadTopology),
              "unknown --topology value 'fattree:3'");
}

TEST(BenchCliDeathTest, BogusTopologyExitsWithBadTopologyCode) {
  EXPECT_EXIT(parse({"--topology=hypercube"}),
              ::testing::ExitedWithCode(kExitBadTopology), "hypercube");
}

TEST(BenchCliDeathTest, UnfittingTopologyExitsWithBadTopologyCode) {
  // A 4x4 torus is well-formed but needs exactly 16 nodes.
  const auto spec = topo::Spec::parse("torus:4x4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EXIT(checked_topology("bench_test", *spec, 4),
              ::testing::ExitedWithCode(kExitBadTopology),
              "does not fit a 4-node cluster");
}

TEST(BenchCliDeathTest, SweepPointsRejectUnfittingTopology) {
  // The paper's default machine is 4 nodes; a 4x4 torus cannot fit it, and
  // the misfit must surface at point-construction time, not as a Machine
  // constructor throw mid-sweep.
  auto opt = parse({"--topology=torus:4x4", "--apps=fft"});
  EXPECT_EXIT(suite_points({0.0}, [](SimConfig&, double) {}, opt),
              ::testing::ExitedWithCode(kExitBadTopology), "does not fit");
}

// ---- Architecture overrides: values ArchParams::validate() rejects must
// exit kExitBadArch before any simulation is constructed. ----

TEST(BenchCliDeathTest, ZeroLinkBandwidthExitsWithBadArchCode) {
  EXPECT_EXIT(parse({"--link-bytes-per-cycle=0"}),
              ::testing::ExitedWithCode(kExitBadArch),
              "link_bytes_per_cycle must be > 0");
}

TEST(BenchCliDeathTest, ZeroWireLatencyExitsWithBadArchCode) {
  EXPECT_EXIT(parse({"--wire-latency=0"}),
              ::testing::ExitedWithCode(kExitBadArch),
              "wire_latency_cycles must be nonzero");
}

TEST(BenchCli, TopologyFlagParsesAndPropagates) {
  EXPECT_EQ(parse({}).topology.kind, topo::Kind::kLegacy);
  EXPECT_EQ(parse({"--topology=crossbar"}).topology.kind,
            topo::Kind::kCrossbar);
  const auto ft = parse({"--topology=fattree:8"}).topology;
  EXPECT_EQ(ft.kind, topo::Kind::kFatTree);
  EXPECT_EQ(ft.fat_k, 8);
  const auto to = parse({"--topology=torus:2x2"}).topology;
  EXPECT_EQ(to.kind, topo::Kind::kTorus);
  EXPECT_EQ(to.dims[0], 2);
  EXPECT_EQ(to.dims[1], 2);
  EXPECT_EQ(to.dims[2], 1);

  // A fitting spec lands on every sweep point (default machine: 4 nodes).
  auto opt = parse({"--topology=torus:2x2", "--apps=fft"});
  auto pts = suite_points({0.0}, [](SimConfig&, double) {}, opt);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].cfg.topology.kind, topo::Kind::kTorus);
}

TEST(BenchCli, ArchOverridesPropagateWhenValid) {
  auto opt = parse({"--link-bytes-per-cycle=4", "--wire-latency=50",
                    "--apps=fft"});
  EXPECT_DOUBLE_EQ(opt.arch.link_bytes_per_cycle, 4.0);
  EXPECT_EQ(opt.arch.wire_latency_cycles, 50u);
  auto pts = suite_points({0.0}, [](SimConfig&, double) {}, opt);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].cfg.arch.link_bytes_per_cycle, 4.0);
  EXPECT_EQ(pts[0].cfg.arch.wire_latency_cycles, 50u);
}

}  // namespace
}  // namespace svmsim::bench
