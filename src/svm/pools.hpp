// Per-partition protocol pools: every recyclable object the hot path needs.
//
// The Machine owns one ProtocolPools per simulation partition (one total in
// serial mode), declared before every structure that can hold references
// into it, so the pools outlive all PoolRefs (see docs/memory.md for the
// full ownership rules). Pools are per-partition rather than per-machine
// because pooled Triggers must schedule on their partition's simulator; the
// object pools additionally take their freelist locks in PDES mode, since
// message bodies drop their last reference on the receiving partition.
#pragma once

#include "core/pool.hpp"
#include "engine/simulator.hpp"
#include "svm/payload.hpp"

namespace svmsim::svm {

struct ProtocolPools {
  explicit ProtocolPools(engine::Simulator& sim) : triggers(sim) {}

  /// PDES wiring: message bodies drawn from these pools cross partitions
  /// and recycle on the receiving thread. Triggers stay partition-local
  /// (acquired and released only by the owning agent's thread), so the
  /// trigger pool needs no lock.
  void set_thread_safe() {
    vclocks.set_thread_safe(true);
    buffers.set_thread_safe(true);
    diff_batches.set_thread_safe(true);
    clock_deltas.set_thread_safe(true);
  }

  core::ObjectPool<VClockBody> vclocks;
  core::ObjectPool<core::PooledBytes> buffers;
  core::ObjectPool<DiffBatchBody> diff_batches;
  core::ObjectPool<VClockDeltaBody> clock_deltas;
  engine::TriggerPool triggers;

  /// A pooled vector-clock body holding a copy of `vc`.
  [[nodiscard]] VClockRef vclock(const VClock& vc) {
    VClockRef r = vclocks.acquire();
    r->vc = vc;  // same node count every time: capacity is reused
    return r;
  }
  /// An empty pooled byte buffer (capacity from its previous life).
  [[nodiscard]] BytesRef bytes() { return buffers.acquire(); }
  /// An empty pooled diff batch.
  [[nodiscard]] DiffBatchRef diff_batch() { return diff_batches.acquire(); }
  /// An empty pooled sparse clock delta.
  [[nodiscard]] VClockDeltaRef clock_delta() { return clock_deltas.acquire(); }
};

}  // namespace svmsim::svm
