#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "check/checker.hpp"
#include "engine/choice.hpp"
#include "trace/trace.hpp"

namespace svmsim {

namespace {

engine::Task<void> proc_main(Workload& w, Machine& m, ProcId pid,
                             std::atomic<int>& finished) {
  co_await w.body(m, pid);
  // Final global barrier: flushes every node and guarantees quiescence, so
  // validation can read home copies.
  co_await m.agent_of(pid).barrier(m.proc(pid));
  co_await m.proc(pid).drain();
  // The processor's own clock: in PDES mode each partition has its own
  // simulator (their clocks agree to within one lookahead window, and every
  // processor's is exact at its own events).
  m.proc(pid).mark_finished(m.proc(pid).sim().now());
  finished.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double RunResult::per_proc_per_mcycles(std::uint64_t events) const {
  // (events / procs) per (compute / procs) million cycles: the processor
  // counts cancel, leaving events per million total compute cycles.
  const double compute = static_cast<double>(stats.total_compute());
  if (compute <= 0) return 0.0;
  return static_cast<double>(events) * 1e6 / compute;
}

RunResult run(Workload& w, const SimConfig& cfg, Cycles max_cycles,
              engine::ChoiceHook* hook) {
  Machine m(cfg);
  if (hook != nullptr) {
    if (m.partitions() > 1) {
      throw std::invalid_argument(
          "schedule exploration requires serial mode (par_cores == 1): "
          "arbitrated schedules are alternative histories, outside the PDES "
          "byte-identity contract");
    }
    m.sim().set_choice_hook(hook);
    hook->on_attach(m.checker());
  }
  w.setup(m);

  std::atomic<int> finished{0};
  const int n = m.total_procs();
  for (ProcId pid = 0; pid < n; ++pid) {
    // The frame must live in the registry of the partition that owns the
    // processor: the coroutine completes (and is torn down) on that
    // partition's thread in PDES mode.
    engine::ScopedFrameRegistry scope(
        m.partition_registry(m.partition_of_node(m.node_of(pid))));
    engine::spawn(proc_main(w, m, pid, finished));
  }
  const bool drained = m.partitions() > 1 ? m.run_parallel(max_cycles)
                                          : m.sim().run_until(max_cycles);
  if (!drained) {
    throw std::runtime_error(w.name() + ": exceeded max simulated cycles");
  }
  if (finished.load(std::memory_order_relaxed) != n) {
    for (NodeId nd = 0; nd < m.node_count(); ++nd) {
      m.agent(nd).dump_lock_state();
    }
    throw std::runtime_error(w.name() + ": simulation deadlocked (" +
                             std::to_string(finished.load()) + "/" +
                             std::to_string(n) + " processors finished)");
  }

  RunResult r;
  m.finalize_stats();  // per-link occupancy into stats (topology runs only)
  r.stats = m.stats();
  r.events = m.events_fired();
  r.windows = m.windows();
  r.peak_clock_pool = m.peak_clock_pool();
  for (int p = 0; p < m.partitions(); ++p) {
    r.partition_events.push_back(m.partition_events(p));
  }
  for (ProcId pid = 0; pid < n; ++pid) {
    r.time = std::max(r.time, m.proc(pid).finished_at());
  }
  r.validated = w.validate(m);
#ifndef SVMSIM_CHECK_DISABLED
  if (check::Checker* ck = m.checker()) {
    // The final barrier + drain above guarantee every interval is flushed,
    // so the end-of-run structural checks are meaningful.
    ck->finalize(r.time);
    r.check_violations = ck->violation_count();
    if (r.check_violations > 0) {
      ck->report(w.name(), stderr);
#ifndef SVMSIM_TRACE_DISABLED
      // Preserve the failing run's event trace for replay through
      // tools/trace2chrome (see docs/checking.md).
      if (!cfg.check.trace_path.empty()) {
        if (trace::Tracer* t = m.tracer()) {
          trace::write_file(t->capture(m.stats(), r.time),
                            cfg.check.trace_path);
          std::fprintf(stderr, "svmsim-check: violation trace written to %s\n",
                       cfg.check.trace_path.c_str());
        }
      }
#endif
    }
  }
#endif
#ifndef SVMSIM_TRACE_DISABLED
  // Publish the trace (if one was recorded to a file): the run's final
  // Stats are embedded so the trace is self-checkable (trace::check).
  if (trace::Tracer* t = m.tracer()) t->finish(r.stats, r.time);
#endif
  return r;
}

SimConfig uniprocessor_config(const SimConfig& cfg) {
  SimConfig uni = cfg;
  uni.comm.total_procs = 1;
  uni.comm.procs_per_node = 1;
  // A one-node machine sends no packets, so the interconnect cannot matter;
  // drop to the legacy network rather than demand the topology (a fixed
  // torus extent, say) fit a single node.
  uni.topology = topo::Spec{};
  // Baseline runs are never traced or checked: the interesting run is the
  // parallel one, and a shared trace path must not be overwritten by the
  // baseline.
  uni.trace = trace::Config{};
  uni.check = check::Config{};
  return uni;
}

}  // namespace svmsim
