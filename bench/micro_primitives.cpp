// google-benchmark microbenchmarks of the simulator's hot primitives: event
// queue throughput, coroutine scheduling, the cache model, the diff engine
// and a small end-to-end simulation.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/app.hpp"
#include "apps/registry.hpp"
#include "core/runner.hpp"
#include "engine/event_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "memsys/cache.hpp"
#include "svm/diff.hpp"

namespace {

using namespace svmsim;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    engine::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<Cycles>(i), [&sink] { ++sink; });
    }
    q.run_until_idle();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    engine::Simulator sim;
    engine::spawn([](engine::Simulator& s) -> engine::Task<void> {
      for (int i = 0; i < 1000; ++i) co_await s.delay(1);
    }(sim));
    sim.run_until_idle();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_CacheLookup(benchmark::State& state) {
  ArchParams arch;
  memsys::Cache cache(arch.l2);
  for (std::uint64_t i = 0; i < 4096; ++i) cache.fill(i * 64, false);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(addr));
    addr = (addr + 64) % (4096 * 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_DiffCompute(benchmark::State& state) {
  const std::size_t page = static_cast<std::size_t>(state.range(0));
  apps::Rng rng(1);
  std::vector<std::byte> twin(page);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next());
  auto cur = twin;
  for (std::size_t i = 0; i < page; i += 64) cur[i] ^= std::byte{1};
  for (auto _ : state) {
    auto d = svm::compute_diff(0, cur, twin);
    benchmark::DoNotOptimize(d.runs.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(page));
}
BENCHMARK(BM_DiffCompute)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_EndToEndTinyFft(benchmark::State& state) {
  for (auto _ : state) {
    SimConfig cfg;
    cfg.comm = CommParams::achievable();
    auto app = apps::make_app("fft", apps::Scale::kTiny);
    auto r = run(*app, cfg);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_EndToEndTinyFft)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
