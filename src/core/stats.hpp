// Execution-time breakdowns and protocol event counters.
//
// The paper's analysis (§6, Table 2, Figures 3/4/6/9/11) is driven by
// exactly these quantities: where each processor's time went, and how many
// protocol events / messages / bytes each processor generated per unit of
// compute time.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "engine/types.hpp"

namespace svmsim {

/// Where a processor's cycles go. Buckets are disjoint; their sum is the
/// processor's busy+waiting time.
enum class TimeCat : int {
  kCompute = 0,     ///< application instructions (incl. private-data access)
  kMemStall,        ///< local cache-miss / memory stall
  kWriteBufStall,   ///< stalled on a full write buffer
  kDataWait,        ///< waiting for a remote page fetch
  kLockWait,        ///< waiting to acquire a lock
  kBarrierWait,     ///< waiting at a barrier
  kHandler,         ///< servicing interrupts/handlers for other nodes
  kProtocol,        ///< local protocol work (traps, twins, diffs, sends)
  kCount,
};

inline constexpr int kTimeCats = static_cast<int>(TimeCat::kCount);

[[nodiscard]] std::string_view to_string(TimeCat c);

struct Breakdown {
  std::array<Cycles, kTimeCats> t{};

  void add(TimeCat c, Cycles v) noexcept { t[static_cast<int>(c)] += v; }
  [[nodiscard]] Cycles get(TimeCat c) const noexcept {
    return t[static_cast<int>(c)];
  }
  [[nodiscard]] Cycles total() const noexcept {
    Cycles s = 0;
    for (auto v : t) s += v;
    return s;
  }
  /// Compute + local stall: the denominator of the paper's "ideal" speedup.
  [[nodiscard]] Cycles local_only() const noexcept {
    return get(TimeCat::kCompute) + get(TimeCat::kMemStall) +
           get(TimeCat::kWriteBufStall);
  }
  Breakdown& operator+=(const Breakdown& o) noexcept {
    for (int i = 0; i < kTimeCats; ++i) t[i] += o.t[i];
    return *this;
  }
  bool operator==(const Breakdown&) const = default;
};

/// Protocol/communication event counts (whole machine unless noted).
struct Counters {
  // SVM protocol events (Table 2).
  std::uint64_t page_faults = 0;        // read+write faults taken
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t page_fetches = 0;       // faults that fetched a remote page
  std::uint64_t local_lock_acquires = 0;
  std::uint64_t remote_lock_acquires = 0;
  std::uint64_t barriers = 0;           // per-processor barrier crossings

  // Communication (Figures 3/4).
  std::uint64_t messages_sent = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t polled_requests = 0;  ///< requests serviced by polling

  // Protocol internals.
  std::uint64_t twins_created = 0;
  std::uint64_t diffs_created = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t write_notices = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t updates_sent = 0;        // AURC automatic updates (runs)
  std::uint64_t update_bytes = 0;
  std::uint64_t ni_queue_overflows = 0;

  Counters& operator+=(const Counters& o) noexcept;
  bool operator==(const Counters&) const = default;
};

/// Per-physical-link occupancy for contended topology runs (src/topo/):
/// one row per directed link, filled by Machine::finalize_stats. Empty for
/// the legacy network and the crossbar backend, so legacy Stats (and their
/// byte-identity diffs) are untouched. `kind` is a topo::LinkKind value
/// (topo::to_string decodes it).
struct LinkUse {
  std::int32_t id = 0;
  std::int32_t owner = 0;   ///< owning node
  std::int8_t kind = 0;     ///< topo::LinkKind
  std::uint64_t grants = 0; ///< packets serialized
  std::uint64_t busy = 0;   ///< cycles spent serializing
  std::uint64_t wait = 0;   ///< cycles packets queued for the link
  std::uint64_t bytes = 0;

  bool operator==(const LinkUse&) const = default;
};

/// Per-run statistics: one breakdown per processor plus global counters.
class Stats {
 public:
  explicit Stats(int procs) : per_proc_(static_cast<std::size_t>(procs)) {}

  [[nodiscard]] Breakdown& proc(int p) {
    return per_proc_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Breakdown& proc(int p) const {
    return per_proc_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] int procs() const {
    return static_cast<int>(per_proc_.size());
  }

  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  [[nodiscard]] Breakdown aggregate() const;
  /// Max over processors of compute + local stall (ideal-time denominator).
  [[nodiscard]] Cycles max_local_only() const;
  [[nodiscard]] Cycles total_compute() const;

  /// Per-link occupancy (empty unless a contended topology ran). Included
  /// in operator==, so the PDES byte-identity gates cover link state too.
  [[nodiscard]] const std::vector<LinkUse>& links() const noexcept {
    return links_;
  }
  void set_links(std::vector<LinkUse> links) { links_ = std::move(links); }

  bool operator==(const Stats&) const = default;

 private:
  std::vector<Breakdown> per_proc_;
  Counters counters_;
  std::vector<LinkUse> links_;
};

}  // namespace svmsim
