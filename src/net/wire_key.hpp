// Wire-key packing: the commutativity metadata of the wire band.
//
// Every cross-node packet hop is scheduled on the wire band under a
// content-derived 64-bit key packing (dst node, src node, NI index, per-NI
// launch sequence). Two facts about the layout matter to more than the
// network layer, which is why the helpers are public rather than private to
// nic.cpp:
//
//  * key >> 32 — the (dst, src, NI) triple — identifies a *delivery
//    channel*. Events on one channel are FIFO by construction (the low
//    32 bits are the sender's launch sequence) and must never be reordered
//    against each other; events on different channels are the engine's unit
//    of schedule freedom. The wire arbiter (engine::WireArbiter) and the
//    schedule explorer (src/explore/) both branch on channel identity.
//  * The destination field says which node's state a delivery mutates:
//    deliveries to different nodes commute, which is the independence
//    relation the explorer's pruning is built on (docs/exploration.md).
//
// Field widths (asserted by Network::add_nic): 12-bit node ids, 8-bit NI
// index, 32-bit launch sequence.
#pragma once

#include <cstdint>

#include "engine/types.hpp"

namespace svmsim::net {

[[nodiscard]] constexpr std::uint64_t make_wire_key(
    NodeId dst, NodeId src, int nic_index, std::uint32_t wire_seq) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 52) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(nic_index))
          << 32) |
         wire_seq;
}

[[nodiscard]] constexpr NodeId wire_key_dst(std::uint64_t key) noexcept {
  return static_cast<NodeId>((key >> 52) & 0xfff);
}

[[nodiscard]] constexpr NodeId wire_key_src(std::uint64_t key) noexcept {
  return static_cast<NodeId>((key >> 40) & 0xfff);
}

[[nodiscard]] constexpr int wire_key_nic(std::uint64_t key) noexcept {
  return static_cast<int>((key >> 32) & 0xff);
}

[[nodiscard]] constexpr std::uint32_t wire_key_seq(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

/// The delivery-channel id: the (dst, src, NI) triple. Same channel => FIFO;
/// different channels => the schedule explorer's unit of reordering.
[[nodiscard]] constexpr std::uint64_t wire_key_channel(
    std::uint64_t key) noexcept {
  return key >> 32;
}

}  // namespace svmsim::net
