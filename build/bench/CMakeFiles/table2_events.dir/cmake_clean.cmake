file(REMOVE_RECURSE
  "CMakeFiles/table2_events.dir/table2_events.cpp.o"
  "CMakeFiles/table2_events.dir/table2_events.cpp.o.d"
  "table2_events"
  "table2_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
