// Per-Machine protocol pools: every recyclable object the hot path needs.
//
// One ProtocolPools instance lives in svm::SharedState, declared before
// every structure that can hold references into it, so the pools outlive
// all PoolRefs (see docs/memory.md for the full ownership rules).
#pragma once

#include "core/pool.hpp"
#include "engine/simulator.hpp"
#include "svm/payload.hpp"

namespace svmsim::svm {

struct ProtocolPools {
  explicit ProtocolPools(engine::Simulator& sim) : triggers(sim) {}

  core::ObjectPool<VClockBody> vclocks;
  core::ObjectPool<core::PooledBytes> buffers;
  core::ObjectPool<DiffBatchBody> diff_batches;
  engine::TriggerPool triggers;

  /// A pooled vector-clock body holding a copy of `vc`.
  [[nodiscard]] VClockRef vclock(const VClock& vc) {
    VClockRef r = vclocks.acquire();
    r->vc = vc;  // same node count every time: capacity is reused
    return r;
  }
  /// An empty pooled byte buffer (capacity from its previous life).
  [[nodiscard]] BytesRef bytes() { return buffers.acquire(); }
  /// An empty pooled diff batch.
  [[nodiscard]] DiffBatchRef diff_batch() { return diff_batches.acquire(); }
};

}  // namespace svmsim::svm
