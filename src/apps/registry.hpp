// Factory for the application suite (paper §4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"

namespace svmsim::apps {

/// The ten applications, in the paper's presentation order.
[[nodiscard]] const std::vector<std::string>& suite();

/// Regular (single-writer) vs irregular grouping of §4.
[[nodiscard]] bool is_regular(const std::string& name);

/// Create an application by name ("fft", "lu", "ocean", "water-nsq",
/// "water-sp", "radix", "raytrace", "volrend", "barnes", "barnes-space").
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Application> make_app(const std::string& name,
                                                    Scale scale);

}  // namespace svmsim::apps
