file(REMOVE_RECURSE
  "CMakeFiles/fig03_messages.dir/fig03_messages.cpp.o"
  "CMakeFiles/fig03_messages.dir/fig03_messages.cpp.o.d"
  "fig03_messages"
  "fig03_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
