#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/factories.hpp"

namespace svmsim::apps {

const std::vector<std::string>& suite() {
  static const std::vector<std::string> kSuite = {
      "fft",   "lu",       "ocean",   "water-nsq", "water-sp",
      "radix", "raytrace", "volrend", "barnes",    "barnes-space",
  };
  return kSuite;
}

bool is_regular(const std::string& name) {
  return name == "fft" || name == "lu" || name == "ocean";
}

std::unique_ptr<Application> make_app(const std::string& name, Scale scale) {
  if (name == "fft") return make_fft(scale);
  if (name == "lu") return make_lu(scale);
  if (name == "ocean") return make_ocean(scale);
  if (name == "radix") return make_radix(scale);
  if (name == "water-nsq") return make_water_nsquared(scale);
  if (name == "water-sp") return make_water_spatial(scale);
  if (name == "barnes") return make_barnes_rebuild(scale);
  if (name == "barnes-space") return make_barnes_space(scale);
  if (name == "raytrace") return make_raytrace(scale);
  if (name == "volrend") return make_volrend(scale);
  // "stress-gen" (seed 1) or "stress-gen@<seed>": the checker fuzz workload.
  // Not part of suite() — it models no paper application; drive it
  // explicitly (e.g. --apps=stress-gen@7). The seed is part of the name, so
  // Sweep's per-(app, page size, protocol) baseline cache stays correct.
  if (name.rfind("stress-gen", 0) == 0) {
    std::uint64_t seed = 1;
    if (name.size() > 10) {
      if (name[10] != '@') {
        throw std::invalid_argument("unknown application: " + name);
      }
      try {
        seed = std::stoull(name.substr(11));
      } catch (const std::exception&) {
        throw std::invalid_argument("bad stress-gen seed in: " + name);
      }
    }
    return make_stress_gen(scale, seed);
  }
  // "stress-micro" / "stress-micro@<seed>": the bounded-iteration profile of
  // the fuzz workload, sized so the schedule explorer (src/explore/) can
  // exhaustively enumerate its interleavings on a two-node machine. Scale is
  // ignored — micro is its own, smaller-than-kTiny size.
  if (name.rfind("stress-micro", 0) == 0) {
    std::uint64_t seed = 1;
    if (name.size() > 12) {
      if (name[12] != '@') {
        throw std::invalid_argument("unknown application: " + name);
      }
      try {
        seed = std::stoull(name.substr(13));
      } catch (const std::exception&) {
        throw std::invalid_argument("bad stress-micro seed in: " + name);
      }
    }
    return make_stress_micro(scale, seed);
  }
  throw std::invalid_argument("unknown application: " + name);
}

}  // namespace svmsim::apps
