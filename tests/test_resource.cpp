#include "engine/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "engine/simulator.hpp"
#include "engine/task.hpp"

namespace svmsim::engine {
namespace {

TEST(Resource, SerializesService) {
  Simulator sim;
  Resource r(sim);
  std::vector<Cycles> done;
  for (int i = 0; i < 3; ++i) {
    spawn([](Simulator& s, Resource& res, std::vector<Cycles>& d) -> Task<void> {
      co_await res.serve(10);
      d.push_back(s.now());
    }(sim, r, done));
  }
  sim.run_until_idle();
  EXPECT_EQ(done, (std::vector<Cycles>{10, 20, 30}));
  EXPECT_EQ(r.grants(), 3u);
  EXPECT_EQ(r.busy_cycles(), 30u);
}

TEST(Resource, FifoOrderAmongWaiters) {
  Simulator sim;
  Resource r(sim);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    spawn([](Resource& res, std::vector<int>& o, int id) -> Task<void> {
      co_await res.serve(5);
      o.push_back(id);
    }(r, order, i));
  }
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, ZeroServiceStillGrants) {
  Simulator sim;
  Resource r(sim);
  int served = 0;
  spawn([](Resource& res, int& n) -> Task<void> {
    co_await res.serve(0);
    ++n;
  }(r, served));
  sim.run_until_idle();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Resource, WithHoldsForBodyDuration) {
  Simulator sim;
  Resource r(sim);
  std::vector<Cycles> done;
  spawn([](Simulator& s, Resource& res, std::vector<Cycles>& d) -> Task<void> {
    co_await res.with([&]() -> Task<void> { co_await s.delay(25); });
    d.push_back(s.now());
  }(sim, r, done));
  spawn([](Simulator& s, Resource& res, std::vector<Cycles>& d) -> Task<void> {
    co_await res.serve(5);
    d.push_back(s.now());
  }(sim, r, done));
  sim.run_until_idle();
  EXPECT_EQ(done, (std::vector<Cycles>{25, 30}));
}

TEST(PriorityResource, HigherPriorityWinsArbitration) {
  Simulator sim;
  PriorityResource r(sim, /*arbitration=*/1);
  std::vector<int> order;
  // Occupy the resource, then enqueue low before high priority.
  spawn([](PriorityResource& res, std::vector<int>& o) -> Task<void> {
    co_await res.serve(5, 10);
    o.push_back(0);
  }(r, order));
  spawn([](PriorityResource& res, std::vector<int>& o) -> Task<void> {
    co_await res.serve(4, 10);  // queued first, lower priority (bigger num)
    o.push_back(2);
  }(r, order));
  spawn([](PriorityResource& res, std::vector<int>& o) -> Task<void> {
    co_await res.serve(1, 10);  // queued second, higher priority
    o.push_back(1);
  }(r, order));
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(PriorityResource, ArbitrationAddsToEveryGrant) {
  Simulator sim;
  PriorityResource r(sim, 4);
  Cycles done = 0;
  spawn([](Simulator& s, PriorityResource& res, Cycles& d) -> Task<void> {
    co_await res.serve(0, 10);
    co_await res.serve(0, 10);
    d = s.now();
  }(sim, r, done));
  sim.run_until_idle();
  EXPECT_EQ(done, 28u);  // 2 x (4 arbitration + 10 service)
  EXPECT_EQ(r.busy_cycles(), 28u);
}

TEST(PriorityResource, EqualPriorityIsFifo) {
  Simulator sim;
  PriorityResource r(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](PriorityResource& res, std::vector<int>& o, int id) -> Task<void> {
      co_await res.serve(2, 7);
      o.push_back(id);
    }(r, order, i));
  }
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace svmsim::engine
