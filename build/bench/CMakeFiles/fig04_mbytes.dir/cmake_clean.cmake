file(REMOVE_RECURSE
  "CMakeFiles/fig04_mbytes.dir/fig04_mbytes.cpp.o"
  "CMakeFiles/fig04_mbytes.dir/fig04_mbytes.cpp.o.d"
  "fig04_mbytes"
  "fig04_mbytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mbytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
