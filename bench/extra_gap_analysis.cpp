// Paper §6 guided simulations: per-application gap analysis between
// achievable, best and ideal performance, plus the paper's diagnostic
// what-ifs (free interrupts, quadrupled I/O bandwidth, fetches made local).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  harness::Table t({"application", "achievable", "free interrupts",
                    "4x I/O bandwidth", "local fetches", "best", "ideal"});
  for (const auto& app : opt.app_names) {
    auto ach = sweep.run_point(app, bench::base_config(), 0);

    SimConfig no_intr = bench::base_config();
    no_intr.comm.interrupt_cost = 0;
    auto r_no_intr = sweep.run_point(app, no_intr, 1);

    SimConfig bw4 = bench::base_config();
    bw4.comm.io_bus_mb_per_mhz *= 4.0;
    auto r_bw4 = sweep.run_point(app, bw4, 2);

    SimConfig local = bench::base_config();
    local.disable_remote_fetches = true;
    auto r_local = sweep.run_point(app, local, 3);

    SimConfig best = bench::base_config();
    best.comm = CommParams::best();
    auto r_best = sweep.run_point(app, best, 4);

    t.add_row({app, harness::fmt(ach.speedup()),
               harness::fmt(r_no_intr.speedup()), harness::fmt(r_bw4.speedup()),
               harness::fmt(r_local.speedup()), harness::fmt(r_best.speedup()),
               harness::fmt(ach.ideal_speedup())});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf("== Extra (paper 6): per-application gap analysis ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "extra_gap");
  return 0;
}
