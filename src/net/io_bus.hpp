// The node's I/O bus: the bandwidth bottleneck between host memory and the
// network interface. Its bandwidth is the swept parameter of Figure 8,
// expressed as MB/s per MHz of processor clock (== bytes per CPU cycle).
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "engine/resource.hpp"
#include "engine/simulator.hpp"

namespace svmsim::net {

class IoBus {
 public:
  IoBus(engine::Simulator& sim, const CommParams& comm)
      : comm_(&comm), res_(sim) {}

  [[nodiscard]] Cycles transfer_cycles(std::uint64_t bytes) const {
    return comm_->io_bus_cycles(bytes);
  }

  /// Occupy the I/O bus for a `bytes` DMA (either direction; the bus is
  /// shared by the NI's incoming and outgoing paths).
  engine::Task<void> dma(std::uint64_t bytes) {
    return res_.serve(transfer_cycles(bytes));
  }

  [[nodiscard]] Cycles busy_cycles() const { return res_.busy_cycles(); }
  [[nodiscard]] Cycles busy_until() const { return res_.busy_until(); }
  [[nodiscard]] Cycles committed_until() const {
    return res_.committed_until();
  }

 private:
  const CommParams* comm_;
  engine::Resource res_;
};

}  // namespace svmsim::net
