file(REMOVE_RECURSE
  "CMakeFiles/fig14_clustering.dir/fig14_clustering.cpp.o"
  "CMakeFiles/fig14_clustering.dir/fig14_clustering.cpp.o.d"
  "fig14_clustering"
  "fig14_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
