// CLI-layer tests for the shared bench option parser (bench_common): the
// --trace / --par-cores conflict must terminate with its own exit code
// (kExitTracedParallel) and a diagnostic naming both flags and the docs,
// and --pdes-window must parse, default, reject, and propagate into every
// sweep point. Exit codes are part of the contract — scripts branch on
// them — so the failure paths are exercised as death/exit tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace svmsim::bench {
namespace {

/// Run Options::parse over a fake argv. --jobs=1 is forced so no worker
/// pool is spawned (keeps the death tests' fork clean of threads).
Options parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  args.push_back("--jobs=1");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCliDeathTest, TracedParallelExitsWithDistinctCode) {
  EXPECT_EXIT(parse({"--trace=/tmp/t.bin", "--par-cores=4"}),
              ::testing::ExitedWithCode(kExitTracedParallel),
              "--trace cannot be combined with --par-cores=4");
}

TEST(BenchCliDeathTest, TracedParallelDiagnosticPointsAtDocs) {
  EXPECT_EXIT(parse({"--trace=/tmp/t.bin", "--par-cores=2"}),
              ::testing::ExitedWithCode(kExitTracedParallel),
              "docs/tracing.md");
}

TEST(BenchCliDeathTest, UnknownWindowPolicyExitsWithUsageCode) {
  EXPECT_EXIT(parse({"--pdes-window=bogus"}), ::testing::ExitedWithCode(2),
              "pdes-window");
}

TEST(BenchCliDeathTest, ZeroProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", 0, 4),
              ::testing::ExitedWithCode(kExitBadProcs), "out of range");
}

TEST(BenchCliDeathTest, NegativeProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", -8, 4),
              ::testing::ExitedWithCode(kExitBadProcs), "out of range");
}

TEST(BenchCliDeathTest, OverMaxProcsExitsWithBadProcsCode) {
  EXPECT_EXIT(
      checked_total_procs("bench_test", "--procs", kMaxTotalProcs + 1, 4),
      ::testing::ExitedWithCode(kExitBadProcs), "between 1 and");
}

TEST(BenchCliDeathTest, IndivisibleProcsNamesFlagAndDivisor) {
  EXPECT_EXIT(checked_total_procs("bench_test", "--pdes-procs", 10, 4),
              ::testing::ExitedWithCode(kExitBadProcs),
              "--pdes-procs=10 is not a multiple of procs_per_node=4");
}

TEST(BenchCli, ValidProcsPassThrough) {
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", 256, 4), 256);
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", 4, 4), 4);
  EXPECT_EQ(checked_total_procs("bench_test", "--pdes-procs", kMaxTotalProcs,
                                4),
            kMaxTotalProcs);
}

TEST(BenchCli, WindowPolicyFlagParses) {
  EXPECT_EQ(parse({"--pdes-window=fixed"}).pdes_window, WindowPolicy::kFixed);
  EXPECT_EQ(parse({"--pdes-window=adaptive"}).pdes_window,
            WindowPolicy::kAdaptive);
  // Unset: the build's compiled-in default (SVMSIM_PDES_WINDOW).
  EXPECT_EQ(parse({}).pdes_window, SimConfig{}.pdes_window);
}

TEST(BenchCli, TraceAloneAndParCoresAloneAreAccepted) {
  EXPECT_EQ(parse({"--par-cores=4"}).par_cores, 4);
  EXPECT_TRUE(parse({"--trace=/tmp/t.bin"}).trace.enabled);
}

TEST(BenchCli, SweepPointsCarryParCoresAndWindowPolicy) {
  auto opt = parse({"--par-cores=2", "--pdes-window=fixed", "--apps=fft"});
  auto pts = suite_points({0.0}, [](SimConfig&, double) {}, opt);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].cfg.par_cores, 2);
  EXPECT_EQ(pts[0].cfg.pdes_window, WindowPolicy::kFixed);
}

}  // namespace
}  // namespace svmsim::bench
