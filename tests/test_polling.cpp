// Polling instead of interrupts (paper §10's proposal, implemented as
// InterruptScheme::kPolling).
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Distribution;
using apps::SharedArray;
using apps::Shm;

SimConfig polling_config(int total = 16, int ppn = 4) {
  SimConfig cfg = config_with(total, ppn);
  cfg.comm.interrupt_scheme = InterruptScheme::kPolling;
  return cfg;
}

TEST(Polling, ServicesRequestsWithoutInterrupts) {
  SimConfig cfg = polling_config();
  auto app = apps::make_app("fft", apps::Scale::kTiny);
  auto r = svmsim::run(*app, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.stats.counters().interrupts, 0u);
  EXPECT_GT(r.stats.counters().polled_requests, 0u);
}

TEST(Polling, CoherenceHoldsUnderPolling) {
  SimConfig cfg = polling_config();
  constexpr int kSlots = 48;
  SharedArray<long long> acc;
  LambdaWorkload w(
      "polling-acc",
      [&](Machine& m) {
        acc = SharedArray<long long>::alloc(m, kSlots, Distribution::block());
        for (int i = 0; i < kSlots; ++i) acc.debug_put(m, i, 0LL);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int P = shm.nprocs();
        for (int k = 0; k < P; ++k) {
          const int t = (pid + k) % P;
          co_await shm.lock(300 + t);
          for (int i = t * kSlots / P; i < (t + 1) * kSlots / P; ++i) {
            const long long v = co_await acc.get(shm, i);
            co_await acc.put(shm, i, v + 1 + pid);
          }
          co_await shm.unlock(300 + t);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        long long want = 0;
        for (int p = 0; p < 16; ++p) want += 1 + p;
        for (int i = 0; i < kSlots; ++i) {
          if (acc.debug_get(m, i) != want) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
}

TEST(Polling, InsensitiveToInterruptCost) {
  // The whole point of polling: raising the interrupt cost changes nothing.
  SimConfig lo = polling_config();
  lo.comm.interrupt_cost = 0;
  SimConfig hi = polling_config();
  hi.comm.interrupt_cost = 10000;
  auto a1 = apps::make_app("water-nsq", apps::Scale::kTiny);
  auto a2 = apps::make_app("water-nsq", apps::Scale::kTiny);
  auto r1 = svmsim::run(*a1, lo);
  auto r2 = svmsim::run(*a2, hi);
  EXPECT_EQ(r1.time, r2.time);
}

TEST(Polling, CoarserPollIntervalAddsLatency) {
  SimConfig fine = polling_config();
  fine.comm.poll_interval = 200;
  SimConfig coarse = polling_config();
  coarse.comm.poll_interval = 20000;
  auto a1 = apps::make_app("fft", apps::Scale::kTiny);
  auto a2 = apps::make_app("fft", apps::Scale::kTiny);
  auto r1 = svmsim::run(*a1, fine);
  auto r2 = svmsim::run(*a2, coarse);
  EXPECT_LT(r1.time, r2.time);
}

TEST(Polling, BeatsExpensiveInterrupts) {
  // With costly interrupts, polling should win (Stets et al.'s finding,
  // discussed in paper §10); with free interrupts, interrupts win.
  SimConfig intr = config_with(16, 4);
  intr.comm.interrupt_cost = 5000;
  SimConfig poll = polling_config();
  poll.comm.interrupt_cost = 5000;  // irrelevant under polling
  auto a1 = apps::make_app("barnes", apps::Scale::kTiny);
  auto a2 = apps::make_app("barnes", apps::Scale::kTiny);
  auto r_intr = svmsim::run(*a1, intr);
  auto r_poll = svmsim::run(*a2, poll);
  EXPECT_LT(r_poll.time, r_intr.time);
}

TEST(Polling, WorksAcrossProtocolsAndShapes) {
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    for (int ppn : {1, 4}) {
      SimConfig cfg = polling_config(16, ppn);
      cfg.comm.protocol = proto;
      auto app = apps::make_app("water-sp", apps::Scale::kTiny);
      auto r = svmsim::run(*app, cfg);
      EXPECT_TRUE(r.validated)
          << to_string(proto) << " ppn=" << ppn;
      EXPECT_EQ(r.stats.counters().interrupts, 0u);
    }
  }
}

}  // namespace
}  // namespace svmsim::test
