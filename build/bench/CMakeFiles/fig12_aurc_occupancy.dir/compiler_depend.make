# Empty compiler generated dependencies file for fig12_aurc_occupancy.
# This may be replaced when dependencies are built.
