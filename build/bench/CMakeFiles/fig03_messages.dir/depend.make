# Empty dependencies file for fig03_messages.
# This may be replaced when dependencies are built.
