// Self-measurement for the simulator hot path: runs the same multi-app
// host-overhead sweep serially and under --jobs N, checks the results are
// identical, and reports wall-clock time, simulation throughput (events/sec)
// and heap-allocation rate (allocs/event), machine-readably.
//
// A second arm measures the PDES mode (docs/engine.md): one run of
// --pdes-app, serial vs --par-cores=<pdes-cores> partition worker threads,
// the parallel run once per window policy (adaptive, then fixed). All three
// must be bit-identical; the speedup, per-partition event counts and
// per-policy conservative-window statistics (windows, windows/sec,
// events per partition-window) land in the "pdes" section of the JSON.
// A third arm re-runs the fig05 host-overhead matrix under --par-cores with
// both window policies and records the suite-wide window totals
// ("pdes_fig05" section) — the adaptive-window win on the paper's own
// parameter sweep, not just on the stress workload.
//   --pdes-min-speedup=X gates the adaptive speedup (exit 1 below X); it
//     needs a hardware thread per partition worker to be meaningful and
//     self-disables on smaller machines.
//   --pdes-min-window-reduction=X gates fixed_windows/adaptive_windows on
//     the --pdes-app run (exit 1 below X). Window counts are deterministic
//     (they depend only on the configuration, never on wall-clock timing),
//     so this gate never self-disables.
//
//   ./perf_selfcheck [--scale=tiny] [--jobs=N] [--apps=a,b,c]
//                    [--pdes-app=fft] [--pdes-cores=4] [--pdes-scale=large]
//                    [--pdes-min-speedup=X] [--pdes-min-window-reduction=X]
//                    [--out=BENCH_sweep.json]
//
// If the output file already exists with a compatible schema, the previous
// serial numbers are read back and a before/after comparison line is
// printed, so regressions in either throughput or allocation discipline are
// visible at a glance. A missing previous file or one written by an older
// schema skips the comparison with a note on stderr — never an error:
// the first run on a fresh checkout must succeed.
//
// Exit status is nonzero if any parallel results differ from the serial
// ones, so this doubles as a determinism check for CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "trace/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in the binary ticks it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pairs inlined new-expressions with the malloc inside the replacement
// and flags a mismatch; the replacement set is consistent, so silence it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using svmsim::harness::AppRun;

struct Measurement {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                      : 0.0;
  }
};

Measurement measure(std::vector<AppRun>& out,
                    const std::vector<svmsim::harness::SweepPoint>& points,
                    svmsim::apps::Scale scale, svmsim::harness::JobPool* pool) {
  // A fresh Sweep each time so the baseline cache is cold for both arms.
  svmsim::harness::Sweep sweep(scale);
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  out = sweep.run_points(points, pool);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  for (const auto& r : out) m.events += r.result.events;
  return m;
}

bool identical(const std::vector<AppRun>& a, const std::vector<AppRun>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].app != b[i].app || a[i].param != b[i].param ||
        a[i].uniprocessor != b[i].uniprocessor ||
        a[i].result.time != b[i].result.time ||
        a[i].result.events != b[i].result.events ||
        !(a[i].result.stats == b[i].result.stats)) {
      return false;
    }
  }
  return true;
}

std::uint64_t total_windows(const std::vector<AppRun>& runs) {
  std::uint64_t w = 0;
  for (const auto& r : runs) w += r.result.windows;
  return w;
}

/// One --par-cores run of the PDES arm under a given window policy, with the
/// derived per-window rates the "pdes" JSON section reports.
struct PolicyRun {
  svmsim::RunResult result;
  Measurement m;

  [[nodiscard]] double windows_per_sec() const {
    return m.wall_seconds > 0
               ? static_cast<double>(result.windows) / m.wall_seconds
               : 0.0;
  }
  [[nodiscard]] double events_per_partition_window() const {
    const auto denom = static_cast<double>(result.windows) *
                       static_cast<double>(result.partition_events.size());
    return denom > 0 ? static_cast<double>(result.events) / denom : 0.0;
  }
};

/// Pull one numeric field out of the previous run's JSON (crude but enough
/// for the flat schema this program writes itself).
std::optional<double> json_number_after(const std::string& text,
                                        const std::string& section,
                                        const std::string& key) {
  const std::size_t s = text.find("\"" + section + "\"");
  if (s == std::string::npos) return std::nullopt;
  const std::size_t k = text.find("\"" + key + "\"", s);
  if (k == std::string::npos) return std::nullopt;
  const std::size_t colon = text.find(':', k);
  if (colon == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

/// The schema version this program writes. v2 added the top-level "schema"
/// tag itself and the shared "micro_event_queue" section (see
/// micro_event_queue.cpp); files without the tag predate v2. v3 added the
/// "pdes" section (node-partitioned parallel simulation). v4 split the
/// "pdes" parallel numbers into per-window-policy subsections (adaptive vs
/// fixed, with windows, windows_per_sec and events_per_partition_window)
/// and added the "pdes_fig05" window probe over the host-overhead matrix.
/// v5 added allocs_per_event and peak_clock_pool (high-water pooled clock
/// bodies, docs/scaling.md) to every pdes measurement — the allocation-free
/// invariant tracked at --pdes-procs scale — and began preserving the
/// bench_scale "scale" section across rewrites. v6 began preserving the
/// extra_topology "topology" section (contended interconnects, src/topo/)
/// across rewrites.
constexpr int kSchema = 6;

}  // namespace

int main(int argc, char** argv) {
  using namespace svmsim;
  harness::Cli cli(argc, argv);
  // Re-parse through the bench options for scale/apps/jobs handling, but
  // default to tiny scale: this is a self-check, not a figure.
  auto opt = bench::Options::parse(argc, argv);
  if (!cli.get("scale")) opt.scale = apps::Scale::kTiny;
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");
  const unsigned jobs =
      opt.jobs > 1 ? static_cast<unsigned>(opt.jobs)
                   : harness::JobPool::hardware_default();

  // Previous numbers (if any) for the before/after comparison. Degrade
  // gracefully: a missing or older-schema file only skips the comparison.
  std::optional<double> prev_eps, prev_ape;
  std::optional<std::string> micro_section, overhead_section, scale_section,
      topology_section;
  {
    std::ifstream prev(out_path);
    if (!prev) {
      std::fprintf(stderr,
                   "perf_selfcheck: no previous %s; skipping the "
                   "before/after comparison\n",
                   out_path.c_str());
    } else {
      std::stringstream ss;
      ss << prev.rdbuf();
      const std::string text = ss.str();
      const auto schema = json_number_after(text, "bench", "schema");
      if (!schema || static_cast<int>(*schema) < kSchema) {
        std::fprintf(stderr,
                     "perf_selfcheck: previous %s has schema %d (this "
                     "program writes %d); skipping the before/after "
                     "comparison\n",
                     out_path.c_str(), schema ? static_cast<int>(*schema) : 1,
                     kSchema);
      } else {
        prev_eps = json_number_after(text, "serial", "events_per_sec");
        prev_ape = json_number_after(text, "serial", "allocs_per_event");
      }
      // Keep the other tools' sections (if any) across our rewrite.
      micro_section = harness::json_object_section(text, "micro_event_queue");
      overhead_section = harness::json_object_section(text, "trace_overhead");
      scale_section = harness::json_object_section(text, "scale");
      topology_section = harness::json_object_section(text, "topology");
    }
  }

  // The fig05 host-overhead sweep: a representative all-independent batch.
  const std::vector<double> values{0, 500, 1000, 2000};
  const auto apply = [](SimConfig& c, double v) {
    c.comm.host_overhead = static_cast<Cycles>(v);
  };
  const auto points = bench::suite_points(values, apply, opt);

  std::fprintf(stderr, "perf_selfcheck: %zu points (%zu apps x %zu values), "
               "serial then --jobs=%u\n",
               points.size(), opt.app_names.size(), values.size(), jobs);

  std::vector<AppRun> serial_runs;
  const Measurement serial = measure(serial_runs, points, opt.scale, nullptr);

  std::vector<AppRun> parallel_runs;
  harness::JobPool pool(jobs);
  const Measurement parallel =
      measure(parallel_runs, points, opt.scale, &pool);

  const bool same = identical(serial_runs, parallel_runs);
  const double speedup = parallel.wall_seconds > 0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;

  // PDES arm: one run, serial event loop vs par_cores partition workers,
  // the parallel run once per window policy. All three runs must be
  // bit-identical (the docs/engine.md determinism contract), so equal
  // events make the events/sec ratio a pure wall-clock speedup and the
  // window counts a pure measure of barrier frequency.
  const int pdes_cores =
      std::max(2, static_cast<int>(cli.get_int("pdes-cores", 4)));
  const std::string pdes_app = cli.get_or("pdes-app", "fft");
  const double pdes_min = cli.get_double("pdes-min-speedup", 0.0);
  const double pdes_min_reduction =
      cli.get_double("pdes-min-window-reduction", 0.0);
  apps::Scale pdes_scale = opt.scale;
  if (auto s = cli.get("pdes-scale")) {
    pdes_scale = *s == "large"   ? apps::Scale::kLarge
                 : *s == "small" ? apps::Scale::kSmall
                                 : apps::Scale::kTiny;
  }
  auto timed_run = [](const std::string& app, apps::Scale scale,
                      const SimConfig& cfg, Measurement& m) {
    auto w = apps::make_app(app, scale);
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    RunResult r = run(*w, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    m.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    m.events = r.events;
    return r;
  };
  // --pdes-procs grows the simulated cluster (keeping the paper's 4 procs
  // per node): more nodes means more events inside each conservative window,
  // which is the regime the PDES mode exists for. 0 keeps the default.
  SimConfig pdes_base = bench::base_config();
  if (auto procs_arg = cli.get("pdes-procs")) {
    pdes_base.comm.total_procs = bench::checked_total_procs(
        argc > 0 ? argv[0] : nullptr, "--pdes-procs",
        std::strtol(procs_arg->c_str(), nullptr, 10),
        pdes_base.comm.procs_per_node);
  }
  std::fprintf(stderr, "perf_selfcheck: pdes arm: %s on %d procs, serial "
               "then --par-cores=%d (adaptive, then fixed windows)\n",
               pdes_app.c_str(), pdes_base.comm.total_procs, pdes_cores);
  Measurement pdes_serial_m;
  const RunResult pdes_serial =
      timed_run(pdes_app, pdes_scale, pdes_base, pdes_serial_m);
  SimConfig pdes_cfg = pdes_base;
  pdes_cfg.par_cores = pdes_cores;
  PolicyRun pdes_adaptive, pdes_fixed;
  pdes_cfg.pdes_window = WindowPolicy::kAdaptive;
  pdes_adaptive.result =
      timed_run(pdes_app, pdes_scale, pdes_cfg, pdes_adaptive.m);
  pdes_cfg.pdes_window = WindowPolicy::kFixed;
  pdes_fixed.result = timed_run(pdes_app, pdes_scale, pdes_cfg, pdes_fixed.m);
  const auto same_run = [&](const RunResult& r) {
    return pdes_serial.time == r.time && pdes_serial.events == r.events &&
           pdes_serial.stats == r.stats &&
           pdes_serial.stats.counters() == r.stats.counters();
  };
  const bool pdes_same =
      same_run(pdes_adaptive.result) && same_run(pdes_fixed.result);
  const double pdes_speedup =
      pdes_serial_m.events_per_sec() > 0
          ? pdes_adaptive.m.events_per_sec() / pdes_serial_m.events_per_sec()
          : 0.0;
  const double pdes_reduction =
      pdes_adaptive.result.windows > 0
          ? static_cast<double>(pdes_fixed.result.windows) /
                static_cast<double>(pdes_adaptive.result.windows)
          : 0.0;

  // fig05 window probe: the same host-overhead matrix as the sweep arms,
  // under --par-cores with each window policy. The serial sweep above is
  // the byte-identity reference; the suite-wide window totals show the
  // adaptive win on the paper's own parameter matrix.
  std::fprintf(stderr,
               "perf_selfcheck: fig05 probe: %zu points at --par-cores=%d "
               "(adaptive, then fixed windows)\n",
               points.size(), pdes_cores);
  auto par_points = points;
  for (auto& p : par_points) p.cfg.par_cores = pdes_cores;
  for (auto& p : par_points) p.cfg.pdes_window = WindowPolicy::kAdaptive;
  std::vector<AppRun> fig_adaptive_runs;
  measure(fig_adaptive_runs, par_points, opt.scale, nullptr);
  for (auto& p : par_points) p.cfg.pdes_window = WindowPolicy::kFixed;
  std::vector<AppRun> fig_fixed_runs;
  measure(fig_fixed_runs, par_points, opt.scale, nullptr);
  const std::uint64_t fig_adaptive_w = total_windows(fig_adaptive_runs);
  const std::uint64_t fig_fixed_w = total_windows(fig_fixed_runs);
  const bool fig_same = identical(serial_runs, fig_adaptive_runs) &&
                        identical(serial_runs, fig_fixed_runs);
  const double fig_reduction =
      fig_adaptive_w > 0 ? static_cast<double>(fig_fixed_w) /
                               static_cast<double>(fig_adaptive_w)
                         : 0.0;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"sweep\",\n"
       << "  \"schema\": " << kSchema << ",\n"
       << "  \"build\": \"" << trace::build_provenance() << "\",\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"hardware_threads\": " << harness::JobPool::hardware_default()
       << ",\n"
       << "  \"serial\": {\"wall_seconds\": " << serial.wall_seconds
       << ", \"events\": " << serial.events
       << ", \"events_per_sec\": " << serial.events_per_sec()
       << ", \"allocs\": " << serial.allocs
       << ", \"allocs_per_event\": " << serial.allocs_per_event() << "},\n"
       << "  \"parallel\": {\"wall_seconds\": " << parallel.wall_seconds
       << ", \"events\": " << parallel.events
       << ", \"events_per_sec\": " << parallel.events_per_sec()
       << ", \"allocs\": " << parallel.allocs
       << ", \"allocs_per_event\": " << parallel.allocs_per_event() << "},\n";
  if (prev_eps) {
    json << "  \"previous_serial\": {\"events_per_sec\": " << *prev_eps;
    if (prev_ape) json << ", \"allocs_per_event\": " << *prev_ape;
    json << "},\n";
  }
  const auto policy_json = [&json](const char* name, const PolicyRun& r) {
    json << "\"" << name << "\": {\"wall_seconds\": " << r.m.wall_seconds
         << ", \"events_per_sec\": " << r.m.events_per_sec()
         << ", \"allocs_per_event\": " << r.m.allocs_per_event()
         << ", \"peak_clock_pool\": " << r.result.peak_clock_pool
         << ", \"windows\": " << r.result.windows
         << ", \"windows_per_sec\": " << r.windows_per_sec()
         << ", \"events_per_partition_window\": "
         << r.events_per_partition_window() << "}";
  };
  json << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical_results\": " << (same ? "true" : "false") << ",\n"
       << "  \"pdes\": {\"app\": \"" << pdes_app << "\""
       << ", \"procs\": " << pdes_base.comm.total_procs
       << ", \"par_cores\": " << pdes_cores
       << ", \"partitions\": " << pdes_adaptive.result.partition_events.size()
       << ", \"serial_wall_seconds\": " << pdes_serial_m.wall_seconds
       << ", \"serial_events_per_sec\": " << pdes_serial_m.events_per_sec()
       << ", \"serial_allocs_per_event\": " << pdes_serial_m.allocs_per_event()
       << ", \"serial_peak_clock_pool\": " << pdes_serial.peak_clock_pool
       << ", ";
  policy_json("adaptive", pdes_adaptive);
  json << ", ";
  policy_json("fixed", pdes_fixed);
  json << ", \"window_reduction\": " << pdes_reduction
       << ", \"speedup\": " << pdes_speedup << ", \"partition_events\": [";
  for (std::size_t p = 0; p < pdes_adaptive.result.partition_events.size();
       ++p) {
    json << (p ? ", " : "") << pdes_adaptive.result.partition_events[p];
  }
  json << "], \"identical_results\": " << (pdes_same ? "true" : "false")
       << "},\n"
       << "  \"pdes_fig05\": {\"par_cores\": " << pdes_cores
       << ", \"points\": " << par_points.size()
       << ", \"adaptive_windows\": " << fig_adaptive_w
       << ", \"fixed_windows\": " << fig_fixed_w
       << ", \"window_reduction\": " << fig_reduction
       << ", \"identical_results\": " << (fig_same ? "true" : "false") << "}";
  if (micro_section) {
    json << ",\n  \"micro_event_queue\": " << *micro_section;
  }
  if (overhead_section) {
    json << ",\n  \"trace_overhead\": " << *overhead_section;
  }
  if (scale_section) {
    json << ",\n  \"scale\": " << *scale_section;
  }
  if (topology_section) {
    json << ",\n  \"topology\": " << *topology_section;
  }
  json << "\n}\n";
  harness::write_file_atomic(out_path, json.str());

  std::printf("== perf_selfcheck: serial vs --jobs=%u sweep ==\n", jobs);
  harness::Table t(
      {"arm", "wall seconds", "events", "events/sec", "allocs/event"});
  t.add_row({"serial", harness::fmt(serial.wall_seconds, 3),
             std::to_string(serial.events),
             harness::fmt(serial.events_per_sec(), 0),
             harness::fmt(serial.allocs_per_event(), 3)});
  t.add_row({"parallel", harness::fmt(parallel.wall_seconds, 3),
             std::to_string(parallel.events),
             harness::fmt(parallel.events_per_sec(), 0),
             harness::fmt(parallel.allocs_per_event(), 3)});
  t.print();
  if (prev_eps) {
    std::printf(
        "vs previous serial: events/sec %.0f -> %.0f (%+.1f%%)",
        *prev_eps, serial.events_per_sec(),
        *prev_eps > 0
            ? 100.0 * (serial.events_per_sec() - *prev_eps) / *prev_eps
            : 0.0);
    if (prev_ape) {
      std::printf(", allocs/event %.3f -> %.3f (%.1fx fewer)", *prev_ape,
                  serial.allocs_per_event(),
                  serial.allocs_per_event() > 0
                      ? *prev_ape / serial.allocs_per_event()
                      : 0.0);
    }
    std::printf("\n");
  }
  std::printf("speedup: %.2fx, identical results: %s (written to %s)\n",
              speedup, same ? "yes" : "NO", out_path.c_str());
  std::printf(
      "pdes: %s serial %.3fs vs --par-cores=%d %.3fs -> %.2fx "
      "(%zu partitions), identical results: %s\n",
      pdes_app.c_str(), pdes_serial_m.wall_seconds, pdes_cores,
      pdes_adaptive.m.wall_seconds, pdes_speedup,
      pdes_adaptive.result.partition_events.size(), pdes_same ? "yes" : "NO");
  std::printf(
      "pdes footprint: %.3f allocs/event serial, peak pooled clock bodies "
      "%llu serial / %llu adaptive\n",
      pdes_serial_m.allocs_per_event(),
      static_cast<unsigned long long>(pdes_serial.peak_clock_pool),
      static_cast<unsigned long long>(pdes_adaptive.result.peak_clock_pool));
  std::printf(
      "pdes windows: adaptive %llu vs fixed %llu (%.1fx fewer; %.1f events "
      "per partition-window adaptive, %.1f fixed)\n",
      static_cast<unsigned long long>(pdes_adaptive.result.windows),
      static_cast<unsigned long long>(pdes_fixed.result.windows),
      pdes_reduction, pdes_adaptive.events_per_partition_window(),
      pdes_fixed.events_per_partition_window());
  std::printf(
      "pdes fig05 probe: adaptive %llu vs fixed %llu windows over %zu "
      "points (%.1fx fewer), identical results: %s\n",
      static_cast<unsigned long long>(fig_adaptive_w),
      static_cast<unsigned long long>(fig_fixed_w), par_points.size(),
      fig_reduction, fig_same ? "yes" : "NO");
  if (pdes_min > 0) {
    // The speedup gate asks for real parallel speedup, which needs a
    // hardware thread per partition worker: on a smaller machine the
    // measurement is still recorded but the gate cannot be meaningful.
    if (harness::JobPool::hardware_default() <
        static_cast<unsigned>(pdes_cores)) {
      std::fprintf(stderr,
                   "perf_selfcheck: %u hardware thread(s) < %d partitions; "
                   "recording the pdes speedup but skipping the "
                   "--pdes-min-speedup gate\n",
                   harness::JobPool::hardware_default(), pdes_cores);
    } else if (pdes_speedup < pdes_min) {
      std::fprintf(stderr,
                   "perf_selfcheck: pdes speedup %.2fx below the --pdes-min-"
                   "speedup=%.2f gate\n", pdes_speedup, pdes_min);
      return 1;
    }
  }
  if (pdes_min_reduction > 0 && pdes_reduction < pdes_min_reduction) {
    std::fprintf(stderr,
                 "perf_selfcheck: pdes window reduction %.2fx (fixed %llu / "
                 "adaptive %llu) below the --pdes-min-window-reduction=%.2f "
                 "gate\n",
                 pdes_reduction,
                 static_cast<unsigned long long>(pdes_fixed.result.windows),
                 static_cast<unsigned long long>(pdes_adaptive.result.windows),
                 pdes_min_reduction);
    return 1;
  }
  return same && pdes_same && fig_same ? 0 : 1;
}
