#include "engine/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/simulator.hpp"

namespace svmsim::engine {
namespace {

Task<int> value_task(int v) { co_return v; }

Task<int> add_tasks(int a, int b) {
  const int x = co_await value_task(a);
  const int y = co_await value_task(b);
  co_return x + y;
}

TEST(Task, ReturnsValueThroughChain) {
  int result = 0;
  spawn([](int& out) -> Task<void> {
    out = co_await add_tasks(2, 3);
  }(result));
  EXPECT_EQ(result, 5);  // no suspensions: runs to completion inline
}

TEST(Task, VoidTaskCompletes) {
  bool ran = false;
  spawn([](bool& flag) -> Task<void> {
    flag = true;
    co_return;
  }(ran));
  EXPECT_TRUE(ran);
}

TEST(Task, DeepChainUsesSymmetricTransfer) {
  // A deep co_await chain must not overflow the stack.
  struct Rec {
    static Task<int> down(int depth) {
      if (depth == 0) co_return 0;
      co_return 1 + co_await down(depth - 1);
    }
  };
  int result = 0;
  spawn([](int& out) -> Task<void> {
    out = co_await Rec::down(100000);
  }(result));
  EXPECT_EQ(result, 100000);
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  struct Thrower {
    static Task<int> boom() {
      throw std::runtime_error("boom");
      co_return 0;  // unreachable
    }
  };
  std::string caught;
  spawn([](std::string& out) -> Task<void> {
    try {
      (void)co_await Thrower::boom();
    } catch (const std::runtime_error& e) {
      out = e.what();
    }
  }(caught));
  EXPECT_EQ(caught, "boom");
}

TEST(Task, SuspendsAcrossSimulatedDelays) {
  Simulator sim;
  std::vector<int> order;
  spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    o.push_back(1);
    co_await s.delay(10);
    o.push_back(3);
  }(sim, order));
  order.push_back(2);  // spawn returned at the first suspension
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Task, ManyConcurrentTasksInterleaveByTime) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    spawn([](Simulator& s, std::vector<int>& o, int id) -> Task<void> {
      co_await s.delay(static_cast<Cycles>(10 * (5 - id)));
      o.push_back(id);
    }(sim, order, i));
  }
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Task, UnawaitedTaskDoesNotRun) {
  bool ran = false;
  {
    auto t = [](bool& flag) -> Task<void> {
      flag = true;
      co_return;
    }(ran);
    EXPECT_TRUE(t.valid());
    // destroyed without being awaited
  }
  EXPECT_FALSE(ran);
}

TEST(Task, MoveTransfersOwnership) {
  auto t = value_task(7);
  Task<int> u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(u.valid());
  int out = 0;
  spawn([](Task<int> task, int& o) -> Task<void> {
    o = co_await std::move(task);
  }(std::move(u), out));
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace svmsim::engine
