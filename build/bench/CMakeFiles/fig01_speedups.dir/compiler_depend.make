# Empty compiler generated dependencies file for fig01_speedups.
# This may be replaced when dependencies are built.
