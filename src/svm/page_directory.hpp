// Global LRC interval history: which pages each node dirtied in each of its
// intervals. Write notices for a lock grant or barrier release are "the
// intervals the acquirer has not seen yet".
//
// In a real HLRC system this history is distributed and piggybacked on lock
// grants; we keep it in one shared structure (a simulator shortcut — the
// *messages* still carry the notices' size on the wire, and invalidations
// are applied exactly where the protocol would apply them).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/types.hpp"
#include "svm/diff.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

class PageDirectory {
 public:
  explicit PageDirectory(int nodes)
      : hist_(static_cast<std::size_t>(nodes)) {}

  [[nodiscard]] int nodes() const noexcept {
    return static_cast<int>(hist_.size());
  }

  /// Record node `n`'s interval `index` (1-based, must be the next one).
  void record_interval(NodeId n, std::uint32_t index,
                       std::vector<PageId> pages);

  /// For every interval covered by `target` but not by `have`, invoke
  /// `fn(page, writer_node)` for each dirtied page. Returns the number of
  /// notices (for wire sizing: 8 bytes each).
  std::uint64_t collect_notices(
      const VClock& have, const VClock& target,
      const std::function<void(PageId, NodeId)>& fn) const;

  /// Number of notices without visiting them (message sizing).
  [[nodiscard]] std::uint64_t count_notices(const VClock& have,
                                            const VClock& target) const;

  [[nodiscard]] std::uint32_t intervals_of(NodeId n) const {
    return static_cast<std::uint32_t>(hist_[static_cast<std::size_t>(n)].size());
  }

 private:
  // hist_[node][interval-1] = pages dirtied in that interval.
  std::vector<std::vector<std::vector<PageId>>> hist_;
};

}  // namespace svmsim::svm
