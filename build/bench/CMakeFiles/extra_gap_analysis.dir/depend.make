# Empty dependencies file for extra_gap_analysis.
# This may be replaced when dependencies are built.
