#include "svm/vclock.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace svmsim::svm {

bool VClock::covers(const VClock& o) const {
  assert(v_.size() == o.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < o.v_[i]) return false;
  }
  return true;
}

void VClock::merge(const VClock& o) {
  assert(v_.size() == o.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], o.v_[i]);
  }
}

std::string VClock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) os << ' ';
    os << v_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace svmsim::svm
