// Convert a binary svmsim trace (--trace=<file>) to Chrome trace_event JSON
// loadable in Perfetto / chrome://tracing.
//
//   trace2chrome <trace.bin> [out.json]
//
// With no output argument, writes <trace.bin>.json.
#include <cstdio>
#include <exception>
#include <string>

#include "trace/chrome.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <trace.bin> [out.json]\n", argv[0]);
    return 2;
  }
  const std::string in = argv[1];
  const std::string out = argc == 3 ? argv[2] : in + ".json";
  try {
    const svmsim::trace::TraceFile f = svmsim::trace::read_file(in);
    svmsim::trace::write_chrome_json(f, out);
    std::printf("%s: %zu records -> %s (%d procs, %d nodes, end=%llu)\n",
                in.c_str(), f.records.size(), out.c_str(), f.procs, f.nodes,
                static_cast<unsigned long long>(f.end_time));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace2chrome: %s\n", e.what());
    return 1;
  }
  return 0;
}
