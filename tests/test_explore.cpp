// The schedule explorer, explored: schedule-file round-trip and rejection
// properties, record/replay byte-identity across both protocols, exhaustive
// enumeration of the canonical tiny config with a pinned deterministic
// state count, DPOR-style pruning versus full branching, and the
// mutation-kill matrix for the schedule-dependent fault class — the
// single-seed baseline run provably misses kReorderSensitiveNotice and the
// explorer provably catches it (both directions asserted).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"
#include "explore/explorer.hpp"
#include "explore/schedule.hpp"

namespace svmsim::test {
namespace {

using explore::Branching;
using explore::Choice;
using explore::ChoiceKind;
using explore::DecodeError;
using explore::ExploreConfig;
using explore::Explorer;
using explore::ExploreResult;
using explore::RunOutcome;
using explore::Schedule;

/// The canonical exhaustive point: two nodes, one processor each, the
/// bounded stress-micro workload. Two deliberate distortions grow a real
/// choice tree out of a machine this small: 32-byte pages spread the tiny
/// arrays' homes across both nodes, and a 4000-cycle wire keeps several
/// deliveries in flight at once so the band actually co-pends channels
/// (at the default 100-cycle wire, every packet lands before the next
/// send and the hook never sees a choice).
SimConfig tiny_config(Protocol proto = Protocol::kHLRC) {
  SimConfig cfg = config_with(2, 1, proto);
  cfg.comm.page_bytes = 32;
  cfg.arch.wire_latency_cycles = 4000;
  cfg.check.enabled = true;
  return cfg;
}

/// The canonical exhaustive app: a third stress seed shuffles the access
/// pattern enough to keep ~10 wire decisions live per run.
constexpr const char* kTinyApp = "stress-micro@3";

/// Exhaustive (kFull) state count of tiny_config() + kTinyApp. The same
/// number is pinned by the explore_exhaustive_smoke ctest entry and the
/// CI "Explore smoke" step (bench/CMakeLists.txt): a drift means the
/// engine's nondeterminism surface changed — new decision points appeared
/// or existing ones vanished — and must be a conscious decision.
constexpr std::uint64_t kPinnedTinyStates = 13;

// ---------------------------------------------------------------------------
// Schedule file format
// ---------------------------------------------------------------------------

Schedule sample_schedule() {
  return {
      {ChoiceKind::kWire, 0x0010002000000007ull},
      {ChoiceKind::kVictim, (std::uint64_t{3} << 32) | 1},
      {ChoiceKind::kPollSlip, (std::uint64_t{2} << 32) | 1},
      {ChoiceKind::kWire, 0xffffffffffffffffull},
      {ChoiceKind::kWire, 0},
  };
}

TEST(ScheduleFile, EncodeDecodeRoundTrips) {
  const Schedule s = sample_schedule();
  const auto bytes = explore::encode(s, 0xabcdef12345678ull);
  Schedule back;
  ASSERT_EQ(explore::decode(bytes.data(), bytes.size(), 0xabcdef12345678ull,
                            back),
            DecodeError::kOk);
  EXPECT_EQ(back, s);
}

TEST(ScheduleFile, EmptyScheduleRoundTrips) {
  const auto bytes = explore::encode({}, 7);
  Schedule back;
  ASSERT_EQ(explore::decode(bytes.data(), bytes.size(), 7, back),
            DecodeError::kOk);
  EXPECT_TRUE(back.empty());
}

TEST(ScheduleFile, EveryTruncationIsRejected) {
  const auto bytes = explore::encode(sample_schedule(), 42);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Schedule out;
    const DecodeError e = explore::decode(bytes.data(), len, 42, out);
    EXPECT_EQ(e, DecodeError::kTruncated) << "prefix length " << len;
    EXPECT_TRUE(out.empty());
  }
}

TEST(ScheduleFile, EverySingleByteCorruptionIsRejected) {
  const auto bytes = explore::encode(sample_schedule(), 42);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x5a;
    Schedule out;
    const DecodeError e = explore::decode(bad.data(), bad.size(), 42, out);
    EXPECT_NE(e, DecodeError::kOk) << "flipped byte " << i;
    EXPECT_TRUE(out.empty());
  }
}

TEST(ScheduleFile, DistinctRejectionReasons) {
  const auto bytes = explore::encode(sample_schedule(), 42);
  Schedule out;

  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(explore::decode(bad_magic.data(), bad_magic.size(), 42, out),
            DecodeError::kBadMagic);

  auto bad_version = bytes;
  bad_version[8] = 0x7f;  // version is checked before the checksum
  EXPECT_EQ(explore::decode(bad_version.data(), bad_version.size(), 42, out),
            DecodeError::kBadVersion);

  auto bad_sum = bytes;
  bad_sum.back() ^= 1;
  EXPECT_EQ(explore::decode(bad_sum.data(), bad_sum.size(), 42, out),
            DecodeError::kBadChecksum);

  // A valid file replayed against the wrong config: fingerprint mismatch
  // (checked after integrity, so the diagnostic is trustworthy).
  EXPECT_EQ(explore::decode(bytes.data(), bytes.size(), 43, out),
            DecodeError::kBadFingerprint);
}

TEST(ScheduleFile, SaveLoadRoundTripsAndMissingFileIsTruncated) {
  const std::string path = ::testing::TempDir() + "svmsim_sched_test.bin";
  std::remove(path.c_str());
  Schedule out;
  EXPECT_EQ(explore::load_file(path, 42, out), DecodeError::kTruncated);
  const Schedule s = sample_schedule();
  ASSERT_TRUE(explore::save_file(path, s, 42));
  ASSERT_EQ(explore::load_file(path, 42, out), DecodeError::kOk);
  EXPECT_EQ(out, s);
  std::remove(path.c_str());
}

TEST(ScheduleFile, FingerprintSeparatesConfigs) {
  const SimConfig a = tiny_config(Protocol::kHLRC);
  const SimConfig b = tiny_config(Protocol::kAURC);
  SimConfig c = tiny_config(Protocol::kHLRC);
  c.comm.page_bytes = 512;
  SimConfig d = tiny_config(Protocol::kHLRC);
  d.arch.wire_latency_cycles = 100;
  const auto fp = [](const SimConfig& cfg) {
    return explore::config_fingerprint("stress-micro@1", cfg);
  };
  EXPECT_NE(fp(a), fp(b));
  EXPECT_NE(fp(a), fp(c));
  EXPECT_NE(fp(a), fp(d)) << "wire latency shapes the decision stream";
  EXPECT_NE(explore::config_fingerprint("stress-micro@2", a), fp(a));
  EXPECT_EQ(fp(a), fp(tiny_config(Protocol::kHLRC)));
}

// ---------------------------------------------------------------------------
// Record / replay
// ---------------------------------------------------------------------------

class ReplayIdentity : public ::testing::TestWithParam<Protocol> {};

TEST_P(ReplayIdentity, RunRecordReplayIsByteIdentical) {
  Explorer ex("stress-micro@1", apps::Scale::kTiny, tiny_config(GetParam()),
              ExploreConfig{});
  // Hook-free run vs hook-attached default run: installing the explorer
  // must not perturb the simulation.
  auto app = apps::make_app("stress-micro@1", apps::Scale::kTiny);
  const RunResult plain = run(*app, tiny_config(GetParam()));
  const RunOutcome recorded = ex.run_schedule({});
  ASSERT_FALSE(recorded.error) << recorded.error_message;
  EXPECT_EQ(recorded.result.stats, plain.stats);
  EXPECT_EQ(recorded.result.time, plain.time);
  EXPECT_TRUE(recorded.result.validated);
  EXPECT_EQ(recorded.result.check_violations, 0u);
  EXPECT_GT(recorded.schedule.size(), 0u);

  // Round-trip through the on-disk format, then force every decision.
  const std::string path = ::testing::TempDir() + "svmsim_replay_" +
                           to_string(GetParam()) + ".sched";
  ASSERT_TRUE(explore::save_file(path, recorded.schedule, ex.fingerprint()));
  Schedule loaded;
  ASSERT_EQ(explore::load_file(path, ex.fingerprint(), loaded),
            DecodeError::kOk);
  std::remove(path.c_str());
  ASSERT_EQ(loaded, recorded.schedule);
  const RunOutcome replayed = ex.run_schedule(loaded);
  ASSERT_FALSE(replayed.error) << replayed.error_message;
  EXPECT_EQ(replayed.result.stats, recorded.result.stats);
  EXPECT_EQ(replayed.result.time, recorded.result.time);
  EXPECT_EQ(replayed.schedule, recorded.schedule);

  // A strict prefix forces part of the run and defaults the rest: still
  // the same history (replay is stateless re-execution, not state jump).
  const Schedule prefix(loaded.begin(),
                        loaded.begin() + static_cast<std::ptrdiff_t>(
                                             loaded.size() / 2));
  const RunOutcome half = ex.run_schedule(prefix);
  ASSERT_FALSE(half.error) << half.error_message;
  EXPECT_EQ(half.result.stats, recorded.result.stats);
  EXPECT_EQ(half.schedule, recorded.schedule);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ReplayIdentity,
                         ::testing::Values(Protocol::kHLRC, Protocol::kAURC),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return to_string(info.param);
                         });

TEST(Replay, DivergentScheduleThrows) {
  Explorer ex("stress-micro@1", apps::Scale::kTiny, tiny_config(),
              ExploreConfig{});
  // A wire key no channel ever carries: divergence, not silent fallback.
  EXPECT_THROW((void)ex.run_schedule({{ChoiceKind::kWire, 0xdeadbeefull}}),
               std::runtime_error);
  // More forced choices than the run has decisions: also divergence.
  Schedule base = ex.run_schedule({}).schedule;
  base.push_back({ChoiceKind::kWire, 0xdeadbeefull});
  EXPECT_THROW((void)ex.run_schedule(base), std::runtime_error);
}

TEST(Replay, ParallelConfigRejected) {
  SimConfig cfg = tiny_config();
  cfg.comm.total_procs = 4;
  cfg.par_cores = 2;
  Explorer ex("stress-micro@1", apps::Scale::kTiny, cfg, ExploreConfig{});
  EXPECT_THROW((void)ex.run_schedule({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Exhaustive exploration of the canonical tiny config
// ---------------------------------------------------------------------------

TEST(Explore, ExhaustiveTinyConfigIsPinnedAndClean) {
  ExploreConfig xcfg;
  xcfg.branching = Branching::kFull;
  xcfg.max_states = 4096;
  Explorer ex(kTinyApp, apps::Scale::kTiny, tiny_config(), xcfg);
  const ExploreResult res = ex.explore();
  EXPECT_FALSE(res.budget_exhausted);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.states, 1u) << "no branching: the hook saw no choice points";
  EXPECT_EQ(res.states, kPinnedTinyStates);
  EXPECT_EQ(res.states, res.branches + 1)
      << "every state but the root is some branch's child";
  // Determinism: byte-for-byte identical exploration on a second pass.
  const ExploreResult again = ex.explore();
  EXPECT_EQ(again.states, res.states);
  EXPECT_EQ(again.decisions, res.decisions);
  EXPECT_EQ(again.branches, res.branches);
  EXPECT_EQ(again.sleep_pruned, res.sleep_pruned);
  EXPECT_EQ(again.max_depth, res.max_depth);
}

TEST(Explore, DependentModePrunesIndependentBranches) {
  ExploreConfig full;
  full.branching = Branching::kFull;
  ExploreConfig dep;
  dep.branching = Branching::kDependent;
  Explorer exf(kTinyApp, apps::Scale::kTiny, tiny_config(), full);
  Explorer exd(kTinyApp, apps::Scale::kTiny, tiny_config(), dep);
  const ExploreResult rf = exf.explore();
  const ExploreResult rd = exd.explore();
  EXPECT_EQ(rf.violations, 0u);
  EXPECT_EQ(rd.violations, 0u);
  // Most co-enabled pairs on two nodes target different nodes and are
  // pruned as independent; the few that survive are genuine same-node
  // races (a remote delivery vs a node's own loopback wire event).
  EXPECT_LT(rd.states, rf.states);
  EXPECT_GT(rd.independent_pruned, 0u);
}

TEST(Explore, BudgetStopsExploration) {
  ExploreConfig xcfg;
  xcfg.branching = Branching::kFull;
  xcfg.max_states = 3;
  Explorer ex(kTinyApp, apps::Scale::kTiny, tiny_config(), xcfg);
  const ExploreResult res = ex.explore();
  EXPECT_EQ(res.states, 3u);
  EXPECT_TRUE(res.budget_exhausted);
}

// ---------------------------------------------------------------------------
// Mutation-kill matrix: the schedule-dependent fault class
// ---------------------------------------------------------------------------

/// Three-node cluster: the reorder witness needs two *different* sources
/// delivering to one destination, which two nodes cannot produce.
SimConfig reorder_config() {
  SimConfig cfg = config_with(3, 1, Protocol::kHLRC);
  cfg.comm.page_bytes = 32;
  cfg.arch.wire_latency_cycles = 4000;
  cfg.check.enabled = true;
  return cfg;
}

class ScopedMutation {
 public:
  explicit ScopedMutation(const char* name) {
    ::setenv("SVMSIM_CHECK_MUTATION", name, 1);
  }
  ~ScopedMutation() { ::unsetenv("SVMSIM_CHECK_MUTATION"); }
};

TEST(MutationKill, SingleSeedRunMissesReorderSensitiveNotice) {
  const ScopedMutation arm("reorder_sensitive_notice");
  // The deterministic baseline schedule delivers same-cycle packets in
  // ascending source order (the wire band's (time, key) sort), so the
  // mutation's arming predicate is structurally unreachable: the planted
  // bug is invisible to every single-schedule run, seeds included.
  auto app = apps::make_app("stress-micro@1", apps::Scale::kTiny);
  const RunResult r = run(*app, reorder_config());
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.check_violations, 0u)
      << "baseline run armed the reorder witness: the wire band no longer "
         "fires same-cycle deliveries in ascending key order";
}

TEST(MutationKill, ExplorerCatchesReorderSensitiveNotice) {
  const ScopedMutation arm("reorder_sensitive_notice");
  ExploreConfig xcfg;
  xcfg.branching = Branching::kDependent;  // reorderings of same-dst pairs
  xcfg.hb_prune = false;  // maximum same-destination coverage
  xcfg.max_states = 2048;
  xcfg.stop_on_violation = true;
  Explorer ex("stress-micro@1", apps::Scale::kTiny, reorder_config(), xcfg);
  const ExploreResult res = ex.explore();
  ASSERT_GE(res.violations, 1u)
      << "explorer exhausted " << res.states
      << " states without arming the schedule-dependent mutation";
  ASSERT_FALSE(res.violating.empty());

  // The failing schedule is a replay recipe: re-executing it reproduces
  // the violation deterministically.
  const RunOutcome again = ex.run_schedule(res.violating.front());
  EXPECT_TRUE(again.error || again.result.check_violations > 0 ||
              !again.result.validated)
      << "violating schedule did not reproduce under replay";

  // Disarmed, the planted bug is gone and with it the violation. Note the
  // mutated protocol *behaves* differently once the witness trips (it
  // drops a notice), so the healthy protocol's decision stream departs
  // from the armed schedule partway through: replay must either complete
  // clean or refuse with a divergence — never reproduce the violation.
  ::unsetenv("SVMSIM_CHECK_MUTATION");
  try {
    const RunOutcome clean = ex.run_schedule(res.violating.front());
    EXPECT_FALSE(clean.error) << clean.error_message;
    EXPECT_TRUE(clean.result.validated);
    EXPECT_EQ(clean.result.check_violations, 0u);
  } catch (const std::runtime_error&) {
    // Correct rejection: the schedule forces a delivery the healthy
    // protocol never has in flight at that point.
  }
  // And the disarmed baseline schedule is clean: the violation above is
  // the planted bug under an adversarial schedule, not an explorer
  // artifact.
  const RunOutcome base = ex.run_schedule({});
  EXPECT_FALSE(base.error) << base.error_message;
  EXPECT_TRUE(base.result.validated);
  EXPECT_EQ(base.result.check_violations, 0u);
}

}  // namespace
}  // namespace svmsim::test
