// Paper §5 extras: interrupt sensitivity with uniprocessor nodes, and
// round-robin vs fixed interrupt delivery within SMP nodes.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  // (a) Interrupt cost sweep with uniprocessor nodes.
  {
    harness::Table t({"application", "intr=0", "intr=500", "intr=2500",
                      "intr=5000"});
    for (const auto& app : opt.app_names) {
      std::vector<std::string> row{app};
      for (double v : {0.0, 500.0, 2500.0, 5000.0}) {
        SimConfig cfg = bench::base_config();
        cfg.comm.procs_per_node = 1;
        cfg.comm.interrupt_cost = static_cast<Cycles>(v);
        auto run = sweep.run_point(app, cfg, v);
        row.push_back(harness::fmt(run.speedup()));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      t.add_row(std::move(row));
    }
    std::fprintf(stderr, "\n");
    std::printf(
        "== Extra (paper 5): interrupt-cost sweep, uniprocessor nodes ==\n");
    t.print();
    harness::maybe_write_csv(t, opt.csv_dir, "extra_intr_uniproc");
  }

  // (b) Fixed processor-0 delivery vs round-robin.
  {
    harness::Table t({"application", "fixed-proc0", "round-robin"});
    for (const auto& app : opt.app_names) {
      std::vector<std::string> row{app};
      for (auto scheme : {InterruptScheme::kFixedProcessor,
                          InterruptScheme::kRoundRobin}) {
        SimConfig cfg = bench::base_config();
        cfg.comm.interrupt_scheme = scheme;
        auto run = sweep.run_point(app, cfg, static_cast<double>(scheme));
        row.push_back(harness::fmt(run.speedup()));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      t.add_row(std::move(row));
    }
    std::fprintf(stderr, "\n");
    std::printf(
        "== Extra (paper 5): fixed vs round-robin interrupt delivery ==\n");
    t.print();
    harness::maybe_write_csv(t, opt.csv_dir, "extra_intr_scheme");
  }
  return 0;
}
