#include "topo/fat_tree.hpp"

#include <stdexcept>
#include <string>

namespace svmsim::topo {

FatTree::FatTree(const ArchParams& arch, int nodes, int k,
                 const SimOfNode& sim_of_node)
    : Topology(arch), nodes_(nodes), k_(k), half_(k / 2),
      pod_hosts_(half_ * half_) {
  const int capacity = k * pod_hosts_;  // k pods x (k/2)^2 hosts = k^3/4
  if (nodes < 1 || nodes > capacity) {
    throw std::invalid_argument(
        "fattree:" + std::to_string(k) + " hosts at most " +
        std::to_string(capacity) + " nodes, got " + std::to_string(nodes));
  }
  const int hosts = capacity;
  const int switches = half_;  // per tier per pod
  // A link's owner partition serves it: keep each link owned by a host it
  // is "near" (the host itself, or the first host under the switch) so
  // most hops of a partition-local route stay partition-local. Owners for
  // slots past the populated hosts wrap modulo nodes_ — any fixed
  // assignment is correct, ownership only picks the serving thread.
  const auto owner_of = [this](int host) -> NodeId {
    return static_cast<NodeId>(host % nodes_);
  };

  host_up_.resize(static_cast<std::size_t>(hosts));
  host_down_.resize(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    const NodeId o = owner_of(h);
    host_up_[static_cast<std::size_t>(h)] =
        add_link(sim_of_node(o), o, LinkKind::kInject);
    host_down_[static_cast<std::size_t>(h)] =
        add_link(sim_of_node(o), o, LinkKind::kEject);
  }

  edge_up_.resize(static_cast<std::size_t>(k * switches * half_));
  aggr_down_.resize(static_cast<std::size_t>(k * switches * half_));
  aggr_up_.resize(static_cast<std::size_t>(k * switches * half_));
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < switches; ++e) {
      // Edge (pod, e) serves hosts [pod*pod_hosts + e*half, +half).
      const NodeId edge_owner = owner_of(pod * pod_hosts_ + e * half_);
      for (int a = 0; a < half_; ++a) {
        edge_up_[static_cast<std::size_t>((pod * half_ + e) * half_ + a)] =
            add_link(sim_of_node(edge_owner), edge_owner, LinkKind::kUp);
      }
    }
    const NodeId pod_owner = owner_of(pod * pod_hosts_);
    for (int a = 0; a < switches; ++a) {
      for (int e = 0; e < half_; ++e) {
        // Down links are owned near their target edge switch.
        const NodeId o = owner_of(pod * pod_hosts_ + e * half_);
        aggr_down_[static_cast<std::size_t>((pod * half_ + a) * half_ + e)] =
            add_link(sim_of_node(o), o, LinkKind::kDown);
      }
      for (int ci = 0; ci < half_; ++ci) {
        aggr_up_[static_cast<std::size_t>((pod * half_ + a) * half_ + ci)] =
            add_link(sim_of_node(pod_owner), pod_owner, LinkKind::kUp);
      }
    }
  }

  const int cores = half_ * half_;
  core_down_.resize(static_cast<std::size_t>(cores * k));
  for (int c = 0; c < cores; ++c) {
    for (int pod = 0; pod < k; ++pod) {
      const NodeId o = owner_of(pod * pod_hosts_);  // toward the target pod
      core_down_[static_cast<std::size_t>(c * k_ + pod)] =
          add_link(sim_of_node(o), o, LinkKind::kDown);
    }
  }

  seal_links();
}

void FatTree::route(NodeId src, NodeId dst, RouteBuf& out) const noexcept {
  out.hops = 0;
  const int s = src;
  const int d = dst;
  const int ps = s / pod_hosts_;
  const int pd = d / pod_hosts_;
  const int es = (s % pod_hosts_) / half_;
  const int ed = (d % pod_hosts_) / half_;

  out.push(host_up_[static_cast<std::size_t>(s)]);
  if (ps == pd && es == ed) {
    // Nearest common ancestor is the shared edge switch.
    out.push(host_down_[static_cast<std::size_t>(d)]);
    return;
  }
  // Destination-based ECMP: the aggregation slot (and, cross-pod, the core
  // within that slot's group) are pure functions of the destination
  // address, spreading distinct destinations over the equal-cost ancestors.
  const int a = d % half_;
  out.push(edge_up_[static_cast<std::size_t>((ps * half_ + es) * half_ + a)]);
  if (ps != pd) {
    const int ci = (d / half_) % half_;
    const int c = a * half_ + ci;
    out.push(
        aggr_up_[static_cast<std::size_t>((ps * half_ + a) * half_ + ci)]);
    out.push(core_down_[static_cast<std::size_t>(c * k_ + pd)]);
  }
  out.push(
      aggr_down_[static_cast<std::size_t>((pd * half_ + a) * half_ + ed)]);
  out.push(host_down_[static_cast<std::size_t>(d)]);
}

}  // namespace svmsim::topo
