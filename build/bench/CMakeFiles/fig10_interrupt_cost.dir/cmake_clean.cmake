file(REMOVE_RECURSE
  "CMakeFiles/fig10_interrupt_cost.dir/fig10_interrupt_cost.cpp.o"
  "CMakeFiles/fig10_interrupt_cost.dir/fig10_interrupt_cost.cpp.o.d"
  "fig10_interrupt_cost"
  "fig10_interrupt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_interrupt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
