file(REMOVE_RECURSE
  "CMakeFiles/fig12_aurc_occupancy.dir/fig12_aurc_occupancy.cpp.o"
  "CMakeFiles/fig12_aurc_occupancy.dir/fig12_aurc_occupancy.cpp.o.d"
  "fig12_aurc_occupancy"
  "fig12_aurc_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_aurc_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
