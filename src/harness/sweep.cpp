#include "harness/sweep.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace svmsim::harness {

Cycles Sweep::baseline(const std::string& app, const SimConfig& base) {
  std::ostringstream key;
  key << app << "/pg" << base.comm.page_bytes << "/"
      << to_string(base.comm.protocol);
  auto it = baselines_.find(key.str());
  if (it != baselines_.end()) return it->second;

  auto w = apps::make_app(app, scale_);
  const SimConfig uni = uniprocessor_config(base);
  RunResult r = run(*w, uni);
  if (!r.validated) {
    throw std::runtime_error(app + ": uniprocessor run failed validation");
  }
  baselines_.emplace(key.str(), r.time);
  return r.time;
}

AppRun Sweep::run_point(const std::string& app, const SimConfig& cfg,
                        double param_value) {
  AppRun out;
  out.app = app;
  out.param = param_value;
  out.uniprocessor = baseline(app, cfg);
  auto w = apps::make_app(app, scale_);
  out.result = run(*w, cfg);
  if (!out.result.validated) {
    throw std::runtime_error(app + ": run failed validation");
  }
  return out;
}

std::vector<AppRun> Sweep::run_sweep(
    const std::string& app, const SimConfig& base,
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply) {
  std::vector<AppRun> out;
  out.reserve(values.size());
  for (double v : values) {
    SimConfig cfg = base;
    apply(cfg, v);
    out.push_back(run_point(app, cfg, v));
  }
  return out;
}

double max_slowdown_pct(const std::vector<AppRun>& runs) {
  if (runs.size() < 2) return 0.0;
  // The paper computes the slowdown between the smallest and the biggest
  // value of the swept parameter: first point vs last point.
  const double fast = runs.front().speedup();
  const double slow = runs.back().speedup();
  if (slow <= 0.0) return 0.0;
  return (fast / slow - 1.0) * 100.0;
}

}  // namespace svmsim::harness
