// PDES mode tests: partition mapping, the wire band's ordering contract on
// both scheduler backends, the WindowDriver's conservative windows, frame
// registry ownership across threads, and serial-vs-parallel bit equality of
// whole application runs (the determinism contract of docs/engine.md,
// "PDES mode").
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "core/runner.hpp"
#include "engine/event_queue.hpp"
#include "engine/partition.hpp"
#include "engine/ring_queue.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"

namespace svmsim {
namespace {

// ---------------------------------------------------------------- mapping

TEST(Partitioning, EffectivePartitionsClamps) {
  using engine::effective_partitions;
  EXPECT_EQ(effective_partitions(0, 4), 1);
  EXPECT_EQ(effective_partitions(-3, 4), 1);
  EXPECT_EQ(effective_partitions(1, 4), 1);
  EXPECT_EQ(effective_partitions(2, 4), 2);
  EXPECT_EQ(effective_partitions(4, 4), 4);
  EXPECT_EQ(effective_partitions(16, 4), 4);  // never more than one per node
  EXPECT_EQ(effective_partitions(8, 1), 1);
}

TEST(Partitioning, PartitionOfIsContiguousAndCoversAll) {
  using engine::partition_of;
  for (int nodes : {1, 2, 3, 4, 7, 8, 16, 33}) {
    for (int parts = 1; parts <= nodes; ++parts) {
      std::vector<int> size(static_cast<std::size_t>(parts), 0);
      int prev = 0;
      for (int n = 0; n < nodes; ++n) {
        const int p = partition_of(n, nodes, parts);
        ASSERT_GE(p, 0) << nodes << "/" << parts;
        ASSERT_LT(p, parts) << nodes << "/" << parts;
        ASSERT_GE(p, prev) << "not contiguous at node " << n;
        prev = p;
        ++size[static_cast<std::size_t>(p)];
      }
      // Node 0 (the barrier manager) is always partition 0, the one that
      // runs on the calling thread.
      EXPECT_EQ(partition_of(0, nodes, parts), 0);
      EXPECT_EQ(prev, parts - 1) << "last partition unused";
      for (int p = 0; p < parts; ++p) {
        EXPECT_GT(size[static_cast<std::size_t>(p)], 0)
            << "empty partition " << p << " for " << nodes << "/" << parts;
      }
    }
  }
}

// --------------------------------------------------------------- wire band

// The wire band contract (docs/engine.md): at equal time, wire events fire
// before every (time, seq) event, and order among themselves by key — not by
// insertion order. Both backends must agree, which is what lets the PDES
// mode replay the serial delivery order from content-derived keys alone.
template <typename Scheduler>
void expect_wire_band_order() {
  Scheduler q;
  std::vector<std::string> order;

  q.schedule_at(10, [&order] { order.push_back("seq-a"); });
  // Wire events inserted in descending key order: must fire ascending.
  q.schedule_wire(10, 30, [&order] { order.push_back("wire-30"); });
  q.schedule_wire(10, 20, [&order] { order.push_back("wire-20"); });
  q.schedule_wire(10, 25, [&order] { order.push_back("wire-25"); });
  q.schedule_at(10, [&order] { order.push_back("seq-b"); });
  q.schedule_wire(5, 99, [&order] { order.push_back("wire-early"); });

  q.run_until_idle();
  EXPECT_EQ(order,
            (std::vector<std::string>{"wire-early", "wire-20", "wire-25",
                                      "wire-30", "seq-a", "seq-b"}));
  EXPECT_EQ(q.events_fired(), 6u);
  EXPECT_EQ(q.now(), 10u);
}

TEST(WireBand, TieredSchedulerFiresWireBeforeSeqAndByKey) {
  expect_wire_band_order<engine::detail::TieredScheduler>();
}

TEST(WireBand, HeapSchedulerFiresWireBeforeSeqAndByKey) {
  expect_wire_band_order<engine::detail::HeapScheduler>();
}

template <typename Scheduler>
void expect_wire_next_time_and_deadline() {
  Scheduler q;
  int fired = 0;
  q.schedule_wire(7, 1, [&fired] { ++fired; });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.next_time(), 7u);
  // A deadline before the wire event leaves it pending.
  EXPECT_FALSE(q.run_until(6));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.run_until(7));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(WireBand, TieredSchedulerNextTimeSeesWire) {
  expect_wire_next_time_and_deadline<engine::detail::TieredScheduler>();
}

TEST(WireBand, HeapSchedulerNextTimeSeesWire) {
  expect_wire_next_time_and_deadline<engine::detail::HeapScheduler>();
}

TEST(WireBand, ClearDropsWireEvents) {
  engine::EventQueue q;
  q.schedule_wire(5, 1, [] { FAIL() << "cleared event fired"; });
  q.schedule_at(5, [] { FAIL() << "cleared event fired"; });
  q.clear();
  EXPECT_TRUE(q.empty());
  q.run_until_idle();
}

// ------------------------------------------------------------ WindowDriver

TEST(WindowDriver, SinglePartitionAdaptiveCollapsesToOneWindow) {
  // No publish hook means no cross-partition traffic, ever: the adaptive
  // policy sees min(send) = kNever at the first barrier and runs everything
  // to the horizon in a single window.
  engine::EventQueue q;
  std::vector<int> order;
  for (int i = 5; i >= 1; --i) {
    q.schedule_at(static_cast<Cycles>(i * 100),
                  [&order, i] { order.push_back(i); });
  }
  engine::WindowDriver driver({&q}, /*lookahead=*/100, {});
  EXPECT_TRUE(driver.run(Cycles{1} << 30));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(driver.windows(), 1u);
}

TEST(WindowDriver, SinglePartitionFixedWindowsStepByLookahead) {
  // Same workload under the fixed policy: every window is one lookahead
  // wide, so the 500-cycle span costs at least five windows.
  engine::EventQueue q;
  std::vector<int> order;
  for (int i = 5; i >= 1; --i) {
    q.schedule_at(static_cast<Cycles>(i * 100),
                  [&order, i] { order.push_back(i); });
  }
  engine::WindowDriver driver({&q}, /*lookahead=*/100, {},
                              WindowPolicy::kFixed);
  EXPECT_TRUE(driver.run(Cycles{1} << 30));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_GE(driver.windows(), 5u);
}

TEST(WindowDriver, AdaptiveWindowEndFollowsSendBound) {
  // A partition that publishes "my earliest send is head-of-queue plus a
  // 30-cycle transmit floor" (the shape Machine derives from
  // Network::min_tx_cycles) gets adaptive windows of head + 30 + lookahead:
  // wider than fixed windows (which end at head + lookahead) but far from
  // the single-window collapse.
  auto run_with = [](WindowPolicy policy,
                     bool claim_sends) -> std::uint64_t {
    engine::EventQueue q;
    for (int i = 1; i <= 100; ++i) {
      q.schedule_at(static_cast<Cycles>(i * 10), [] {});
    }
    engine::WindowDriver::Hooks hooks;
    if (claim_sends) {
      hooks.publish = [&q](int) {
        engine::WindowDriver::Published pub;
        pub.next_send = q.next_send_bound(/*floor=*/30);
        return pub;
      };
    }
    engine::WindowDriver driver({&q}, /*lookahead=*/25, std::move(hooks),
                                policy);
    EXPECT_TRUE(driver.run(Cycles{1} << 30));
    return driver.windows();
  };
  const std::uint64_t fixed = run_with(WindowPolicy::kFixed, true);
  const std::uint64_t adaptive = run_with(WindowPolicy::kAdaptive, true);
  const std::uint64_t quiet = run_with(WindowPolicy::kAdaptive, false);
  // Fixed: [head, head+25) holds two or three of the 10-apart events.
  // Adaptive: [head, head+30+25) holds five — strictly fewer windows.
  EXPECT_LT(adaptive, fixed);
  EXPECT_GT(adaptive, 1u);
  EXPECT_EQ(quiet, 1u);
}

TEST(WindowDriver, StopsAtMaxCycles) {
  engine::EventQueue q;
  int fired = 0;
  q.schedule_at(50, [&fired] { ++fired; });
  q.schedule_at(5000, [&fired] { ++fired; });
  // Fixed policy: without a publish hook the adaptive policy would run the
  // 5000-cycle event's window to the horizon; here the point is the
  // max_cycles cut between the two events.
  engine::WindowDriver driver({&q}, /*lookahead=*/10, {},
                              WindowPolicy::kFixed);
  EXPECT_FALSE(driver.run(/*max_cycles=*/100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.clear();
}

TEST(WindowDriver, AdaptiveStopsAtMaxCyclesBeforeFiringPastIt) {
  // The adaptive horizon window must still respect max_cycles: the second
  // event lies past the deadline and must stay pending.
  engine::EventQueue q;
  int fired = 0;
  q.schedule_at(50, [&fired] { ++fired; });
  q.schedule_at(5000, [&fired] { ++fired; });
  engine::WindowDriver driver({&q}, /*lookahead=*/10, {});
  EXPECT_FALSE(driver.run(/*max_cycles=*/100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.clear();
}

TEST(WindowDriver, CrossPartitionPingPongDeliversEverything) {
  // Two partitions exchange records through TimedChannels with the hook
  // structure Machine::run_parallel uses: pushes land at send-time + L (the
  // conservative bound), publish seals the window's batch and reports the
  // head-of-queue send bound, drain splices sealed batches at window start.
  constexpr Cycles kLookahead = 100;
  constexpr int kRounds = 50;

  engine::EventQueue q[2];
  engine::TimedChannel<int> chan[2];  // chan[p] feeds partition p
  std::vector<int> seen[2];

  // Seed: partition 0 fires at t=1 and "sends" to partition 1; each receipt
  // sends back until kRounds messages have crossed.
  std::function<void(int, int)> receive = [&](int p, int round) {
    seen[p].push_back(round);
    if (round >= kRounds) return;
    const int other = 1 - p;
    // Send during this window; arrival is one full lookahead away.
    chan[other].push(q[p].now() + kLookahead, static_cast<std::uint64_t>(round),
                     round + 1);
  };
  q[0].schedule_at(1, [&receive] { receive(0, 0); });

  engine::WindowDriver::Hooks hooks;
  hooks.publish = [&](int p) {
    engine::WindowDriver::Published pub;
    pub.in_flight = chan[1 - p].seal();
    // Sends happen only while events execute, so the head-of-queue time is
    // a sound lower bound (the zero-floor version of Machine's bound).
    pub.next_send = q[p].next_time();
    return pub;
  };
  hooks.drain = [&](int p) {
    chan[p].drain([&, p](engine::TimedChannel<int>::Batch& batch) {
      for (auto& e : batch) {
        const int round = e.item;
        q[p].schedule_wire(e.when, e.key,
                           [&receive, p, round] { receive(p, round); });
      }
    });
  };
  engine::WindowDriver driver({&q[0], &q[1]}, kLookahead, std::move(hooks));
  EXPECT_TRUE(driver.run(Cycles{1} << 30));

  // Rounds alternate: 0 got 0,2,4,..., 1 got 1,3,5,...
  ASSERT_FALSE(seen[0].empty());
  ASSERT_FALSE(seen[1].empty());
  EXPECT_EQ(seen[0].size() + seen[1].size(),
            static_cast<std::size_t>(kRounds + 1));
  for (std::size_t i = 0; i < seen[0].size(); ++i) {
    EXPECT_EQ(seen[0][i], static_cast<int>(2 * i));
  }
  for (std::size_t i = 0; i < seen[1].size(); ++i) {
    EXPECT_EQ(seen[1][i], static_cast<int>(2 * i + 1));
  }
  EXPECT_TRUE(chan[0].empty());
  EXPECT_TRUE(chan[1].empty());
}

TEST(WindowDriver, WorkerHooksRunOncePerPartition) {
  engine::EventQueue q[3];
  std::vector<int> begun(3, 0), ended(3, 0);
  for (auto& queue : q) {
    queue.schedule_at(10, [] {});
    queue.schedule_at(500, [] {});
  }
  engine::WindowDriver::Hooks hooks;
  hooks.worker_begin = [&begun](int p) {
    ++begun[static_cast<std::size_t>(p)];
  };
  hooks.worker_end = [&ended](int p) { ++ended[static_cast<std::size_t>(p)]; };
  engine::WindowDriver driver({&q[0], &q[1], &q[2]}, /*lookahead=*/7,
                              std::move(hooks));
  EXPECT_TRUE(driver.run(Cycles{1} << 30));
  EXPECT_EQ(begun, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(ended, (std::vector<int>{1, 1, 1}));
}

// ----------------------------------------------------------- FrameRegistry

TEST(FrameRegistry, CrossThreadTeardownAfterRebind) {
  // Regression for the PDES teardown path: frames spawned on one thread
  // (Machine construction) may be destroyed from another only after the
  // registry has been rebound at a quiescent point. With the old
  // thread_local live-list this corrupted the spawning thread's list.
  engine::Simulator sim;
  engine::FrameRegistry reg;
  {
    engine::ScopedFrameRegistry scope(reg);
    for (int i = 0; i < 8; ++i) {
      engine::spawn([](engine::Simulator& s) -> engine::Task<void> {
        co_await s.delay(1000);  // stays suspended: never run
      }(sim));
    }
  }
  EXPECT_FALSE(reg.empty());

  // Scheduled resumptions hold the coroutine handles; drop them first, as
  // Machine's destructor clears every partition queue before destroy_all.
  sim.queue().clear();
  std::thread worker([&reg] {
    reg.bind_to_this_thread();
    reg.destroy_all();
  });
  worker.join();
  EXPECT_TRUE(reg.empty());
}

TEST(FrameRegistry, ScopedRegistryNestsAndRestores) {
  engine::FrameRegistry a, b;
  EXPECT_EQ(engine::FrameRegistry::current_slot(), nullptr);
  {
    engine::ScopedFrameRegistry sa(a);
    EXPECT_EQ(&engine::FrameRegistry::current(), &a);
    {
      engine::ScopedFrameRegistry sb(b);
      EXPECT_EQ(&engine::FrameRegistry::current(), &b);
    }
    EXPECT_EQ(&engine::FrameRegistry::current(), &a);
  }
  EXPECT_EQ(engine::FrameRegistry::current_slot(), nullptr);
}

// ------------------------------------------------- whole-run determinism

SimConfig achievable_config() {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  return cfg;
}

void expect_equal_runs(const RunResult& serial, const RunResult& par,
                       const std::string& label) {
  EXPECT_TRUE(par.validated) << label;
  EXPECT_EQ(serial.time, par.time) << label;
  EXPECT_EQ(serial.events, par.events) << label;
  EXPECT_TRUE(serial.stats == par.stats) << label;
  EXPECT_TRUE(serial.stats.counters() == par.stats.counters()) << label;
}

TEST(PdesEquivalence, ParallelRunIsBitIdenticalToSerial) {
  // The tentpole contract: the same app+config at --par-cores N produces the
  // exact serial Stats. Cover an even split (4 nodes / 2), one partition per
  // node (4/4), and an uneven contiguous split (4/3).
  for (const char* app : {"fft", "stress-gen@5"}) {
    auto ws = apps::make_app(app, apps::Scale::kTiny);
    const RunResult serial = run(*ws, achievable_config());
    ASSERT_TRUE(serial.validated) << app;
    for (int cores : {2, 3, 4}) {
      SimConfig cfg = achievable_config();
      cfg.par_cores = cores;
      auto wp = apps::make_app(app, apps::Scale::kTiny);
      expect_equal_runs(serial, run(*wp, cfg),
                        std::string(app) + " par_cores=" +
                            std::to_string(cores));
    }
  }
}

TEST(PdesEquivalence, AdaptiveAndFixedWindowsMatchSerialAcrossSeeds) {
  // The adaptive-window differential matrix: par_cores {2,3,4} x both
  // protocols x four stress-gen seeds, each run once under the adaptive
  // policy and once under the fixed fallback (the runtime mirror of the
  // -DSVMSIM_PDES_WINDOW=fixed escape hatch). Every run must be
  // byte-identical to the serial reference, and adaptive must never use
  // more windows than fixed.
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    for (int seed : {1, 3, 5, 7}) {
      SimConfig cfg = achievable_config();
      cfg.comm.protocol = proto;
      const std::string app = "stress-gen@" + std::to_string(seed);
      auto ws = apps::make_app(app, apps::Scale::kTiny);
      const RunResult serial = run(*ws, cfg);
      ASSERT_TRUE(serial.validated) << app;
      for (int cores : {2, 3, 4}) {
        SimConfig par_cfg = cfg;
        par_cfg.par_cores = cores;
        const std::string label =
            app + (proto == Protocol::kAURC ? " aurc" : " hlrc") +
            " par_cores=" + std::to_string(cores);
        par_cfg.pdes_window = WindowPolicy::kAdaptive;
        auto wa = apps::make_app(app, apps::Scale::kTiny);
        const RunResult adaptive = run(*wa, par_cfg);
        expect_equal_runs(serial, adaptive, label + " adaptive");
        par_cfg.pdes_window = WindowPolicy::kFixed;
        auto wf = apps::make_app(app, apps::Scale::kTiny);
        const RunResult fixed = run(*wf, par_cfg);
        expect_equal_runs(serial, fixed, label + " fixed");
        EXPECT_LE(adaptive.windows, fixed.windows) << label;
        EXPECT_GT(adaptive.windows, 0u) << label;
      }
    }
  }
}

TEST(PdesEquivalence, BothProtocolsMatchUnderPartitioning) {
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    SimConfig cfg = achievable_config();
    cfg.comm.protocol = proto;
    auto ws = apps::make_app("lu", apps::Scale::kTiny);
    const RunResult serial = run(*ws, cfg);
    ASSERT_TRUE(serial.validated);

    SimConfig par_cfg = cfg;
    par_cfg.par_cores = 4;
    auto wp = apps::make_app("lu", apps::Scale::kTiny);
    expect_equal_runs(serial, run(*wp, par_cfg),
                      proto == Protocol::kAURC ? "aurc" : "hlrc");
  }
}

TEST(PdesEquivalence, RepeatedParallelRunsAreIdentical) {
  // Back-to-back PDES runs in one process must match: partition worker
  // threads come and go, and every thread-local pool (coroutine frames,
  // event nodes) must recycle cleanly across runs.
  SimConfig cfg = achievable_config();
  cfg.par_cores = 4;
  auto w1 = apps::make_app("stress-gen@7", apps::Scale::kTiny);
  const RunResult r1 = run(*w1, cfg);
  ASSERT_TRUE(r1.validated);
  auto w2 = apps::make_app("stress-gen@7", apps::Scale::kTiny);
  expect_equal_runs(r1, run(*w2, cfg), "repeat");
}

TEST(PdesEquivalence, TracingRejectsParallelMode) {
  SimConfig cfg = achievable_config();
  cfg.par_cores = 2;
  cfg.trace.enabled = true;
  cfg.trace.path = "/tmp/svmsim-test-pdes-trace.bin";
  auto w = apps::make_app("fft", apps::Scale::kTiny);
  EXPECT_THROW(run(*w, cfg), std::invalid_argument);
}

#ifndef SVMSIM_CHECK_DISABLED
TEST(PdesEquivalence, CheckedRunUnderFourPartitions) {
  // The shadow consistency checker must reach the same verdict (zero
  // violations) and the same observables when its hooks fire from four
  // partition threads.
  SimConfig cfg = achievable_config();
  auto ws = apps::make_app("stress-gen@3", apps::Scale::kTiny);
  const RunResult serial = run(*ws, cfg);
  ASSERT_TRUE(serial.validated);

  SimConfig par_cfg = cfg;
  par_cfg.par_cores = 4;
  par_cfg.check.enabled = true;
  auto wp = apps::make_app("stress-gen@3", apps::Scale::kTiny);
  const RunResult par = run(*wp, par_cfg);
  EXPECT_EQ(par.check_violations, 0u);
  expect_equal_runs(serial, par, "checked par4");
}
#endif

}  // namespace
}  // namespace svmsim
