#include "svm/page_directory.hpp"

#include <cassert>

namespace svmsim::svm {

void PageDirectory::record_interval(NodeId n, std::uint32_t index,
                                    std::span<const PageId> pages) {
  auto& l = log_[static_cast<std::size_t>(n)];
  const std::lock_guard<std::mutex> g(l.mu);
  assert(index == l.ends.size() + 1 && "intervals must be recorded in order");
  (void)index;
  l.pages.insert(l.pages.end(), pages.begin(), pages.end());
  l.ends.push_back(static_cast<std::uint32_t>(l.pages.size()));
}

std::uint64_t PageDirectory::collect_notices(
    const VClock& have, const VClock& target,
    const std::function<void(PageId, NodeId)>& fn) const {
  std::uint64_t count = 0;
  for (NodeId n = 0; n < nodes(); ++n) {
    const auto& l = log_[static_cast<std::size_t>(n)];
    const std::uint32_t from = have.get(n);
    const std::uint32_t to = target.get(n);
    if (from >= to) continue;
    const std::lock_guard<std::mutex> g(l.mu);
    const std::uint32_t lo = begin_of(l, from);
    const std::uint32_t hi = l.ends[to - 1];
    for (std::uint32_t i = lo; i < hi; ++i) {
      fn(l.pages[i], n);
    }
    count += hi - lo;
  }
  return count;
}

std::uint64_t PageDirectory::count_notices(const VClock& have,
                                           const VClock& target) const {
  std::uint64_t count = 0;
  for (NodeId n = 0; n < nodes(); ++n) {
    const auto& l = log_[static_cast<std::size_t>(n)];
    const std::uint32_t from = have.get(n);
    const std::uint32_t to = target.get(n);
    if (from >= to) continue;
    const std::lock_guard<std::mutex> g(l.mu);
    count += l.ends[to - 1] - begin_of(l, from);
  }
  return count;
}

}  // namespace svmsim::svm
