// Schedules: the record/replay currency of the explorer.
//
// A Schedule is the full decision log of one run — one Choice per hook
// consultation, in consultation order. Because the engine is deterministic
// between decisions, a schedule pins the entire interleaving: re-executing
// from t=0 and forcing each decision to its recorded value reproduces the
// run byte-for-byte (same Stats, same violations, same finish time).
//
// The on-disk format (save/load) is versioned and self-checking:
//
//   "SVMSCHED" magic          8 bytes
//   version                   u32 LE
//   config fingerprint        u64 LE   (fnv1a over app + machine params)
//   record count              u32 LE
//   records                   count x { kind u8, value u64 LE }
//   checksum                  u64 LE   (fnv1a over everything above)
//
// Decode distinguishes truncation, wrong magic, wrong version, checksum
// mismatch and fingerprint mismatch so bench/explore can say *why* a replay
// file was rejected. See docs/exploration.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace svmsim::explore {

/// The three kinds of decision the engine funnels through ChoiceHook.
enum class ChoiceKind : std::uint8_t {
  kWire = 1,      ///< value = the chosen delivery's wire key (net/wire_key.hpp)
  kVictim = 2,    ///< value = (node << 32) | chosen processor index
  kPollSlip = 3,  ///< value = (node << 32) | slip (0 or 1)
};

[[nodiscard]] std::string_view to_string(ChoiceKind k) noexcept;

struct Choice {
  ChoiceKind kind;
  std::uint64_t value;

  bool operator==(const Choice&) const = default;
};

using Schedule = std::vector<Choice>;

/// FNV-1a 64 over a byte string; the building block for both the config
/// fingerprint and the file checksum (deliberately simple and dependency
/// free — this is an integrity check, not a security boundary).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ull);

enum class DecodeError : std::uint8_t {
  kOk = 0,
  kTruncated,       ///< file shorter than its own record count promises
  kBadMagic,        ///< not a schedule file
  kBadVersion,      ///< schedule from an incompatible format revision
  kBadChecksum,     ///< bit rot / hand-edited records
  kBadFingerprint,  ///< schedule was recorded against a different config
};

[[nodiscard]] std::string_view to_string(DecodeError e) noexcept;

inline constexpr std::uint32_t kScheduleVersion = 1;

/// Serialize `s` with the given config fingerprint.
[[nodiscard]] std::vector<std::uint8_t> encode(const Schedule& s,
                                               std::uint64_t fingerprint);

/// Parse an encoded schedule. On kOk fills `out`; any other result leaves
/// `out` untouched. `expect_fingerprint` must match the embedded one;
/// pass the recorded value read via peek_fingerprint (or re-derive it from
/// the config) — there is no skip-the-check mode by design: replaying a
/// schedule against the wrong machine silently diverges.
[[nodiscard]] DecodeError decode(const std::uint8_t* data, std::size_t size,
                                 std::uint64_t expect_fingerprint,
                                 Schedule& out);

/// Write/read the on-disk form. save returns false on I/O failure; load
/// maps I/O failure to kTruncated (an unreadable file carries no records).
[[nodiscard]] bool save_file(const std::string& path, const Schedule& s,
                             std::uint64_t fingerprint);
[[nodiscard]] DecodeError load_file(const std::string& path,
                                    std::uint64_t expect_fingerprint,
                                    Schedule& out);

}  // namespace svmsim::explore
