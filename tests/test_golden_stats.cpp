// Golden-stats regression: two tiny deterministic runs (fft under HLRC and
// AURC at the paper's achievable point) serialized counter-for-counter and
// compared *exactly* against a checked-in JSON file. Any change to simulated
// time, event counts, the per-processor time breakdown or any protocol
// counter — intended or not — fails this test and forces the golden file to
// be regenerated consciously:
//
//   SVMSIM_GOLDEN_REGEN=1 ./tests/test_golden_stats
//
// rewrites tests/data/golden_stats.json in place (the build injects the
// source-tree path as SVMSIM_TEST_DATA_DIR).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

std::string golden_path() {
  return std::string(SVMSIM_TEST_DATA_DIR) + "/golden_stats.json";
}

void emit_run(std::ostream& os, const char* key, const RunResult& r) {
  const auto& k = r.stats.counters();
  os << "  \"" << key << "\": {\n";
  os << "    \"time\": " << r.time << ",\n";
  os << "    \"events\": " << r.events << ",\n";
  os << "    \"validated\": " << (r.validated ? "true" : "false") << ",\n";
  os << "    \"counters\": {\n";
  os << "      \"page_faults\": " << k.page_faults << ",\n";
  os << "      \"read_faults\": " << k.read_faults << ",\n";
  os << "      \"write_faults\": " << k.write_faults << ",\n";
  os << "      \"page_fetches\": " << k.page_fetches << ",\n";
  os << "      \"local_lock_acquires\": " << k.local_lock_acquires << ",\n";
  os << "      \"remote_lock_acquires\": " << k.remote_lock_acquires << ",\n";
  os << "      \"barriers\": " << k.barriers << ",\n";
  os << "      \"messages_sent\": " << k.messages_sent << ",\n";
  os << "      \"packets_sent\": " << k.packets_sent << ",\n";
  os << "      \"bytes_sent\": " << k.bytes_sent << ",\n";
  os << "      \"interrupts\": " << k.interrupts << ",\n";
  os << "      \"polled_requests\": " << k.polled_requests << ",\n";
  os << "      \"twins_created\": " << k.twins_created << ",\n";
  os << "      \"diffs_created\": " << k.diffs_created << ",\n";
  os << "      \"diff_bytes\": " << k.diff_bytes << ",\n";
  os << "      \"write_notices\": " << k.write_notices << ",\n";
  os << "      \"invalidations\": " << k.invalidations << ",\n";
  os << "      \"updates_sent\": " << k.updates_sent << ",\n";
  os << "      \"update_bytes\": " << k.update_bytes << ",\n";
  os << "      \"ni_queue_overflows\": " << k.ni_queue_overflows << "\n";
  os << "    },\n";
  os << "    \"proc_breakdown\": [";
  for (int p = 0; p < r.stats.procs(); ++p) {
    os << (p == 0 ? "" : ",") << "\n      [";
    for (int c = 0; c < kTimeCats; ++c) {
      os << (c == 0 ? "" : ", ")
         << r.stats.proc(p).t[static_cast<std::size_t>(c)];
    }
    os << "]";
  }
  os << "\n    ]\n";
  os << "  }";
}

/// The two reference runs, serialized deterministically. Keep this format
/// stable: the test compares the whole string byte-for-byte.
std::string golden_string() {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    SimConfig cfg = config_with(16, 4, proto);
    auto app = apps::make_app("fft", apps::Scale::kTiny);
    const RunResult r = run(*app, cfg);
    EXPECT_TRUE(r.validated);
    if (!first) os << ",\n";
    first = false;
    emit_run(os, proto == Protocol::kHLRC ? "fft_tiny_hlrc" : "fft_tiny_aurc",
             r);
  }
  os << "\n}\n";
  return os.str();
}

TEST(GoldenStats, ReferenceRunsMatchCheckedInCounters) {
  const std::string got = golden_string();

  if (std::getenv("SVMSIM_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << got;
    out.close();
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — run with SVMSIM_GOLDEN_REGEN=1 to create it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "simulation observables changed; if intended, regenerate with "
         "SVMSIM_GOLDEN_REGEN=1 ./tests/test_golden_stats";
}

}  // namespace
}  // namespace svmsim::test
