// Contended-topology scaling bench: the paper's four-parameter sweep re-run
// at 64-1024 processors on the pluggable interconnects of src/topo/.
//
// The paper's crossbar deliberately models no network contention (§2); at
// 16 processors that is defensible, at 256 nodes it is not. This bench runs
// the achievable baseline plus each of the four swept communication
// parameters (host overhead, I/O-bus bandwidth, NI occupancy, interrupt
// cost) alone at its best value, at --procs ∈ {64, 256, 1024}, on three
// backends per size: the contention-free crossbar, the smallest fitting
// fat tree (fattree:k), and the square torus (torus:NxN). Per-link
// occupancy (grants/busy/wait/bytes, from Stats::links) is reported per
// point, so the contended runs show where the topology actually queues.
//
//   ./extra_topology [--procs=64,256,1024] [--seed=3] [--scale=tiny]
//                    [--par-cores=4] [--out=BENCH_sweep.json]
//                    [--max-regression=F] [--prev-crossbar-eps-16=N]
//
// Results merge into BENCH_sweep.json as a "topology" section (schema 1),
// preserving every other tool's section.
//
// Gates (exit 1 when violated):
//  - the crossbar backend must produce bit-identical results to the legacy
//    network at every size (baseline point) — the topology layer must not
//    perturb the original model;
//  - at the smallest size, every topology's baseline must be bit-identical
//    between serial and --par-cores=N (the PDES determinism contract now
//    extended to per-hop link state);
//  - every run must validate;
//  - crossbar events/sec at 16 procs must stay within --max-regression of
//    --prev-crossbar-eps-16 (or the previous file's gate_crossbar_eps_16).
//    Self-disables with a note when no reference exists, like bench_scale.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "trace/trace.hpp"

namespace {

using namespace svmsim;

struct Timed {
  RunResult result;
  double wall_seconds = 0.0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(result.events) / wall_seconds
                            : 0.0;
  }
};

Timed timed_run(const std::string& app, apps::Scale scale,
                const SimConfig& cfg) {
  auto w = apps::make_app(app, scale);
  Timed t;
  const auto t0 = std::chrono::steady_clock::now();
  t.result = run(*w, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

/// Serial and PDES runs (or legacy and crossbar runs) must be bit-identical;
/// Stats::operator== covers breakdowns, counters and per-link occupancy.
bool same_run(const RunResult& a, const RunResult& b) {
  return a.time == b.time && a.events == b.events && a.stats == b.stats;
}

/// Aggregated link occupancy of one run (zero for legacy/crossbar).
struct LinkSummary {
  std::uint64_t links = 0;
  std::uint64_t grants = 0;
  std::uint64_t busy = 0;
  std::uint64_t wait = 0;
  std::uint64_t bytes = 0;
  std::int32_t max_wait_link = -1;
  std::uint64_t max_wait = 0;
};

LinkSummary summarize_links(const Stats& st) {
  LinkSummary s;
  for (const LinkUse& l : st.links()) {
    ++s.links;
    s.grants += l.grants;
    s.busy += l.busy;
    s.wait += l.wait;
    s.bytes += l.bytes;
    if (l.wait >= s.max_wait) {
      s.max_wait = l.wait;
      s.max_wait_link = l.id;
    }
  }
  return s;
}

/// Smallest even fat-tree arity whose k^3/4 hosts cover `nodes`.
int fat_tree_arity(int nodes) {
  for (int k = 2; k <= 64; k += 2) {
    if (k * k * k / 4 >= nodes) return k;
  }
  return 64;
}

/// Most-square 2D factorization of `nodes` (X <= Y, X maximal).
std::pair<int, int> torus_dims(int nodes) {
  int x = 1;
  for (int d = 1; d * d <= nodes; ++d) {
    if (nodes % d == 0) x = d;
  }
  return {x, nodes / x};
}

/// One measured point of the sweep matrix.
struct Point {
  std::string topology;
  std::string param;  ///< "base" or the swept parameter's name
  int procs = 0;
  int nodes = 0;
  Timed serial;
  LinkSummary links;
  bool validated = false;
};

std::optional<double> topo_number(const std::string& text,
                                  const std::string& key) {
  const std::size_t s = text.find("\"topology\"");
  if (s == std::string::npos) return std::nullopt;
  const std::size_t k = text.find("\"" + key + "\"", s);
  if (k == std::string::npos) return std::nullopt;
  const std::size_t colon = text.find(':', k);
  if (colon == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  harness::Cli cli(argc, argv);
  const char* argv0 = argc > 0 ? argv[0] : "extra_topology";

  apps::Scale scale = apps::Scale::kTiny;
  const std::string scale_arg = cli.get_or("scale", "tiny");
  if (scale_arg == "small") {
    scale = apps::Scale::kSmall;
  } else if (scale_arg == "large") {
    scale = apps::Scale::kLarge;
  }
  const long seed = cli.get_int("seed", 3);
  const std::string app = "stress-gen@" + std::to_string(seed);
  const int par_cores =
      std::max(2, static_cast<int>(cli.get_int("par-cores", 4)));
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");
  const double max_regression = cli.get_double("max-regression", 0.0);

  const SimConfig base = bench::base_config();
  std::vector<int> procs_list;
  {
    std::stringstream ss(cli.get_or("procs", "64,256,1024"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      procs_list.push_back(bench::checked_total_procs(
          argv0, "--procs", std::strtol(item.c_str(), nullptr, 10),
          base.comm.procs_per_node));
    }
  }
  if (procs_list.empty()) {
    std::fprintf(stderr, "%s: --procs needs at least one cluster size\n",
                 argv0);
    return 2;
  }

  // The four swept communication parameters, each alone at its best value
  // over the achievable baseline (paper §3, Table 1).
  const CommParams best = CommParams::best();
  struct Param {
    const char* name;
    void (*apply)(CommParams&, const CommParams&);
  };
  const Param params[] = {
      {"base", [](CommParams&, const CommParams&) {}},
      {"host_overhead",
       [](CommParams& c, const CommParams& b) {
         c.host_overhead = b.host_overhead;
       }},
      {"io_bus_bandwidth",
       [](CommParams& c, const CommParams& b) {
         c.io_bus_mb_per_mhz = b.io_bus_mb_per_mhz;
       }},
      {"ni_occupancy",
       [](CommParams& c, const CommParams& b) {
         c.ni_occupancy = b.ni_occupancy;
       }},
      {"interrupt_cost",
       [](CommParams& c, const CommParams& b) {
         c.interrupt_cost = b.interrupt_cost;
       }},
  };

  std::vector<Point> points;
  bool crossbar_identical = true;
  bool par_identical = true;
  bool all_validated = true;
  const int smallest = *std::min_element(procs_list.begin(), procs_list.end());

  for (int procs : procs_list) {
    SimConfig size_cfg = base;
    size_cfg.comm.total_procs = procs;
    const int nodes = size_cfg.comm.node_count();

    const auto [tx, ty] = torus_dims(nodes);
    const std::vector<std::string> topos = {
        "crossbar", "fattree:" + std::to_string(fat_tree_arity(nodes)),
        "torus:" + std::to_string(tx) + "x" + std::to_string(ty)};

    // The legacy-network reference for the crossbar identity gate.
    std::fprintf(stderr, "extra_topology: procs=%d (%d nodes) legacy ref\n",
                 procs, nodes);
    const Timed legacy_ref = timed_run(app, scale, size_cfg);
    all_validated &= legacy_ref.result.validated;

    for (const std::string& topo_name : topos) {
      const auto spec = topo::Spec::parse(topo_name);
      if (!spec) {
        std::fprintf(stderr, "%s: internal: bad spec %s\n", argv0,
                     topo_name.c_str());
        return 2;
      }
      bench::checked_topology(argv0, *spec, nodes);
      for (const Param& prm : params) {
        Point p;
        p.topology = topo_name;
        p.param = prm.name;
        p.procs = procs;
        p.nodes = nodes;
        SimConfig cfg = size_cfg;
        cfg.topology = *spec;
        prm.apply(cfg.comm, best);
        std::fprintf(stderr, "extra_topology: procs=%d %s %s\n", procs,
                     topo_name.c_str(), prm.name);
        p.serial = timed_run(app, scale, cfg);
        p.links = summarize_links(p.serial.result.stats);
        p.validated = p.serial.result.validated;
        all_validated &= p.validated;

        if (std::string(prm.name) == "base") {
          if (cfg.topology.kind == topo::Kind::kCrossbar &&
              !same_run(legacy_ref.result, p.serial.result)) {
            std::fprintf(stderr,
                         "extra_topology: crossbar backend differs from the "
                         "legacy network at %d procs\n",
                         procs);
            crossbar_identical = false;
          }
          if (procs == smallest) {
            SimConfig pcfg = cfg;
            pcfg.par_cores = par_cores;
            const Timed par = timed_run(app, scale, pcfg);
            if (!same_run(p.serial.result, par.result)) {
              std::fprintf(stderr,
                           "extra_topology: %s serial vs --par-cores=%d "
                           "differ at %d procs\n",
                           topo_name.c_str(), par_cores, procs);
              par_identical = false;
            }
          }
        }
        points.push_back(std::move(p));
      }
    }
  }

  // The regression-gate anchor: crossbar events/sec at the paper's machine
  // size, always measured so the pinned CI gate sees a fresh number.
  std::fprintf(stderr, "extra_topology: crossbar eps anchor at 16 procs\n");
  SimConfig anchor_cfg = base;
  anchor_cfg.topology = *topo::Spec::parse("crossbar");
  const Timed anchor = timed_run(app, scale, anchor_cfg);
  const double crossbar_eps_16 = anchor.events_per_sec();
  all_validated &= anchor.result.validated;

  std::optional<double> prev_eps;
  std::string prev_text;
  {
    std::ifstream prev(out_path);
    if (prev) {
      std::stringstream ss;
      ss << prev.rdbuf();
      prev_text = ss.str();
      prev_eps = topo_number(prev_text, "gate_crossbar_eps_16");
    }
  }
  if (auto v = cli.get_double("prev-crossbar-eps-16", 0.0); v > 0) {
    prev_eps = v;
  }

  std::ostringstream section;
  section << "\"topology\": {\n    \"schema\": 1"
          << ",\n    \"app\": \"" << app << "\""
          << ",\n    \"par_cores\": " << par_cores << ",\n    \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    section << (i ? "," : "") << "\n      {\"topology\": \"" << p.topology
            << "\", \"param\": \"" << p.param << "\", \"procs\": " << p.procs
            << ", \"nodes\": " << p.nodes
            << ",\n       \"wall_seconds\": " << p.serial.wall_seconds
            << ", \"events\": " << p.serial.result.events
            << ", \"events_per_sec\": " << p.serial.events_per_sec()
            << ", \"sim_cycles\": " << p.serial.result.time
            << ",\n       \"links\": " << p.links.links
            << ", \"link_grants\": " << p.links.grants
            << ", \"link_busy_cycles\": " << p.links.busy
            << ", \"link_wait_cycles\": " << p.links.wait
            << ", \"link_bytes\": " << p.links.bytes
            << ", \"hottest_link\": " << p.links.max_wait_link
            << ", \"hottest_link_wait\": " << p.links.max_wait
            << ", \"validated\": " << (p.validated ? "true" : "false") << "}";
  }
  section << "\n    ]"
          << ",\n    \"gate_crossbar_eps_16\": " << crossbar_eps_16
          << ",\n    \"crossbar_identical\": "
          << (crossbar_identical ? "true" : "false")
          << ",\n    \"par_identical\": " << (par_identical ? "true" : "false")
          << ",\n    \"validated\": " << (all_validated ? "true" : "false")
          << "\n  }";

  std::string text = harness::strip_json_section(prev_text, "topology");
  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) {
    text = "{\n  \"bench\": \"sweep\",\n  \"schema\": 2,\n  \"build\": \"" +
           trace::build_provenance() + "\",\n  " + section.str() + "\n}\n";
  } else {
    text = text.substr(0, close) + ",\n  " + section.str() + "\n}\n";
  }
  harness::write_file_atomic(out_path, text);

  std::printf("== extra_topology: %s, four-parameter sweep x topology ==\n",
              app.c_str());
  harness::Table t({"topology", "procs", "param", "sim cycles", "ev/s",
                    "links", "link wait", "hottest", "ok"});
  for (const Point& p : points) {
    t.add_row({p.topology, std::to_string(p.procs), p.param,
               std::to_string(p.serial.result.time),
               harness::fmt(p.serial.events_per_sec(), 0),
               std::to_string(p.links.links), std::to_string(p.links.wait),
               p.links.max_wait_link >= 0
                   ? "link" + std::to_string(p.links.max_wait_link) + "(" +
                         std::to_string(p.links.max_wait) + ")"
                   : "-",
               p.validated ? "yes" : "NO"});
  }
  t.print();
  std::printf("(merged into %s; crossbar eps@16 = %.0f)\n", out_path.c_str(),
              crossbar_eps_16);

  bool gates_ok = true;
  if (max_regression > 0) {
    if (!prev_eps) {
      std::fprintf(stderr,
                   "extra_topology: no previous topology section in %s; "
                   "skipping the --max-regression gate\n",
                   out_path.c_str());
    } else if (crossbar_eps_16 < (1.0 - max_regression) * *prev_eps) {
      std::fprintf(stderr,
                   "extra_topology: crossbar events/sec at 16 procs "
                   "regressed %.0f -> %.0f, past the --max-regression=%.2f "
                   "gate\n",
                   *prev_eps, crossbar_eps_16, max_regression);
      gates_ok = false;
    }
  }
  if (!crossbar_identical) {
    std::fprintf(stderr,
                 "extra_topology: crossbar/legacy results differ (the "
                 "topology layer perturbed the original model)\n");
  }
  if (!par_identical) {
    std::fprintf(stderr, "extra_topology: serial/parallel results differ\n");
  }
  if (!all_validated) {
    std::fprintf(stderr, "extra_topology: a run failed validation\n");
  }
  return crossbar_identical && par_identical && all_validated && gates_ok ? 0
                                                                          : 1;
}
