#include "engine/simulator.hpp"

// All simulator primitives are defined inline in the header; this
// translation unit exists so the build has a stable anchor for the module.
namespace svmsim::engine {}
