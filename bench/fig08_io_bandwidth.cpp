// Figure 8: effects of I/O bus bandwidth (node-to-network bandwidth) on
// application performance.
#include "bench_common.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig08", "MB/MHz", {2.0, 1.0, 0.5, 0.25, 0.125},
      [](SimConfig& c, double v) { c.comm.io_bus_mb_per_mhz = v; }, opt, sweep,
      [](double v) { return harness::fmt(v, 3); });
  return 0;
}
