#!/usr/bin/env bash
# Build the tier-1 test suite under a sanitizer and run it.
#
#   tools/sanitize.sh [address|thread] [build-dir] [-- extra ctest args]
#
# * address (default) — ASan+UBSan over the whole suite. The build defines
#   SVMSIM_POOL_PARANOID and SVMSIM_NO_FRAME_POOL (see the SVMSIM_SANITIZE
#   option in CMakeLists.txt): object pools and the coroutine frame pool hand
#   memory straight back to the allocator, so use-after-release bugs in the
#   pooled protocol hot path surface as real heap-use-after-free reports
#   instead of being masked by recycling.
#
# * thread — TSan over the parallel-mode subset: the tests that spawn real
#   threads (PDES partitions, job pools, cross-thread channels) plus a
#   sweep_dump --par-cores=4 run, i.e. the race-detector pass the PDES mode
#   makes mandatory. The serial tests add nothing under TSan and triple the
#   wall time, so they are skipped.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode="address"
case "${1:-}" in
  address|thread) mode="$1"; shift ;;
esac
if [ "$mode" = "thread" ]; then
  sanitize="thread"
  default_dir="$repo_root/build-tsan"
else
  sanitize="address,undefined"
  default_dir="$repo_root/build-sanitize"
fi
build_dir="${1:-$default_dir}"
shift || true
[ "${1:-}" = "--" ] && shift

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_SANITIZE="$sanitize" \
  -DSVMSIM_CHECK=ON
cmake --build "$build_dir" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
# Sanitizer instrumentation defeats the tail calls behind coroutine symmetric
# transfer, so long synchronous co_await chains consume real stack that the
# optimized build does not. Raise the limit rather than shrinking the tests.
ulimit -s unlimited 2>/dev/null || ulimit -s 1048576 || true

if [ "$mode" = "thread" ]; then
  # The threaded subset: PDES partitioning and channels, the --jobs pool,
  # the machine/runner teardown paths they stress, and the PageDirectory
  # 256-node growth-under-concurrent-scans test (docs/scaling.md).
  ctest --test-dir "$build_dir" --output-on-failure \
    -R 'test_(partition|ring_queue|job_pool|determinism|machine|page_directory)' \
    "$@"
  # Whole-binary PDES pass: every sweep point on 4 partition workers, with
  # the checker's cross-thread hooks enabled (exit 1 on any violation), under
  # both the adaptive (default) window policy and the fixed fallback — the
  # combining barrier and the batched channels must be race-free either way.
  "$build_dir/bench/sweep_dump" --par-cores=4 --check-consistency > /dev/null
  "$build_dir/bench/sweep_dump" --par-cores=4 --pdes-window=fixed \
    --check-consistency > /dev/null
  # Large-machine stress point: the sparse clock transport's pooled delta
  # bodies cross partition threads at 64 nodes here, not just at the
  # paper's 4 — encode/expand and the edge caches must be race-free too.
  "$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=256 \
    --par-cores=4 > /dev/null
  echo "sanitize.sh: TSan arm passed (subset + sweep_dump --par-cores=4," \
    "adaptive and fixed windows, + 256-proc stress point)"
else
  ctest --test-dir "$build_dir" --output-on-failure "$@"
  # Large-machine stress point under ASan/UBSan with paranoid pools: every
  # pooled clock body at 64 nodes is a real allocation, so lifetime bugs in
  # the sparse transport (docs/scaling.md) surface as use-after-free.
  "$build_dir/bench/sweep_dump" --apps=stress-gen@3 --procs=256 > /dev/null
  # Schedule exploration under ASan/UBSan: the exhaustive tiny config plus
  # a record->replay round trip exercise the forced-prefix replay, sleep
  # sets and the schedule file codec with every allocation instrumented.
  "$build_dir/bench/explore" --app=stress-micro@3 --procs=2 --ppn=1 \
    --page-bytes=32 --wire-latency=4000 --mode=full --max-states=4096 \
    --expect-states=13 --expect-violations=0 > /dev/null
  "$build_dir/bench/explore" --app=stress-micro@3 --procs=2 --ppn=1 \
    --page-bytes=32 --wire-latency=4000 --record="$build_dir/ci.sched" \
    > /dev/null
  "$build_dir/bench/explore" --app=stress-micro@3 --procs=2 --ppn=1 \
    --page-bytes=32 --wire-latency=4000 --replay="$build_dir/ci.sched" \
    > /dev/null
  rm -f "$build_dir/ci.sched"
  echo "sanitize.sh: ASan/UBSan arm passed (full suite + 256-proc stress" \
    "point + explore exhaustive/replay)"
fi
