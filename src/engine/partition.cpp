#include "engine/partition.hpp"

#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace svmsim::engine {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// A generation-counter phase barrier with two wait strategies. The
/// simulation crosses one window every lookahead cycles — tens of thousands
/// of syncs per run — and a futex-parked barrier costs microseconds per
/// sync, which swamps the sub-microsecond of event work a partition does
/// per window. When every partition thread can own a hardware thread the
/// barrier spins (~100ns per 4-thread sync); when the machine is
/// oversubscribed it parks on a condition variable instead, because a spin
/// loop that must be scheduled out to let the last arriver in turns every
/// sync into a storm of yields.
///
/// Reuse safety: the driver alternates two of these, so every thread must
/// pass barrier B before re-entering barrier A — no thread can re-arrive at
/// a barrier another thread is still waiting in, which is why one counter
/// and one generation word suffice.
///
/// Ordering (spin path): each arrival's fetch_add(acq_rel) joins the
/// counter's release sequence, so the last arriver's increment synchronizes
/// with every earlier one — the completion function reads all pre-barrier
/// writes. Its own writes are released by the generation bump and acquired
/// by each waiter's spin load. (Blocking path: the mutex orders everything.)
class PhaseBarrier {
 public:
  PhaseBarrier(int n, bool spin) noexcept : n_(n), spin_(spin) {}

  /// Block until all n threads arrive; the last to arrive runs `completion`
  /// exclusively before releasing the others (std::barrier's completion
  /// contract).
  template <typename F>
  void arrive_and_wait(F&& completion) noexcept {
    if (spin_) {
      const std::uint64_t gen = gen_.load(std::memory_order_acquire);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        completion();
        arrived_.store(0, std::memory_order_relaxed);
        gen_.store(gen + 1, std::memory_order_release);
      } else {
        while (gen_.load(std::memory_order_acquire) == gen) cpu_relax();
      }
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t gen = gen_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_relaxed) + 1 == n_) {
      completion();
      arrived_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_relaxed);
      lk.unlock();
      cv_.notify_all();
    } else {
      cv_.wait(lk, [this, gen] {
        return gen_.load(std::memory_order_relaxed) != gen;
      });
    }
  }

  void arrive_and_wait() noexcept {
    arrive_and_wait([] {});
  }

 private:
  const int n_;
  const bool spin_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

WindowDriver::WindowDriver(std::vector<EventQueue*> queues, Cycles lookahead,
                           Hooks hooks)
    : queues_(std::move(queues)),
      lookahead_(lookahead),
      hooks_(std::move(hooks)) {
  assert(!queues_.empty());
  assert(lookahead_ >= 1 && "conservative windows need positive lookahead");
}

bool WindowDriver::run(Cycles max_cycles) {
  const int parts = static_cast<int>(queues_.size());
  next_.assign(static_cast<std::size_t>(parts), kNever);
  stop_ = false;
  drained_ = false;
  windows_ = 0;
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  std::mutex error_mu;

  // Phase completion: runs on exactly one thread between "everyone published
  // next_" and "everyone observes the new window"; the barrier sequences its
  // writes against both sides.
  auto open_window = [this, max_cycles]() noexcept {
    if (failed_.load(std::memory_order_relaxed)) {
      stop_ = true;
      return;
    }
    Cycles t = kNever;
    for (const Cycles c : next_) {
      if (c < t) t = c;
    }
    if (t == kNever) {
      stop_ = true;
      drained_ = true;
    } else if (t > max_cycles) {
      stop_ = true;  // next event beyond the horizon: deadline, not drained
    } else {
      // Never fire past max_cycles (matches serial run_until semantics).
      const Cycles end = t + lookahead_;
      window_end_ = end - 1 < max_cycles ? end : max_cycles + 1;
      ++windows_;
    }
  };
  // Spin only when every partition worker can plausibly own a hardware
  // thread; a concurrent --jobs pool shares the same budget (bench_common
  // divides the default job count by par_cores for exactly this reason).
  const bool spin =
      std::thread::hardware_concurrency() >= static_cast<unsigned>(parts);
  PhaseBarrier sync(parts, spin);
  PhaseBarrier quiesce(parts, spin);

  auto capture = [&](std::exception_ptr e) {
    const std::lock_guard<std::mutex> g(error_mu);
    if (!error_) error_ = std::move(e);
    failed_.store(true, std::memory_order_relaxed);
  };

  auto body = [&](int p) {
    if (hooks_.worker_begin) hooks_.worker_begin(p);
    bool dead = false;
    for (;;) {
      if (!dead) {
        try {
          hooks_.drain(p);
          next_[static_cast<std::size_t>(p)] = queues_[p]->next_time();
        } catch (...) {
          capture(std::current_exception());
          dead = true;
        }
      }
      if (dead) next_[static_cast<std::size_t>(p)] = kNever;
      sync.arrive_and_wait(open_window);
      if (stop_) break;
      if (!dead) {
        try {
          queues_[p]->run_until(window_end_ - 1);
        } catch (...) {
          capture(std::current_exception());
          dead = true;
        }
      }
      quiesce.arrive_and_wait();
    }
    if (hooks_.worker_end) hooks_.worker_end(p);
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(parts) - 1);
  for (int p = 1; p < parts; ++p) {
    workers.emplace_back(body, p);
  }
  body(0);
  for (std::thread& w : workers) w.join();

  if (error_) std::rethrow_exception(error_);
  return drained_;
}

}  // namespace svmsim::engine
