#include "harness/sweep.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace svmsim::harness {

Cycles Sweep::baseline(const std::string& app, const SimConfig& base) {
  const BaselineKey key = key_of(app, base);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = baselines_.find(key);
    if (it != baselines_.end()) return it->second;
  }
  // Simulate outside the lock so concurrent callers computing different
  // baselines overlap. Two threads racing on the same key both compute the
  // same deterministic value; emplace keeps the first.
  auto w = apps::make_app(app, scale_);
  const SimConfig uni = uniprocessor_config(base);
  RunResult r = run(*w, uni);
  if (!r.validated) {
    throw std::runtime_error(app + ": uniprocessor run failed validation");
  }
  std::lock_guard<std::mutex> lk(mu_);
  return baselines_.emplace(key, r.time).first->second;
}

AppRun Sweep::run_point(const std::string& app, const SimConfig& cfg,
                        double param_value) {
  AppRun out;
  out.app = app;
  out.param = param_value;
  out.uniprocessor = baseline(app, cfg);
  auto w = apps::make_app(app, scale_);
  out.result = run(*w, cfg);
  if (!out.result.validated) {
    throw std::runtime_error(app + ": run failed validation");
  }
  return out;
}

void Sweep::prewarm_baselines(const std::vector<SweepPoint>& points,
                              JobPool* pool) {
  std::vector<const SweepPoint*> distinct;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::map<BaselineKey, bool> seen;
    for (const auto& p : points) {
      const BaselineKey key = key_of(p.app, p.cfg);
      if (baselines_.contains(key) ||
          !seen.emplace(key, true).second) {
        continue;
      }
      distinct.push_back(&p);
    }
  }
  std::vector<JobPool::Job> jobs;
  jobs.reserve(distinct.size());
  for (const SweepPoint* p : distinct) {
    jobs.push_back([this, p] { baseline(p->app, p->cfg); });
  }
  pool->run(std::move(jobs));
}

std::vector<AppRun> Sweep::run_points(const std::vector<SweepPoint>& points,
                                      JobPool* pool) {
  std::vector<AppRun> out(points.size());
  if (pool == nullptr || pool->size() <= 1 || points.size() <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      out[i] = run_point(points[i].app, points[i].cfg, points[i].value);
    }
    return out;
  }
  // Baselines first, so the fan-out below never computes one twice.
  prewarm_baselines(points, pool);
  std::vector<JobPool::Job> jobs;
  jobs.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    jobs.push_back([this, &points, &out, i] {
      out[i] = run_point(points[i].app, points[i].cfg, points[i].value);
    });
  }
  pool->run(std::move(jobs));
  return out;
}

std::vector<AppRun> Sweep::run_sweep(
    const std::string& app, const SimConfig& base,
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, JobPool* pool) {
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (double v : values) {
    SweepPoint p{app, base, v};
    apply(p.cfg, v);
    points.push_back(std::move(p));
  }
  return run_points(points, pool);
}

double max_slowdown_pct(const std::vector<AppRun>& runs) {
  if (runs.size() < 2) return 0.0;
  // The paper computes the slowdown between the smallest and the biggest
  // value of the swept parameter: first point vs last point.
  const double fast = runs.front().speedup();
  const double slow = runs.back().speedup();
  // A non-positive speedup at either endpoint means that run is invalid
  // (zero time or zero baseline); there is no meaningful slowdown to report.
  if (fast <= 0.0 || slow <= 0.0) return 0.0;
  return (fast / slow - 1.0) * 100.0;
}

}  // namespace svmsim::harness
