// Differential tests between the two EventQueue backends.
//
// detail::HeapScheduler and detail::TieredScheduler are both always
// compiled (the SVMSIM_SCHEDULER option only selects which one the
// engine::EventQueue alias names), so these tests drive both side by side
// with identical seeded-random schedule streams and assert they fire
// events in exactly the same order — the (time, seq) total order that makes
// simulations bit-reproducible. Alongside the random streams there are
// directed cases for the tiered scheduler's internals: wheel-slot
// wraparound, cascades at every level boundary, overflow past the wheel
// horizon, the run_until() pause/insert path, and clear() dropping events
// from every tier.
#include "engine/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace svmsim::engine {
namespace {

using detail::HeapScheduler;
using detail::TieredScheduler;

/// Deterministic LCG (MMIX constants), identical across backends.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

/// A delay spanning every tier: same-tick, all four wheel levels, and
/// beyond-horizon overflow into the fallback heap.
Cycles random_delay(Lcg& rng) {
  switch (rng.next() % 8) {
    case 0:
    case 1:
      return 0;
    case 2:
    case 3:
      return 1 + rng.next() % 255;
    case 4:
      return 256 + rng.next() % 65280;
    case 5:
      return (Cycles{1} << 16) + rng.next() % (Cycles{1} << 20);
    case 6:
      return (Cycles{1} << 24) + rng.next() % (Cycles{1} << 26);
    default:
      return (Cycles{1} << 32) + rng.next() % (Cycles{1} << 33);
  }
}

/// Run the seeded-random schedule program on one backend and return the
/// fire trace: (event id, fire time) in fire order. Every fired event may
/// spawn 0-2 successors, decided by an LCG stream shared across backends.
template <class Queue>
std::vector<std::pair<std::uint64_t, Cycles>> random_trace(
    std::uint64_t seed, std::size_t initial, std::size_t cap) {
  struct Driver {
    Queue q;
    Lcg rng;
    std::uint64_t next_id = 0;
    std::size_t cap;
    std::vector<std::pair<std::uint64_t, Cycles>> trace;

    void spawn() {
      const std::uint64_t id = next_id++;
      const Cycles d = random_delay(rng);
      const auto fire = [this, id] {
        trace.emplace_back(id, q.now());
        const std::uint64_t kids = rng.next() % 3;
        for (std::uint64_t k = 0; k < kids && next_id < cap; ++k) spawn();
      };
      // Exercise both entry points for zero delays.
      if (d == 0 && rng.next() % 2 == 0) {
        q.schedule_now(fire);
      } else {
        q.schedule_in(d, fire);
      }
    }
  };

  Driver drv;
  drv.rng.s = seed;
  drv.cap = cap;
  for (std::size_t i = 0; i < initial; ++i) drv.spawn();
  drv.q.run_until_idle();
  EXPECT_EQ(drv.q.pending(), 0u);
  return drv.trace;
}

TEST(SchedulerDifferential, RandomStreamsFireIdentically) {
  for (std::uint64_t seed : {0x1ull, 0x5eedull, 0xabcdef01ull}) {
    const auto heap = random_trace<HeapScheduler>(seed, 64, 4000);
    const auto tiered = random_trace<TieredScheduler>(seed, 64, 4000);
    ASSERT_EQ(heap.size(), tiered.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], tiered[i]) << "seed " << seed << " position " << i;
    }
  }
}

/// Same comparison across the run_until() pause/resume path: fire in
/// deadline-bounded bursts, scheduling a fresh batch at every pause. On the
/// tiered backend this drives the behind-the-cursor insert path (the wheel
/// may have swept ahead of now() when the deadline hit mid-tick).
template <class Queue>
std::vector<std::pair<std::uint64_t, Cycles>> bursty_trace(
    std::uint64_t seed) {
  Queue q;
  Lcg rng{seed};
  std::uint64_t next_id = 0;
  std::vector<std::pair<std::uint64_t, Cycles>> trace;

  const auto schedule_batch = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t id = next_id++;
      q.schedule_in(random_delay(rng) % 4096,
                    [&, id] { trace.emplace_back(id, q.now()); });
    }
  };
  schedule_batch(128);
  // The deadline ratchets forward unconditionally (run_until does not
  // advance now() when nothing fires), so the loop always terminates.
  Cycles deadline = 0;
  while (!q.empty()) {
    deadline += 1 + rng.next() % 512;
    if (!q.run_until(deadline) && next_id < 2000) schedule_batch(16);
  }
  return trace;
}

TEST(SchedulerDifferential, RunUntilBurstsFireIdentically) {
  const auto heap = bursty_trace<HeapScheduler>(0xfeedull);
  const auto tiered = bursty_trace<TieredScheduler>(0xfeedull);
  ASSERT_EQ(heap.size(), tiered.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    ASSERT_EQ(heap[i], tiered[i]) << "position " << i;
  }
}

TEST(TieredScheduler, WheelSlotWraparound) {
  // Times straddling several 256-cycle level-0 windows, inserted in a
  // scrambled order, must come out ascending: the level-0 cursor wraps its
  // 256 slots twice and each wrap cascades the next level-1 slot.
  TieredScheduler q;
  std::vector<Cycles> times;
  for (Cycles t = 1; t <= 600; t += 7) times.push_back(t);
  std::vector<Cycles> scrambled = times;
  std::reverse(scrambled.begin() + 3, scrambled.end());
  std::vector<Cycles> fired;
  for (Cycles t : scrambled) {
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until_idle();
  EXPECT_EQ(fired, times);
}

TEST(TieredScheduler, CascadeAtLevelBoundaries) {
  // One event on each side of every level boundary (256, 65536, 2^24) plus
  // the wheel horizon (2^32, where events overflow to the fallback heap),
  // and a same-time pair at each boundary to pin down seq order across the
  // cascade. Everything must fire in ascending time, pairs in insertion
  // order.
  const Cycles bounds[] = {Cycles{1} << 8, Cycles{1} << 16, Cycles{1} << 24,
                           Cycles{1} << 32};
  TieredScheduler q;
  std::vector<std::pair<Cycles, int>> fired;
  int tag = 0;
  std::vector<std::pair<Cycles, int>> expect;
  for (Cycles b : bounds) {
    for (Cycles t : {b - 1, b, b + 1}) {
      q.schedule_at(t, [&fired, &q, tag] { fired.emplace_back(q.now(), tag); });
      expect.emplace_back(t, tag++);
      q.schedule_at(t, [&fired, &q, tag] { fired.emplace_back(q.now(), tag); });
      expect.emplace_back(t, tag++);
    }
  }
  q.run_until_idle();
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(q.events_fired(), expect.size());
}

TEST(TieredScheduler, ClearDropsEveryTier) {
  auto canary = std::make_shared<int>(42);
  TieredScheduler q;
  // Park the queue at a nonzero time so the lane genuinely holds a tick.
  q.schedule_at(100, [] {});
  q.run_until_idle();
  ASSERT_EQ(q.now(), 100u);

  const auto hold = [canary] { (void)*canary; };
  const long base = canary.use_count();  // canary + the hold lambda's copy
  q.schedule_now(hold);                            // same-tick FIFO lane
  q.schedule_in(1, hold);                          // wheel level 0
  q.schedule_in(300, hold);                        // wheel level 1
  q.schedule_in(70'000, hold);                     // wheel level 2
  q.schedule_in(Cycles{1} << 25, hold);            // wheel level 3
  q.schedule_in(Cycles{1} << 33, hold);            // beyond horizon: heap
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(canary.use_count(), base + 6);

  q.clear();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  // clear() must have destroyed every captured action, in every tier.
  EXPECT_EQ(canary.use_count(), base);

  // The queue stays usable: time is unchanged and new events still fire.
  EXPECT_EQ(q.now(), 100u);
  int fired = 0;
  q.schedule_in(5, [&] { ++fired; });
  q.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 105u);
}

}  // namespace
}  // namespace svmsim::engine
