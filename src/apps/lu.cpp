// LU: blocked dense LU factorization without pivoting (SPLASH-2
// LU-contiguous). Blocks are stored contiguously and grouped by owner, so
// each page holds data written by a single processor ("single-writer at page
// granularity"); pages are homed at the owner's node. Communication is the
// read of perimeter blocks during the interior update; the inherent
// communication-to-computation ratio is very low but the computation is
// imbalanced (paper §4.1/§7).
#include <cassert>
#include <cmath>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

class LuApp final : public Application {
 public:
  explicit LuApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        n_ = 64;
        block_ = 8;
        break;
      case Scale::kSmall:
        n_ = 128;
        block_ = 16;
        break;
      case Scale::kLarge:
        n_ = 256;
        block_ = 16;
        break;
    }
    nb_ = n_ / block_;
  }

  [[nodiscard]] std::string name() const override { return "lu"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    // 2D processor grid: largest power-of-two pr with pr <= sqrt(P), pr | P.
    pr_ = 1;
    for (int r = 1; r * r <= P_; r *= 2) {
      if (P_ % r == 0) pr_ = r;
    }
    pc_ = P_ / pr_;

    // Block-major storage grouped by owner so pages are single-writer.
    const std::size_t bsz = static_cast<std::size_t>(block_) * block_;
    offsets_.assign(static_cast<std::size_t>(nb_) * nb_, 0);
    std::vector<std::size_t> per_owner(static_cast<std::size_t>(P_), 0);
    for (int bi = 0; bi < nb_; ++bi) {
      for (int bj = 0; bj < nb_; ++bj) {
        ++per_owner[static_cast<std::size_t>(owner(bi, bj))];
      }
    }
    std::vector<std::size_t> base(static_cast<std::size_t>(P_), 0);
    for (int p = 1; p < P_; ++p) base[p] = base[p - 1] + per_owner[p - 1];
    std::vector<std::size_t> cursor = base;
    for (int bi = 0; bi < nb_; ++bi) {
      for (int bj = 0; bj < nb_; ++bj) {
        const int o = owner(bi, bj);
        offsets_[static_cast<std::size_t>(bi * nb_ + bj)] =
            cursor[static_cast<std::size_t>(o)]++ * bsz;
      }
    }

    const std::size_t total = static_cast<std::size_t>(nb_) * nb_ * bsz;
    a_ = SharedArray<double>::alloc(mach, total, Distribution::fixed(0));
    // Home each owner's region at the owner's node.
    const int ppn = mach.config().comm.procs_per_node;
    for (int p = 0; p < P_; ++p) {
      if (per_owner[p] == 0) continue;
      mach.space().set_home_range(a_.addr(base[p] * bsz),
                                  per_owner[p] * bsz * sizeof(double),
                                  p / ppn);
    }

    // Diagonally dominant input so the factorization is stable.
    Rng rng(0x1Cu);
    init_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        init_[static_cast<std::size_t>(i) * n_ + j] =
            i == j ? n_ + rng.uniform(1, 2) : rng.uniform(-1, 1);
      }
    }
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        a_.debug_put(mach, elem_index(i, j),
                     init_[static_cast<std::size_t>(i) * n_ + j]);
      }
    }
    expected_ = init_;
    reference_lu(expected_);
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    const std::size_t bsz = static_cast<std::size_t>(block_) * block_;
    std::vector<double> diag(bsz), blk(bsz), left(bsz), up(bsz);

    for (int k = 0; k < nb_; ++k) {
      // Step 1: owner factors the diagonal block.
      if (owner(k, k) == pid) {
        co_await a_.get_block(shm, block_offset(k, k), diag.data(), bsz);
        factor_block(diag.data());
        shm.compute(kWorkScale * cycles_factor());
        co_await a_.put_block(shm, block_offset(k, k), diag.data(), bsz);
      }
      co_await shm.barrier();

      // Step 2: perimeter blocks.
      bool have_diag = false;
      for (int i = k + 1; i < nb_; ++i) {
        if (owner(i, k) != pid && owner(k, i) != pid) continue;
        if (!have_diag) {
          co_await a_.get_block(shm, block_offset(k, k), diag.data(), bsz);
          have_diag = true;
        }
        if (owner(i, k) == pid) {
          co_await a_.get_block(shm, block_offset(i, k), blk.data(), bsz);
          solve_lower(blk.data(), diag.data());  // A_ik := A_ik * U_kk^-1
          shm.compute(kWorkScale * cycles_triangular());
          co_await a_.put_block(shm, block_offset(i, k), blk.data(), bsz);
        }
        if (owner(k, i) == pid) {
          co_await a_.get_block(shm, block_offset(k, i), blk.data(), bsz);
          solve_upper(blk.data(), diag.data());  // A_kj := L_kk^-1 * A_kj
          shm.compute(kWorkScale * cycles_triangular());
          co_await a_.put_block(shm, block_offset(k, i), blk.data(), bsz);
        }
      }
      co_await shm.barrier();

      // Step 3: interior update A_ij -= A_ik * A_kj.
      for (int i = k + 1; i < nb_; ++i) {
        for (int j = k + 1; j < nb_; ++j) {
          if (owner(i, j) != pid) continue;
          co_await a_.get_block(shm, block_offset(i, k), left.data(), bsz);
          co_await a_.get_block(shm, block_offset(k, j), up.data(), bsz);
          co_await a_.get_block(shm, block_offset(i, j), blk.data(), bsz);
          gemm_sub(blk.data(), left.data(), up.data());
          shm.compute(kWorkScale * cycles_gemm());
          co_await a_.put_block(shm, block_offset(i, j), blk.data(), bsz);
        }
      }
      co_await shm.barrier();
    }
  }

  bool validate(Machine& mach) override {
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        const double got = a_.debug_get(mach, elem_index(i, j));
        const double want = expected_[static_cast<std::size_t>(i) * n_ + j];
        if (std::abs(got - want) > 1e-6 * (1.0 + std::abs(want))) return false;
      }
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 15;
  [[nodiscard]] int owner(int bi, int bj) const {
    return (bi % pr_) * pc_ + (bj % pc_);
  }
  [[nodiscard]] std::size_t block_offset(int bi, int bj) const {
    return offsets_[static_cast<std::size_t>(bi * nb_ + bj)];
  }
  [[nodiscard]] std::size_t elem_index(int i, int j) const {
    const int bi = i / block_;
    const int bj = j / block_;
    return block_offset(bi, bj) +
           static_cast<std::size_t>(i % block_) * block_ + (j % block_);
  }

  [[nodiscard]] Cycles cycles_factor() const {
    return static_cast<Cycles>(block_) * block_ * block_ * 4 / 3;
  }
  [[nodiscard]] Cycles cycles_triangular() const {
    return static_cast<Cycles>(block_) * block_ * block_;
  }
  [[nodiscard]] Cycles cycles_gemm() const {
    return static_cast<Cycles>(block_) * block_ * block_ * 2;
  }

  // Block kernels (row-major B x B blocks).
  void factor_block(double* a) const {
    const int B = block_;
    for (int j = 0; j < B; ++j) {
      for (int i = j + 1; i < B; ++i) {
        a[i * B + j] /= a[j * B + j];
        for (int l = j + 1; l < B; ++l) {
          a[i * B + l] -= a[i * B + j] * a[j * B + l];
        }
      }
    }
  }
  /// blk := blk * U^-1 (U = upper triangle of diag incl. diagonal).
  void solve_lower(double* blk, const double* diag) const {
    const int B = block_;
    for (int i = 0; i < B; ++i) {
      for (int j = 0; j < B; ++j) {
        double s = blk[i * B + j];
        for (int l = 0; l < j; ++l) s -= blk[i * B + l] * diag[l * B + j];
        blk[i * B + j] = s / diag[j * B + j];
      }
    }
  }
  /// blk := L^-1 * blk (L = unit lower triangle of diag).
  void solve_upper(double* blk, const double* diag) const {
    const int B = block_;
    for (int j = 0; j < B; ++j) {
      for (int i = 0; i < B; ++i) {
        double s = blk[i * B + j];
        for (int l = 0; l < i; ++l) s -= diag[i * B + l] * blk[l * B + j];
        blk[i * B + j] = s;
      }
    }
  }
  void gemm_sub(double* c, const double* a, const double* b) const {
    const int B = block_;
    for (int i = 0; i < B; ++i) {
      for (int l = 0; l < B; ++l) {
        const double al = a[i * B + l];
        for (int j = 0; j < B; ++j) c[i * B + j] -= al * b[l * B + j];
      }
    }
  }

  /// Sequential reference on a plain row-major matrix, same block order.
  void reference_lu(std::vector<double>& m) const {
    const int B = block_;
    auto at = [&](int i, int j) -> double& {
      return m[static_cast<std::size_t>(i) * n_ + j];
    };
    for (int k = 0; k < nb_; ++k) {
      const int k0 = k * B;
      for (int j = 0; j < B; ++j) {
        for (int i = j + 1; i < B; ++i) {
          at(k0 + i, k0 + j) /= at(k0 + j, k0 + j);
          for (int l = j + 1; l < B; ++l) {
            at(k0 + i, k0 + l) -= at(k0 + i, k0 + j) * at(k0 + j, k0 + l);
          }
        }
      }
      for (int bi = k + 1; bi < nb_; ++bi) {
        const int r0 = bi * B;
        for (int i = 0; i < B; ++i) {
          for (int j = 0; j < B; ++j) {
            double s = at(r0 + i, k0 + j);
            for (int l = 0; l < j; ++l) {
              s -= at(r0 + i, k0 + l) * at(k0 + l, k0 + j);
            }
            at(r0 + i, k0 + j) = s / at(k0 + j, k0 + j);
          }
        }
        for (int j = 0; j < B; ++j) {
          for (int i = 0; i < B; ++i) {
            double s = at(k0 + i, r0 + j);
            for (int l = 0; l < i; ++l) {
              s -= at(k0 + i, k0 + l) * at(k0 + l, r0 + j);
            }
            at(k0 + i, r0 + j) = s;
          }
        }
      }
      for (int bi = k + 1; bi < nb_; ++bi) {
        for (int bj = k + 1; bj < nb_; ++bj) {
          const int r0 = bi * B;
          const int c0 = bj * B;
          for (int i = 0; i < B; ++i) {
            for (int l = 0; l < B; ++l) {
              const double al = at(r0 + i, k0 + l);
              for (int j = 0; j < B; ++j) {
                at(r0 + i, c0 + j) -= al * at(k0 + l, c0 + j);
              }
            }
          }
        }
      }
    }
  }

  int n_ = 64;
  int block_ = 8;
  int nb_ = 8;
  int P_ = 1;
  int pr_ = 1;
  int pc_ = 1;
  std::vector<std::size_t> offsets_;  // block (bi,bj) -> element offset
  SharedArray<double> a_;
  std::vector<double> init_;
  std::vector<double> expected_;
};

}  // namespace

std::unique_ptr<Application> make_lu(Scale scale) {
  return std::make_unique<LuApp>(scale);
}

}  // namespace svmsim::apps
