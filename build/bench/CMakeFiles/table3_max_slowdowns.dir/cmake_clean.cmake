file(REMOVE_RECURSE
  "CMakeFiles/table3_max_slowdowns.dir/table3_max_slowdowns.cpp.o"
  "CMakeFiles/table3_max_slowdowns.dir/table3_max_slowdowns.cpp.o.d"
  "table3_max_slowdowns"
  "table3_max_slowdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_max_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
