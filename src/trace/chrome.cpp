#include "trace/chrome.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "net/message.hpp"

namespace svmsim::trace {

namespace {

// Synthetic thread ids within a node's process (real processors use their
// global proc id, which is always < 900 for any plausible configuration).
constexpr int kAgentTid = 900;
constexpr int kNiTxTid = 910;
constexpr int kNiRxTid = 911;

std::string_view msg_type_name(std::uint64_t t) {
  switch (static_cast<net::MsgType>(t)) {
    case net::MsgType::kPageRequest: return "page-request";
    case net::MsgType::kPageReply: return "page-reply";
    case net::MsgType::kDiffBatch: return "diff-batch";
    case net::MsgType::kDiffAck: return "diff-ack";
    case net::MsgType::kLockAcquire: return "lock-acquire";
    case net::MsgType::kLockGrant: return "lock-grant";
    case net::MsgType::kLockRecall: return "lock-recall";
    case net::MsgType::kTokenReturn: return "token-return";
    case net::MsgType::kBarrierArrive: return "barrier-arrive";
    case net::MsgType::kBarrierRelease: return "barrier-release";
    case net::MsgType::kUpdate: return "update";
    case net::MsgType::kUpdateMarker: return "update-marker";
    case net::MsgType::kUpdateMarkerAck: return "update-marker-ack";
  }
  return "message";
}

struct ChromeEvent {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  int pid = 0;
  int tid = 0;
  char ph = 'i';
  std::string name;
  std::string args;  // rendered JSON object, may be empty
};

std::uint64_t clamped_start(std::uint64_t end, std::uint64_t dur) {
  return end >= dur ? end - dur : 0;
}

}  // namespace

std::string to_chrome_json(const TraceFile& f) {
  std::vector<ChromeEvent> events;
  events.reserve(f.records.size());

  // Map a record to its (pid, tid) track.
  const auto track_of = [](const Record& r) {
    if (r.proc >= 0) return std::pair<int, int>{r.node, r.proc};
    return std::pair<int, int>{r.node, kAgentTid};
  };

  // kTimeSpan stacking state: a flush emits several records at one time;
  // lay the run out back-to-back ending at the flush time.
  struct SpanGroup {
    std::uint64_t time = ~0ull;
    std::vector<std::size_t> idx;  // indices into `events` of this group
    std::uint64_t total = 0;
  };
  std::map<int, SpanGroup> span_groups;  // per proc

  const auto finish_group = [&events](SpanGroup& g) {
    if (g.time == ~0ull) return;
    std::uint64_t start = clamped_start(g.time, g.total);
    for (std::size_t i : g.idx) {
      events[i].ts = start;
      start += events[i].dur;
    }
  };

  // FIFO send->deliver matching per (src, dst) node pair.
  struct PendingSend {
    std::uint64_t time;
    std::uint64_t type;
    std::uint64_t bytes;
  };
  std::map<std::pair<int, int>, std::deque<PendingSend>> in_flight;
  const int network_pid = f.nodes;

  for (const Record& r : f.records) {
    const Event ev = static_cast<Event>(r.event);
    const auto [pid, tid] = track_of(r);

    switch (ev) {
      case Event::kTimeSpan: {
        SpanGroup& g = span_groups[r.proc];
        if (g.time != r.time) {
          finish_group(g);
          g.time = r.time;
          g.idx.clear();
          g.total = 0;
        }
        g.idx.push_back(events.size());
        ChromeEvent e;
        e.dur = r.a0;
        e.pid = pid;
        e.tid = tid;
        e.ph = 'X';
        e.name = std::string(svmsim::to_string(
            static_cast<TimeCat>(r.a1 < static_cast<std::uint64_t>(kTimeCats)
                                     ? r.a1
                                     : 0)));
        g.total += r.a0;
        events.push_back(std::move(e));
        break;
      }
      case Event::kHandlerSpan: {
        ChromeEvent e;
        e.ts = clamped_start(r.time, r.a0);
        e.dur = r.a0;
        e.pid = pid;
        e.tid = tid;
        e.ph = 'X';
        e.name = "handler";
        events.push_back(std::move(e));
        break;
      }
      case Event::kNiTx:
      case Event::kNiRx: {
        ChromeEvent e;
        e.ts = clamped_start(r.time, r.a1);
        e.dur = r.a1;
        e.pid = r.node;
        e.tid = ev == Event::kNiTx ? kNiTxTid : kNiRxTid;
        e.ph = 'X';
        e.name = std::string(to_string(ev));
        e.args = "{\"bytes\": " + std::to_string(r.a0) + "}";
        events.push_back(std::move(e));
        break;
      }
      case Event::kMsgSend: {
        const int dst = static_cast<int>(r.a0 & 0xffffffffu);
        in_flight[{r.node, dst}].push_back(
            {r.time, r.a0 >> 32, r.a1});
        break;
      }
      case Event::kMsgDeliver: {
        const int src = static_cast<int>(r.a0 & 0xffffffffu);
        auto& q = in_flight[{src, r.node}];
        if (q.empty()) break;  // send outside the trace window
        const PendingSend s = q.front();
        q.pop_front();
        ChromeEvent e;
        e.ts = s.time;
        e.dur = r.time >= s.time ? r.time - s.time : 0;
        e.pid = network_pid;
        e.tid = src * f.nodes + r.node;
        e.ph = 'X';
        e.name = std::string(msg_type_name(s.type));
        e.args = "{\"bytes\": " + std::to_string(s.bytes) + "}";
        events.push_back(std::move(e));
        break;
      }
      default: {
        ChromeEvent e;
        e.ts = r.time;
        e.pid = pid;
        e.tid = ev == Event::kIoBus ? (r.a1 != 0 ? kNiRxTid : kNiTxTid) : tid;
        e.ph = 'i';
        e.name = std::string(to_string(ev));
        e.args = "{\"a0\": " + std::to_string(r.a0) +
                 ", \"a1\": " + std::to_string(r.a1) + "}";
        events.push_back(std::move(e));
        break;
      }
    }
  }
  for (auto& [proc, g] : span_groups) finish_group(g);

  // Global timestamp sort => per-track monotonic timestamps.
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     return a.ts < b.ts;
                   });

  // Name every track that appeared.
  std::set<std::pair<int, int>> tracks;
  for (const ChromeEvent& e : events) tracks.insert({e.pid, e.tid});

  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto emit_meta = [&](int pid, int tid, const std::string& kind,
                             const std::string& name) {
    os << (first ? "" : ",\n") << "  {\"ph\": \"M\", \"pid\": " << pid;
    if (tid >= 0) os << ", \"tid\": " << tid;
    os << ", \"name\": \"" << kind << "\", \"args\": {\"name\": \"" << name
       << "\"}}";
    first = false;
  };
  std::set<int> pids;
  for (const auto& [pid, tid] : tracks) pids.insert(pid);
  for (int pid : pids) {
    emit_meta(pid, -1, "process_name",
              pid == network_pid ? "network" : "node" + std::to_string(pid));
  }
  for (const auto& [pid, tid] : tracks) {
    std::string name;
    if (pid == network_pid) {
      name = "n" + std::to_string(tid / std::max(1, f.nodes)) + "-to-n" +
             std::to_string(tid % std::max(1, f.nodes));
    } else if (tid == kAgentTid) {
      name = "agent";
    } else if (tid == kNiTxTid) {
      name = "ni-tx";
    } else if (tid == kNiRxTid) {
      name = "ni-rx";
    } else {
      name = "cpu" + std::to_string(tid);
    }
    emit_meta(pid, tid, "thread_name", name);
  }

  for (const ChromeEvent& e : events) {
    os << (first ? "" : ",\n") << "  {\"ph\": \"" << e.ph << "\", \"ts\": "
       << e.ts;
    if (e.ph == 'X') os << ", \"dur\": " << e.dur;
    os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid << ", \"cat\": \""
       << "svmsim\", \"name\": \"" << e.name << "\"";
    if (e.ph == 'i') os << ", \"s\": \"t\"";
    if (!e.args.empty()) os << ", \"args\": " << e.args;
    os << "}";
    first = false;
  }

  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"build\": \""
     << f.provenance << "\", \"categories\": \"" << mask_to_string(f.mask)
     << "\", \"end_time\": " << f.end_time << "}}\n";
  return os.str();
}

void write_chrome_json(const TraceFile& f, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("trace: cannot open " + tmp);
    out << to_chrome_json(f);
    if (!out) throw std::runtime_error("trace: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("trace: rename to " + path + " failed");
  }
}

}  // namespace svmsim::trace
