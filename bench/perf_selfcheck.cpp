// Self-measurement for the parallel sweep executor: runs the same multi-app
// host-overhead sweep serially and under --jobs N, checks the results are
// identical, and reports wall-clock time and simulation throughput
// (events/sec) for both, machine-readably.
//
//   ./perf_selfcheck [--scale=tiny] [--jobs=N] [--apps=a,b,c]
//                    [--out=BENCH_sweep.json]
//
// Exit status is nonzero if the parallel results differ from the serial
// ones, so this doubles as a determinism check for CI.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using svmsim::harness::AppRun;

struct Measurement {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

Measurement measure(std::vector<AppRun>& out,
                    const std::vector<svmsim::harness::SweepPoint>& points,
                    svmsim::apps::Scale scale, svmsim::harness::JobPool* pool) {
  // A fresh Sweep each time so the baseline cache is cold for both arms.
  svmsim::harness::Sweep sweep(scale);
  const auto t0 = std::chrono::steady_clock::now();
  out = sweep.run_points(points, pool);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : out) m.events += r.result.events;
  return m;
}

bool identical(const std::vector<AppRun>& a, const std::vector<AppRun>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].app != b[i].app || a[i].param != b[i].param ||
        a[i].uniprocessor != b[i].uniprocessor ||
        a[i].result.time != b[i].result.time ||
        a[i].result.events != b[i].result.events ||
        !(a[i].result.stats == b[i].result.stats)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svmsim;
  harness::Cli cli(argc, argv);
  // Re-parse through the bench options for scale/apps/jobs handling, but
  // default to tiny scale: this is a self-check, not a figure.
  auto opt = bench::Options::parse(argc, argv);
  if (!cli.get("scale")) opt.scale = apps::Scale::kTiny;
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");
  const unsigned jobs =
      opt.jobs > 1 ? static_cast<unsigned>(opt.jobs)
                   : harness::JobPool::hardware_default();

  // The fig05 host-overhead sweep: a representative all-independent batch.
  const std::vector<double> values{0, 500, 1000, 2000};
  const auto apply = [](SimConfig& c, double v) {
    c.comm.host_overhead = static_cast<Cycles>(v);
  };
  const auto points = bench::suite_points(values, apply, opt);

  std::fprintf(stderr, "perf_selfcheck: %zu points (%zu apps x %zu values), "
               "serial then --jobs=%u\n",
               points.size(), opt.app_names.size(), values.size(), jobs);

  std::vector<AppRun> serial_runs;
  const Measurement serial = measure(serial_runs, points, opt.scale, nullptr);

  std::vector<AppRun> parallel_runs;
  harness::JobPool pool(jobs);
  const Measurement parallel =
      measure(parallel_runs, points, opt.scale, &pool);

  const bool same = identical(serial_runs, parallel_runs);
  const double speedup = parallel.wall_seconds > 0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sweep\",\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"hardware_threads\": " << harness::JobPool::hardware_default()
       << ",\n"
       << "  \"serial\": {\"wall_seconds\": " << serial.wall_seconds
       << ", \"events\": " << serial.events
       << ", \"events_per_sec\": " << serial.events_per_sec() << "},\n"
       << "  \"parallel\": {\"wall_seconds\": " << parallel.wall_seconds
       << ", \"events\": " << parallel.events
       << ", \"events_per_sec\": " << parallel.events_per_sec() << "},\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical_results\": " << (same ? "true" : "false") << "\n"
       << "}\n";
  json.close();

  std::printf("== perf_selfcheck: serial vs --jobs=%u sweep ==\n", jobs);
  harness::Table t({"arm", "wall seconds", "events", "events/sec"});
  t.add_row({"serial", harness::fmt(serial.wall_seconds, 3),
             std::to_string(serial.events),
             harness::fmt(serial.events_per_sec(), 0)});
  t.add_row({"parallel", harness::fmt(parallel.wall_seconds, 3),
             std::to_string(parallel.events),
             harness::fmt(parallel.events_per_sec(), 0)});
  t.print();
  std::printf("speedup: %.2fx, identical results: %s (written to %s)\n",
              speedup, same ? "yes" : "NO", out_path.c_str());

  return same ? 0 : 1;
}
