// Workload interface and the single-run driver.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "engine/task.hpp"

namespace svmsim::engine {
class ChoiceHook;
}  // namespace svmsim::engine

namespace svmsim {

/// A parallel program to run on the simulated cluster. Implemented by every
/// application in src/apps.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocate shared data and initialize home copies (untimed, like the
  /// initialization phase excluded from SPLASH-2 measurements).
  virtual void setup(Machine& m) = 0;

  /// Per-processor program body. A final global barrier is appended by the
  /// runner, so the last user-level barrier may be omitted.
  virtual engine::Task<void> body(Machine& m, ProcId pid) = 0;

  /// Check the computed results by reading home copies; true if correct.
  virtual bool validate(Machine& m) = 0;
};

struct RunResult {
  Cycles time = 0;     ///< parallel execution time (last processor finish)
  Stats stats{0};
  std::uint64_t events = 0;  ///< discrete events fired by the simulation
  bool validated = false;
  /// Consistency violations found by the shadow oracle; always 0 unless the
  /// run had cfg.check.enabled (and the checker compiled in).
  std::uint64_t check_violations = 0;
  /// PDES mode (cfg.par_cores > 1): events fired by each partition's queue
  /// (sums to `events`) and conservative windows executed. Serial runs have
  /// one entry and zero windows.
  std::vector<std::uint64_t> partition_events;
  std::uint64_t windows = 0;
  /// High-water mark of simultaneously outstanding pooled clock bodies
  /// (full vector clocks + sparse deltas, summed over partitions). A host
  /// diagnostic, not simulated state: serial and PDES runs of one point may
  /// legitimately differ here, so it is excluded from bit-identity checks.
  std::uint64_t peak_clock_pool = 0;

  /// Per-processor rate of `events` per million compute cycles, averaged
  /// over processors — the normalization used by Table 2 / Figures 3-4.
  [[nodiscard]] double per_proc_per_mcycles(std::uint64_t events) const;
};

/// Run `w` on a machine configured by `cfg`. Throws if the simulation
/// deadlocks or exceeds `max_cycles`. A non-null `hook` installs a
/// schedule-choice hook (engine/choice.hpp) on the machine's simulator —
/// explorer mode, serial only: with cfg.par_cores > 1 the run throws
/// std::invalid_argument (arbitrated schedules are alternative histories,
/// which the PDES byte-identity contract cannot cover).
RunResult run(Workload& w, const SimConfig& cfg,
              Cycles max_cycles = Cycles{1} << 42,
              engine::ChoiceHook* hook = nullptr);

/// Convenience: the uniprocessor baseline configuration for `cfg`.
[[nodiscard]] SimConfig uniprocessor_config(const SimConfig& cfg);

}  // namespace svmsim
