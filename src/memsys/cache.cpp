#include "memsys/cache.hpp"

#include <cassert>

namespace svmsim::memsys {

Cache::Cache(const CacheParams& p) : params_(p) {
  assert(p.line_bytes > 0 && p.associativity > 0);
  sets_ = p.size_bytes / (p.line_bytes * p.associativity);
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 &&
         "cache set count must be a power of two");
  lines_.resize(static_cast<std::size_t>(sets_) * p.associativity);
}

Cache::Line* Cache::find(std::uint64_t line_addr) {
  const std::uint32_t s = set_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(s) * params_.associativity];
  for (std::uint32_t w = 0; w < params_.associativity; ++w) {
    if (base[w].valid && base[w].addr == line_addr) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t line_addr) const {
  return const_cast<Cache*>(this)->find(line_addr);
}

bool Cache::lookup(std::uint64_t line_addr, bool mark_dirty) {
  if (Line* l = find(line_addr)) {
    l->lru = ++tick_;
    if (mark_dirty) l->dirty = true;
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

bool Cache::contains(std::uint64_t line_addr) const {
  return find(line_addr) != nullptr;
}

Cache::Victim Cache::fill(std::uint64_t line_addr, bool dirty) {
  const std::uint32_t s = set_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(s) * params_.associativity];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < params_.associativity; ++w) {
    Line& l = base[w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.lru < victim->lru) victim = &l;
  }
  Victim out;
  if (victim->valid) {
    out.evicted = true;
    out.dirty = victim->dirty;
    out.line_addr = victim->addr;
  }
  victim->valid = true;
  victim->addr = line_addr;
  victim->dirty = dirty;
  victim->lru = ++tick_;
  return out;
}

void Cache::invalidate_range(std::uint64_t start, std::uint64_t len) {
  const std::uint64_t end = start + len;
  const std::uint64_t lb = params_.line_bytes;
  // Every resident addr is line-aligned (fills always pass ln * line_bytes),
  // so probing the aligned addresses of [start, end) drops exactly the lines
  // a full scan would: O(range / line) set probes instead of O(cache size)
  // per SVM page invalidation. Ranges wider than the tag store fall back to
  // the scan.
  std::uint64_t a = start + (lb - start % lb) % lb;
  if (a >= end) return;
  if ((end - a) / lb >= lines_.size()) {
    for (auto& l : lines_) {
      if (l.valid && l.addr >= start && l.addr < end) {
        l.valid = false;
        l.dirty = false;
      }
    }
    return;
  }
  for (; a < end; a += lb) {
    if (Line* l = find(a)) {
      l->valid = false;
      l->dirty = false;
    }
  }
}

}  // namespace svmsim::memsys
