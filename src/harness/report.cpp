#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "trace/trace.hpp"

namespace svmsim::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

void Table::write_csv(const std::string& path) const {
  std::ostringstream out;
  out << "# build: " << trace::build_provenance() << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote only when needed.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  write_file_atomic(path, out.str());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void maybe_write_csv(const Table& table, const std::string& csv_dir,
                     const std::string& name) {
  if (csv_dir.empty()) return;
  table.write_csv(csv_dir + "/" + name + ".csv");
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp);
    out << content;
    if (!out) throw std::runtime_error("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename to " + path + " failed");
  }
}

std::optional<std::string> json_object_section(const std::string& text,
                                               const std::string& key) {
  const std::size_t k = text.find("\"" + key + "\"");
  if (k == std::string::npos) return std::nullopt;
  const std::size_t start = text.find('{', k);
  if (start == std::string::npos) return std::nullopt;
  int depth = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) {
      return text.substr(start, i + 1 - start);
    }
  }
  return std::nullopt;
}

std::string strip_json_section(std::string text, const std::string& key) {
  const std::size_t k = text.find("\"" + key + "\"");
  if (k == std::string::npos) return text;
  std::size_t begin = text.find_last_of(',', k);
  if (begin == std::string::npos) begin = k;
  std::size_t i = text.find('{', k);
  if (i == std::string::npos) return text;
  int depth = 0;
  for (; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) break;
  }
  std::size_t end = i + 1;
  if (begin == k && end < text.size() && text[end] == ',') ++end;  // leading
  text.erase(begin, end - begin);
  return text;
}

}  // namespace svmsim::harness
