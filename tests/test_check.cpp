// The consistency checker, checked: unit tests for every oracle rule on a
// standalone shadow, plus end-to-end mutation smoke — each fault-injection
// class (SVMSIM_CHECK_MUTATION) plants a real protocol bug and the checker
// must catch it, while clean runs must stay violation-free. Also the
// regression tests for the lock-id cap (Machine::kMaxLocks) documented in
// apps/app.hpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/registry.hpp"
#include "check/checker.hpp"
#include "common.hpp"
#include "svm/address_space.hpp"
#include "svm/vclock.hpp"

namespace svmsim::test {
namespace {

using apps::Distribution;
using apps::SharedArray;
using apps::Shm;
using check::Checker;
using check::Kind;
using check::Mutation;
using check::PageEvent;
using svm::AddressSpace;
using svm::PageState;
using svm::VClock;

// ---------------------------------------------------------------------------
// Mutation selection plumbing
// ---------------------------------------------------------------------------

TEST(CheckConfig, ParseMutationRoundTrips) {
  using check::parse_mutation;
  EXPECT_EQ(parse_mutation(""), Mutation::kNone);
  EXPECT_EQ(parse_mutation("none"), Mutation::kNone);
  EXPECT_EQ(parse_mutation("stale_read"), Mutation::kStaleRead);
  EXPECT_EQ(parse_mutation("lost_diff"), Mutation::kLostDiff);
  EXPECT_EQ(parse_mutation("skipped_notice"), Mutation::kSkippedNotice);
  EXPECT_EQ(parse_mutation("reorder_sensitive_notice"),
            Mutation::kReorderSensitiveNotice);
  EXPECT_FALSE(parse_mutation("bogus").has_value());
  for (Mutation m : {Mutation::kNone, Mutation::kStaleRead, Mutation::kLostDiff,
                     Mutation::kSkippedNotice,
                     Mutation::kReorderSensitiveNotice}) {
    EXPECT_EQ(parse_mutation(check::to_string(m)), m);
  }
}

// ---------------------------------------------------------------------------
// Oracle unit tests on a standalone shadow (no simulation)
// ---------------------------------------------------------------------------

class CheckerOracle : public ::testing::Test {
 protected:
  CheckerOracle() : space_(4, 1024), ck_(check::Config{true, ""}, space_) {
    space_.alloc(4096, Distribution::block());  // pages 0..3, homes 0..3
  }

  [[nodiscard]] bool has(Kind k) const {
    for (const auto& v : ck_.violations()) {
      if (v.kind == k) return true;
    }
    return false;
  }

  AddressSpace space_;
  Checker ck_;
};

TEST_F(CheckerOracle, InitWritesVisibleEverywhere) {
  const std::uint32_t init = 0xabcd1234;
  ck_.on_debug_write(0, &init, sizeof(init));
  VClock vc(4);  // all-zero: no interval of anyone is covered
  ck_.on_read(10, 3, vc, 0, reinterpret_cast<const std::byte*>(&init),
              sizeof(init));
  EXPECT_TRUE(ck_.clean());
  EXPECT_EQ(ck_.checked_words(), 1u);
}

TEST_F(CheckerOracle, StaleReadCaughtWhenHappensBeforeOrdered) {
  const std::uint32_t fresh = 7, stale = 0;
  VClock w(4);
  ck_.on_write(5, 0, w, 0, reinterpret_cast<const std::byte*>(&fresh),
               sizeof(fresh));
  // Node 0 closes the interval; node 1 acquires it (covers {0:1}).
  ck_.on_flush_cut(0);
  VClock w1(4);
  w1.advance(0);
  ck_.on_vclock(6, 0, w1);
  VClock r(4);
  r.merge(w1);
  ck_.on_read(10, 1, r, 0, reinterpret_cast<const std::byte*>(&stale),
              sizeof(stale));
  EXPECT_EQ(ck_.violation_count(), 1u);
  EXPECT_TRUE(has(Kind::kStaleRead));
}

TEST_F(CheckerOracle, RacyReadSkippedNotJudged) {
  const std::uint32_t fresh = 7, stale = 0;
  VClock w(4);
  ck_.on_write(5, 0, w, 0, reinterpret_cast<const std::byte*>(&fresh),
               sizeof(fresh));
  // Node 1 reads without synchronizing: any value is admissible.
  VClock r(4);
  ck_.on_read(10, 1, r, 0, reinterpret_cast<const std::byte*>(&stale),
              sizeof(stale));
  EXPECT_TRUE(ck_.clean());
  EXPECT_GT(ck_.racy_words_skipped(), 0u);
}

TEST_F(CheckerOracle, ConflictingUnorderedWritesAreRacy) {
  const std::uint32_t a = 1, b = 2;
  VClock w0(4), w1(4);
  ck_.on_write(5, 0, w0, 0, reinterpret_cast<const std::byte*>(&a), sizeof(a));
  ck_.on_write(6, 1, w1, 0, reinterpret_cast<const std::byte*>(&b), sizeof(b));
  EXPECT_TRUE(has(Kind::kRacyWrite));
}

TEST_F(CheckerOracle, IllegalPageTransitionFlagged) {
  // invalid -> read-write without a fetch is never a legal edge.
  ck_.on_page_state(5, 1, 0, PageState::kInvalid, PageState::kReadWrite,
                    PageEvent::kArmWrite);
  EXPECT_TRUE(has(Kind::kBadTransition));
}

TEST_F(CheckerOracle, LegalEdgesStayClean) {
  ck_.on_page_state(1, 1, 0, PageState::kUnmapped, PageState::kReadOnly,
                    PageEvent::kFetchInstall);
  ck_.on_page_state(2, 1, 0, PageState::kReadOnly, PageState::kReadWrite,
                    PageEvent::kArmWrite);
  ck_.on_page_state(3, 1, 0, PageState::kReadWrite, PageState::kReadOnly,
                    PageEvent::kFlushDemote);
  ck_.on_page_state(4, 1, 0, PageState::kReadOnly, PageState::kInvalid,
                    PageEvent::kInvalidate);
  EXPECT_TRUE(ck_.clean());
  EXPECT_EQ(ck_.transitions(), 4u);
}

TEST_F(CheckerOracle, WriteNoticeResurrectionCaught) {
  // A fetch in flight when a write notice lands must install invalid.
  ck_.on_fetch_issue(1, 0);
  ck_.on_inval_notice(1, 0);
  ck_.on_page_state(9, 1, 0, PageState::kUnmapped, PageState::kReadOnly,
                    PageEvent::kFetchInstall);
  EXPECT_TRUE(has(Kind::kResurrection));
}

TEST_F(CheckerOracle, RacedFetchInstallingInvalidIsFine) {
  ck_.on_fetch_issue(1, 0);
  ck_.on_inval_notice(1, 0);
  ck_.on_page_state(9, 1, 0, PageState::kUnmapped, PageState::kInvalid,
                    PageEvent::kFetchInstallStale);
  EXPECT_TRUE(ck_.clean());
}

TEST_F(CheckerOracle, LockAcquireMustCoverLastRelease) {
  VClock rel(4);
  rel.advance(0);
  rel.advance(0);
  ck_.on_lock_release(5, 0, 17, rel);
  VClock acq(4);  // does not cover node 0's two intervals
  ck_.on_lock_acquired(9, 1, 17, acq);
  EXPECT_TRUE(has(Kind::kLockHandoff));
}

TEST_F(CheckerOracle, CoveringLockAcquireIsClean) {
  VClock rel(4);
  rel.advance(0);
  ck_.on_lock_release(5, 0, 17, rel);
  VClock acq(4);
  acq.merge(rel);
  ck_.on_lock_acquired(9, 1, 17, acq);
  EXPECT_TRUE(ck_.clean());
}

TEST_F(CheckerOracle, BarrierExitMustCoverFullRendezvous) {
  AddressSpace space(2, 1024);
  space.alloc(1024, Distribution::block());
  Checker ck(check::Config{true, ""}, space);
  VClock a(2), b(2);
  a.advance(0);
  b.advance(1);
  ck.on_barrier_flush(5, 0, a);
  ck.on_barrier_flush(6, 1, b);
  // Node 0 leaves with only its own clock: it never saw node 1's interval.
  ck.on_barrier_exit(9, 0, a);
  EXPECT_EQ(ck.violation_count(), 1u);
  VClock full(2);
  full.merge(a);
  full.merge(b);
  ck.on_barrier_exit(10, 1, full);
  EXPECT_EQ(ck.violation_count(), 1u);  // covering exit adds nothing
}

TEST_F(CheckerOracle, ReacquireMustCoverLatestReleaseNotJustAnEarlierOne) {
  // Two releases of the same lock by different nodes: the second acquire
  // covering only the *first* release is still a broken handoff — the
  // oracle tracks the latest release, not any release.
  VClock rel0(4);
  rel0.advance(0);
  ck_.on_lock_release(5, 0, 17, rel0);
  VClock rel1(4);
  rel1.merge(rel0);
  rel1.advance(1);
  ck_.on_lock_release(8, 1, 17, rel1);
  VClock acq(4);
  acq.merge(rel0);  // sees node 0's interval, misses node 1's
  ck_.on_lock_acquired(12, 2, 17, acq);
  EXPECT_TRUE(has(Kind::kLockHandoff));
}

TEST_F(CheckerOracle, DistinctLocksHaveIndependentHandoffChains) {
  VClock rel(4);
  rel.advance(0);
  ck_.on_lock_release(5, 0, 17, rel);
  // Acquiring a *different* lock with an empty clock is fine: lock 21 has
  // no prior release, and lock 17's chain is untouched.
  VClock acq(4);
  ck_.on_lock_acquired(9, 1, 21, acq);
  EXPECT_TRUE(ck_.clean());
  // A covering acquire of 17 after the interleaved 21 traffic stays clean.
  VClock acq17(4);
  acq17.merge(rel);
  ck_.on_lock_acquired(11, 2, 17, acq17);
  EXPECT_TRUE(ck_.clean());
}

TEST_F(CheckerOracle, BarrierEarlyExitBeforeFullRendezvousCaught) {
  AddressSpace space(2, 1024);
  space.alloc(1024, Distribution::block());
  Checker ck(check::Config{true, ""}, space);
  VClock a(2);
  a.advance(0);
  ck.on_barrier_flush(5, 0, a);
  // Node 0 exits while node 1 has not even arrived: a rendezvous that
  // never happened, regardless of what the exit clock claims to cover.
  ck.on_barrier_exit(6, 0, a);
  EXPECT_EQ(ck.violation_count(), 1u);
}

TEST_F(CheckerOracle, BackToBackEpochsKeepSeparateRendezvousClocks) {
  AddressSpace space(2, 1024);
  space.alloc(1024, Distribution::block());
  Checker ck(check::Config{true, ""}, space);
  // Epoch 0: full rendezvous, both exits covering — clean, epoch retired.
  VClock a(2), b(2);
  a.advance(0);
  b.advance(1);
  ck.on_barrier_flush(5, 0, a);
  ck.on_barrier_flush(6, 1, b);
  VClock full(2);
  full.merge(a);
  full.merge(b);
  ck.on_barrier_exit(9, 0, full);
  ck.on_barrier_exit(9, 1, full);
  EXPECT_EQ(ck.violation_count(), 0u);
  // Epoch 1 immediately after: exiting with only epoch-0 coverage must be
  // flagged — the new intervals cut at the second flush are missing.
  VClock a2(2), b2(2);
  a2.merge(full);
  a2.advance(0);
  b2.merge(full);
  b2.advance(1);
  ck.on_barrier_flush(12, 0, a2);
  ck.on_barrier_flush(13, 1, b2);
  ck.on_barrier_exit(15, 0, full);  // stale: covers epoch 0, not epoch 1
  EXPECT_EQ(ck.violation_count(), 1u);
  VClock full2(2);
  full2.merge(a2);
  full2.merge(b2);
  ck.on_barrier_exit(16, 1, full2);
  EXPECT_EQ(ck.violation_count(), 1u);
}

TEST_F(CheckerOracle, NodeClockAccessorTracksLatestAcceptedClock) {
  // The explorer's happens-before pruner reads per-node clocks through
  // node_clock(); they must reflect the latest clock the checker accepted.
  EXPECT_EQ(ck_.node_clock(2), VClock(4));
  ck_.on_flush_cut(2);  // open interval 2: own component 1 is now closed
  VClock vc(4);
  vc.advance(2);
  ck_.on_vclock(5, 2, vc);
  EXPECT_TRUE(ck_.clean());
  EXPECT_EQ(ck_.node_clock(2), vc);
  EXPECT_EQ(ck_.node_clock(1), VClock(4));
}

TEST_F(CheckerOracle, ClockMayNotRunAheadOfTheFlushCut) {
  VClock vc(4);
  vc.advance(2);  // claims a closed interval the checker never saw cut
  ck_.on_vclock(5, 2, vc);
  EXPECT_TRUE(has(Kind::kClockRegression));
}

TEST_F(CheckerOracle, DiffLifecycleImbalanceCaught) {
  ck_.on_diff_create(0, 1);
  ck_.on_diff_apply(5, 0, 1);
  ck_.on_diff_apply(6, 0, 1);  // applied twice, created once
  EXPECT_TRUE(has(Kind::kDiffUnmatched));
}

TEST_F(CheckerOracle, LostDiffAndUpdateCaughtAtFinalize) {
  ck_.on_diff_create(0, 1);
  ck_.on_update_emit(1, 2);
  ck_.finalize(100);
  EXPECT_TRUE(has(Kind::kDiffLost));
  EXPECT_TRUE(has(Kind::kUpdateLost));
  const std::uint64_t n = ck_.violation_count();
  ck_.finalize(100);  // idempotent
  EXPECT_EQ(ck_.violation_count(), n);
}

// ---------------------------------------------------------------------------
// End-to-end: clean runs are violation-free, mutated runs are caught
// ---------------------------------------------------------------------------

/// Runs the stress-gen fuzz app under the checker with `mutation` injected
/// via the environment (how the ctest mutation matrix drives it too).
RunResult run_mutated(const char* mutation, Protocol proto) {
  if (mutation != nullptr) {
    ::setenv("SVMSIM_CHECK_MUTATION", mutation, 1);
  } else {
    ::unsetenv("SVMSIM_CHECK_MUTATION");
  }
  SimConfig cfg = config_with(16, 4, proto);
  cfg.check.enabled = true;
  auto app = apps::make_app("stress-gen@5", apps::Scale::kTiny);
  RunResult r = run(*app, cfg);
  ::unsetenv("SVMSIM_CHECK_MUTATION");
  return r;
}

struct MutationCase {
  const char* name;  // nullptr = clean control run
  Protocol proto;
};

class MutationSmoke : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationSmoke, EveryFaultClassIsDetected) {
  const MutationCase mc = GetParam();
  const RunResult r = run_mutated(mc.name, mc.proto);
  if (mc.name == nullptr) {
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(r.check_violations, 0u);
  } else {
    // The planted bug must be visible to the shadow oracle. (The host-side
    // tally may or may not also fail; the checker must not need it.)
    EXPECT_GT(r.check_violations, 0u)
        << "mutation " << mc.name << " slipped past the checker";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, MutationSmoke,
    ::testing::Values(MutationCase{nullptr, Protocol::kHLRC},
                      MutationCase{nullptr, Protocol::kAURC},
                      MutationCase{"stale_read", Protocol::kHLRC},
                      MutationCase{"stale_read", Protocol::kAURC},
                      MutationCase{"lost_diff", Protocol::kHLRC},
                      MutationCase{"lost_diff", Protocol::kAURC},
                      MutationCase{"skipped_notice", Protocol::kHLRC},
                      MutationCase{"skipped_notice", Protocol::kAURC}),
    [](const ::testing::TestParamInfo<MutationCase>& info) {
      return std::string(info.param.name ? info.param.name : "clean") + "_" +
             to_string(info.param.proto);
    });

#ifndef SVMSIM_TRACE_DISABLED
TEST(MutationSmoke, ViolationDumpsReplayableTrace) {
  ::setenv("SVMSIM_CHECK_MUTATION", "stale_read", 1);
  const std::string path =
      ::testing::TempDir() + "svmsim_violation.svmtrace";
  std::remove(path.c_str());
  SimConfig cfg = config_with(16, 4, Protocol::kHLRC);
  cfg.check.enabled = true;
  cfg.check.trace_path = path;
  cfg.trace.enabled = true;  // in-memory tracer (no trace.path)
  auto app = apps::make_app("stress-gen@5", apps::Scale::kTiny);
  const RunResult r = run(*app, cfg);
  ::unsetenv("SVMSIM_CHECK_MUTATION");
  EXPECT_GT(r.check_violations, 0u);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "no violation trace at " << path;
  std::fclose(f);
  std::remove(path.c_str());
}
#endif

// ---------------------------------------------------------------------------
// Lock-id cap (Machine::kMaxLocks) regression tests
// ---------------------------------------------------------------------------

/// A two-processor tally where each processor guards the shared slot with
/// its own lock id; exact iff both ids map to the same lock.
RunResult run_lock_tally(int id_a, int id_b, bool& exact) {
  SimConfig cfg = config_with(2, 1, Protocol::kHLRC);
  cfg.check.enabled = true;
  SharedArray<long long> slot;
  LambdaWorkload w(
      "lock-alias",
      [&](Machine& m) {
        slot = SharedArray<long long>::alloc(m, 1, Distribution::block());
        slot.debug_put(m, 0, 0LL);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int id = pid == 0 ? id_a : id_b;
        for (int k = 0; k < 24; ++k) {
          co_await shm.lock(id);
          const long long v = co_await slot.get(shm, 0);
          co_await slot.put(shm, 0, v + 1);
          co_await shm.unlock(id);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        exact = slot.debug_get(m, 0) == 48;
        return true;
      });
  return run(w, cfg);
}

TEST(LockAliasing, InRangeIdsAcrossTheFullCapWork) {
  bool exact = false;
  const RunResult r = run_lock_tally(0, 0, exact);
  EXPECT_TRUE(exact);
  EXPECT_EQ(r.check_violations, 0u);
  const RunResult r2 = run_lock_tally(Machine::kMaxLocks - 1,
                                      Machine::kMaxLocks - 1, exact);
  EXPECT_TRUE(exact);
  EXPECT_EQ(r2.check_violations, 0u);
}

TEST(LockAliasing, OutOfRangeIdAssertsInDebugAndAliasesCoherentlyInRelease) {
  // Debug builds refuse out-of-range ids outright (see apps/app.hpp). In
  // release builds the id wraps modulo Machine::kMaxLocks, which aliases
  // distinct ids onto one lock — over-serialized but still coherent, so the
  // tally below stays exact and the checker stays quiet.
  EXPECT_DEBUG_DEATH(
      {
        bool exact = false;
        const RunResult r =
            run_lock_tally(7, Machine::kMaxLocks + 7, exact);
        EXPECT_TRUE(exact);
        EXPECT_EQ(r.check_violations, 0u);
      },
      "lock id out of range");
}

}  // namespace
}  // namespace svmsim::test
