// Pool subsystem tests: ObjectPool/PoolRef recycling, Trigger generation
// counters and Episode staleness, and the headline property of PR 2 — a
// steady-state simulation window performs zero heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common.hpp"
#include "core/pool.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "svm/payload.hpp"
#include "svm/pools.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (whole binary). Only windows read it; absolute
// values include gtest's own traffic.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pairs inlined new-expressions with the malloc inside the replacement
// and flags a mismatch; the replacement set is consistent, so silence it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace svmsim::test {
namespace {

// ---------------------------------------------------------------------------
// ObjectPool / PoolRef
// ---------------------------------------------------------------------------

TEST(ObjectPool, RecycleAfterRelease) {
  core::ObjectPool<core::PooledBytes> pool;
  auto r = pool.acquire();
  r->bytes.resize(1000);
  EXPECT_EQ(pool.outstanding(), 1u);
  r.reset();
  EXPECT_EQ(pool.outstanding(), 0u);

  auto r2 = pool.acquire();
  EXPECT_TRUE(r2->bytes.empty());  // recycle() cleared the logical state
#ifndef SVMSIM_POOL_PARANOID
  EXPECT_GE(r2->bytes.capacity(), 1000u);  // ... but kept the capacity
  EXPECT_EQ(pool.allocated(), 1u);         // no second object was created
#endif
}

TEST(ObjectPool, CopySharesAndLastReferenceRecycles) {
  core::ObjectPool<core::PooledBytes> pool;
  auto a = pool.acquire();
  a->bytes.resize(8);
  auto b = a;
  EXPECT_EQ(a.use_count(), 2u);
  a.reset();
  EXPECT_EQ(pool.outstanding(), 1u);  // b still holds it
  EXPECT_EQ(b->bytes.size(), 8u);
  b.reset();
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(ObjectPool, ReleaseOrderIndependence) {
  // Acquire a handful, release them in a scrambled order, reacquire: every
  // object comes back clean regardless of the order it was freed in.
  core::ObjectPool<core::PooledBytes> pool;
  std::vector<core::PoolRef<core::PooledBytes>> refs;
  for (int i = 0; i < 5; ++i) {
    refs.push_back(pool.acquire());
    refs.back()->bytes.resize(static_cast<std::size_t>(16 * (i + 1)));
  }
  for (int i : {2, 0, 4, 1, 3}) refs[static_cast<std::size_t>(i)].reset();
  EXPECT_EQ(pool.outstanding(), 0u);
  for (int i = 0; i < 5; ++i) {
    auto r = pool.acquire();
    EXPECT_TRUE(r->bytes.empty());
  }
}

TEST(ObjectPool, DiffBatchRecyclesUsedPrefix) {
  core::ObjectPool<svm::DiffBatchBody> pool;
  auto b = pool.acquire();
  svm::PageDiff& d = b->next();
  d.page = 42;
  d.runs.push_back({0, 4, 0});
  d.data.resize(4);
  EXPECT_EQ(b->size(), 1u);
  b.reset();

  auto b2 = pool.acquire();
  EXPECT_TRUE(b2->empty());
  svm::PageDiff& d2 = b2->next();
  EXPECT_EQ(d2.page, 0u);  // next() hands out a cleared slot
  EXPECT_TRUE(d2.runs.empty());
  EXPECT_TRUE(d2.data.empty());
}

// ---------------------------------------------------------------------------
// Trigger generations and Episodes
// ---------------------------------------------------------------------------

TEST(TriggerPool, CompleteAdvancesGenerationAndStaleEpisodeIsDone) {
  engine::Simulator sim;
  engine::TriggerPool pool(sim);

  engine::Trigger* t = pool.acquire();
  engine::Episode ep(*t);
  EXPECT_FALSE(ep.done());
  t->complete();
  EXPECT_TRUE(ep.done());  // generation advanced; no reset() races possible
  pool.release(t);

  // Reuse the same trigger for a new episode: the old handle stays done and
  // never latches onto the new user's episode.
  engine::Trigger* t2 = pool.acquire();
#ifndef SVMSIM_POOL_PARANOID
  EXPECT_EQ(t2, t);  // TriggerPool recycles even under paranoid builds,
#endif               // but don't pin the identity there
  engine::Episode ep2(*t2);
  EXPECT_TRUE(ep.done());
  EXPECT_FALSE(ep2.done());
  t2->complete();
  pool.release(t2);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(TriggerPool, StaleEpisodeWaitDoesNotSuspend) {
  engine::Simulator sim;
  engine::TriggerPool pool(sim);
  engine::Trigger* t = pool.acquire();
  engine::Episode stale(*t);
  t->complete();
  pool.release(t);
  pool.release(pool.acquire());  // churn the pool a little

  bool resumed = false;
  engine::spawn([](engine::Episode ep, bool& r) -> engine::Task<void> {
    co_await ep.wait();  // already done: must not suspend
    r = true;
  }(stale, resumed));
  EXPECT_TRUE(resumed);  // completed synchronously, before run_until_idle
}

TEST(TriggerPool, RecycledTriggerDoesNotWakeOldEpisodeWaiters) {
  engine::Simulator sim;
  engine::TriggerPool pool(sim);
  engine::Trigger* t = pool.acquire();

  int wakes = 0;
  engine::Episode ep(*t);
  engine::spawn([](engine::Episode e, int& n) -> engine::Task<void> {
    co_await e.wait();
    ++n;
  }(ep, wakes));
  sim.run_until_idle();
  EXPECT_EQ(wakes, 0);

  t->complete();  // ends episode 1: the waiter wakes exactly once
  sim.run_until_idle();
  EXPECT_EQ(wakes, 1);
  pool.release(t);

  engine::Trigger* t2 = pool.acquire();
  t2->complete();  // episode 2 on the recycled trigger
  sim.run_until_idle();
  EXPECT_EQ(wakes, 1);  // the old waiter did not observe the new episode
  pool.release(t2);
}

TEST(ProtocolPools, BodiesCascadeBackOnRelease) {
  engine::Simulator sim;
  svm::ProtocolPools pools(sim);
  {
    svm::VClockRef v = pools.vclock(svm::VClock(4));
    svm::BytesRef b = pools.bytes();
    b->bytes.resize(64);
    svm::DiffBatchRef d = pools.diff_batch();
    d->next().page = 1;
    EXPECT_EQ(pools.vclocks.outstanding(), 1u);
    EXPECT_EQ(pools.buffers.outstanding(), 1u);
    EXPECT_EQ(pools.diff_batches.outstanding(), 1u);
  }
  EXPECT_EQ(pools.vclocks.outstanding(), 0u);
  EXPECT_EQ(pools.buffers.outstanding(), 0u);
  EXPECT_EQ(pools.diff_batches.outstanding(), 0u);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

#if !defined(SVMSIM_POOL_PARANOID) && !defined(SVMSIM_NO_FRAME_POOL)
TEST(SteadyState, BarrierLoopWindowAllocatesNothing) {
  // Two nodes exchanging hierarchical barriers exercise the full messaging
  // stack (bodies, NIC packets, transmit closures, trigger episodes). After
  // a warm-up, a window of whole-system activity must not touch the heap.
  SimConfig cfg = config_with(4, 2);
  std::uint64_t at_warm = 0, at_end = 0;
  LambdaWorkload w(
      "barrier-steady-state", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        apps::Shm shm(m, pid);
        for (int it = 0; it < 30; ++it) {
          co_await shm.barrier();
          if (pid == 0 && it == 14) {
            at_warm = g_allocs.load(std::memory_order_relaxed);
          }
          if (pid == 0 && it == 29) {
            at_end = g_allocs.load(std::memory_order_relaxed);
          }
        }
      });
  run(w, cfg);
  EXPECT_EQ(at_end - at_warm, 0u)
      << "steady-state barrier window allocated " << (at_end - at_warm)
      << " times";
}
#endif

// Completed runs drain every pool back to zero outstanding (see the note on
// ObjectPool's destructor about why this lives in a test, not an assert).
TEST(SteadyState, CompletedRunLeavesNoOutstandingPoolObjects) {
  SimConfig cfg = config_with(4, 2);
  LambdaWorkload w(
      "drain-check", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        apps::Shm shm(m, pid);
        co_await shm.barrier();
        for (int it = 0; it < 3; ++it) {
          co_await shm.lock(1);
          co_await shm.unlock(1);
          co_await shm.barrier();
        }
      });
  run(w, cfg);
  // run() tears the Machine down after completion; reaching here without a
  // paranoid-mode leak (asserted by ASan builds) is the check.
  SUCCEED();
}

}  // namespace
}  // namespace svmsim::test
