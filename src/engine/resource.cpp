#include "engine/resource.hpp"

#include <algorithm>

namespace svmsim::engine {

namespace {

// Awaiter that enqueues the coroutine into a FIFO wait list unless the
// resource is free, in which case it proceeds immediately.
struct FifoWait {
  bool& busy;
  RingQueue<std::coroutine_handle<>>& waiters;
  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) {
    if (!busy) {
      busy = true;
      return false;
    }
    waiters.push_back(h);
    return true;
  }
  void await_resume() const noexcept {}
};

}  // namespace

Task<void> Resource::acquire() {
  co_await FifoWait{busy_, waiters_};
  // When resumed from the wait list, release() has already kept busy_ true
  // on our behalf.
}

void Resource::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    // Hand over ownership directly: busy_ stays true for the new holder.
    sim_->queue().schedule_now([h] { h.resume(); });
  } else {
    busy_ = false;
  }
}

Task<void> Resource::serve(Cycles service) {
  // Commit this request to the FIFO backlog up front (the body runs
  // synchronously to the first suspension point, so the update lands at
  // submit time): back-to-back service means the queue cannot clear before
  // every already-submitted request's service has been paid.
  committed_until_ = std::max(committed_until_, sim_->now()) + service;
  co_await acquire();
  ++grants_;
  busy_cycles_ += service;
  busy_until_ = sim_->now() + service;
  if (service > 0) co_await sim_->delay(service);
  release();
}

Task<void> Resource::with(std::function<Task<void>()> body) {
  co_await acquire();
  ++grants_;
  const Cycles start = sim_->now();
  busy_until_ = start;  // body duration unknown; grant time is the bound
  try {
    co_await body();
  } catch (...) {
    busy_cycles_ += sim_->now() - start;
    release();
    throw;
  }
  busy_cycles_ += sim_->now() - start;
  release();
}

Task<void> PriorityResource::serve(int priority, Cycles service) {
  struct PrioWait {
    PriorityResource& r;
    int priority;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (!r.busy_) {
        r.busy_ = true;
        return false;
      }
      r.waiters_.push_back(Waiter{priority, r.next_seq_++, h});
      std::push_heap(r.waiters_.begin(), r.waiters_.end(), After{});
      return true;
    }
    void await_resume() const noexcept {}
  };

  co_await PrioWait{*this, priority};
  ++grants_;
  const Cycles occupancy = arbitration_ + service;
  busy_cycles_ += occupancy;
  busy_until_ = sim_->now() + occupancy;
  if (occupancy > 0) co_await sim_->delay(occupancy);
  if (!waiters_.empty()) {
    std::pop_heap(waiters_.begin(), waiters_.end(), After{});
    auto h = waiters_.back().handle;
    waiters_.pop_back();
    sim_->queue().schedule_now([h] { h.resume(); });  // busy_ stays true
  } else {
    busy_ = false;
  }
}

}  // namespace svmsim::engine
