file(REMOVE_RECURSE
  "libsvmsim.a"
)
