file(REMOVE_RECURSE
  "CMakeFiles/fig07_ni_occupancy.dir/fig07_ni_occupancy.cpp.o"
  "CMakeFiles/fig07_ni_occupancy.dir/fig07_ni_occupancy.cpp.o.d"
  "fig07_ni_occupancy"
  "fig07_ni_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ni_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
