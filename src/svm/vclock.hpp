// Vector timestamps over node intervals, the partial order of lazy release
// consistency. Entry `v[n]` is the index of the latest interval of node `n`
// whose write notices this node has applied.
//
// The representation is built for large machines (docs/scaling.md): entries
// live in a small-buffer inline array up to kInlineNodes (the paper's
// 16-processor configs never touch the heap) with a heap spill above that,
// and every clock maintains three summaries alongside the entries:
//
//   sum      the sum of all entries. Component-wise dominance implies sum
//            dominance, so `covers` can reject on sum alone, and equal sums
//            reduce dominance to equality (one memcmp).
//   max      the largest entry; a second cheap dominance rejector.
//   version  a monotonic mutation counter, bumped by every operation that
//            may have changed a value (including copy assignment). Callers
//            holding a reference to a clock can use it to skip re-derived
//            state when nothing changed. The per-edge delta caches
//            (hlrc.cpp) compare *copies*, so they short-circuit on the sum
//            summary + memcmp (`operator==`) instead.
//
// The summaries are derived state: `operator==`, `covers` and `merge` are
// value-semantics exact, and simulated results never depend on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::svm {

class VClock {
 public:
  /// Largest machine whose clocks stay entirely inline: 16 nodes is the
  /// paper's machine at one processor per node, and 64 processors at the
  /// paper's 4-per-node granularity.
  static constexpr int kInlineNodes = 16;

  VClock() = default;
  explicit VClock(int nodes) : size_(nodes) {
    if (nodes > kInlineNodes) {
      heap_.assign(static_cast<std::size_t>(nodes), 0);
    }
  }

  VClock(const VClock& o)
      : heap_(o.heap_), size_(o.size_), max_(o.max_), sum_(o.sum_) {
    if (size_ <= kInlineNodes) {
      for (int i = 0; i < size_; ++i) inline_[i] = o.inline_[i];
    }
  }
  VClock(VClock&& o) noexcept = default;
  VClock& operator=(const VClock& o) {
    if (this != &o) {
      size_ = o.size_;
      if (size_ <= kInlineNodes) {
        for (int i = 0; i < size_; ++i) inline_[i] = o.inline_[i];
        heap_.clear();  // keep capacity for future spills
      } else {
        heap_ = o.heap_;
      }
      max_ = o.max_;
      sum_ = o.sum_;
      ++version_;  // own mutation counter, not copied
    }
    return *this;
  }
  VClock& operator=(VClock&& o) noexcept {
    if (this != &o) {
      size_ = o.size_;
      if (size_ <= kInlineNodes) {
        for (int i = 0; i < size_; ++i) inline_[i] = o.inline_[i];
        heap_.clear();
      } else {
        heap_ = std::move(o.heap_);
      }
      max_ = o.max_;
      sum_ = o.sum_;
      ++version_;
    }
    return *this;
  }
  ~VClock() = default;

  [[nodiscard]] int size() const noexcept { return size_; }

  [[nodiscard]] const std::uint32_t* data() const noexcept {
    return size_ <= kInlineNodes ? inline_ : heap_.data();
  }

  [[nodiscard]] std::uint32_t get(NodeId n) const {
    return data()[static_cast<std::size_t>(n)];
  }
  void set(NodeId n, std::uint32_t val) {
    std::uint32_t& e = mut()[static_cast<std::size_t>(n)];
    if (e == val) return;
    const std::uint32_t old = e;
    sum_ = sum_ - old + val;
    e = val;
    if (val > max_) {
      max_ = val;
    } else if (old == max_) {
      recompute_max();
    }
    ++version_;
  }
  std::uint32_t advance(NodeId n) {
    std::uint32_t& e = mut()[static_cast<std::size_t>(n)];
    ++e;
    ++sum_;
    if (e > max_) max_ = e;
    ++version_;
    return e;
  }

  /// Sum of all entries (derived; covers/merge short-circuit on it).
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Largest entry (derived).
  [[nodiscard]] std::uint32_t max_component() const noexcept { return max_; }
  /// Mutation counter: changes whenever a value may have changed. Never
  /// carried by copies — each object counts its own mutations.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// True if this clock has seen interval `interval` of node `n`.
  [[nodiscard]] bool covers(NodeId n, std::uint32_t interval) const {
    return interval == 0 || (interval <= max_ && get(n) >= interval);
  }
  /// True if this clock dominates `o` component-wise.
  [[nodiscard]] bool covers(const VClock& o) const;

  /// Component-wise maximum.
  void merge(const VClock& o);

  [[nodiscard]] bool operator==(const VClock& o) const;

  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::uint32_t* mut() noexcept {
    return size_ <= kInlineNodes ? inline_ : heap_.data();
  }
  void recompute_max() noexcept;

  std::uint32_t inline_[kInlineNodes] = {};
  std::vector<std::uint32_t> heap_;  // used only when size_ > kInlineNodes
  int size_ = 0;
  std::uint32_t max_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace svmsim::svm
