#include <gtest/gtest.h>

#include <vector>

#include "engine/simulator.hpp"
#include "engine/task.hpp"

namespace svmsim::engine {
namespace {

TEST(Trigger, ReleasesAllWaiters) {
  Simulator sim;
  Trigger t(sim);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Trigger& tr, int& n) -> Task<void> {
      co_await tr.wait();
      ++n;
    }(t, released));
  }
  sim.run_until_idle();
  EXPECT_EQ(released, 0);
  t.fire();
  sim.run_until_idle();
  EXPECT_EQ(released, 3);
}

TEST(Trigger, WaitAfterFireCompletesImmediately) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  bool done = false;
  spawn([](Trigger& tr, bool& d) -> Task<void> {
    co_await tr.wait();
    d = true;
  }(t, done));
  EXPECT_TRUE(done);  // no suspension needed
}

TEST(Trigger, FireIsIdempotent) {
  Simulator sim;
  Trigger t(sim);
  int released = 0;
  spawn([](Trigger& tr, int& n) -> Task<void> {
    co_await tr.wait();
    ++n;
  }(t, released));
  t.fire();
  t.fire();
  sim.run_until_idle();
  EXPECT_EQ(released, 1);
}

TEST(Trigger, ResetReArms) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  t.reset();
  bool done = false;
  spawn([](Trigger& tr, bool& d) -> Task<void> {
    co_await tr.wait();
    d = true;
  }(t, done));
  sim.run_until_idle();
  EXPECT_FALSE(done);
  t.fire();
  sim.run_until_idle();
  EXPECT_TRUE(done);
}

TEST(Semaphore, AcquireConsumesCount) {
  Simulator sim;
  Semaphore s(sim, 2);
  int acquired = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Semaphore& sem, int& n) -> Task<void> {
      co_await sem.acquire();
      ++n;
    }(s, acquired));
  }
  sim.run_until_idle();
  EXPECT_EQ(acquired, 2);
  s.release();
  sim.run_until_idle();
  EXPECT_EQ(acquired, 3);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  Simulator sim;
  Semaphore s(sim, 0);
  s.release();
  s.release();
  EXPECT_EQ(s.count(), 2);
}

TEST(Semaphore, FifoWakeup) {
  Simulator sim;
  Semaphore s(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](Semaphore& sem, std::vector<int>& o, int id) -> Task<void> {
      co_await sem.acquire();
      o.push_back(id);
    }(s, order, i));
  }
  for (int i = 0; i < 3; ++i) s.release();
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Delay, AccumulatesSimulatedTime) {
  Simulator sim;
  Cycles end = 0;
  spawn([](Simulator& s, Cycles& e) -> Task<void> {
    co_await s.delay(5);
    co_await s.delay(7);
    e = s.now();
  }(sim, end));
  sim.run_until_idle();
  EXPECT_EQ(end, 12u);
}

}  // namespace
}  // namespace svmsim::engine
