// Paper §6 guided simulations: per-application gap analysis between
// achievable, best and ideal performance, plus the paper's diagnostic
// what-ifs (free interrupts, quadrupled I/O bandwidth, fetches made local).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  SimConfig no_intr = bench::base_config();
  no_intr.comm.interrupt_cost = 0;
  SimConfig bw4 = bench::base_config();
  bw4.comm.io_bus_mb_per_mhz *= 4.0;
  SimConfig local = bench::base_config();
  local.disable_remote_fetches = true;
  SimConfig best = bench::base_config();
  best.comm = CommParams::best();

  const SimConfig variants[] = {bench::base_config(), no_intr, bw4, local,
                                best};
  constexpr std::size_t kVariants = std::size(variants);

  std::vector<harness::SweepPoint> points;
  for (const auto& app : opt.app_names) {
    for (std::size_t v = 0; v < kVariants; ++v) {
      points.push_back({app, variants[v], static_cast<double>(v)});
    }
  }
  auto runs = sweep.run_points(points, opt.pool());

  harness::Table t({"application", "achievable", "free interrupts",
                    "4x I/O bandwidth", "local fetches", "best", "ideal"});
  for (std::size_t i = 0; i < opt.app_names.size(); ++i) {
    const auto* row_runs = &runs[i * kVariants];
    const auto& ach = row_runs[0];
    t.add_row({opt.app_names[i], harness::fmt(ach.speedup()),
               harness::fmt(row_runs[1].speedup()),
               harness::fmt(row_runs[2].speedup()),
               harness::fmt(row_runs[3].speedup()),
               harness::fmt(row_runs[4].speedup()),
               harness::fmt(ach.ideal_speedup())});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf("== Extra (paper 6): per-application gap analysis ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "extra_gap");
  return 0;
}
